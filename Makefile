# Convenience targets for the repro package.

PYTHON ?= python

.PHONY: install test test-fast bench report examples clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -m "not slow"

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

report:
	$(PYTHON) -m repro report --output report.md

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/characterize_device.py
	$(PYTHON) examples/zswap_offload.py
	$(PYTHON) examples/ksm_dedup.py
	$(PYTHON) examples/bias_modes.py
	$(PYTHON) examples/tail_latency_study.py

clean:
	rm -rf build dist src/repro.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
