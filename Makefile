# Convenience targets for the repro package.

PYTHON ?= python

.PHONY: install test test-fast test-sanitized bench perf report examples lint clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -m "not slow"

test-sanitized:
	REPRO_SANITIZE=1 $(PYTHON) -m pytest tests/

# reprolint always runs (stdlib-only); ruff/mypy run when installed
# (pip install -e '.[lint]') and are skipped gracefully otherwise.
# --graph adds the whole-program passes; the content-hash cache
# (.reprolint_cache.json) keeps warm runs incremental.
lint:
	$(PYTHON) -m repro lint --graph src tests benchmarks examples
	@$(PYTHON) -c "import ruff" 2>/dev/null \
		&& $(PYTHON) -m ruff check src tests \
		|| echo "ruff not installed; skipping (pip install -e '.[lint]')"
	@$(PYTHON) -c "import mypy" 2>/dev/null \
		&& $(PYTHON) -m mypy \
		|| echo "mypy not installed; skipping (pip install -e '.[lint]')"

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Engine/experiment speed -> BENCH_speed.json, checked against the
# committed baseline (>2x slower fails).  See docs/PERFORMANCE.md.
perf:
	$(PYTHON) -m repro speed --output BENCH_speed.json
	$(PYTHON) benchmarks/perf/check_regression.py BENCH_speed.json

report:
	$(PYTHON) -m repro report --output report.md

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/characterize_device.py
	$(PYTHON) examples/zswap_offload.py
	$(PYTHON) examples/ksm_dedup.py
	$(PYTHON) examples/bias_modes.py
	$(PYTHON) examples/tail_latency_study.py

clean:
	rm -rf build dist src/repro.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
