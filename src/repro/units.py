"""Units and conversion helpers.

All simulator time is kept in **nanoseconds** (float) and all sizes in
**bytes** (int).  These helpers exist so that configuration code reads like
the paper: ``GHz(2.2)``, ``MiB(60)``, ``gbps_per_lane=32``.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Time (canonical unit: nanosecond)
# ---------------------------------------------------------------------------

NS = 1.0
US = 1_000.0
MS = 1_000_000.0
SEC = 1_000_000_000.0


def ns(value: float) -> float:
    """Nanoseconds (identity, for symmetry)."""
    return value * NS


def us(value: float) -> float:
    """Microseconds to nanoseconds."""
    return value * US


def ms(value: float) -> float:
    """Milliseconds to nanoseconds."""
    return value * MS


def seconds(value: float) -> float:
    """Seconds to nanoseconds."""
    return value * SEC


# ---------------------------------------------------------------------------
# Size (canonical unit: byte)
# ---------------------------------------------------------------------------

CACHELINE = 64
PAGE_SIZE = 4096


def kib(value: float) -> int:
    """KiB to bytes."""
    return int(value * 1024)


def mib(value: float) -> int:
    """MiB to bytes."""
    return int(value * 1024 * 1024)


def gib(value: float) -> int:
    """GiB to bytes."""
    return int(value * 1024 * 1024 * 1024)


# ---------------------------------------------------------------------------
# Frequency / rate
# ---------------------------------------------------------------------------


def ghz_period_ns(freq_ghz: float) -> float:
    """Clock period in ns for a frequency in GHz."""
    if freq_ghz <= 0:
        raise ValueError(f"frequency must be positive, got {freq_ghz}")
    return 1.0 / freq_ghz


def mhz_period_ns(freq_mhz: float) -> float:
    """Clock period in ns for a frequency in MHz."""
    return 1000.0 / freq_mhz


def gbps_to_bytes_per_ns(gbps: float) -> float:
    """Gigabits/second to bytes/nanosecond."""
    return gbps / 8.0


def gib_per_s_to_bytes_per_ns(gib_s: float) -> float:
    """GB/s (decimal GB) to bytes/nanosecond."""
    return gib_s


def bytes_per_ns_to_gb_per_s(bpns: float) -> float:
    """Bytes/nanosecond to GB/s (decimal)."""
    return bpns


def cachelines(nbytes: int) -> int:
    """Number of 64 B cache lines covering ``nbytes`` (ceiling)."""
    return (nbytes + CACHELINE - 1) // CACHELINE
