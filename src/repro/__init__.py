"""repro: a full-system reproduction of "Demystifying a CXL Type-2 Device:
A Heterogeneous Cooperative Computing Perspective" (MICRO 2024).

The package provides:

* a deterministic discrete-event simulator of the paper's testbed -- host
  CPU, caches, memory controllers, UPI/PCIe/CXL interconnects, and the
  Agilex-7 CXL Type-2 device (DCOH, HMC/DMC, bias modes) --
  (:mod:`repro.sim`, :mod:`repro.mem`, :mod:`repro.interconnect`,
  :mod:`repro.host`, :mod:`repro.devices`);
* the cooperative-computing offload framework of SVI (:mod:`repro.core`);
* functional Linux kernel-feature models -- zswap and ksm -- with real
  compression and hashing (:mod:`repro.kernel`);
* the Redis/YCSB end-to-end workloads (:mod:`repro.apps`); and
* one experiment module per paper table/figure
  (:mod:`repro.experiments`).

Quick start::

    from repro import Platform, Microbench, D2HOp
    mb = Microbench(Platform(), reps=10)
    print(mb.d2h(D2HOp.CS_READ, llc_hit=True))
"""

from repro.config import SystemConfig, default_system, sub_numa_half_system
from repro.core.microbench import Measurement, Microbench
from repro.core.platform import Platform
from repro.core.requests import BiasMode, D2HOp, HostOp, MemLevel

__version__ = "1.0.0"

__all__ = [
    "SystemConfig",
    "default_system",
    "sub_numa_half_system",
    "Platform",
    "Microbench",
    "Measurement",
    "BiasMode",
    "D2HOp",
    "HostOp",
    "MemLevel",
    "__version__",
]
