"""Comparison helpers: bands and tolerance checks.

The reproduction targets *shapes*, not the authors' nanoseconds: every
check is either a direction ("cxl below pcie"), a band the paper quotes
("+38 %" checked within a tolerance factor), or an ordering.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Band:
    """An inclusive numeric band, optionally widened by a tolerance.

    ``Band(0.38)`` is a point target; ``Band(0.76, 1.20)`` a paper range.
    ``contains(x, slack)`` widens both edges multiplicatively, because a
    simulator reproducing a +38 % delta as +28 % or +50 % has preserved
    the shape.
    """

    low: float
    high: float = float("nan")

    def __post_init__(self) -> None:
        if self.high != self.high:  # NaN -> point band
            object.__setattr__(self, "high", self.low)
        if self.high < self.low:
            raise ValueError(f"band inverted: {self}")

    def contains(self, value: float, slack: float = 0.0) -> bool:
        low, high = self.low, self.high
        if slack > 0:
            span = max(abs(low), abs(high), 1e-12)
            low -= slack * span
            high += slack * span
        return low <= value <= high

    def midpoint(self) -> float:
        return (self.low + self.high) / 2.0


def within_band(value: float, band: Band, slack: float = 0.35) -> bool:
    """Default shape check: inside the paper band widened by 35 %."""
    return band.contains(value, slack)


def same_direction(value: float, reference: float) -> bool:
    """Do two deltas at least agree in sign?"""
    if reference == 0:
        return True
    return (value > 0) == (reference > 0)


def ordering_holds(values: list[float], ascending: bool = True) -> bool:
    """Is a sequence monotone (the who-beats-whom check)?"""
    pairs = zip(values, values[1:])
    if ascending:
        return all(a <= b for a, b in pairs)
    return all(a >= b for a, b in pairs)
