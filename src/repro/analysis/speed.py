"""Engine/experiment speed benchmarks -> ``BENCH_speed.json``.

Everything else in this repo treats wall-clock time as a determinism
hazard; this module is the one place it is the *measurand*.  Three
engine microbenchmarks hammer the simulator's hot paths (pure Timeout
heap traffic, zero-delay event chains through the delta queue, Resource
acquire/release churn), three end-to-end experiments time the paths
users actually run, and the process's peak RSS rounds out the picture.

The output is machine-readable (``BENCH_speed.json``) so CI can diff it
against a committed baseline (``benchmarks/perf/baseline.json``; see
``benchmarks/perf/check_regression.py``) and fail on a real regression
without flaking on runner noise.  ``python -m repro speed`` is the
human entry point; docs/PERFORMANCE.md explains how to read the fields.

Throughput metric: *scheduled callbacks per second*, ``sim._seq / dt``
— every event the engine dispatched, whatever its kind, divided by the
wall time of the run.  It is the engine-level analogue of simulator
"events/sec" and is insensitive to how a workload splits its work
between processes, events and resources.
"""

from __future__ import annotations

import json
import platform as _platform
import time
from typing import Any, Callable, Dict

SCHEMA = "repro-speed/1"


# --------------------------------------------------------------------------
# Engine microbenchmarks.  Definitions are frozen: docs/PERFORMANCE.md
# records measurements against exactly these shapes, and the committed
# baseline assumes them.  Change them only together with both.

def bench_timeouts(n_procs: int = 200, steps: int = 500) -> float:
    """Pure heap traffic: many interleaved processes yielding Timeouts
    with co-prime-ish periods, so heap order keeps shuffling."""
    from repro.sim.engine import Simulator, Timeout
    sim = Simulator()

    def proc(period):
        for _ in range(steps):
            yield Timeout(period)

    for i in range(n_procs):
        sim.spawn(proc(1.0 + (i % 7) * 0.5))
    t0 = time.perf_counter()
    sim.run()
    return sim._seq / (time.perf_counter() - t0)


def bench_event_chain(n: int = 100_000) -> float:
    """Zero-delay plumbing: a long chain of one-shot events resumed
    through nested generators — the delta-queue fast path."""
    from repro.sim.engine import Simulator
    sim = Simulator()

    def chain(i):
        value = yield sim.timeout_event(1.0, i)
        return value

    def driver():
        for i in range(n):
            yield chain(i)

    t0 = time.perf_counter()
    sim.run_process(driver())
    return sim._seq / (time.perf_counter() - t0)


def bench_resource_churn(n_workers: int = 50, iters: int = 400) -> float:
    """Contended acquire/release on a small Resource: every release
    hands off through ``call_soon`` wakeups."""
    from repro.sim.engine import Simulator, Timeout
    from repro.sim.resources import Resource
    sim = Simulator()
    res = Resource(sim, capacity=4)

    def worker():
        for _ in range(iters):
            yield res.acquire()
            yield Timeout(1.0)
            res.release()

    for _ in range(n_workers):
        sim.spawn(worker())
    t0 = time.perf_counter()
    sim.run()
    return sim._seq / (time.perf_counter() - t0)


def bench_timeouts_cancelled(n_procs: int = 100, steps: int = 400) -> float:
    """Schedule+cancel churn — the RAS reaping pattern: every step arms
    a long watchdog timer (50x the step period, like a command timeout
    over a fast completion path), does its work, and cancels it.  The
    tombstoned watchdogs still drain through the timer structure, so
    this measures the full lazy-cancel round trip."""
    from repro.sim.engine import Simulator, Timeout
    sim = Simulator()

    def proc(period):
        for _ in range(steps):
            watchdog = sim.timer(period * 50_000.0)
            yield Timeout(period)
            watchdog.cancel()

    for i in range(n_procs):
        sim.spawn(proc(1.0 + (i % 7) * 0.5))
    t0 = time.perf_counter()
    sim.run()
    return sim._seq / (time.perf_counter() - t0)


ENGINE_BENCHES: Dict[str, Callable[[], float]] = {
    "timeouts": bench_timeouts,
    "timeouts_cancelled": bench_timeouts_cancelled,
    "event_chain": bench_event_chain,
    "resource_churn": bench_resource_churn,
}


# --------------------------------------------------------------------------
# End-to-end experiment timings: what `python -m repro <x>` costs.

def _exp_table3() -> None:
    from repro.experiments import table3_coherence
    table3_coherence.run()


def _exp_fig3() -> None:
    from repro.experiments import fig3_d2h
    fig3_d2h.run(reps=5)


def _exp_faults() -> None:
    from repro.experiments import ext_fault_resilience
    ext_fault_resilience.run_device_kill(pages=60)


def _exp_fig6_cxl_ldst() -> None:
    """The Fig-6 CXL ld/st transfer sweep: the line-streaming hot path
    the bulk fast-forward layer (repro.core.fastpath) accelerates."""
    from repro.core.platform import Platform
    from repro.core.transfer import TransferBench
    bench = TransferBench(Platform(), reps=3)
    for direction in ("d2h", "h2d"):
        for nbytes in (16384, 65536):
            bench.measure("cxl-ldst", direction, nbytes)


def _exp_zswap_ksm() -> None:
    """A functional zswap store/load + ksm scan mix over content-redundant
    pages: the pure-Python codec work repro.kernel.workcache memoizes."""
    from repro.core.offload import OffloadEngine
    from repro.core.platform import Platform
    from repro.kernel.ksm import Ksm
    from repro.kernel.swapdev import SwapDevice
    from repro.kernel.vm import make_vm_fleet
    from repro.kernel.zswap import Zswap
    from repro.units import PAGE_SIZE

    p = Platform()
    engine = OffloadEngine(p, functional=True)
    zswap = Zswap(engine, SwapDevice(p.sim), "cxl", managed_pages=512)
    rng = p.rng.fork(97)
    # A handful of distinct page contents reused across many stores —
    # the content redundancy real guests exhibit.  Three-quarters random
    # bytes keeps the LZ match scan honest (few matches = the slow path)
    # while the zero tail keeps the page poolable.
    templates = []
    for i in range(8):
        page = bytearray(rng.random_bytes(PAGE_SIZE * 3 // 4))
        page += bytes(PAGE_SIZE - len(page))
        page[:4] = i.to_bytes(4, "little")
        templates.append(bytes(page))
    handles = []
    for k in range(96):
        handle, __ = p.sim.run_process(
            zswap.store(templates[k % len(templates)]))
        handles.append(handle)
    for handle in handles[:32]:
        p.sim.run_process(zswap.load(handle))
    vms = make_vm_fleet(3, 24, shared_fraction=0.6, rng=p.rng.fork(98))
    ksm = Ksm(engine, "cxl", vms, functional=True)
    for __ in range(2):
        p.sim.run_process(ksm.full_scan())


def _ckpt_warmup(pages: int = 96):
    """The expensive, point-independent half of the checkpoint speed
    cell: a functional zswap pool prefill (full LZ codec work on
    ``pages`` content-redundant pages).  Returns a quiescent
    (platform, zswap, handles) root ready to snapshot."""
    from repro.core.offload import OffloadEngine
    from repro.core.platform import Platform
    from repro.kernel.swapdev import SwapDevice
    from repro.kernel.zswap import Zswap
    from repro.units import PAGE_SIZE

    p = Platform()
    engine = OffloadEngine(p, functional=True)
    zswap = Zswap(engine, SwapDevice(p.sim), "cxl", managed_pages=512)
    rng = p.rng.fork(97)
    templates = []
    for i in range(8):
        page = bytearray(rng.random_bytes(PAGE_SIZE * 3 // 4))
        page += bytes(PAGE_SIZE - len(page))
        page[:4] = i.to_bytes(4, "little")
        templates.append(bytes(page))
    handles = []
    for k in range(pages):
        handle, __ = p.sim.run_process(
            zswap.store(templates[k % len(templates)]))
        handles.append(handle)
    return (p, zswap, tuple(handles))


def _ckpt_probe(root, start: int, count: int = 8) -> int:
    """One sweep point: fault ``count`` pages back in from the prefilled
    pool — deliberately cheap next to the warm-up, which is the shape
    the checkpoint layer exists to amortize."""
    platform, zswap, handles = root
    loaded = 0
    for handle in handles[start:start + count]:
        data, __ = platform.sim.run_process(zswap.load(handle))
        loaded += len(data or b"")
    return loaded


def _checkpoint_sweep() -> None:
    """An 8-point sweep sharing one pool-prefill warm-up: cold replays
    the prefill per point; forked snapshots it once and restores."""
    from repro.sim.parallel import ForkSpec, run_forked_sweep
    spec = ForkSpec.build(
        "speed_checkpoint", _ckpt_warmup,
        [(i, _ckpt_probe, (i * 8,), {}) for i in range(8)])
    run_forked_sweep(spec, jobs=1)


EXPERIMENT_BENCHES: Dict[str, Callable[[], None]] = {
    "table3": _exp_table3,
    "fig3_reps5": _exp_fig3,
    "faults_kill60": _exp_faults,
    "fig6_cxl_ldst": _exp_fig6_cxl_ldst,
    "zswap_ksm": _exp_zswap_ksm,
}


# --------------------------------------------------------------------------
# Fast-forward feature speedups: the same workload timed with the
# feature off then on.  The off/on outputs are byte-identical (the
# equivalence suite asserts it); these cells record the wall-clock win
# and the feature telemetry, and CI gates on the floors below.

#: Minimum accepted bulk speedup on the Fig-6 ld/st sweep.  Measured
#: ~4x; the floor is loose for noisy CI runners.
FIG6_BULK_SPEEDUP_FLOOR = 2.0
#: Minimum accepted combined bulk+workcache speedup on the functional
#: zswap/ksm mix (the offload flows train d2h/d2d; the codec work hits
#: the cache).  Measured ~3x.
ZSWAP_KSM_CACHE_SPEEDUP_FLOOR = 2.0
#: Minimum accepted timer-wheel speedup on the timeout-heavy engine
#: benches (heap timers off vs wheel timers on).  Measured ~1.6x on the
#: pure-Timeout shape; the floor is loose for noisy CI runners.
TIMER_WHEEL_SPEEDUP_FLOOR = 1.2
#: Minimum accepted checkpoint-fork speedup on the warm-up-heavy sweep
#: (8 points sharing one 96-page zswap pool prefill).  Cold replays the
#: codec-heavy prefill per point; forked pays one prefill + one pickle
#: round trip per point.  Measured ~5x; the floor is loose for noisy CI
#: runners.
CHECKPOINT_FORK_SPEEDUP_FLOOR = 2.0
#: Minimum accepted warm-over-cold win for the content-addressed
#: experiment cache: computing + storing a fig3 cell vs serving it from
#: disk.  Measured orders of magnitude; 5x is the contract the warm
#: ``repro all`` CI job also enforces end to end.
EXPCACHE_WARM_SPEEDUP_FLOOR = 5.0
#: Minimum accepted timer-reaping speedup on the schedule+cancel bench
#: (tombstone drain off vs compaction on, both on the default wheel
#: carrier).  Measured ~2.8x; the ISSUE-10 contract is >= 2x.
TIMERS_REAP_SPEEDUP_FLOOR = 2.0
#: Minimum accepted packed-codec speedup on the wire pickle round trip
#: (the coordinator<->worker boundary cost `send_bulk` pays per wire).
#: Measured ~4x; the floor is loose for noisy CI runners.
WIRE_CODEC_SPEEDUP_FLOOR = 1.5
#: Minimum accepted quiescent fast-forward speedup on the sparse rack
#: (arrivals epochs apart, so most barriers are empty).  Measured ~3x;
#: the ISSUE-10 contract is >= 1.5x.
RACK_FASTFORWARD_SPEEDUP_FLOOR = 1.5
#: Minimum accepted ShardPool speedup on the 16-shard rack bench
#: (``jobs=4`` vs ``jobs=1``).  Only enforced when the measuring host
#: has at least 2 CPUs — the cell records ``cpus`` and
#: :func:`compare` skips the floor on single-core runners, where the
#: worker processes can only add overhead.  Measured >2.5x on 4-core
#: runners; the floor is loose for noisy CI.
RACK_PARALLEL_SPEEDUP_FLOOR = 2.0

SPEEDUP_FLOORS: Dict[str, float] = {
    "fig6_cxl_ldst": FIG6_BULK_SPEEDUP_FLOOR,
    "zswap_ksm": ZSWAP_KSM_CACHE_SPEEDUP_FLOOR,
    "timer_wheel": TIMER_WHEEL_SPEEDUP_FLOOR,
    "timers_reap": TIMERS_REAP_SPEEDUP_FLOOR,
    "wire_codec": WIRE_CODEC_SPEEDUP_FLOOR,
    "rack_fastforward": RACK_FASTFORWARD_SPEEDUP_FLOOR,
    "checkpoint_fork": CHECKPOINT_FORK_SPEEDUP_FLOOR,
    "expcache_warm": EXPCACHE_WARM_SPEEDUP_FLOOR,
    "rack_parallel": RACK_PARALLEL_SPEEDUP_FLOOR,
}

#: Maximum accepted armed/disarmed wall-time ratio for the resilience
#: layer on the degradation workload.  Arming adds one spawned shield
#: process + one cancellable hedge timer per offload, so some overhead
#: is by design; measured ~1.3x, and the ceiling is loose for noisy CI
#: runners.  Disarmed overhead is gated separately (byte-identity in
#: the determinism suite — the NO_RESILIENCE path costs one attribute
#: test).
RESILIENCE_OVERHEAD_CEILING = 2.5

OVERHEAD_CEILINGS: Dict[str, float] = {
    "resilience_degradation": RESILIENCE_OVERHEAD_CEILING,
}


def _best_wall(fn: Callable[[], None], rounds: int) -> float:
    best = float("inf")
    for __ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def measure_speedups(rounds: int = 3) -> Dict[str, Any]:
    """Off-vs-on wall times for the bulk fast-forward (Fig-6 sweep) and
    the kernel work cache (zswap/ksm mix), plus their telemetry."""
    from repro.kernel.workcache import WORK_CACHE, set_workcache
    from repro.sim.bulk import BULK_STATS, set_bulk

    cells: Dict[str, Any] = {}
    try:
        set_bulk(False)
        off = _best_wall(_exp_fig6_cxl_ldst, rounds)
        set_bulk(True)
        BULK_STATS.reset()
        on = _best_wall(_exp_fig6_cxl_ldst, rounds)
        cells["fig6_cxl_ldst"] = {
            "feature": "bulk",
            "off_wall_s": round(off, 4),
            "on_wall_s": round(on, 4),
            "speedup": round(off / on, 2),
            "stats": BULK_STATS.snapshot(),
        }
    finally:
        set_bulk(None)
    try:
        set_bulk(False)
        set_workcache(False)
        off = _best_wall(_exp_zswap_ksm, rounds)
        set_bulk(True)
        set_workcache(True)
        BULK_STATS.reset()
        WORK_CACHE.reset()
        on = _best_wall(_exp_zswap_ksm, rounds)
        cells["zswap_ksm"] = {
            "feature": "bulk+workcache",
            "off_wall_s": round(off, 4),
            "on_wall_s": round(on, 4),
            "speedup": round(off / on, 2),
            "stats": WORK_CACHE.snapshot(),
            "bulk_stats": BULK_STATS.snapshot(),
        }
    finally:
        set_bulk(None)
        set_workcache(None)

    from repro.sim.timers import WHEEL_STATS, set_timers

    def _timeout_workload() -> None:
        bench_timeouts()
        bench_timeouts_cancelled()

    try:
        set_timers("heap")
        off = _best_wall(_timeout_workload, rounds)
        set_timers("wheel")
        WHEEL_STATS.reset()
        on = _best_wall(_timeout_workload, rounds)
        cells["timer_wheel"] = {
            "feature": "timer-wheel",
            "off_wall_s": round(off, 4),
            "on_wall_s": round(on, 4),
            "speedup": round(off / on, 2),
            "stats": WHEEL_STATS.snapshot(),
        }
    finally:
        set_timers(None)

    from repro.sim.timers import set_timers_reap

    # Tombstone reaping on the schedule+cancel shape (ISSUE 10).  Off
    # replays the legacy lazy-cancel drain — every dead watchdog still
    # marches through the wheel; on compacts them out (nursery staging
    # for the never-inserted, ratio-triggered sweeps for the rest).
    try:
        set_timers_reap(False)
        off = _best_wall(bench_timeouts_cancelled, rounds)
        set_timers_reap(True)
        WHEEL_STATS.reset()
        on = _best_wall(bench_timeouts_cancelled, rounds)
        cells["timers_reap"] = {
            "feature": "timers-reap",
            "off_wall_s": round(off, 4),
            "on_wall_s": round(on, 4),
            "speedup": round(off / on, 2),
            "stats": WHEEL_STATS.describe(),
        }
    finally:
        set_timers_reap(None)

    import pickle

    from repro.rack.fabric import (FabricConfig, FabricPort,
                                   set_wire_codec)

    # Packed wire codec on the worker -> coordinator -> worker path a
    # wire takes at jobs > 1: the sender's outbox is pickled up to the
    # coordinator, routed *without touching payloads* (Fabric.push only
    # reads the header), then pickled back down to the destination
    # shard, which decodes once.  Legacy tuples pay four C traversals
    # of every record; the packed frame ships as one bytes object and
    # decodes a single time.
    def _codec_workload() -> None:
        fcfg = FabricConfig()
        port = FabricPort(0, fcfg)
        # Rack-shaped values: user ids spread over millions, issue
        # times in simulated ns — not pickle's small-int fast path.
        req = [(i * 39_119 % 9_999_991, 1e9 + i * 617.25)
               for i in range(256)]
        rep = [(u, t, t + 88_000.5) for u, t in req]
        consumed = 0
        for k in range(150):
            wires = (port.send_bulk(1, "req", req, float(k)),
                     port.send_bulk(2, "rep", rep, float(k)))
            hop1 = pickle.dumps(wires, protocol=pickle.HIGHEST_PROTOCOL)
            outbox = pickle.loads(hop1)          # coordinator side
            hop2 = pickle.dumps(outbox, protocol=pickle.HIGHEST_PROTOCOL)
            for wire in pickle.loads(hop2):      # destination shard
                consumed += len(wire.payload)

    try:
        set_wire_codec(False)
        off = _best_wall(_codec_workload, rounds)
        set_wire_codec(True)
        on = _best_wall(_codec_workload, rounds)
        # Representative framing telemetry: one of each wire shape.
        fcfg = FabricConfig()
        port = FabricPort(0, fcfg)
        sample = tuple((i * 39_119 % 9_999_991, 1e9 + i * 617.25)
                       for i in range(256))
        req_wire = port.send_bulk(1, "req", sample, 0.0)
        legacy_bytes = len(pickle.dumps(
            sample, protocol=pickle.HIGHEST_PROTOCOL))
        cells["wire_codec"] = {
            "feature": "wire-codec",
            "off_wall_s": round(off, 4),
            "on_wall_s": round(on, 4),
            "speedup": round(off / on, 2),
            "stats": {
                "items_per_wire": req_wire.count,
                "frame_bytes": len(req_wire.frame),
                "legacy_pickle_bytes": legacy_bytes,
                "modelled_nbytes": req_wire.nbytes,
            },
        }
    finally:
        set_wire_codec(None)

    from repro.rack import RackConfig, run_rack
    from repro.rack.cluster import set_rack_ff

    # Quiescent-epoch fast-forward on a sparse rack: arrivals land
    # epochs apart (low utilization stretches the run), so the legacy
    # loop spins mostly-empty 500us barriers that the fast-forward
    # jumps over.  Byte-identity off-vs-on is pinned by tests/rack.
    ff_cfg = RackConfig(hosts=4, users=256, buckets=64,
                        servers_per_host=1, target_utilization=0.001,
                        seed=42)
    ff_rounds = min(rounds, 2)
    try:
        set_rack_ff(False)
        off = _best_wall(lambda: run_rack(ff_cfg, jobs=1), ff_rounds)
        set_rack_ff(True)
        ff_result = None

        def _rack_ff() -> None:
            nonlocal ff_result
            ff_result = run_rack(ff_cfg, jobs=1)

        on = _best_wall(_rack_ff, ff_rounds)
        cells["rack_fastforward"] = {
            "feature": "rack-ff",
            "off_wall_s": round(off, 4),
            "on_wall_s": round(on, 4),
            "speedup": round(off / on, 2),
            "stats": ff_result.fabric_stats,
        }
    finally:
        set_rack_ff(None)

    from repro.sim.checkpoint import CHECKPOINT_STATS, set_checkpoint

    try:
        # Work cache off on both sides: with it on, cold warm-ups 2..N
        # are memoized codec hits and the cell would be measuring the
        # work cache, not the checkpoint fork.
        set_workcache(False)
        set_checkpoint(False)
        off = _best_wall(_checkpoint_sweep, rounds)
        set_checkpoint(True)
        CHECKPOINT_STATS.reset()
        on = _best_wall(_checkpoint_sweep, rounds)
        cells["checkpoint_fork"] = {
            "feature": "checkpoint-fork",
            "off_wall_s": round(off, 4),
            "on_wall_s": round(on, 4),
            "speedup": round(off / on, 2),
            "stats": CHECKPOINT_STATS.snapshot(),
        }
    finally:
        set_checkpoint(None)
        set_workcache(None)

    import shutil
    import tempfile

    from repro.analysis.expcache import (EXPCACHE_STATS, ExperimentCache,
                                         ambient_modes, module_fingerprint)
    from repro.experiments import fig3_d2h

    # Cold computes + stores a fig3 cell; warm serves it from disk —
    # the exact pair of paths `repro fig3` takes on a miss and a hit.
    # A private temp directory keeps the bench off the real cache.
    tmpdir = tempfile.mkdtemp(prefix="repro-expcache-speed-")
    try:
        cache = ExperimentCache(root=tmpdir)
        key = {
            "experiment": "fig3",
            "code": module_fingerprint("repro.experiments.fig3_d2h"),
            "args": {"reps": 5},
            "modes": ambient_modes(),
        }

        def _expcache_cold() -> None:
            cache.store(key, fig3_d2h.format_table(fig3_d2h.run(reps=5)))

        def _expcache_warm() -> None:
            if cache.lookup(key) is None:
                raise RuntimeError("expcache bench: expected a warm hit")

        off = _best_wall(_expcache_cold, rounds)
        EXPCACHE_STATS.reset()
        on = _best_wall(_expcache_warm, rounds)
        cells["expcache_warm"] = {
            "feature": "expcache",
            "off_wall_s": round(off, 4),
            "on_wall_s": round(on, 6),
            "speedup": round(off / on, 2),
            "stats": EXPCACHE_STATS.snapshot(),
        }
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)

    # Resilience-armed vs disarmed on the degradation workload.  Unlike
    # the cells above, "on" is expected to cost MORE wall time (hedge
    # timers + shield processes per offload); the gate is the overhead
    # ceiling, not a speedup floor.
    from repro.experiments import ext_degradation
    from repro.units import ms

    def _degradation(armed: bool) -> None:
        ext_degradation.run_cell("speed", None, armed=armed,
                                 duration_ns=ms(4.0))

    off = _best_wall(lambda: _degradation(False), rounds)
    on = _best_wall(lambda: _degradation(True), rounds)
    armed_cell = ext_degradation.run_cell("speed", None, armed=True,
                                          duration_ns=ms(4.0))
    cells["resilience_degradation"] = {
        "feature": "resilience",
        "off_wall_s": round(off, 4),
        "on_wall_s": round(on, 4),
        "speedup": round(off / on, 2),
        "overhead": round(on / off, 2),
        "stats": {
            "requests": armed_cell.requests,
            "hedges_fired": armed_cell.hedges_fired,
            "shed": armed_cell.shed,
            "cpu_fallbacks": armed_cell.cpu_fallbacks,
            "breaker_trips": armed_cell.breaker_trips,
        },
    }

    # ShardPool scaling on the 16-shard rack: the same trajectory at
    # jobs=1 (serial, in-process) vs jobs=4 (sticky workers).  The two
    # runs are byte-identical by contract (tests/rack pins it); this
    # cell records the wall-clock win.  One round per side — the rack
    # bench is seconds long and best-of-N would double the bill.
    import os

    from repro.rack import RackConfig, run_rack

    rack_cfg = RackConfig(hosts=16, users=60_000, seed=42)
    rack_rounds = min(rounds, 2)
    serial = _best_wall(lambda: run_rack(rack_cfg, jobs=1), rack_rounds)
    result = None

    def _rack_parallel() -> None:
        nonlocal result
        result = run_rack(rack_cfg, jobs=4)

    parallel = _best_wall(_rack_parallel, rack_rounds)
    cells["rack_parallel"] = {
        "feature": "shardpool",
        "off_wall_s": round(serial, 4),
        "on_wall_s": round(parallel, 4),
        "speedup": round(serial / parallel, 2),
        "cpus": os.cpu_count() or 1,
        "stats": {
            "hosts": rack_cfg.hosts,
            "served": result.served,
            "jobs": result.jobs,
            "routed_wires": result.routed_wires,
            "epochs": result.epochs,
        },
    }
    return cells


def _telemetry() -> Dict[str, Any]:
    """Feature counters accumulated across this process's benches, plus
    the streaming-digest memory cell: the byte cost of a
    :class:`~repro.sim.stats.StreamingLatencyStats` digest next to what
    an exact recorder would hold for the same sample count — the number
    ``ext_scale`` banks on staying flat."""
    import sys

    from repro.kernel.pagestore import PAGE_STORE
    from repro.sim.stats import StreamingLatencyStats

    import numpy as np

    stream = StreamingLatencyStats()
    n = 100_000
    samples = [(i * 2654435761) % 1_000_003 / 1.0 for i in range(n)]
    for s in samples:
        stream.record(s)
    digest_bytes = sys.getsizeof(stream._marks)
    for q in stream._marks.values():
        digest_bytes += sys.getsizeof(q)
    exact_p99 = float(np.percentile(np.asarray(samples), 99.0))
    return {
        "pagestore": PAGE_STORE.snapshot(),
        "streaming_stats": {
            "samples": n,
            "digest_bytes": digest_bytes,
            "exact_bytes_equivalent": n * 8,   # one float64 per sample
            "p99_rel_err": round(abs(stream.p99() - exact_p99) / exact_p99, 6),
        },
    }


def _peak_rss_kb() -> int:
    """Peak resident set of this process, in KiB (0 where unsupported)."""
    try:
        import resource as _resource
        rss = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
        # Linux reports KiB; macOS reports bytes.
        return rss // 1024 if _platform.system() == "Darwin" else rss
    except (ImportError, OSError):  # pragma: no cover - non-POSIX
        return 0


def measure(rounds: int = 3) -> Dict[str, Any]:
    """Run every benchmark; return the BENCH_speed.json payload.

    Engine benches keep the **best** of ``rounds`` (throughput noise is
    one-sided: interference only slows a run down); experiment timings
    keep the fastest wall time for the same reason.
    """
    engine = {}
    for name, fn in ENGINE_BENCHES.items():
        engine[name] = {
            "events_per_sec": round(max(fn() for _ in range(rounds)), 1)}
    experiments = {}
    for name, fn in EXPERIMENT_BENCHES.items():
        experiments[name] = {"wall_s": round(_best_wall(fn, rounds), 4)}
    return {
        "schema": SCHEMA,
        "rounds": rounds,
        "engine": engine,
        "experiments": experiments,
        "speedups": measure_speedups(rounds),
        "telemetry": _telemetry(),
        "peak_rss_kb": _peak_rss_kb(),
        "host": {
            "python": _platform.python_version(),
            "machine": _platform.machine(),
        },
    }


def render(payload: Dict[str, Any]) -> str:
    """Human-readable table for the CLI (the JSON stays the record)."""
    lines = [
        "Engine/experiment speed (see docs/PERFORMANCE.md)",
        f"{'benchmark':<16s} {'metric':>22s}",
    ]
    for name, cell in payload["engine"].items():
        lines.append(f"{name:<16s} {cell['events_per_sec']:>14,.0f} ev/s")
    for name, cell in payload["experiments"].items():
        lines.append(f"{name:<16s} {cell['wall_s']:>16.3f} s")
    for name, cell in payload.get("speedups", {}).items():
        lines.append(
            f"{name:<16s} {cell['speedup']:>16.2f} x "
            f"({cell['feature']} {cell['off_wall_s']:.3f}s -> "
            f"{cell['on_wall_s']:.3f}s)")
        stats = cell["stats"]
        if cell["feature"] == "timer-wheel":
            lines.append(
                f"{'':<16s} {stats['fired']:>12,d} fired / "
                f"{stats['cancelled']:,d} cancelled, "
                f"{stats['cascades']:,d} cascades")
        elif cell["feature"] == "timers-reap":
            lines.append(
                f"{'':<16s} {stats['cancelled']:>12,d} cancelled, "
                f"{stats['reaped']:,d} reaped in "
                f"{stats['reap_sweeps']:,d} sweeps, "
                f"{stats['tombstones_pending']:,d} pending")
        elif cell["feature"] == "wire-codec":
            lines.append(
                f"{'':<16s} {stats['frame_bytes']:>12,d} B framed vs "
                f"{stats['legacy_pickle_bytes']:,d} B pickled "
                f"({stats['items_per_wire']:,d} items/wire)")
        elif cell["feature"] == "rack-ff":
            demoted = (stats["demoted_inflight"] + stats["demoted_backlog"]
                       + stats["demoted_directives"] + stats["demoted_kill"])
            lines.append(
                f"{'':<16s} {stats['epochs_run']:>12,d} epochs run / "
                f"{stats['epochs_skipped']:,d} skipped "
                f"({stats['ff_jumps']:,d} jumps, {demoted:,d} demoted)")
        elif cell["feature"] == "resilience":
            lines.append(
                f"{'':<16s} {stats['requests']:>12,d} requests, "
                f"{stats['hedges_fired']:,d} hedges, "
                f"{stats['shed']:,d} shed, "
                f"overhead {cell['overhead']:.2f}x")
        elif cell["feature"] == "checkpoint-fork":
            lines.append(
                f"{'':<16s} {stats['restores']:>12,d} restores from "
                f"{stats['snapshots']:,d} snapshot(s), "
                f"{stats['largest_snapshot_bytes']:,d} B largest, "
                f"{stats['cold_warmups']:,d} cold warm-ups")
        elif cell["feature"] == "expcache":
            lines.append(
                f"{'':<16s} {stats['hits']:>12,d} hits / "
                f"{stats['misses']:,d} misses, "
                f"{stats['stores']:,d} stores")
        elif cell["feature"] == "shardpool":
            lines.append(
                f"{'':<16s} {stats['served']:>12,d} served on "
                f"{stats['hosts']:,d} hosts x {stats['jobs']:,d} jobs, "
                f"{stats['routed_wires']:,d} wires, "
                f"{stats['epochs']:,d} epochs "
                f"({cell['cpus']} cpu(s))")
        elif cell["feature"] == "bulk":
            fallbacks = sum(stats["fallbacks"].values())
            lines.append(
                f"{'':<16s} {stats['total_lines']:>12,d} lines in "
                f"{stats['total_batches']:,d} batches, "
                f"{fallbacks:,d} fallbacks")
        else:
            lines.append(
                f"{'':<16s} {stats['hits']:>12,d} hits / "
                f"{stats['misses']:,d} misses, "
                f"{stats['evictions']:,d} evictions")
            bulk = cell.get("bulk_stats")
            if bulk:
                fallbacks = sum(bulk["fallbacks"].values())
                lines.append(
                    f"{'':<16s} {bulk['total_lines']:>12,d} lines in "
                    f"{bulk['total_batches']:,d} batches, "
                    f"{fallbacks:,d} fallbacks")
    tele = payload.get("telemetry")
    if tele:
        ps = tele["pagestore"]
        lines.append(
            f"{'pagestore':<16s} {ps['hit_rate']:>15.1%} hit rate, "
            f"{ps['bytes_deduped']:,d} B deduped, "
            f"{ps['live_bytes']:,d} B live")
        ss = tele["streaming_stats"]
        lines.append(
            f"{'stream digest':<16s} {ss['digest_bytes']:>12,d} B for "
            f"{ss['samples']:,d} samples (exact: "
            f"{ss['exact_bytes_equivalent']:,d} B), "
            f"p99 err {ss['p99_rel_err']:.2%}")
    lines.append(f"{'peak RSS':<16s} {payload['peak_rss_kb']:>14,d} KiB")
    return "\n".join(lines)


def write_json(payload: Dict[str, Any], path: str) -> None:
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def _bench_speed_ratios(current: Dict[str, Any],
                        baseline: Dict[str, Any]) -> Dict[str, float]:
    """Per-bench current/baseline speed ratios (> 1 = current host is
    faster on that bench), keyed ``engine/<name>`` and
    ``experiments/<name>``, over every bench both payloads share."""
    ratios: Dict[str, float] = {}
    for name, base in baseline.get("engine", {}).items():
        cell = current.get("engine", {}).get(name)
        if cell and base.get("events_per_sec") and cell.get("events_per_sec"):
            ratios[f"engine/{name}"] = \
                cell["events_per_sec"] / base["events_per_sec"]
    for name, base in baseline.get("experiments", {}).items():
        cell = current.get("experiments", {}).get(name)
        if cell and base.get("wall_s") and cell.get("wall_s"):
            ratios[f"experiments/{name}"] = base["wall_s"] / cell["wall_s"]
    return ratios


def _host_speed_ratio(ratios: Dict[str, float],
                      exclude: str = "") -> float:
    """Geometric-mean host speed pooled across the shared benches,
    *excluding* the bench being judged (leave-one-out).

    Absolute ev/s and wall seconds are properties of the machine that
    measured them; the regression question is whether any *one* bench
    got slower relative to the rest of the suite.  Normalizing by the
    pooled ratio cancels uniform host-speed differences (a laptop
    checking CI's committed baseline, a CI runner checking a laptop's).
    The bench under judgement is left out of its own normalizer — a
    slipped bench must never vouch for itself, which matters most when
    the suite is small and one bench could drag the pooled mean.
    """
    import math

    pool = [r for name, r in ratios.items() if name != exclude]
    if not pool:
        return 1.0
    return math.exp(sum(math.log(r) for r in pool) / len(pool))


def compare(current: Dict[str, Any], baseline: Dict[str, Any],
            factor: float = 2.0) -> list:
    """Regression check: return a list of human-readable failures.

    A benchmark regresses when it is worse than ``factor`` times the
    baseline *after* normalizing by the pooled host-speed ratio (see
    :func:`_host_speed_ratio`): the committed baseline captures the
    suite's internal shape, not the absolute speed of the machine that
    produced it.  The factor is deliberately loose — CI runners are
    noisy; the gate only needs to catch order-of-magnitude slips like
    an accidentally quadratic hot path.  Benchmarks present in only one
    payload are skipped (adding a bench must not break CI).
    """
    failures = []
    ratios = _bench_speed_ratios(current, baseline)
    for name, base in baseline.get("engine", {}).items():
        cell = current.get("engine", {}).get(name)
        if cell is None:
            continue
        speed = _host_speed_ratio(ratios, exclude=f"engine/{name}")
        floor = base["events_per_sec"] * speed / factor
        if cell["events_per_sec"] < floor:
            failures.append(
                f"engine/{name}: {cell['events_per_sec']:,.0f} ev/s < "
                f"{floor:,.0f} (baseline {base['events_per_sec']:,.0f} "
                f"x host-speed {speed:.2f} / {factor:g})")
    for name, base in baseline.get("experiments", {}).items():
        cell = current.get("experiments", {}).get(name)
        if cell is None:
            continue
        speed = _host_speed_ratio(ratios, exclude=f"experiments/{name}")
        ceil = base["wall_s"] * factor / speed
        if cell["wall_s"] > ceil:
            failures.append(
                f"experiments/{name}: {cell['wall_s']:.3f}s > {ceil:.3f}s "
                f"(baseline {base['wall_s']:.3f}s x {factor:g} "
                f"/ host-speed {speed:.2f})")
    # Feature-speedup floors are absolute, not baseline-relative: the
    # bulk fast-forward and the work cache must keep paying for their
    # complexity (off/on wall times come from the same process, so
    # runner speed cancels out of the ratio).  Cells that record the
    # host's ``cpus`` are scaling benches; their floor only applies
    # when the host can actually run workers in parallel.
    for name, cell in current.get("speedups", {}).items():
        floor = SPEEDUP_FLOORS.get(name)
        if floor is not None and cell.get("cpus", 99) < 2:
            floor = None
        if floor is not None and cell["speedup"] < floor:
            failures.append(
                f"speedups/{name}: {cell['feature']} speedup "
                f"{cell['speedup']:.2f}x < required {floor:g}x "
                f"({cell['off_wall_s']:.3f}s -> {cell['on_wall_s']:.3f}s)")
        ceiling = OVERHEAD_CEILINGS.get(name)
        if ceiling is not None and cell.get("overhead", 0.0) > ceiling:
            failures.append(
                f"speedups/{name}: {cell['feature']} armed overhead "
                f"{cell['overhead']:.2f}x > allowed {ceiling:g}x "
                f"({cell['off_wall_s']:.3f}s -> {cell['on_wall_s']:.3f}s)")
    # Peak RSS is a memory-regression gate: the streaming-stats and
    # page-interning work exists to keep the footprint flat, so a run
    # whose peak RSS blows past the baseline by ``factor`` fails even
    # if it is fast.
    base_rss = baseline.get("peak_rss_kb", 0)
    cur_rss = current.get("peak_rss_kb", 0)
    if base_rss and cur_rss and cur_rss > base_rss * factor:
        failures.append(
            f"peak_rss_kb: {cur_rss:,d} KiB > {base_rss * factor:,.0f} "
            f"(baseline {base_rss:,d} KiB x {factor:g})")
    return failures
