"""Plain-text table rendering shared by benches and examples."""

from __future__ import annotations

from typing import Iterable, Sequence


def render_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Fixed-width table with auto-sized columns."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if abs(cell) >= 100:
            return f"{cell:.0f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.3f}"
    return str(cell)


def render_series(name: str, xs: Sequence[float],
                  ys: Sequence[float], width: int = 50) -> str:
    """A crude ASCII sparkline for a figure series (log-ish scale)."""
    if len(xs) != len(ys) or not xs:
        raise ValueError("series must be non-empty and aligned")
    top = max(ys)
    lines = [f"{name}:"]
    for x, y in zip(xs, ys):
        bar = "#" * max(1, int(width * y / top)) if top > 0 else ""
        lines.append(f"  {x:>10g} | {bar} {y:g}")
    return "\n".join(lines)
