"""Content-addressed experiment cache: skip unchanged cells entirely.

Every experiment in this repo is a *pure function* of its code and its
arguments — that is the determinism contract CI byte-diffs on every
push (same seed → byte-identical stdout, at any ``--jobs`` count, with
any feature toggle).  Purity makes experiment output cacheable by
content address: if neither the code that computes a table nor the
arguments it was given changed, the table cannot have changed either,
and re-simulating it is pure waste.  This module gives ``repro all``,
``repro <experiment>``, and CI that memoization.

The cache key is::

    (experiment name,
     code fingerprint — sha256 over the experiment's module source and
       every transitively imported ``repro.*`` module's source, found
       by a static AST walk (no execution, no import side effects),
     the determinism-relevant CLI arguments,
     the ambient feature modes that select *what* is computed —
       stats flavour and sanitizer arming)

Deliberately **excluded** from the key: ``--jobs`` and the bulk /
timer-wheel / pagestore / workcache / checkpoint toggles — all are
pinned byte-identical by CI, so a cache entry produced under one
setting is valid under every other.  That exclusion is load-bearing:
it is what lets a ``--jobs 4`` run serve a ``--jobs 1`` run's cache
entry, and it is only sound because the byte-identity pins exist.

Entries are one JSON file per key digest under ``.repro_expcache/``
(override with ``REPRO_EXPCACHE=<dir>``; disable with
``REPRO_EXPCACHE=0`` or ``--no-expcache``), written atomically
(tempfile + rename) so concurrent runs never observe a torn entry.
"""

from __future__ import annotations

import ast
import hashlib
import importlib.util
import json
import os
import tempfile
from typing import Any, Dict, Iterable, Optional, Set

__all__ = [
    "ExperimentCache", "ExpcacheStats", "EXPCACHE_STATS",
    "module_fingerprint", "set_expcache", "expcache_enabled",
    "expcache_dir", "DEFAULT_DIR",
]

DEFAULT_DIR = ".repro_expcache"

_forced: Optional[bool] = None


def set_expcache(enabled: Optional[bool]) -> None:
    """Force the experiment cache on/off; ``None`` defers to the
    ``REPRO_EXPCACHE`` environment variable (default: on)."""
    global _forced
    _forced = enabled


def expcache_enabled() -> bool:
    if _forced is not None:
        return _forced
    return os.environ.get("REPRO_EXPCACHE", "1").lower() not in (
        "0", "false", "off")


def expcache_dir() -> str:
    """The cache directory: ``REPRO_EXPCACHE`` when it names a path
    (anything but an on/off word), else ``.repro_expcache``."""
    env = os.environ.get("REPRO_EXPCACHE", "").strip()
    if env and env.lower() not in ("0", "1", "false", "true", "off", "on"):
        return env
    return DEFAULT_DIR


class ExpcacheStats:
    """Process-global cache telemetry surfaced by ``repro speed``."""

    __slots__ = ("hits", "misses", "stores", "fingerprints")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.fingerprints = 0

    def snapshot(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "fingerprints": self.fingerprints,
        }


EXPCACHE_STATS = ExpcacheStats()


# ---------------------------------------------------------------------------
# code fingerprinting
# ---------------------------------------------------------------------------

def _imported_repro_modules(source: str, package: str) -> Set[str]:
    """Statically collect every ``repro.*`` module this source imports.

    Handles ``import repro.x.y``, ``from repro.x import y`` (where ``y``
    may itself be a submodule), and explicit relative imports resolved
    against ``package``.  Names that do not resolve to a real module
    (attributes of a package, typos) are simply dropped — the walk only
    needs the modules whose *files* feed the computation.
    """
    wanted: Set[str] = set()
    tree = ast.parse(source)
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro" or alias.name.startswith("repro."):
                    wanted.add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                # Relative import: resolve against the owning package.
                parts = package.split(".")
                if node.level > len(parts):
                    continue
                base = ".".join(parts[:len(parts) - node.level + 1])
                module = (f"{base}.{node.module}" if node.module else base)
            else:
                module = node.module or ""
            if module != "repro" and not module.startswith("repro."):
                continue
            wanted.add(module)
            for alias in node.names:
                # ``from repro.experiments import fig8_tail_latency``:
                # the imported names may be submodules.
                wanted.add(f"{module}.{alias.name}")
    return wanted


def _module_file(name: str) -> Optional[str]:
    try:
        spec = importlib.util.find_spec(name)
    except (ImportError, ValueError):
        return None
    if spec is None or spec.origin in (None, "built-in", "frozen"):
        return None
    return spec.origin if spec.origin.endswith(".py") else None


_fingerprint_cache: Dict[str, str] = {}


def module_fingerprint(module_name: str) -> str:
    """sha256 over ``module_name``'s source and the sources of every
    ``repro.*`` module reachable from it through static imports.

    The digest is order-independent (files are combined sorted by
    module name) and process-independent (file bytes only, no ``hash``
    salting, no timestamps).  Memoized per process: code on disk does
    not change under a running sweep.
    """
    cached = _fingerprint_cache.get(module_name)
    if cached is not None:
        return cached
    seen: Dict[str, str] = {}
    frontier = [module_name]
    while frontier:
        name = frontier.pop()
        if name in seen:
            continue
        path = _module_file(name)
        if path is None:
            seen[name] = ""           # keep the name; nothing to hash
            continue
        try:
            with open(path, "rb") as fh:
                source_bytes = fh.read()
        except OSError:
            seen[name] = ""
            continue
        seen[name] = hashlib.sha256(source_bytes).hexdigest()
        package = name if _is_package(name) else name.rsplit(".", 1)[0]
        try:
            source = source_bytes.decode("utf-8")
            frontier.extend(_imported_repro_modules(source, package))
        except (SyntaxError, UnicodeDecodeError):
            pass
    combined = hashlib.sha256()
    for name in sorted(seen):
        if seen[name]:
            combined.update(f"{name}={seen[name]}\n".encode())
    digest = combined.hexdigest()
    _fingerprint_cache[module_name] = digest
    EXPCACHE_STATS.fingerprints += 1
    return digest


def _is_package(name: str) -> bool:
    path = _module_file(name)
    return bool(path) and os.path.basename(path) == "__init__.py"


# ---------------------------------------------------------------------------
# the cache proper
# ---------------------------------------------------------------------------

class ExperimentCache:
    """One JSON file per content-addressed key under ``root``."""

    def __init__(self, root: Optional[str] = None):
        self.root = root if root is not None else expcache_dir()

    def _path(self, digest: str) -> str:
        return os.path.join(self.root, f"{digest}.json")

    @staticmethod
    def key_digest(key: Dict[str, Any]) -> str:
        canonical = json.dumps(key, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    def lookup(self, key: Dict[str, Any]) -> Optional[str]:
        """The cached stdout for ``key``, or None.  A corrupt or
        unreadable entry is a miss, never an error."""
        path = self._path(self.key_digest(key))
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
        except (OSError, ValueError):
            EXPCACHE_STATS.misses += 1
            return None
        output = entry.get("stdout")
        if not isinstance(output, str):
            EXPCACHE_STATS.misses += 1
            return None
        EXPCACHE_STATS.hits += 1
        return output

    def store(self, key: Dict[str, Any], stdout: str) -> None:
        """Atomically persist ``stdout`` under ``key``.  Best-effort: a
        read-only filesystem degrades to not caching, never to failing
        the experiment that just ran."""
        digest = self.key_digest(key)
        entry = {"key": key, "stdout": stdout}
        try:
            os.makedirs(self.root, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    json.dump(entry, fh, sort_keys=True)
                os.replace(tmp, self._path(digest))
            except BaseException:
                os.unlink(tmp)
                raise
        except OSError:
            return
        EXPCACHE_STATS.stores += 1

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        try:
            names = os.listdir(self.root)
        except OSError:
            return 0
        for name in names:
            if name.endswith(".json"):
                try:
                    os.unlink(os.path.join(self.root, name))
                    removed += 1
                except OSError:
                    pass
        return removed


def ambient_modes() -> Dict[str, str]:
    """The feature modes that select *what* an experiment computes (and
    therefore belong in the cache key).  Byte-identity-pinned toggles —
    bulk, timers, pagestore, workcache, checkpoint, jobs — are
    deliberately absent: entries are valid across all of them.
    """
    from repro.sim.stats import stats_mode
    return {
        "stats": stats_mode(),
        "sanitize": os.environ.get("REPRO_SANITIZE", ""),
    }
