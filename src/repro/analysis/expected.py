"""Every quantitative claim of the paper's evaluation, as checkable bands.

This module is the reproduction contract: benchmarks compare measured
shapes against these numbers and EXPERIMENTS.md records both sides.
Sources are quoted per entry (section / figure / table).
"""

from __future__ import annotations

from repro.analysis.compare import Band

PAPER = {
    # ---------------- Fig 3: D2H true vs emulated --------------------------
    # "NC-read, CS-read, NC-write, and CO-write give 38%, 96%, 71%, and
    #  56% higher latency than nt-ld, ld, nt-st, and st" (LLC hit)
    "fig3/latency-delta/llc-1/nc-rd": Band(0.38),
    "fig3/latency-delta/llc-1/cs-rd": Band(0.96),
    "fig3/latency-delta/llc-1/nc-wr": Band(0.71),
    "fig3/latency-delta/llc-1/co-wr": Band(0.56),
    # "...when missing LLC ... 2%, 18%, 67%, and 57% higher latency"
    "fig3/latency-delta/llc-0/nc-rd": Band(0.02),
    "fig3/latency-delta/llc-0/cs-rd": Band(0.18),
    "fig3/latency-delta/llc-0/nc-wr": Band(0.67),
    "fig3/latency-delta/llc-0/co-wr": Band(0.57),
    # "CS-read and NC-read for LLC-0 present 76-120% and 80-125% higher
    #  bandwidth" (ratios: 1.76-2.20 / 1.80-2.25)
    "fig3/bw-ratio/llc-0/cs-rd": Band(1.76, 2.20),
    "fig3/bw-ratio/llc-0/nc-rd": Band(1.80, 2.25),
    # "NC-write for both ... present[s] lower bandwidth than nt-st"
    "fig3/bw-ratio/llc-1/nc-wr": Band(0.5, 1.0),
    "fig3/bw-ratio/llc-0/nc-wr": Band(0.5, 1.0),

    # ---------------- Fig 4: D2D host- vs device-bias -----------------------
    # "NC-write and CO-write, when hitting DMC, in device-bias mode offer
    #  60% lower latency than those in host-bias mode"
    "fig4/device-bias-latency-gain/dmc-1/nc-wr": Band(0.60),
    "fig4/device-bias-latency-gain/dmc-1/co-wr": Band(0.60),
    # reads hitting DMC: no notable difference
    "fig4/device-bias-latency-gain/dmc-1/nc-rd": Band(-0.05, 0.05),
    "fig4/device-bias-latency-gain/dmc-1/cs-rd": Band(-0.05, 0.05),
    # "NC-write and CO-write in device-bias provide 8-12% and 10-13%
    #  higher bandwidth"
    "fig4/device-bias-bw-gain/nc-wr": Band(0.08, 0.12),
    "fig4/device-bias-bw-gain/co-wr": Band(0.10, 0.13),

    # ---------------- Fig 5: H2D T2 vs T3 ----------------------------------
    # "ld, nt-ld, st, and nt-st to the CXL Type-2 device present 5%, 4%,
    #  5%, and 2% higher latency ... than to a CXL Type-3 device"
    "fig5/t2-penalty/ld": Band(0.05),
    "fig5/t2-penalty/nt-ld": Band(0.04),
    "fig5/t2-penalty/st": Band(0.05),
    # "ld, nt-ld, st, nt-st hitting DMC (owned) exhibit 11%, 6%, 17%, 10%
    #  higher latency ... than those missing DMC"
    "fig5/dmc-owned-penalty/ld": Band(0.11),
    "fig5/dmc-owned-penalty/nt-ld": Band(0.06),
    "fig5/dmc-owned-penalty/st": Band(0.17),
    # "ld and st hitting DMC with cache-lines in modified gives 36-40%
    #  higher latency"
    "fig5/dmc-modified-penalty/ld": Band(0.36, 0.40),
    "fig5/dmc-modified-penalty/st": Band(0.36, 0.40),
    # shared ~ miss ("negligible difference")
    "fig5/dmc-shared-penalty/ld": Band(-0.03, 0.03),
    # "H2D accesses to host LLC [after NC-P] offers 82-87% lower latency
    #  and 4.1-6.7x higher bandwidth"
    "fig5/ncp-latency-gain": Band(0.82, 0.87),
    "fig5/ncp-bw-ratio": Band(4.1, 6.7),
    # "nt-st gives 12.2, 13.2, and 10.7x higher bandwidth than nt-ld,
    #  ld, and st"
    "fig5/ntst-bw-ratio/nt-ld": Band(12.2),
    "fig5/ntst-bw-ratio/ld": Band(13.2),
    "fig5/ntst-bw-ratio/st": Band(10.7),

    # ---------------- Fig 6: CXL vs PCIe transfer efficiency ----------------
    # "CXL-ST offers 83%, 72%, 81%, and 92% lower H2D-access latency than
    #  PCIe-MMIO, PCIe-DMA, PCIe-RDMA and PCIe-DOCA-DMA ... for 256B"
    "fig6/h2d-256B-gain/pcie-mmio": Band(0.83),
    "fig6/h2d-256B-gain/pcie-dma": Band(0.72),
    "fig6/h2d-256B-gain/pcie-rdma": Band(0.81),
    "fig6/h2d-256B-gain/pcie-doca-dma": Band(0.92),
    # "CXL-LD gives ~3x lower D2H-access latency than PCIe-RDMA across
    #  all the transfer sizes" (ratio rdma/cxl >= ~2)
    "fig6/d2h-rdma-over-cxl": Band(2.0, 6.0),
    # 256 B MMIO read exceeds 4 us (SI)
    "fig6/d2h-mmio-256B-us": Band(4.0, 6.0),
    # DMA/DSA saturate ~30 GB/s; RDMA up to ~40 GB/s (x32 lanes)
    "fig6/h2d-dma-saturation-gbps": Band(25.0, 33.0),
    "fig6/h2d-rdma-saturation-gbps": Band(33.0, 45.0),

    # ---------------- Table IV: offload latency breakdown --------------------
    # total 10.9 : 6.2 : 3.9 (a.u.) -> ratios over cxl
    "table4/total-ratio/pcie-rdma": Band(10.9 / 3.9),
    "table4/total-ratio/pcie-dma": Band(6.2 / 3.9),
    # "compression IP ... 1.8-2.8x faster compression speed than the host
    #  CPU for a 4KB page"
    "table4/ip-speedup": Band(1.8, 2.8),
    # "cxl-zswap achieves 64% and 37% lower latency than pcie-rdma/-dma"
    "table4/cxl-vs-rdma-gain": Band(0.64),
    "table4/cxl-vs-dma-gain": Band(0.37),

    # ---------------- Fig 8: Redis p99 -------------------------------------
    # normalized p99 bands across YCSB a-d
    "fig8/zswap/cpu": Band(5.1, 10.3),
    "fig8/zswap/pcie-rdma": Band(1.29, 1.49),
    "fig8/zswap/pcie-dma": Band(1.18, 1.93),
    "fig8/zswap/cxl": Band(1.14, 1.26),
    "fig8/ksm/cpu": Band(4.5, 7.6),
    "fig8/ksm/pcie-rdma": Band(1.17, 1.32),
    "fig8/ksm/pcie-dma": Band(1.16, 1.35),
    "fig8/ksm/cxl": Band(1.16, 1.30),

    # ---------------- SVII text: host CPU share ratios ----------------------
    # zswap: 25% -> 16 (rdma) / 19 (dma) / 11 (cxl); ksm: 21% -> 7 / 9 / 5
    "sec7/zswap-share-vs-cpu/pcie-rdma": Band(16 / 25),
    "sec7/zswap-share-vs-cpu/pcie-dma": Band(19 / 25),
    "sec7/zswap-share-vs-cpu/cxl": Band(11 / 25),
    "sec7/ksm-share-vs-cpu/pcie-rdma": Band(7 / 21),
    "sec7/ksm-share-vs-cpu/pcie-dma": Band(9 / 21),
    "sec7/ksm-share-vs-cpu/cxl": Band(5 / 21),

    # ---------------- SVI text ----------------------------------------------
    # "CXL Type-2 device boasts 2.1x and 1.6x lower latency than BF-2 and
    #  the host CPU ... for delivering a decompressed 4KB page"
    "sec6/decompress-cxl-vs-cpu": Band(1.6),
}
