"""Calibration inspector: show the component model's 'work'.

Prints every timing constant the simulator composes figures from, plus
the analytic path sums for a handful of headline accesses — the same
derivations documented in ``docs/TIMING_MODEL.md``, but computed live
from a :class:`~repro.config.SystemConfig` so drift between docs and
code is impossible.  Exposed via ``python -m repro calibration``.
"""

from __future__ import annotations

import io
from typing import Optional

from repro.analysis.tables import render_table
from repro.config import SystemConfig, default_system
from repro.interconnect.cxl import DATA_BYTES, REQ_BYTES
from repro.interconnect import upi as upi_mod


def component_table(cfg: Optional[SystemConfig] = None) -> str:
    """Every latency constant, grouped by subsystem."""
    cfg = cfg or default_system()
    host, t2 = cfg.host, cfg.cxl_t2
    rows = [
        ("host", "core issue", host.issue_ns),
        ("host", "L1 / L2 / LLC", f"{host.l1_ns} / {host.l2_ns} / {host.llc_ns}"),
        ("host", "home agent (CHA)", host.home_agent_ns),
        ("host", "DDR5 random read", host.dram.read_ns),
        ("host", "posted-write accept", host.dram.write_enqueue_ns),
        ("host", "nt-ld extra / nt-st hand-off",
         f"{host.nt_load_extra_ns} / {host.nt_store_post_ns}"),
        ("host", "remote-miss extra (directory+snoop)",
         host.remote_miss_extra_ns),
        ("upi", "propagation (one way)", cfg.upi.propagation_ns),
        ("upi", "rate (B/ns)", cfg.upi.bytes_per_ns),
        ("cxl", "propagation (one way)", t2.link.propagation_ns),
        ("cxl", "rate (B/ns)", t2.link.bytes_per_ns),
        ("t2", "DCOH engine / lookup",
         f"{t2.dcoh.engine_ns} / {t2.dcoh.lookup_ns}"),
        ("t2", "write-issue gap", t2.dcoh.write_issue_gap_ns),
        ("t2", "host agent rd / wr / miss-extra",
         f"{t2.host_agent_ns} / {t2.host_agent_write_ns} / "
         f"{t2.host_agent_miss_extra_ns}"),
        ("t2", "H2D fabric / DMC check",
         f"{t2.h2d_fabric_ns} / {t2.h2d_dmc_check_ns}"),
        ("t2", "H2D state change / mod. writeback",
         f"{t2.h2d_state_change_ns} / {t2.h2d_modified_writeback_ns}"),
        ("t2", "device DDR4 random read", t2.dram.read_ns),
        ("t2", "LSU issue period", t2.lsu_issue_ns),
        ("pcie", "MMIO 64B read RT", cfg.pcie_dev.mmio_read_rt_ns),
        ("pcie", "DMA setup / completion",
         f"{cfg.pcie_dev.dma_setup_ns} / {cfg.pcie_dev.dma_completion_ns}"),
        ("snic", "RDMA post / NIC processing",
         f"{cfg.snic.rdma_post_ns} / {cfg.snic.rdma_nic_ns}"),
        ("snic", "host interrupt", cfg.snic.interrupt_ns),
    ]
    return render_table(["subsystem", "component", "ns"], rows,
                        title="Component latencies")


def path_sums(cfg: Optional[SystemConfig] = None) -> str:
    """Analytic sums for headline paths (cross-check the simulator)."""
    cfg = cfg or default_system()
    host, t2, upi = cfg.host, cfg.cxl_t2, cfg.upi

    def upi_ser(payload):
        return upi.serialization_ns(payload)

    def cxl_ser(payload):
        return t2.link.serialization_ns(payload)

    emul_ld_hit = (host.issue_ns + upi_ser(upi_mod.REQ_BYTES)
                   + upi.propagation_ns + host.home_agent_ns + host.llc_ns
                   + upi_ser(64) + upi.propagation_ns)
    emul_ld_miss = (emul_ld_hit + host.remote_miss_extra_ns
                    + host.dram.read_ns + 64 / host.dram.bytes_per_ns)
    cs_rd_hit = (t2.lsu_issue_ns + t2.dcoh.engine_ns + t2.dcoh.lookup_ns
                 + cxl_ser(REQ_BYTES) + t2.link.propagation_ns
                 + t2.host_agent_ns + host.llc_ns
                 + cxl_ser(DATA_BYTES) + t2.link.propagation_ns)
    cs_rd_miss = (cs_rd_hit + t2.host_agent_miss_extra_ns
                  + host.dram.read_ns + 64 / host.dram.bytes_per_ns)
    t3_ld = (host.issue_ns + cxl_ser(REQ_BYTES) + t2.link.propagation_ns
             + t2.h2d_fabric_ns + t2.dram.read_ns + 64 / t2.dram.bytes_per_ns
             + cxl_ser(DATA_BYTES) + t2.link.propagation_ns)
    rows = [
        ("emulated ld, LLC hit", f"{emul_ld_hit:.0f}"),
        ("emulated ld, LLC miss", f"{emul_ld_miss:.0f}"),
        ("D2H CS-read, LLC hit", f"{cs_rd_hit:.0f}"),
        ("D2H CS-read, LLC miss", f"{cs_rd_miss:.0f}"),
        ("CS-rd/ld delta, hit", f"{cs_rd_hit / emul_ld_hit - 1:+.0%}"),
        ("CS-rd/ld delta, miss", f"{cs_rd_miss / emul_ld_miss - 1:+.0%}"),
        ("H2D ld to Type-3 (anchor ~390ns)", f"{t3_ld:.0f}"),
    ]
    return render_table(["path", "ns"], rows, title="Analytic path sums")


def render(cfg: Optional[SystemConfig] = None) -> str:
    out = io.StringIO()
    out.write(component_table(cfg))
    out.write("\n\n")
    out.write(path_sums(cfg))
    return out.getvalue()
