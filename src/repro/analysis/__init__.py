"""Result analysis: paper-expected shapes, comparison helpers, and table
formatting shared by the benchmark suite and EXPERIMENTS.md."""

from repro.analysis.expected import PAPER
from repro.analysis.compare import Band, within_band

__all__ = ["PAPER", "Band", "within_band"]
