"""Host-side models: cores, cache hierarchy, home agent, and DSA."""

from repro.host.home_agent import AgentCosts, HomeAgent
from repro.host.cpu import Core
from repro.host.dsa import DsaEngine
from repro.host.hierarchy import CacheHierarchy

__all__ = ["AgentCosts", "HomeAgent", "Core", "DsaEngine", "CacheHierarchy"]
