"""Host core model: ld / st / nt-ld / nt-st to every reachable memory.

A :class:`Core` issues the four x86-level operations the paper uses
against three targets:

* **remote host memory over UPI** — the emulated-CXL baseline of Fig 3;
* **CXL device memory** — the H2D accesses of Figs 5 and 6;
* **local LLC** — loads that hit lines a device NC-P'd into the LLC.

Bandwidth emerges from *memory-level-parallelism windows*: each op class
holds a slot in a finite outstanding-request window for its full duration,
so pipelined streams are limited by ``max(wire serialization, latency /
window)`` exactly as on real hardware.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.config import HostConfig
from repro.core.requests import HostOp, MemLevel
from repro.host.home_agent import HomeAgent, upi_costs
from repro.interconnect.upi import UpiPort
from repro.mem.coherence import LineState
from repro.sim.engine import Simulator, Timeout
from repro.sim.resources import Resource
from repro.sim.rng import DeterministicRng

CLFLUSH_NS = 50.0
CLDEMOTE_NS = 20.0


class Core:
    """One host CPU core (2.2 GHz, hyper-threading disabled)."""

    def __init__(self, sim: Simulator, cfg: HostConfig,
                 rng: Optional[DeterministicRng] = None,
                 noise: float = 0.0, name: str = "core0"):
        self.sim = sim
        self.cfg = cfg
        self.name = name
        self.rng = rng
        self.noise = noise
        # Outstanding-request windows per op class (MLP)
        self._win = {
            ("remote", HostOp.LOAD): Resource(sim, cfg.load_mlp),
            ("remote", HostOp.NT_LOAD): Resource(sim, cfg.nt_load_mlp),
            ("remote", HostOp.STORE): Resource(sim, cfg.store_mlp),
            ("remote", HostOp.NT_STORE): Resource(sim, cfg.wc_buffers),
            ("cxl", HostOp.LOAD): Resource(sim, cfg.cxl_load_mlp),
            ("cxl", HostOp.NT_LOAD): Resource(sim, cfg.cxl_nt_load_mlp),
            ("cxl", HostOp.STORE): Resource(sim, cfg.cxl_store_window),
            ("cxl", HostOp.NT_STORE): Resource(sim, cfg.wc_buffers),
            ("llc", HostOp.LOAD): Resource(sim, cfg.llc_load_mlp),
        }
        # Single-core LLC data path: one 64 B line per llc_bw_ns_per_line.
        self._llc_path = Resource(sim, 1, f"{name}.llcpath")

    # -- helpers -------------------------------------------------------------

    def _jittered(self, raw_ns: float) -> float:
        """Reported-latency noise (error bars) without perturbing sim time."""
        if self.rng is None or self.noise <= 0:
            return raw_ns
        return self.rng.jitter(raw_ns, self.noise)

    # -- emulated D2H: remote socket over UPI ---------------------------------

    def remote_op(self, op: HostOp, addr: int, home: HomeAgent,
                  upi: UpiPort) -> Generator[Any, Any, float]:
        """One 64 B access from a remote-socket core to home memory.

        Returns the observed latency in ns.
        """
        costs = upi_costs(self.cfg)
        start = self.sim.now
        window = self._win[("remote", op)]
        yield window.acquire()
        try:
            yield Timeout(self.cfg.issue_ns)
            if op is HostOp.LOAD or op is HostOp.NT_LOAD:
                if op is HostOp.NT_LOAD:
                    yield Timeout(self.cfg.nt_load_extra_ns)
                yield from upi.req_to_home()
                yield from home.read_shared(addr, costs)
                yield from upi.data_to_remote()
            elif op is HostOp.STORE:
                # Full-line RFO: ownership grant, no data return
                yield from upi.req_to_home()
                yield from home.grant_ownership(addr, costs)
                yield from upi.ack_to_remote()
            else:  # NT_STORE: posted through a write-combining buffer
                yield Timeout(self.cfg.nt_store_post_ns)
                yield from upi.data_to_home()
                yield from home.posted_remote_write(addr, costs)
        finally:
            window.release()
        return self._jittered(self.sim.now - start)

    # -- H2D: local core to CXL device memory ---------------------------------

    def cxl_op(self, op: HostOp, addr: int,
               device: "H2DTarget") -> Generator[Any, Any, float]:
        """One 64 B access to CXL device memory (Type-2 or Type-3).

        ``device`` provides the device-side service generators; the core
        pays issue cost, holds an MLP window slot, and crosses the link.
        """
        start = self.sim.now
        window = self._win[("cxl", op)]
        yield window.acquire()
        try:
            yield Timeout(self.cfg.issue_ns)
            port = device.port
            if op.is_read:
                if op is HostOp.NT_LOAD:
                    yield Timeout(self.cfg.nt_load_extra_ns)
                yield from port.h2d_req_down()
                yield from device.h2d_serve_read(addr)
                yield from port.data_up()
            elif op is HostOp.STORE:
                yield from port.h2d_data_down()
                yield from device.h2d_serve_write(addr)
                yield from port.ack_up()
            else:  # NT_STORE: retires at the CXL controller (SV-C)
                yield Timeout(self.cfg.nt_store_post_ns)
                yield from port.h2d_data_down()
                device.h2d_post_write(addr)
        finally:
            window.release()
        return self._jittered(self.sim.now - start)

    # -- local LLC loads (lines NC-P'd by the device) --------------------------

    def llc_load(self, addr: int,
                 home: HomeAgent) -> Generator[Any, Any, float]:
        """Load that is expected to hit the local LLC; falls through to
        local DRAM on a miss."""
        start = self.sim.now
        window = self._win[("llc", HostOp.LOAD)]
        yield window.acquire()
        try:
            yield Timeout(self.cfg.issue_ns)
            yield Timeout(self.cfg.home_agent_ns)
            line = home.llc.lookup(addr)
            yield from self._llc_path.using(self.cfg.llc_bw_ns_per_line)
            yield Timeout(max(0.0, self.cfg.llc_ns
                              - self.cfg.llc_bw_ns_per_line))
            if line is None:
                yield from home.mem.read_line(addr)
        finally:
            window.release()
        return self._jittered(self.sim.now - start)

    def llc_store(self, addr: int,
                  home: HomeAgent) -> Generator[Any, Any, float]:
        """Store expected to hit the local LLC (e.g. a line the device
        NC-P'd); a miss falls through to an RFO against local DRAM."""
        start = self.sim.now
        window = self._win[("remote", HostOp.STORE)]
        yield window.acquire()
        try:
            yield Timeout(self.cfg.issue_ns)
            yield Timeout(self.cfg.home_agent_ns)
            line = home.llc.lookup(addr)
            yield from self._llc_path.using(self.cfg.llc_bw_ns_per_line)
            yield Timeout(max(0.0, self.cfg.llc_ns
                              - self.cfg.llc_bw_ns_per_line))
            if line is None:
                yield from home.mem.read_line(addr)  # RFO data fetch
                home.preload_llc(addr, LineState.MODIFIED)
            else:
                line.state = LineState.MODIFIED
        finally:
            window.release()
        return self._jittered(self.sim.now - start)

    # -- cache maintenance (methodology) ---------------------------------------

    def clflush(self, addr: int, home: HomeAgent) -> Generator[Any, Any, None]:
        """Flush one line from the whole host hierarchy."""
        yield Timeout(CLFLUSH_NS)
        home.flush_line(addr)

    def cldemote(self, addr: int, home: HomeAgent,
                 state: LineState = LineState.EXCLUSIVE) -> Generator[Any, Any, None]:
        """Demote a line to the LLC (used to guarantee LLC-only residency)."""
        yield Timeout(CLDEMOTE_NS)
        home.preload_llc(addr, state)


class H2DTarget:
    """Interface CXL devices expose to :meth:`Core.cxl_op` (documented
    here; implemented by the Type-2 and Type-3 device models)."""

    port: Any

    def h2d_serve_read(self, addr: int) -> Generator[Any, Any, MemLevel]:
        raise NotImplementedError

    def h2d_serve_write(self, addr: int) -> Generator[Any, Any, MemLevel]:
        raise NotImplementedError

    def h2d_post_write(self, addr: int) -> None:
        raise NotImplementedError
