"""The host home agent (CHA): serves coherent requests for host memory.

Both the *emulated* CXL path (a remote-socket core over UPI) and the *true*
CXL path (the device DCOH over CXL.cache) land here; they differ only in
the :class:`AgentCosts` they present.  UPI's mature coherence is cheap
(15 ns); the generic CXL home-agent path costs more (SV-A explains the
Type-2 device's higher base latency this way).

On an LLC miss, the agent pays ``miss_extra_ns`` on the read path — memory
directory consultation plus snoop-response wait — which is why remote-DRAM
latency exceeds remote-LLC latency by much more than the local DRAM-LLC
delta.  Ownership grants that move no data (CO-write) must fetch the
directory from DRAM explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

from repro.config import HostConfig
from repro.core.requests import MemLevel
from repro.mem.cache import SetAssociativeCache
from repro.mem.coherence import LineState
from repro.mem.memctrl import MemorySystem
from repro.sim.engine import Simulator, Timeout
from repro.units import mib


@dataclass(frozen=True)
class AgentCosts:
    """Per-initiator costs of traversing the home agent."""

    read_ns: float        # agent cost on the data-return (read) path
    write_ns: float       # agent cost for writes/invalidations/grants
    miss_extra_ns: float  # directory + snoop-response cost on LLC read miss


def upi_costs(host: HostConfig) -> AgentCosts:
    """Costs seen by a remote-socket core (the emulated-CXL baseline)."""
    return AgentCosts(
        read_ns=host.home_agent_ns,
        write_ns=host.home_agent_ns,
        miss_extra_ns=host.remote_miss_extra_ns,
    )


class HomeAgent:
    """Coherence home for host physical memory, owning the LLC model.

    All methods are timed process generators returning the
    :class:`MemLevel` that served the request; LLC line states are
    mutated per Table III.
    """

    def __init__(self, sim: Simulator, cfg: HostConfig, name: str = "host"):
        self.sim = sim
        self.cfg = cfg
        self.llc = SetAssociativeCache(
            f"{name}.llc", mib(cfg.llc_mib), cfg.llc_ways
        )
        self.mem = MemorySystem(sim, cfg.dram, cfg.mem_channels, f"{name}.mem")

    # -- read paths ---------------------------------------------------------

    def read_current(self, addr: int,
                     costs: AgentCosts) -> Generator[Any, Any, MemLevel]:
        """RdCurr / NC-read: return the latest data, change no state."""
        yield Timeout(costs.read_ns)
        line = self.llc.lookup(addr)
        yield Timeout(self.cfg.llc_ns)
        if line is not None:
            return MemLevel.LLC
        yield Timeout(costs.miss_extra_ns)
        yield from self.mem.read_line(addr)
        return MemLevel.HOST_DRAM

    def read_shared(self, addr: int,
                    costs: AgentCosts) -> Generator[Any, Any, MemLevel]:
        """RdShared / CS-read: like RdCurr, but an M/E LLC copy is
        downgraded to SHARED (another agent now caches the line)."""
        yield Timeout(costs.read_ns)
        line = self.llc.lookup(addr)
        yield Timeout(self.cfg.llc_ns)
        if line is not None:
            if line.state.needs_downgrade_for_share:
                line.state = LineState.SHARED
            return MemLevel.LLC
        yield Timeout(costs.miss_extra_ns)
        yield from self.mem.read_line(addr)
        return MemLevel.HOST_DRAM

    def read_own(self, addr: int,
                 costs: AgentCosts) -> Generator[Any, Any, MemLevel]:
        """RdOwn / CO-read: return data and invalidate every host copy."""
        yield Timeout(costs.read_ns)
        line = self.llc.lookup(addr)
        yield Timeout(self.cfg.llc_ns)
        if line is not None:
            self.llc.set_state(addr, LineState.INVALID)
            return MemLevel.LLC
        yield Timeout(costs.miss_extra_ns)
        yield from self.mem.read_line(addr)
        return MemLevel.HOST_DRAM

    # -- write paths --------------------------------------------------------

    def grant_ownership(self, addr: int,
                        costs: AgentCosts) -> Generator[Any, Any, MemLevel]:
        """CO-write: invalidate host copies and grant exclusive ownership.

        Moves no data; on an LLC miss the precise directory state must be
        fetched from DRAM (it normally rides the data of a read).
        """
        yield Timeout(costs.write_ns)
        line = self.llc.lookup(addr)
        yield Timeout(self.cfg.llc_ns)
        if line is not None:
            self.llc.set_state(addr, LineState.INVALID)
            return MemLevel.LLC
        yield from self.mem.read_line(addr)  # directory fetch
        return MemLevel.HOST_DRAM

    def write_invalidate(self, addr: int,
                         costs: AgentCosts) -> Generator[Any, Any, MemLevel]:
        """NC-write: invalidate any host copy, then write DRAM directly.

        Push semantics: the ack returns once the write is accepted by the
        memory controller's posted-write queue.
        """
        yield Timeout(costs.write_ns)
        if self.llc.peek(addr) is not None:
            yield Timeout(self.cfg.llc_ns)
            self.llc.set_state(addr, LineState.INVALID)
        yield from self.mem.write_line(addr)
        return MemLevel.HOST_DRAM

    def push_line(self, addr: int,
                  costs: AgentCosts) -> Generator[Any, Any, MemLevel]:
        """NC-P: install the device's line directly into the LLC (MODIFIED).

        Evicting a dirty victim writes it back to DRAM in the background.
        """
        yield Timeout(costs.write_ns)
        yield Timeout(self.cfg.llc_ns)
        self._insert_llc(addr, LineState.MODIFIED)
        return MemLevel.LLC

    def posted_remote_write(self, addr: int,
                            costs: AgentCosts) -> Generator[Any, Any, MemLevel]:
        """Remote nt-st landing at the home: invalidate + posted DRAM write."""
        return self.write_invalidate(addr, costs)

    # -- state plumbing (methodology helpers, not timed) ---------------------

    def _insert_llc(self, addr: int, state: LineState) -> None:
        self.llc.insert(addr, state, writeback=self._background_writeback)

    def _background_writeback(self, addr: int) -> None:
        self.sim.spawn(self.mem.write_line(addr), "llc.writeback")

    def preload_llc(self, addr: int, state: LineState) -> None:
        """Methodology: place a line into the LLC in a chosen state
        (the paper uses CLDEMOTE to confine lines to the LLC, SV)."""
        self._insert_llc(addr, state)

    def flush_line(self, addr: int) -> None:
        """CLFLUSH of one line (state effect only; timing charged by Core)."""
        if self.llc.invalidate(addr):
            self._background_writeback(addr)

    def llc_state(self, addr: int):
        return self.llc.state_of(addr)
