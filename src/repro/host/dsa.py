"""Intel Data Streaming Accelerator (DSA).

DSA performs DMA between two *host-visible* memory regions — and CXL
device memory is host-visible, so ``CXL-DSA`` moves data between host
DRAM and device memory without consuming core cycles (SV-D).  The core
pays only a descriptor submission (ENQCMD); the engine pays a startup
cost and then streams.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.interconnect.link import Direction, Link
from repro.sim.engine import Simulator, Timeout
from repro.sim.resources import Resource

ENQCMD_NS = 40.0          # core-side descriptor submission
ENGINE_STARTUP_NS = 450.0  # descriptor fetch + engine arbitration
ENGINE_BYTES_PER_NS = 30.0  # sustained engine throughput (~30 GB/s, SV-D)


class DsaEngine:
    """One DSA instance shared by the socket's cores."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._engine = Resource(sim, 1, "dsa")
        self.descriptors = 0

    def submit_cost_ns(self) -> float:
        """Host-core cost of submitting one descriptor."""
        return ENQCMD_NS

    def copy(self, nbytes: int,
             via: Optional[Link] = None,
             to_device: bool = True) -> Generator[Any, Any, None]:
        """Timed copy of ``nbytes``; ``via`` adds a CXL link traversal when
        one endpoint is device memory."""
        self.descriptors += 1
        yield Timeout(ENQCMD_NS)
        yield self._engine.acquire()
        try:
            yield Timeout(ENGINE_STARTUP_NS)
            rate = ENGINE_BYTES_PER_NS
            if via is not None:
                rate = min(rate, via.cfg.bytes_per_ns)
                direction = (Direction.TO_DEVICE if to_device
                             else Direction.TO_HOST)
                yield from via.send(direction, 0)
            yield Timeout(nbytes / rate)
        finally:
            self._engine.release()
