"""Per-core L1/L2 caches over the shared LLC: the host's own view.

The characterization paths of SV mostly bypass this (the methodology
CLDEMOTEs lines to the LLC precisely to take L1/L2 out of the picture),
but the host's *own* accesses — Redis touching its working set, the cpu
zswap backend streaming pages — walk the full hierarchy.  This module
provides that walk and gives CLDEMOTE/CLFLUSH their real multi-level
semantics.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.config import HostConfig
from repro.core.requests import MemLevel
from repro.host.home_agent import HomeAgent
from repro.mem.cache import SetAssociativeCache
from repro.mem.coherence import LineState
from repro.sim.engine import Simulator, Timeout
from repro.units import kib

L1_WAYS = 12
L2_WAYS = 16


class CacheHierarchy:
    """One core's private L1/L2 in front of the socket-shared LLC."""

    def __init__(self, sim: Simulator, cfg: HostConfig, home: HomeAgent,
                 name: str = "core0"):
        self.sim = sim
        self.cfg = cfg
        self.home = home
        self.l1 = SetAssociativeCache(f"{name}.l1", kib(cfg.l1_kib), L1_WAYS)
        self.l2 = SetAssociativeCache(f"{name}.l2", kib(cfg.l2_kib), L2_WAYS)

    # -- timed access -----------------------------------------------------------

    def load(self, addr: int) -> Generator[Any, Any, MemLevel]:
        """One 64 B load through L1 -> L2 -> LLC -> DRAM, filling inward."""
        yield Timeout(self.cfg.l1_ns)
        if self.l1.lookup(addr) is not None:
            return MemLevel.L1
        return (yield from self._load_beyond_l1(addr))

    def _load_beyond_l1(self, addr: int) -> Generator[Any, Any, MemLevel]:
        yield Timeout(self.cfg.l2_ns)
        if self.l2.lookup(addr) is not None:
            self._fill_l1(addr, self.l2.state_of(addr))
            return MemLevel.L2
        yield Timeout(self.cfg.llc_ns)
        llc_line = self.home.llc.lookup(addr)
        if llc_line is not None:
            self._fill(addr, llc_line.state)
            return MemLevel.LLC
        yield from self.home.mem.read_line(addr)
        self.home.preload_llc(addr, LineState.EXCLUSIVE)
        self._fill(addr, LineState.EXCLUSIVE)
        return MemLevel.HOST_DRAM

    def store(self, addr: int) -> Generator[Any, Any, MemLevel]:
        """One 64 B store: write-allocate into L1, dirty inward."""
        level = yield from self.load(addr)
        for cache in (self.l1, self.l2):
            if cache.peek(addr) is not None:
                cache.set_state(addr, LineState.MODIFIED)
        if self.home.llc.peek(addr) is not None:
            self.home.llc.set_state(addr, LineState.MODIFIED)
        return level

    # -- cache maintenance --------------------------------------------------------

    def cldemote(self, addr: int) -> Generator[Any, Any, None]:
        """Push a line out of L1/L2 into the LLC (the SV methodology)."""
        yield Timeout(20.0)
        state = LineState.EXCLUSIVE
        for cache in (self.l1, self.l2):
            line = cache.peek(addr)
            if line is not None:
                state = line.state
                cache.invalidate(addr)
        self.home.preload_llc(addr, state)

    def clflush(self, addr: int) -> Generator[Any, Any, None]:
        """Flush a line from every level (writing back dirty data)."""
        yield Timeout(50.0)
        dirty = False
        for cache in (self.l1, self.l2):
            dirty |= cache.invalidate(addr)
        self.home.flush_line(addr)
        if dirty:
            self.sim.spawn(self.home.mem.write_line(addr), "clflush.wb")

    # -- the resident query used by tests -------------------------------------------

    def holds(self, addr: int) -> Optional[str]:
        if self.l1.peek(addr) is not None:
            return "l1"
        if self.l2.peek(addr) is not None:
            return "l2"
        if self.home.llc.peek(addr) is not None:
            return "llc"
        return None

    # -- fills ------------------------------------------------------------------------

    def _fill_l1(self, addr: int, state: LineState) -> None:
        self.l1.insert(addr, state, writeback=self._writeback)

    def _fill(self, addr: int, state: LineState) -> None:
        self.l2.insert(addr, state, writeback=self._writeback)
        self.l1.insert(addr, state, writeback=self._writeback)

    def _writeback(self, addr: int) -> None:
        """Dirty victims fall back to the LLC (inclusive-ish model)."""
        self.home.preload_llc(addr, LineState.MODIFIED)
