"""Memory controllers with posted-write queues.

The single most shape-critical mechanism in Fig 3 lives here: each memory
controller has a 32-entry x 64 B write queue, and a write *completes from
the issuer's perspective* as soon as it is accepted into the queue (SV-A,
citing [7]).  Reads always pay the full DRAM latency.  Consequently:

* 16 x 64 B writes (1 KB) vanish into the queues -> writes show *higher*
  bandwidth than reads at small N;
* once outstanding writes exceed the aggregate queue capacity
  (8 channels x 32 x 64 B = 16 KB on the host), enqueue blocks on drain and
  write bandwidth collapses to the DRAM rate.

Both behaviours fall out of the :class:`MemoryChannel` event model and are
asserted on in ``tests/mem/test_memctrl.py`` and swept by the Fig-3
ablation bench.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.config import DramConfig
from repro.errors import ConfigError, PoisonError
from repro.faults import NO_FAULTS
from repro.mem.address import line_base
from repro.sim.engine import Simulator, Timeout, WakeAt
from repro.sim.resources import Resource
from repro.units import CACHELINE


class MemoryChannel:
    """One DRAM channel behind one controller."""

    def __init__(self, sim: Simulator, cfg: DramConfig, name: str = ""):
        self.sim = sim
        self.cfg = cfg
        self.name = name or cfg.name
        # Posted-write queue entries; acquiring blocks when the queue is full.
        self._wq = Resource(sim, cfg.write_queue_entries, f"{self.name}.wq")
        # The DRAM device itself retires one line at a time.
        self._drain = Resource(sim, 1, f"{self.name}.drain")
        # Read datapath: reads pipeline, limited by channel bandwidth.
        self._read_bw = Resource(sim, 1, f"{self.name}.rdbw")
        self.reads = 0
        self.writes = 0

    # -- timed operations (process generators) ------------------------------

    def read_line(self) -> Generator[Any, Any, float]:
        """Read one 64 B line: full DRAM latency, bandwidth-limited.

        Returns the latency experienced by this read.
        """
        self.reads += 1
        start = self.sim.now
        # Serialize on the channel data bus for one line's worth of time...
        yield from self._read_bw.using(CACHELINE / self.cfg.bytes_per_ns)
        # ...then pay the array-access latency (overlappable across banks,
        # so it is not held as a resource).
        yield Timeout(self.cfg.read_ns)
        return self.sim.now - start

    def write_line(self) -> Generator[Any, Any, float]:
        """Post one 64 B write: complete at enqueue; drain in background.

        Returns the latency until the write is *accepted* (what issuers
        observe), not until DRAM is updated.
        """
        self.writes += 1
        start = self.sim.now
        yield self._wq.acquire()          # blocks only when the queue is full
        yield Timeout(self.cfg.write_enqueue_ns)
        self.sim.spawn(self._drain_one(), f"{self.name}.drain1")
        return self.sim.now - start

    def _drain_one(self) -> Generator[Any, Any, None]:
        yield from self._drain.using(self.cfg.drain_ns_per_line())
        self._wq.release()

    # -- bulk fast-forward (docs/PERFORMANCE.md) ----------------------------

    def read_bulk(self, count: int) -> Generator[Any, Any, float]:
        """``count`` back-to-back :meth:`read_line` calls from one sole
        sequential reader, collapsed into one event.

        Bit-exact contract: an idle channel grants the read datapath
        immediately, so each per-line iteration advances the clock by
        ``t += bandwidth_ns; t += read_ns``; this performs the identical
        addition chain.  Returns the total elapsed time.
        """
        if count <= 0:
            return 0.0
        self.reads += count
        start = self.sim.now
        bw_ns = CACHELINE / self.cfg.bytes_per_ns
        read_ns = self.cfg.read_ns
        yield self._read_bw.acquire()
        try:
            end = start
            for _ in range(count):
                end += bw_ns
                end += read_ns
            yield WakeAt(end)
        finally:
            self._read_bw.release()
        return self.sim.now - start

    def write_bulk(self, count: int) -> Generator[Any, Any, float]:
        """``count`` back-to-back posted writes from one sole sequential
        writer, collapsed into one foreground event plus one background
        drain ghost.

        Preconditions (the caller's homogeneity check): the write queue
        and drain engine are idle at entry, and nothing else touches this
        channel until the background horizon — the time the last queued
        line would have drained — has passed.  Within that contract the
        recurrence below reproduces the per-line floats exactly:
        enqueue ``k`` is granted at its arrival while the queue has room,
        otherwise at the drain completion of write ``k - capacity``
        (FIFO slot hand-off carries the release timestamp, no
        arithmetic); each drain ends at ``max(enqueue_end, prev_drain_end)
        + drain_ns``.  Returns the foreground (issuer-observed) elapsed
        time; a ghost process holds the simulation clock until the final
        drain so end-of-run timestamps match the per-line path.
        """
        if count <= 0:
            return 0.0
        self.writes += count
        cap = self.cfg.write_queue_entries
        enq = self.cfg.write_enqueue_ns
        drain = self.cfg.drain_ns_per_line()
        start = self.sim.now
        e = start                 # enqueue-complete time of the previous write
        d_end = start             # drain-complete time of the previous write
        d_ends: list[float] = []
        for k in range(count):
            g = e if k < cap else d_ends[k - cap]
            e = g + enq
            d_end = (e if d_end <= e else d_end) + drain
            d_ends.append(d_end)
        if d_end > e:
            self.sim.spawn(self._bulk_drain_ghost(d_end),
                           f"{self.name}.bulkdrain")
        yield WakeAt(e)
        return self.sim.now - start

    def _bulk_drain_ghost(self, until: float) -> Generator[Any, Any, None]:
        """Keep the clock alive until the batched drains would finish."""
        yield WakeAt(until)

    @property
    def queued_writes(self) -> int:
        return self._wq.in_use


class MemorySystem:
    """N line-interleaved channels (a socket's 8, or a device's 2)."""

    def __init__(self, sim: Simulator, cfg: DramConfig, channels: int,
                 name: str = "mem"):
        if channels < 1:
            raise ConfigError(f"need at least one channel, got {channels}")
        self.sim = sim
        self.name = name
        self.channels = [
            MemoryChannel(sim, cfg, f"{name}.ch{i}") for i in range(channels)
        ]
        # RAS: line bases whose DRAM image carries CXL data poison.  A
        # read of a poisoned line pays the full access latency and then
        # raises PoisonError; a full-line write scrubs the poison.
        self.poisoned: set[int] = set()
        self.faults = NO_FAULTS
        self.poison_detected = 0

    def channel_for(self, addr: int) -> MemoryChannel:
        return self.channels[(addr // CACHELINE) % len(self.channels)]

    def read_line(self, addr: int) -> Generator[Any, Any, float]:
        if self.poisoned or self.faults.active:
            return self._read_line_ras(addr)
        return self.channel_for(addr).read_line()

    def _read_line_ras(self, addr: int) -> Generator[Any, Any, float]:
        """Fault path of :meth:`read_line` (never entered when no line is
        poisoned and no plan is armed)."""
        latency = yield from self.channel_for(addr).read_line()
        base = line_base(addr)
        if base in self.poisoned:
            self.poison_detected += 1
            raise PoisonError(f"{self.name}: poisoned line {hex(base)}")
        if self.faults.check("mem_poison"):
            # An uncorrectable error struck this very access: the line is
            # now poisoned in the DRAM image and this consumer sees it.
            self.poisoned.add(base)
            self.poison_detected += 1
            raise PoisonError(f"{self.name}: poisoned line {hex(base)}")
        return latency

    def write_line(self, addr: int) -> Generator[Any, Any, float]:
        if self.poisoned:
            self.poisoned.discard(line_base(addr))   # full-line scrub
        return self.channel_for(addr).write_line()

    def poison(self, addr: int) -> None:
        """Mark ``addr``'s line as poisoned in the DRAM image."""
        self.poisoned.add(line_base(addr))

    def is_poisoned(self, addr: int) -> bool:
        return line_base(addr) in self.poisoned

    @property
    def total_reads(self) -> int:
        return sum(ch.reads for ch in self.channels)

    @property
    def total_writes(self) -> int:
        return sum(ch.writes for ch in self.channels)

    @property
    def write_queue_capacity_bytes(self) -> int:
        return sum(
            ch.cfg.write_queue_entries * CACHELINE for ch in self.channels
        )
