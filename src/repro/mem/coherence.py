"""Cache-coherence line states.

The CXL Type-2 device of the paper tracks MESI-style states in its HMC and
DMC; the host LLC does the same.  Table III of the paper is expressed as
transitions over these states, and the DCOH model
(:mod:`repro.devices.dcoh`) implements that table verbatim — the unit test
``tests/devices/test_table3.py`` enumerates every cell.

``OWNED`` exists because SV-C measures H2D accesses "hitting DMC (with
corresponding cache-lines in owned)": the device obtained ownership but the
line is clean, so serving a host request requires a state downgrade but not
a writeback (unlike ``MODIFIED``).
"""

from __future__ import annotations

import enum


class LineState(enum.Enum):
    """MESI + Owned line state."""

    MODIFIED = "M"
    EXCLUSIVE = "E"
    OWNED = "O"
    SHARED = "S"
    INVALID = "I"

    @property
    def is_valid(self) -> bool:
        return self is not LineState.INVALID

    @property
    def is_writable(self) -> bool:
        """The holder may write without a coherence transaction."""
        return self in (LineState.MODIFIED, LineState.EXCLUSIVE)

    @property
    def is_dirty(self) -> bool:
        """Memory is stale; eviction requires a writeback."""
        return self is LineState.MODIFIED

    @property
    def needs_downgrade_for_share(self) -> bool:
        """Another agent reading the line forces a state change here."""
        return self in (LineState.MODIFIED, LineState.EXCLUSIVE, LineState.OWNED)
