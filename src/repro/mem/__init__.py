"""Memory substrate: caches, coherence states, DRAM, and backing stores.

This package provides the *state* half of the memory system — who holds
which cache line in which MESI state, and where the bytes live.  The
*timing* half (how long each access takes) is composed by the host and
device models from :class:`repro.mem.memctrl.MemoryChannel` costs plus
interconnect costs.
"""

from repro.mem.address import AddressMap, Region
from repro.mem.backing import SparseMemory
from repro.mem.cache import CacheLine, SetAssociativeCache
from repro.mem.coherence import LineState
from repro.mem.memctrl import MemoryChannel, MemorySystem

__all__ = [
    "AddressMap",
    "Region",
    "SparseMemory",
    "CacheLine",
    "SetAssociativeCache",
    "LineState",
    "MemoryChannel",
    "MemorySystem",
]
