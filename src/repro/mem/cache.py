"""Set-associative cache with MESI-style line states and LRU replacement.

The same structure models the host LLC (60 MB, 15-way), the device HMC
(128 KB, 4-way) and DMC (32 KB, direct-mapped).  State, not data, is the
primary payload: the coherence engines consult and mutate line states to
decide which timed actions an access incurs.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Callable, Iterator, Optional

from repro.errors import CoherenceError, ConfigError
from repro.mem.address import line_base
from repro.mem.coherence import LineState
from repro.units import CACHELINE

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.races import RaceDetector
    from repro.lint.sanitizer import CoherenceSanitizer


class CacheLine:
    """One resident cache line.

    ``poisoned`` models CXL data poison: the line's data is known-bad
    (an uncorrectable memory error travelled with the fill), and a
    consumer that reads it must observe a :class:`~repro.errors.PoisonError`.
    Poison rides the line through state transitions and evictions; only
    a full-line overwrite clears it (``scrub_poison``).

    ``state`` and ``poisoned`` are properties so an armed
    :class:`~repro.lint.sanitizer.CoherenceSanitizer` observes every
    transition, including direct assignments from the coherence engines;
    ``owner`` is the resident cache (None until installed/when disarmed).
    """

    __slots__ = ("addr", "owner", "_state", "_poisoned")

    def __init__(self, addr: int, state: LineState, poisoned: bool = False):
        if addr % CACHELINE:
            raise CoherenceError(f"line address misaligned: {hex(addr)}")
        if state is LineState.INVALID:
            raise CoherenceError("resident line cannot be INVALID")
        self.addr = addr
        self.owner: Optional["SetAssociativeCache"] = None
        self._state = state
        self._poisoned = poisoned

    @property
    def state(self) -> LineState:
        return self._state

    @state.setter
    def state(self, value: LineState) -> None:
        old, self._state = self._state, value
        owner = self.owner
        if owner is not None and owner.sanitizer is not None and old is not value:
            owner.sanitizer.on_state_set(owner, self, old, value)

    @property
    def poisoned(self) -> bool:
        return self._poisoned

    @poisoned.setter
    def poisoned(self, value: bool) -> None:
        was, self._poisoned = self._poisoned, value
        owner = self.owner
        if owner is not None and owner.sanitizer is not None \
                and was and not value:
            owner.sanitizer.on_poison_cleared(owner, self, scrubbed=False)

    def scrub_poison(self) -> None:
        """Clear poison via a full-line overwrite (the legitimate path)."""
        self._poisoned = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = " poisoned" if self._poisoned else ""
        return f"CacheLine({hex(self.addr)}, {self._state.value}{flags})"


class SetAssociativeCache:
    """LRU set-associative cache keyed by line address.

    ``ways == 1`` gives a direct-mapped cache (the DMC).  Eviction of a
    MODIFIED line invokes ``writeback`` so owners can account the cost.
    """

    __slots__ = ("name", "size_bytes", "ways", "num_sets", "_sets",
                 "hits", "misses", "evictions", "writebacks",
                 "poison_sink", "poison_evictions", "sanitizer",
                 "race_detector")

    def __init__(self, name: str, size_bytes: int, ways: int):
        if size_bytes <= 0 or ways <= 0:
            raise ConfigError(f"invalid cache geometry: {size_bytes}B {ways}-way")
        if size_bytes % (ways * CACHELINE):
            raise ConfigError(
                f"{name}: size {size_bytes} not divisible into {ways}-way sets"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.ways = ways
        self.num_sets = size_bytes // (ways * CACHELINE)
        # Each set is an OrderedDict line_addr -> CacheLine in LRU order
        # (least recent first).
        self._sets: list[OrderedDict[int, CacheLine]] = [
            OrderedDict() for __ in range(self.num_sets)
        ]
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0
        # RAS: called with the victim address when a poisoned line leaves
        # the cache dirty, so poison propagates back to the memory image.
        self.poison_sink: Optional[Callable[[int], None]] = None
        self.poison_evictions = 0
        # Opt-in validation hooks (repro.lint): both stay None unless a
        # sanitizer watches this cache, costing one test per mutation.
        self.sanitizer: Optional["CoherenceSanitizer"] = None
        self.race_detector: Optional["RaceDetector"] = None

    def _note_mutation(self, base: int) -> None:
        if self.race_detector is not None:
            self.race_detector.mutate(("line", base))

    # -- geometry ----------------------------------------------------------

    def set_index(self, addr: int) -> int:
        return (line_base(addr) // CACHELINE) % self.num_sets

    def _set_for(self, addr: int) -> OrderedDict[int, CacheLine]:
        return self._sets[self.set_index(addr)]

    # -- queries -----------------------------------------------------------

    def lookup(self, addr: int, touch: bool = True) -> Optional[CacheLine]:
        """Find the line containing ``addr``; update LRU order on hit."""
        base = line_base(addr)
        line_set = self._set_for(base)
        line = line_set.get(base)
        if line is None:
            self.misses += 1
            return None
        self.hits += 1
        if touch:
            line_set.move_to_end(base)
        return line

    def peek(self, addr: int) -> Optional[CacheLine]:
        """Lookup without LRU or statistics side effects."""
        return self._set_for(addr).get(line_base(addr))

    def state_of(self, addr: int) -> LineState:
        line = self.peek(addr)
        return line.state if line else LineState.INVALID

    def __contains__(self, addr: int) -> bool:
        return self.peek(addr) is not None

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)

    def lines(self) -> Iterator[CacheLine]:
        for line_set in self._sets:
            yield from line_set.values()

    @property
    def capacity_lines(self) -> int:
        return self.num_sets * self.ways

    # -- mutation ----------------------------------------------------------

    def insert(
        self,
        addr: int,
        state: LineState,
        writeback: Optional[Callable[[int], None]] = None,
    ) -> Optional[CacheLine]:
        """Install (or update) a line; returns the victim if one was evicted.

        A MODIFIED victim triggers ``writeback(victim_addr)`` before the
        victim is returned.
        """
        if state is LineState.INVALID:
            raise CoherenceError("cannot insert a line in INVALID state")
        base = line_base(addr)
        self._note_mutation(base)
        line_set = self._set_for(base)
        existing = line_set.get(base)
        if existing is not None:
            existing.state = state
            line_set.move_to_end(base)
            return None
        victim = None
        if len(line_set) >= self.ways:
            __, victim = line_set.popitem(last=False)  # LRU victim
            victim.owner = None
            self.evictions += 1
            if victim.state.is_dirty:
                self.writebacks += 1
                if self.sanitizer is not None:
                    self.sanitizer.on_dirty_evict(
                        self, victim, has_writeback=writeback is not None)
                if victim.poisoned:
                    self.poison_evictions += 1
                    if self.poison_sink is not None:
                        self.poison_sink(victim.addr)
                if writeback is not None:
                    writeback(victim.addr)
        line = CacheLine(base, state)
        line_set[base] = line
        if self.sanitizer is not None:
            line.owner = self
            self.sanitizer.on_insert(self, line)
        return victim

    def set_state(self, addr: int, state: LineState) -> None:
        """Transition a resident line's state; INVALID removes the line."""
        base = line_base(addr)
        self._note_mutation(base)
        line_set = self._set_for(base)
        line = line_set.get(base)
        if line is None:
            if state is LineState.INVALID:
                return  # invalidating an absent line is a no-op
            raise CoherenceError(
                f"{self.name}: state change on non-resident line {hex(base)}"
            )
        if state is LineState.INVALID:
            del line_set[base]
            line.owner = None
        else:
            line.state = state

    def poison_addr(self, addr: int) -> bool:
        """Mark the resident line covering ``addr`` as poisoned.

        Returns whether a line was resident (a miss is a no-op: the
        poison then lives in the backing memory image instead)."""
        line = self.peek(addr)
        if line is None:
            return False
        self._note_mutation(line_base(addr))
        line.poisoned = True
        return True

    def clear_poison(self, addr: int) -> bool:
        """Clear poison on a resident line (full-line overwrite)."""
        line = self.peek(addr)
        if line is None or not line.poisoned:
            return False
        line.scrub_poison()
        return True

    def is_poisoned(self, addr: int) -> bool:
        line = self.peek(addr)
        return bool(line and line.poisoned)

    def invalidate(self, addr: int) -> bool:
        """Drop the line if resident.  Returns whether it was dirty (the
        caller owns any writeback decision on this path)."""
        base = line_base(addr)
        self._note_mutation(base)
        line_set = self._set_for(base)
        line = line_set.pop(base, None)
        if line is not None:
            line.owner = None
        return bool(line and line.state.is_dirty)

    def flush_all(self, writeback: Optional[Callable[[int], None]] = None) -> int:
        """Invalidate everything (CLFLUSH loop / device cache flush).

        Returns the number of dirty lines written back.
        """
        dirty = 0
        for line_set in self._sets:
            for line in line_set.values():
                if line.state.is_dirty:
                    dirty += 1
                    if self.sanitizer is not None:
                        self.sanitizer.on_dirty_evict(
                            self, line, has_writeback=writeback is not None)
                    if line.poisoned:
                        self.poison_evictions += 1
                        if self.poison_sink is not None:
                            self.poison_sink(line.addr)
                    if writeback is not None:
                        writeback(line.addr)
                line.owner = None
            line_set.clear()
        return dirty

    def reset_stats(self) -> None:
        self.hits = self.misses = self.evictions = self.writebacks = 0
