"""Sparse byte-addressable backing store.

The kernel-feature models are *functional*: zswap really compresses page
bytes, ksm really hashes and compares them.  ``SparseMemory`` holds those
bytes, allocated lazily in 4 KB frames so multi-GB address spaces cost only
what is touched.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import AddressError
from repro.units import PAGE_SIZE


class SparseMemory:
    """Lazily allocated byte store over a flat address space."""

    def __init__(self, name: str = "mem"):
        self.name = name
        self._frames: Dict[int, bytearray] = {}

    def _frame(self, addr: int, create: bool) -> bytearray | None:
        key = addr // PAGE_SIZE
        frame = self._frames.get(key)
        if frame is None and create:
            frame = bytearray(PAGE_SIZE)
            self._frames[key] = frame
        return frame

    def write(self, addr: int, data: bytes) -> None:
        if addr < 0:
            raise AddressError(f"negative address {addr}")
        offset = 0
        while offset < len(data):
            cur = addr + offset
            frame = self._frame(cur, create=True)
            assert frame is not None
            in_frame = cur % PAGE_SIZE
            chunk = min(PAGE_SIZE - in_frame, len(data) - offset)
            frame[in_frame:in_frame + chunk] = data[offset:offset + chunk]
            offset += chunk

    def read(self, addr: int, length: int) -> bytes:
        if addr < 0 or length < 0:
            raise AddressError(f"invalid read {hex(addr)}+{length}")
        out = bytearray(length)
        offset = 0
        while offset < length:
            cur = addr + offset
            frame = self._frame(cur, create=False)
            in_frame = cur % PAGE_SIZE
            chunk = min(PAGE_SIZE - in_frame, length - offset)
            if frame is not None:
                out[offset:offset + chunk] = frame[in_frame:in_frame + chunk]
            offset += chunk  # unallocated reads yield zeros, like fresh DRAM
        return bytes(out)

    def fill(self, addr: int, length: int, value: int) -> None:
        self.write(addr, bytes([value]) * length)

    def resident_bytes(self) -> int:
        """Bytes actually allocated (for memory-pressure accounting)."""
        return len(self._frames) * PAGE_SIZE

    def drop(self, addr: int, length: int) -> None:
        """Discard whole frames in ``[addr, addr+length)`` (page free)."""
        if addr % PAGE_SIZE or length % PAGE_SIZE:
            raise AddressError("drop must be page-aligned")
        for key in range(addr // PAGE_SIZE, (addr + length) // PAGE_SIZE):
            self._frames.pop(key, None)
