"""Physical address spaces and region mapping.

The simulated platform has one flat physical address space per *system*,
with named regions (host DRAM, CXL device memory exposed as a NUMA node,
MMIO BARs).  Regions answer "which memory does this address belong to",
which the host home agent and device DCOH use to route requests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import AddressError
from repro.units import CACHELINE


def line_index(addr: int) -> int:
    """Cache-line index of an address."""
    return addr // CACHELINE


def line_base(addr: int) -> int:
    """Base address of the cache line containing ``addr``."""
    return addr & ~(CACHELINE - 1)


def is_line_aligned(addr: int) -> bool:
    return addr % CACHELINE == 0


@dataclass(frozen=True)
class Region:
    """A named, contiguous physical region ``[base, base+size)``."""

    name: str
    base: int
    size: int
    kind: str = "dram"  # "dram" | "cxl" | "mmio"

    def __post_init__(self) -> None:
        if self.size <= 0 or self.base < 0:
            raise AddressError(f"invalid region: {self}")
        if self.base % CACHELINE or self.size % CACHELINE:
            raise AddressError(f"region not cache-line aligned: {self}")

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end

    def offset(self, addr: int) -> int:
        if not self.contains(addr):
            raise AddressError(f"{hex(addr)} outside region {self.name}")
        return addr - self.base

    def lines(self) -> Iterator[int]:
        """Iterate base addresses of every cache line in the region."""
        return iter(range(self.base, self.end, CACHELINE))


class AddressMap:
    """Ordered collection of non-overlapping regions."""

    def __init__(self) -> None:
        self._regions: list[Region] = []

    def add(self, region: Region) -> Region:
        for existing in self._regions:
            if region.base < existing.end and existing.base < region.end:
                raise AddressError(
                    f"region {region.name} overlaps {existing.name}"
                )
        self._regions.append(region)
        self._regions.sort(key=lambda r: r.base)
        return region

    def add_after(self, name: str, size: int, kind: str = "dram") -> Region:
        """Append a region immediately after the current highest one."""
        base = self._regions[-1].end if self._regions else 0
        return self.add(Region(name, base, size, kind))

    def find(self, addr: int) -> Region:
        for region in self._regions:
            if region.contains(addr):
                return region
        raise AddressError(f"unmapped address {hex(addr)}")

    def get(self, name: str) -> Region:
        for region in self._regions:
            if region.name == name:
                return region
        raise AddressError(f"no region named {name!r}")

    def try_find(self, addr: int) -> Optional[Region]:
        for region in self._regions:
            if region.contains(addr):
                return region
        return None

    def __iter__(self) -> Iterator[Region]:
        return iter(self._regions)

    def __len__(self) -> int:
        return len(self._regions)
