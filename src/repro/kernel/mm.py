"""The memory manager tying allocator, LRU, kswapd, and zswap together.

This is the functional end-to-end path of SVI-A: tasks allocate and touch
pages through :class:`MemoryManager`; pressure wakes the asynchronous
background reclaim (kswapd) at the *low* watermark and forces the
synchronous direct path below *min*; reclaimed pages are compressed into
the zswap pool and faulted back on demand.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, Generator, Optional

from repro.errors import KernelError
from repro.kernel.lru import LruLists
from repro.kernel.page import FrameAllocator, Page
from repro.kernel.zswap import Zswap
from repro.sim.engine import Simulator, Timeout

DIRECT_RECLAIM_BATCH = 32      # pages reclaimed per direct-path entry
BACKGROUND_BATCH = 64          # pages per kswapd wakeup slice


@dataclass
class PageRef:
    """A task's handle to one virtual page (resident or swapped)."""

    ref_id: int
    owner: str
    page: Optional[Page] = None          # resident frame
    zswap_handle: Optional[int] = None   # set while swapped out
    content: Optional[bytes] = None      # functional payload

    @property
    def resident(self) -> bool:
        return self.page is not None


@dataclass
class MmStats:
    direct_reclaims: int = 0
    background_wakeups: int = 0
    pages_swapped_out: int = 0
    major_faults: int = 0


class MemoryManager:
    """Allocation, reclaim, and fault handling for one node."""

    def __init__(self, sim: Simulator, allocator: FrameAllocator,
                 zswap: Zswap):
        self.sim = sim
        self.allocator = allocator
        self.zswap = zswap
        self.lru = LruLists()
        self._refs: Dict[int, PageRef] = {}
        self._by_pfn: Dict[int, PageRef] = {}
        self._ids = itertools.count(1)
        self._kswapd_running = False
        self.stats = MmStats()

    # ------------------------------------------------------------------
    # allocation / free
    # ------------------------------------------------------------------

    def alloc_page(self, owner: str,
                   content: Optional[bytes] = None
                   ) -> Generator[Any, Any, PageRef]:
        """Allocate one page for ``owner`` (timed: may reclaim)."""
        if self.allocator.below_min() or self.allocator.free_pages == 0:
            # Synchronous direct path: the allocating task itself reclaims.
            self.stats.direct_reclaims += 1
            yield from self.reclaim(DIRECT_RECLAIM_BATCH)
        elif self.allocator.below_low():
            self.wake_kswapd()
        page = self.allocator.try_alloc(owner)
        if page is None:
            raise KernelError("allocation failed even after direct reclaim")
        ref = PageRef(next(self._ids), owner, page=page, content=content)
        self._refs[ref.ref_id] = ref
        self._by_pfn[page.pfn] = ref
        self.lru.add(page)
        return ref

    def free_page(self, ref: PageRef) -> None:
        if ref.ref_id not in self._refs:
            raise KernelError(f"double free of ref {ref.ref_id}")
        del self._refs[ref.ref_id]
        if ref.page is not None:
            self.lru.remove(ref.page)
            del self._by_pfn[ref.page.pfn]
            self.allocator.free(ref.page)
            ref.page = None
        elif ref.zswap_handle is not None:
            self.zswap.invalidate(ref.zswap_handle)
            ref.zswap_handle = None

    # ------------------------------------------------------------------
    # touching / faulting
    # ------------------------------------------------------------------

    def touch(self, ref: PageRef) -> Generator[Any, Any, bool]:
        """Access one page; faults it back in if swapped.  Returns True
        when a major fault occurred (timed)."""
        if ref.resident:
            assert ref.page is not None
            self.lru.touch(ref.page)
            return False
        if ref.zswap_handle is None:
            raise KernelError(f"ref {ref.ref_id} is neither resident nor swapped")
        self.stats.major_faults += 1
        data, __ = yield from self.zswap.load(ref.zswap_handle)
        ref.zswap_handle = None
        if data is not None:
            ref.content = data
        # The faulting allocation may itself trigger reclaim.
        new_ref = yield from self.alloc_page(ref.owner, ref.content)
        # Graft the new frame onto the old ref and retire the temp ref.
        ref.page = new_ref.page
        assert ref.page is not None
        self._by_pfn[ref.page.pfn] = ref
        del self._refs[new_ref.ref_id]
        self._refs[ref.ref_id] = ref
        return True

    # ------------------------------------------------------------------
    # reclaim
    # ------------------------------------------------------------------

    def reclaim(self, count: int) -> Generator[Any, Any, int]:
        """Swap out up to ``count`` cold pages through zswap (timed).

        Returns the number actually reclaimed.
        """
        reclaimed = 0
        while reclaimed < count:
            page = self.lru.isolate_coldest()
            if page is None:
                break
            ref = self._by_pfn.pop(page.pfn)
            handle, __ = yield from self.zswap.store(ref.content)
            ref.zswap_handle = handle
            ref.page = None
            self.allocator.free(page)
            self.stats.pages_swapped_out += 1
            reclaimed += 1
        return reclaimed

    def wake_kswapd(self) -> None:
        """Start the asynchronous background path if not already active."""
        if self._kswapd_running:
            return
        self._kswapd_running = True
        self.stats.background_wakeups += 1
        self.sim.spawn(self._kswapd_loop(), "kswapd")

    def _kswapd_loop(self) -> Generator[Any, Any, None]:
        """Reclaim in batches until free memory exceeds the high mark."""
        try:
            while not self.allocator.above_high():
                got = yield from self.reclaim(BACKGROUND_BATCH)
                if got == 0:
                    break
                yield Timeout(1000.0)   # cond_resched between batches
        finally:
            self._kswapd_running = False
