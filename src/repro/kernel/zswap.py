"""zswap: the compressed RAM cache for swap (SVI-A).

The pool (*zpool*) holds compressed pages.  Its placement is the
paper's point: ``cpu`` / ``pcie-*`` backends keep the zpool in **host
DRAM** (PCIe devices cannot expose their memory), while ``cxl`` places
it in **device memory**, simultaneously freeing host DRAM and using the
Type-2 device's capacity-expansion capability.

Flow per SVI-A:

* ``store`` — compress (via the configured transport) and insert; when
  the pool exceeds ``max_pool_percent`` of managed memory, evict LRU
  entries to the backing swap device (decompress + write);
* ``load`` — pool hit: decompress and return; pool miss: SSD read.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Generator, Optional

from repro.core.offload import OffloadEngine, OffloadReport
from repro.errors import FaultError, KernelError
from repro.faults import HealthState
from repro.kernel.pagestore import PAGE_STORE, PageStore, pagestore_enabled
from repro.kernel.swapdev import SwapDevice
from repro.resilience import NO_RESILIENCE
from repro.units import PAGE_SIZE


def _same_fill_byte(data: Optional[bytes]) -> Optional[int]:
    """The fill byte if every byte of the page is identical, else None."""
    if data is None or not data:
        return None
    first = data[0]
    return first if data.count(first) == len(data) else None


# Host-side cost of the same-filled scan (a word-equality sweep of the
# page, done before compression is attempted -- a real zswap fast path).
SAME_FILLED_SCAN_NS = 300.0
SAME_FILLED_ENTRY_BYTES = 8            # the fill value, not a blob
# Pages whose compressed form exceeds this fraction of PAGE_SIZE are
# *rejected* from the pool (Linux zswap's behaviour for incompressible
# data) and written straight to the backing swap device.
REJECT_THRESHOLD = 0.9


@dataclass
class ZpoolEntry:
    """One compressed page parked in the zpool."""

    handle: int
    compressed_bytes: int
    blob: Optional[bytes] = None       # functional payload
    same_filled: Optional[int] = None  # fill byte for same-filled pages
    interned: bool = False             # blob refcounted in the PageStore


@dataclass
class ZswapStats:
    stores: int = 0
    loads: int = 0
    pool_hits: int = 0
    pool_misses: int = 0
    writebacks: int = 0
    rejected: int = 0
    same_filled: int = 0
    fallbacks: int = 0       # operations served by the fallback transport
    host_cpu_ns: float = 0.0


class Zswap:
    """The compressed swap cache."""

    def __init__(self, engine: OffloadEngine, swapdev: SwapDevice,
                 transport: str, managed_pages: int,
                 max_pool_percent: int = 20,
                 fallback_transport: str = "cpu",
                 policy: Any = NO_RESILIENCE):
        if not (0 < max_pool_percent < 100):
            raise KernelError(f"bad max_pool_percent {max_pool_percent}")
        self.engine = engine
        self.swapdev = swapdev
        self.transport = transport
        self.fallback_transport = fallback_transport
        self.policy = policy
        self.managed_pages = managed_pages
        self.max_pool_percent = max_pool_percent
        self.zpool_in_device_memory = transport == "cxl"
        self._pool: "OrderedDict[int, ZpoolEntry]" = OrderedDict()
        self._swapped: dict[int, int] = {}        # handle -> swap slot
        self._pool_bytes = 0
        self._next_handle = 1
        # Functional blobs dedupe through the content store: workloads
        # re-store the same pages, so equal compressed outputs share one
        # buffer.  Sampled once so intern/release stay paired.
        self._pstore: Optional[PageStore] = \
            PAGE_STORE if pagestore_enabled() else None
        self.stats = ZswapStats()

    # -- accounting ---------------------------------------------------------

    @property
    def pool_bytes(self) -> int:
        return self._pool_bytes

    @property
    def pool_limit_bytes(self) -> int:
        return self.managed_pages * PAGE_SIZE * self.max_pool_percent // 100

    @property
    def host_dram_pool_bytes(self) -> int:
        """Host DRAM consumed by the pool — zero for cxl-zswap, whose
        zpool lives in device memory (SVI-A)."""
        return 0 if self.zpool_in_device_memory else self._pool_bytes

    def is_full(self) -> bool:
        return self._pool_bytes >= self.pool_limit_bytes

    # -- graceful degradation ----------------------------------------------

    def _transport_now(self) -> str:
        """The transport for the next operation: the configured one,
        unless the offload device is FAILED — then reroute to the
        fallback without even attempting (mirrors Linux zswap rejecting
        to swap when the compressor backend errors).  With an armed
        health monitor a FAILED device still gets its due probe: the
        configured transport is returned so the engine's half-open
        probe machinery can run the recovery attempt."""
        if (self.transport != self.fallback_transport
                and self.engine.health.state is HealthState.FAILED
                and not self.engine.health.probe_due(self.engine.p.sim.now)):
            self.stats.fallbacks += 1
            return self.fallback_transport
        return self.transport

    def _compress_op(self, data: Optional[bytes]
                     ) -> Generator[Any, Any, OffloadReport]:
        """Compress via the configured transport, falling back to the
        cpu path on a hardware fault (the page is never lost: the
        original data is still in hand).  With an armed resilience
        policy the cxl path routes through the policy's breaker and
        hedge machinery instead."""
        if self.policy.armed and self.transport == "cxl":
            return (yield from self.policy.offload_op("compress", data=data))
        transport = self._transport_now()
        try:
            return (yield from self.engine.compress_page(transport,
                                                         data=data))
        except FaultError:
            if transport == self.fallback_transport:
                raise
            self.stats.fallbacks += 1
            return (yield from self.engine.compress_page(
                self.fallback_transport, data=data))

    def _decompress_op(self, blob: Optional[bytes], stored_bytes: int
                       ) -> Generator[Any, Any, OffloadReport]:
        """Decompress via the configured transport with cpu fallback.
        Safe to redo: the compressed blob stays in the pool entry until
        the operation returns."""
        if self.policy.armed and self.transport == "cxl":
            return (yield from self.policy.offload_op(
                "decompress", data=blob, stored_bytes=stored_bytes))
        transport = self._transport_now()
        try:
            return (yield from self.engine.decompress_page(
                transport, data=blob, stored_bytes=stored_bytes))
        except FaultError:
            if transport == self.fallback_transport:
                raise
            self.stats.fallbacks += 1
            return (yield from self.engine.decompress_page(
                self.fallback_transport, data=blob,
                stored_bytes=stored_bytes))

    # -- store (swap-out) ------------------------------------------------------

    def store(self, data: Optional[bytes] = None
              ) -> Generator[Any, Any, tuple[int, Optional[OffloadReport]]]:
        """Compress one page into the pool; returns (handle, report).

        Same-filled pages (all bytes equal -- overwhelmingly the zero
        page) take Linux zswap's fast path: the fill value is stored
        directly, no compression and no offload traffic at all.
        """
        self.stats.stores += 1
        fill = _same_fill_byte(data)
        if fill is not None:
            yield self.engine.p.sim.timeout_event(SAME_FILLED_SCAN_NS)
            self.stats.same_filled += 1
            self.stats.host_cpu_ns += SAME_FILLED_SCAN_NS
            handle = self._next_handle
            self._next_handle += 1
            self._pool[handle] = ZpoolEntry(
                handle, SAME_FILLED_ENTRY_BYTES, same_filled=fill)
            self._pool_bytes += SAME_FILLED_ENTRY_BYTES
            return handle, None
        report = yield from self._compress_op(data)
        self.stats.host_cpu_ns += report.host_cpu_ns
        handle = self._next_handle
        self._next_handle += 1
        if report.output_bytes > PAGE_SIZE * REJECT_THRESHOLD:
            # Incompressible: caching it would waste pool space for no
            # memory saving -- send the original page straight to swap.
            self.stats.rejected += 1
            slot = yield from self.swapdev.write_page(
                data if data is not None else None)
            self._swapped[handle] = slot
            return handle, report
        blob = report.result
        pstore = self._pstore
        if blob is not None and pstore is not None:
            blob = pstore.intern(blob)
            self._pool[handle] = ZpoolEntry(handle, report.output_bytes,
                                            blob=blob, interned=True)
        else:
            self._pool[handle] = ZpoolEntry(handle, report.output_bytes,
                                            blob=blob)
        self._pool_bytes += report.output_bytes
        while self.is_full():
            yield from self._writeback_one()
        return handle, report

    def _writeback_one(self) -> Generator[Any, Any, None]:
        """Evict the LRU entry: decompress, write to the swap device."""
        if not self._pool:
            raise KernelError("writeback on an empty pool")
        handle, entry = self._pool.popitem(last=False)
        self._pool_bytes -= entry.compressed_bytes
        self._release_entry(entry)
        self.stats.writebacks += 1
        if entry.same_filled is not None:
            page = bytes([entry.same_filled]) * PAGE_SIZE
            slot = yield from self.swapdev.write_page(page)
            self._swapped[handle] = slot
            return
        report = yield from self._decompress_op(entry.blob,
                                                entry.compressed_bytes)
        self.stats.host_cpu_ns += report.host_cpu_ns
        slot = yield from self.swapdev.write_page(report.result)
        self._swapped[handle] = slot

    # -- load (swap-in) -----------------------------------------------------------

    def load(self, handle: int
             ) -> Generator[Any, Any, tuple[Optional[bytes], bool]]:
        """Fault one page back in; returns (data, pool_hit)."""
        self.stats.loads += 1
        entry = self._pool.pop(handle, None)
        if entry is not None:
            self._pool_bytes -= entry.compressed_bytes
            self._release_entry(entry)
            self.stats.pool_hits += 1
            if entry.same_filled is not None:
                # Reconstructing a same-filled page is a memset.
                yield self.engine.p.sim.timeout_event(SAME_FILLED_SCAN_NS)
                self.stats.host_cpu_ns += SAME_FILLED_SCAN_NS
                return bytes([entry.same_filled]) * PAGE_SIZE, True
            report = yield from self._decompress_op(entry.blob,
                                                    entry.compressed_bytes)
            self.stats.host_cpu_ns += report.host_cpu_ns
            return report.result, True
        slot = self._swapped.pop(handle, None)
        if slot is None:
            raise KernelError(f"load of unknown zswap handle {handle}")
        self.stats.pool_misses += 1
        data = yield from self.swapdev.read_page(slot)
        return data, False

    def _release_entry(self, entry: ZpoolEntry) -> None:
        """Pair the store-time intern when an entry leaves the pool."""
        if entry.interned:
            assert self._pstore is not None and entry.blob is not None
            self._pstore.release(entry.blob)
            entry.interned = False

    def invalidate(self, handle: int) -> None:
        """Drop an entry whose owner freed the page."""
        entry = self._pool.pop(handle, None)
        if entry is not None:
            self._pool_bytes -= entry.compressed_bytes
            self._release_entry(entry)
            return
        slot = self._swapped.pop(handle, None)
        if slot is None:
            raise KernelError(f"invalidate of unknown handle {handle}")
        self.swapdev.discard(slot)
