"""Content-addressed memoization of functional kernel work.

The functional zswap/ksm paths compress, decompress, hash, and compare
*real page bytes* so the simulated kernels can assert round trips and
dedup correctness.  Those workloads are heavily content-redundant — the
zero page, a handful of shared library pages, repeated guest images —
so the pure-Python codecs recompute identical answers thousands of
times.  This module provides a bounded LRU keyed by page *content* (the
bytes are the address) that computes each distinct input once.

Scope is strictly the **functional** half: cached entries are the
immutable result objects (compressed blob, decompressed page, 32-bit
checksum, first-difference index).  Simulated *timing* is charged by the
streaming-IP resource models and never consults the cache — a hit saves
host CPU, not simulated nanoseconds, so every experiment's figures are
byte-identical with the cache on or off.  The deliberately-excluded case
is :meth:`~repro.core.offload.OffloadEngine._compressed_size`'s
non-functional ratio model, which *draws from the platform RNG*;
memoizing it would change the RNG stream.

Disable with ``REPRO_WORKCACHE=0`` (or :func:`set_workcache`); hit/miss
telemetry feeds ``repro speed`` via :meth:`WorkCache.snapshot`.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Any, Callable, Dict, Optional, Tuple

from repro.errors import ConfigError
from repro.kernel.compress import lz_compress, lz_decompress
from repro.kernel.xxhash import xxhash32

# Distinct 4 KiB inputs retained; at two pages per compare key this
# bounds resident page references to ~32 MiB.
DEFAULT_CAPACITY = 4096

_forced: Optional[bool] = None


def set_workcache(enabled: Optional[bool]) -> None:
    """Force the cache on/off (``None`` restores the env default)."""
    global _forced
    _forced = enabled


def workcache_enabled() -> bool:
    if _forced is not None:
        return _forced
    return os.environ.get("REPRO_WORKCACHE", "1") != "0"


class WorkCache:
    """Bounded LRU over ``(kind, content...)`` keys."""

    __slots__ = ("capacity", "_entries", "hits", "misses", "evictions",
                 "by_kind")

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ConfigError(f"workcache capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.by_kind: Dict[str, Dict[str, int]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def _tally(self, kind: str, outcome: str) -> None:
        per = self.by_kind.get(kind)
        if per is None:
            per = self.by_kind[kind] = {"hits": 0, "misses": 0}
        per[outcome] += 1

    def get(self, kind: str, key: Tuple,
            compute: Callable[[], Any]) -> Any:
        """Return the memoized result for ``(kind, *key)``, computing and
        inserting on a miss (evicting LRU entries beyond capacity)."""
        entries = self._entries
        full_key = (kind,) + key
        found = entries.get(full_key, _MISSING)
        if found is not _MISSING:
            self.hits += 1
            self._tally(kind, "hits")
            entries.move_to_end(full_key)
            return found
        self.misses += 1
        self._tally(kind, "misses")
        result = compute()
        entries[full_key] = result
        if len(entries) > self.capacity:
            entries.popitem(last=False)
            self.evictions += 1
        return result

    def reset(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.by_kind = {}

    # -- checkpointing ----------------------------------------------------

    def __reduce_ex__(self, protocol):
        # The process-global cache pickles by identity (module-global
        # reference): a snapshotted graph holding WORK_CACHE reconnects
        # to the live global on restore; contents travel in the
        # checkpoint's ambient state.  Private caches still deep-copy.
        if self is WORK_CACHE:
            return "WORK_CACHE"
        return super().__reduce_ex__(protocol)

    def state(self) -> Dict[str, Any]:
        """A detached copy of the cache (entries in LRU order plus
        counters) for :mod:`repro.sim.checkpoint`.  Purely a warmth
        carrier: correctness never depends on cache contents, but a
        forked point should start exactly as warm as its cold twin."""
        return {
            "entries": list(self._entries.items()),
            "counters": (self.hits, self.misses, self.evictions),
            "by_kind": {k: dict(v) for k, v in self.by_kind.items()},
        }

    def install_state(self, state: Optional[Dict[str, Any]]) -> None:
        """Replace contents with a captured :meth:`state` (``None`` is a
        no-op).  Capacity stays this cache's own."""
        if state is None:
            return
        self._entries = OrderedDict(state["entries"])
        self.hits, self.misses, self.evictions = state["counters"]
        self.by_kind = {k: dict(v) for k, v in state["by_kind"].items()}

    def snapshot(self) -> Dict[str, Any]:
        """Telemetry for ``repro speed`` / tests."""
        return {
            "enabled": workcache_enabled(),
            "entries": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "by_kind": {k: dict(v) for k, v in sorted(self.by_kind.items())},
        }


_MISSING = object()

#: Process-wide cache. Workers in a parallel sweep each hold their own
#: (results are content-addressed pure functions, so caches never need
#: to agree — only to be correct).
WORK_CACHE = WorkCache()


def cached_compress(data: bytes) -> bytes:
    if not workcache_enabled():
        return lz_compress(data)
    return WORK_CACHE.get("compress", (data,), lambda: lz_compress(data))


def cached_decompress(blob: bytes) -> bytes:
    if not workcache_enabled():
        return lz_decompress(blob)
    return WORK_CACHE.get("decompress", (blob,), lambda: lz_decompress(blob))


def cached_xxhash32(data: bytes, seed: int = 0) -> int:
    if not workcache_enabled():
        return xxhash32(data, seed)
    return WORK_CACHE.get("hash", (data, seed),
                          lambda: xxhash32(data, seed))


def cached_compare(a: bytes, b: bytes,
                   compute: Callable[[], int]) -> int:
    """Memoized first-difference index (``compute`` supplies the
    comparator's exact semantics)."""
    if not workcache_enabled():
        return compute()
    return WORK_CACHE.get("compare", (a, b), compute)
