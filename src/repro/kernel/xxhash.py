"""Pure-Python xxHash32.

ksm computes a 32-bit hash of every scanned page as a change hint
(SVI-B); the paper's cxl-ksm offloads exactly this xxhash computation
[13] to the device.  This is a faithful implementation of the XXH32
algorithm, validated in tests against the reference vectors published by
the xxHash project.
"""

from __future__ import annotations

import struct

_PRIME1 = 2654435761
_PRIME2 = 2246822519
_PRIME3 = 3266489917
_PRIME4 = 668265263
_PRIME5 = 374761393
_MASK = 0xFFFFFFFF


def _rotl(value: int, count: int) -> int:
    value &= _MASK
    return ((value << count) | (value >> (32 - count))) & _MASK


def _round(acc: int, lane: int) -> int:
    acc = (acc + lane * _PRIME2) & _MASK
    return (_rotl(acc, 13) * _PRIME1) & _MASK


def xxhash32(data: bytes, seed: int = 0) -> int:
    """XXH32 of ``data`` with ``seed``; returns an unsigned 32-bit int."""
    seed &= _MASK
    length = len(data)
    index = 0

    if length >= 16:
        v1 = (seed + _PRIME1 + _PRIME2) & _MASK
        v2 = (seed + _PRIME2) & _MASK
        v3 = seed
        v4 = (seed - _PRIME1) & _MASK
        limit = length - 16
        while index <= limit:
            lane1, lane2, lane3, lane4 = struct.unpack_from("<IIII", data, index)
            v1 = _round(v1, lane1)
            v2 = _round(v2, lane2)
            v3 = _round(v3, lane3)
            v4 = _round(v4, lane4)
            index += 16
        acc = (_rotl(v1, 1) + _rotl(v2, 7) + _rotl(v3, 12) + _rotl(v4, 18)) & _MASK
    else:
        acc = (seed + _PRIME5) & _MASK

    acc = (acc + length) & _MASK

    while index + 4 <= length:
        (lane,) = struct.unpack_from("<I", data, index)
        acc = (_rotl((acc + lane * _PRIME3) & _MASK, 17) * _PRIME4) & _MASK
        index += 4

    while index < length:
        acc = (_rotl((acc + data[index] * _PRIME5) & _MASK, 11) * _PRIME1) & _MASK
        index += 1

    acc ^= acc >> 15
    acc = (acc * _PRIME2) & _MASK
    acc ^= acc >> 13
    acc = (acc * _PRIME3) & _MASK
    acc ^= acc >> 16
    return acc


def page_checksum(page: bytes) -> int:
    """The ksm per-page change hint: XXH32 with seed 0 (SVI-B)."""
    return xxhash32(page, 0)
