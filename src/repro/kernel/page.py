"""Page frames, the physical allocator, and reclaim watermarks.

A tiny but faithful slice of the Linux mm: frames are allocated from a
free list; ``page_min``/``page_low``/``page_high`` watermarks drive
kswapd exactly as SVI-A describes — dropping below *low* wakes the
asynchronous background path, and an allocation that cannot be served
above *min* takes the synchronous direct-reclaim path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import KernelError
from repro.units import PAGE_SIZE


@dataclass
class Page:
    """One 4 KiB physical page frame."""

    pfn: int
    owner: Optional[str] = None        # task/VM that owns the mapping
    dirty: bool = False
    referenced: bool = False
    # ksm bookkeeping
    ksm_checksum: Optional[int] = None
    ksm_shared: bool = False
    share_count: int = 1

    @property
    def addr(self) -> int:
        return self.pfn * PAGE_SIZE


@dataclass(frozen=True)
class Watermarks:
    """Reclaim thresholds in pages."""

    min_pages: int
    low_pages: int
    high_pages: int

    def __post_init__(self) -> None:
        if not (0 < self.min_pages < self.low_pages < self.high_pages):
            raise KernelError(f"watermarks must be ordered: {self}")


def default_watermarks(total_pages: int) -> Watermarks:
    """Linux-style scaled watermarks (roughly min:low:high = 1:1.25:1.5
    at a small fraction of total memory)."""
    min_pages = max(32, total_pages // 64)
    return Watermarks(min_pages, min_pages * 5 // 4, min_pages * 3 // 2)


class FrameAllocator:
    """Physical page-frame allocator with watermark queries."""

    def __init__(self, total_pages: int,
                 watermarks: Optional[Watermarks] = None):
        if total_pages <= 0:
            raise KernelError("need at least one page frame")
        self.total_pages = total_pages
        self.watermarks = watermarks or default_watermarks(total_pages)
        self._free: list[int] = list(range(total_pages - 1, -1, -1))
        self._pages: dict[int, Page] = {}
        self.allocations = 0
        self.frees = 0

    # -- queries -----------------------------------------------------------

    @property
    def free_pages(self) -> int:
        return len(self._free)

    @property
    def used_pages(self) -> int:
        return self.total_pages - len(self._free)

    def below_low(self) -> bool:
        return self.free_pages < self.watermarks.low_pages

    def below_min(self) -> bool:
        return self.free_pages < self.watermarks.min_pages

    def above_high(self) -> bool:
        return self.free_pages > self.watermarks.high_pages

    def page(self, pfn: int) -> Page:
        try:
            return self._pages[pfn]
        except KeyError:
            raise KernelError(f"pfn {pfn} is not allocated")

    # -- allocation ---------------------------------------------------------

    def try_alloc(self, owner: str) -> Optional[Page]:
        """Allocate one frame, or None when empty (caller must reclaim)."""
        if not self._free:
            return None
        pfn = self._free.pop()
        page = Page(pfn, owner=owner)
        self._pages[pfn] = page
        self.allocations += 1
        return page

    def free(self, page: Page) -> None:
        if page.pfn not in self._pages:
            raise KernelError(f"double free of pfn {page.pfn}")
        del self._pages[page.pfn]
        self._free.append(page.pfn)
        self.frees += 1
