"""Virtual machines for the ksm experiments (SVI-B).

ksm deduplicates identical pages *across VMs* — OS images and common
libraries give many byte-identical pages.  A :class:`VirtualMachine`
here is an address space of content-bearing pages with KVM-style
copy-on-write semantics: once ksm merges a page, a write from any VM
breaks the share and materializes a private copy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import KernelError
from repro.kernel.pagestore import PAGE_STORE, PageStore, pagestore_enabled
from repro.sim.rng import DeterministicRng
from repro.units import PAGE_SIZE


@dataclass
class VmPage:
    """One guest page."""

    vpn: int
    content: bytes
    shared: bool = False        # merged into a ksm stable page
    poisoned: bool = False      # known-bad bytes: never content-interned
    interned: bool = False      # content refcounted in a PageStore

    def __post_init__(self) -> None:
        if len(self.content) != PAGE_SIZE:
            raise KernelError(
                f"VM page must be {PAGE_SIZE} B, got {len(self.content)}")


class VirtualMachine:
    """One guest with a page-granular address space.

    Page contents are interned through a :class:`PageStore` (the global
    one by default), so byte-identical pages across the fleet share one
    host-side buffer.  Guest writes copy out transparently: the old
    content's reference is released and the new bytes interned — the
    canonical object is never mutated.  Poisoned pages opt out of
    sharing entirely.  The store choice is sampled at construction;
    pass ``store=None`` explicitly after ``set_pagestore(False)`` to
    keep private buffers.
    """

    def __init__(self, name: str, store: Optional[PageStore] = None):
        self.name = name
        self._pages: Dict[int, VmPage] = {}
        self._store: Optional[PageStore] = \
            store if store is not None else (
                PAGE_STORE if pagestore_enabled() else None)
        self.cow_breaks = 0

    def __len__(self) -> int:
        return len(self._pages)

    def map_page(self, vpn: int, content: bytes,
                 poisoned: bool = False) -> VmPage:
        if vpn in self._pages:
            raise KernelError(f"{self.name}: vpn {vpn} already mapped")
        store = self._store
        if store is not None and not poisoned:
            content = store.intern(content)
            page = VmPage(vpn, content, poisoned=False, interned=True)
        else:
            page = VmPage(vpn, content, poisoned=poisoned)
        self._pages[vpn] = page
        return page

    def read(self, vpn: int) -> bytes:
        return self._page(vpn).content

    def write(self, vpn: int, content: bytes) -> VmPage:
        """Guest write: breaks a ksm share (CoW) if present, releases
        the old interned content, and interns the new bytes (copy-out —
        the previous canonical object is never touched)."""
        page = self._page(vpn)
        if page.shared:
            page.shared = False
            self.cow_breaks += 1
        store = self._store
        if page.interned:
            assert store is not None
            store.release(page.content)
        if store is not None and not page.poisoned:
            page.content = store.intern(content)
            page.interned = True
        else:
            page.content = content
            page.interned = False
        return page

    def poison_page(self, vpn: int) -> VmPage:
        """RAS: mark a guest page's bytes known-bad.  Its content leaves
        the shared store immediately — poison is per-physical-copy state
        and must never ride a canonical object into other mappings."""
        page = self._page(vpn)
        if page.interned:
            assert self._store is not None
            self._store.release(page.content)
            page.interned = False
        page.poisoned = True
        return page

    def unmap_all(self) -> None:
        """Tear down the address space, releasing every interned ref —
        after this the VM's footprint in the shared store is zero."""
        store = self._store
        for page in self._pages.values():
            if page.interned:
                assert store is not None
                store.release(page.content)
                page.interned = False
        self._pages.clear()

    def pages(self) -> list[VmPage]:
        return list(self._pages.values())

    def page_of(self, vpn: int) -> VmPage:
        """Public accessor for one guest page."""
        return self._page(vpn)

    def _page(self, vpn: int) -> VmPage:
        try:
            return self._pages[vpn]
        except KeyError:
            raise KernelError(f"{self.name}: vpn {vpn} not mapped")


def make_vm_fleet(count: int, pages_per_vm: int, shared_fraction: float,
                  rng: DeterministicRng) -> list[VirtualMachine]:
    """Build VMs whose address spaces overlap like real guest images.

    ``shared_fraction`` of each VM's pages come from a common template
    pool (OS + library pages, identical across VMs); the rest is private
    random data that cannot merge.
    """
    if not 0 <= shared_fraction <= 1:
        raise KernelError(f"shared_fraction out of range: {shared_fraction}")
    template_count = max(1, int(pages_per_vm * shared_fraction))
    # Template pages: mostly-zero with a distinct stamp, like ELF pages.
    templates = []
    for i in range(template_count):
        page = bytearray(PAGE_SIZE)
        stamp = rng.random_bytes(48)
        page[0:48] = stamp
        page[128:132] = i.to_bytes(4, "little")
        templates.append(bytes(page))

    vms = []
    for v in range(count):
        vm = VirtualMachine(f"vm{v}")
        for vpn in range(pages_per_vm):
            if vpn < template_count:
                vm.map_page(vpn, templates[vpn])
            else:
                vm.map_page(vpn, rng.random_bytes(PAGE_SIZE))
        vms.append(vm)
    return vms
