"""LZ4-style page compressor.

zswap compresses reclaimed pages before parking them in the zpool; the
paper's cxl-zswap offloads this compression to a streaming FPGA IP
(SVI-A).  This module provides the *functional* half: a self-contained
LZ77 byte-oriented codec in the spirit of LZ4 (the family Linux zswap
typically uses), good enough to produce realistic compression ratios on
realistic page contents while remaining dependency-free.

Format (per sequence, mirroring LZ4's token scheme):

* token byte: high nibble = literal count, low nibble = match length - 4;
  a nibble of 15 is extended by 255-continuation bytes;
* the literal bytes;
* 2-byte little-endian match offset (absent for the terminal sequence,
  which carries literals only).

The codec is exercised by round-trip unit tests and hypothesis property
tests, and its output sizes drive the zpool accounting of
:mod:`repro.kernel.zswap`.
"""

from __future__ import annotations

from repro.errors import KernelError

_MIN_MATCH = 4
_MAX_OFFSET = 0xFFFF


def _write_count(out: bytearray, count: int) -> None:
    """Extended-count continuation bytes for a nibble that hit 15."""
    count -= 15
    while count >= 255:
        out.append(255)
        count -= 255
    out.append(count)


def _read_count(data: bytes, pos: int, nibble: int) -> tuple[int, int]:
    count = nibble
    if nibble == 15:
        while True:
            if pos >= len(data):
                raise KernelError("truncated LZ stream (count)")
            byte = data[pos]
            pos += 1
            count += byte
            if byte != 255:
                break
    return count, pos


def lz_compress(data: bytes) -> bytes:
    """Compress ``data``; ``lz_decompress`` inverts exactly."""
    n = len(data)
    out = bytearray()
    if n == 0:
        out.append(0)
        return bytes(out)

    # Positions of 4-byte prefixes seen so far (last occurrence wins).
    # Keys are the prefix packed little-endian into one int: bijective
    # with the 4 bytes, and no per-position bytes() allocation.
    table: dict[int, int] = {}
    anchor = 0  # start of pending literals
    i = 0
    view = memoryview(data)

    while i + _MIN_MATCH <= n:
        key = (data[i] | (data[i + 1] << 8) | (data[i + 2] << 16)
               | (data[i + 3] << 24))
        candidate = table.get(key)
        table[key] = i
        if candidate is None or i - candidate > _MAX_OFFSET:
            i += 1
            continue
        # Extend the match forward
        match_len = _MIN_MATCH
        limit = n - i
        while (match_len < limit
               and data[candidate + match_len] == data[i + match_len]):
            match_len += 1
        # Emit sequence: literals [anchor, i) + match
        lit_len = i - anchor
        token_lit = min(lit_len, 15)
        token_match = min(match_len - _MIN_MATCH, 15)
        out.append((token_lit << 4) | token_match)
        if token_lit == 15:
            _write_count(out, lit_len)
        out += view[anchor:i]
        offset = i - candidate
        out += offset.to_bytes(2, "little")
        if token_match == 15:
            _write_count(out, match_len - _MIN_MATCH)
        i += match_len
        anchor = i

    # Terminal literals-only sequence
    lit_len = n - anchor
    token_lit = min(lit_len, 15)
    out.append(token_lit << 4)
    if token_lit == 15:
        _write_count(out, lit_len)
    out += view[anchor:n]
    return bytes(out)


def lz_decompress(blob: bytes) -> bytes:
    """Invert :func:`lz_compress`."""
    out = bytearray()
    pos = 0
    n = len(blob)
    while pos < n:
        token = blob[pos]
        pos += 1
        lit_len, pos = _read_count(blob, pos, token >> 4)
        if pos + lit_len > n:
            raise KernelError("truncated LZ stream (literals)")
        out += blob[pos:pos + lit_len]
        pos += lit_len
        if pos >= n:
            break  # terminal sequence carries no match
        if pos + 2 > n:
            raise KernelError("truncated LZ stream (offset)")
        offset = int.from_bytes(blob[pos:pos + 2], "little")
        pos += 2
        if offset == 0 or offset > len(out):
            raise KernelError(f"corrupt LZ offset {offset}")
        match_len, pos = _read_count(blob, pos, token & 0x0F)
        match_len += _MIN_MATCH
        start = len(out) - offset
        for k in range(match_len):  # byte-wise: overlapping copies are legal
            out.append(out[start + k])
    return bytes(out)


def compression_ratio(data: bytes) -> float:
    """Convenience: original size / compressed size."""
    if not data:
        raise KernelError("cannot measure ratio of empty input")
    return len(data) / len(lz_compress(data))
