"""Simulated Linux kernel memory-management features (SVI).

Functional models of the two memory-optimization features the paper
offloads — zswap (compressed RAM cache for swap) and ksm (memory
deduplication) — together with the substrate they need: page frames, LRU
lists, the kswapd reclaim paths, a backing swap device, and pure-Python
implementations of xxhash32 and an LZ4-style compressor so the offloaded
computation is genuinely executed.
"""

from repro.kernel.compress import lz_compress, lz_decompress
from repro.kernel.xxhash import xxhash32

__all__ = ["lz_compress", "lz_decompress", "xxhash32"]
