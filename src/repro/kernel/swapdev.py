"""The backing swap device (an NVMe SSD behind the zswap pool).

zswap is a *cache* in front of this device: pool evictions decompress and
write here; a swap-in that misses the pool reads from here at SSD
latency — the cliff that makes zswap worthwhile at all.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional

from repro.errors import FaultError, KernelError
from repro.faults import FaultPlan
from repro.sim.engine import Simulator
from repro.sim.resources import Resource
from repro.units import PAGE_SIZE, us

SSD_READ_NS = us(75.0)      # 4 KB random read on a datacenter NVMe
SSD_WRITE_NS = us(18.0)     # 4 KB write (absorbed by device buffers)
SSD_QUEUE_DEPTH = 64

# The FaultPlan point this device queries on every read.
SWAP_READ_ERROR = "swap_read_error"


class SwapIOError(KernelError, FaultError):
    """A swap read failed at the device (media error / link reset).

    Linux marks the page table entry with a hardware-poison swap entry
    and the faulting process gets SIGBUS -- data in that slot is gone.
    (Both a kernel-layer error and an injected hardware fault, hence the
    dual parentage.)
    """


class SwapDevice:
    """Block-device swap backend with slot management.

    ``inject_read_errors(n)`` arms deterministic failure injection: the
    next ``n`` reads raise :class:`SwapIOError` after paying the I/O
    latency, and their slots are lost (as on real media errors).  It is
    a thin shim over :class:`~repro.faults.FaultPlan` — pass a shared
    plan (with a ``swap_read_error`` rate or counted budget) to drive
    this device from the same subsystem as every other fault point.
    """

    def __init__(self, sim: Simulator, capacity_pages: int = 1 << 20,
                 faults: Optional[FaultPlan] = None):
        self.sim = sim
        self.capacity_pages = capacity_pages
        self.faults = faults if faults is not None else FaultPlan()
        self._queue = Resource(sim, SSD_QUEUE_DEPTH, "swapdev.q")
        self._slots: Dict[int, Optional[bytes]] = {}
        self._next_slot = 0
        self.reads = 0
        self.writes = 0
        self.read_errors = 0

    def inject_read_errors(self, count: int) -> None:
        """Arm ``count`` read failures (failure-injection testing)."""
        if count < 0:
            raise KernelError("cannot inject a negative error count")
        self.faults.arm_counted(SWAP_READ_ERROR, count)

    @property
    def used_slots(self) -> int:
        return len(self._slots)

    # -- timed I/O ---------------------------------------------------------------

    def write_page(self, data: Optional[bytes] = None
                   ) -> Generator[Any, Any, int]:
        """Write one page; returns its swap slot."""
        if self.used_slots >= self.capacity_pages:
            raise KernelError("swap device full")
        self.writes += 1
        slot = self._next_slot
        self._next_slot += 1
        if data is not None and len(data) != PAGE_SIZE:
            raise KernelError(f"swap write of {len(data)} bytes")
        self._slots[slot] = data
        yield from self._queue.using(SSD_WRITE_NS)
        return slot

    def read_page(self, slot: int) -> Generator[Any, Any, Optional[bytes]]:
        """Read one page back; frees the slot."""
        if slot not in self._slots:
            raise KernelError(f"swap-in of unoccupied slot {slot}")
        self.reads += 1
        data = self._slots.pop(slot)
        yield from self._queue.using(SSD_READ_NS)
        if self.faults.take(SWAP_READ_ERROR):
            self.read_errors += 1
            raise SwapIOError(f"media error reading swap slot {slot}")
        return data

    def discard(self, slot: int) -> None:
        """Free a slot without reading (page dropped)."""
        if self._slots.pop(slot, "missing") == "missing":
            raise KernelError(f"discard of unoccupied slot {slot}")
