"""Kernel-feature daemons competing with applications for cores.

:class:`ReclaimDaemon` is kswapd with a zswap backend; :class:`ScanDaemon`
is ksmd.  Both drive per-page costs from :class:`CostProfile`, which is
*measured from the offload engine* on the same platform — the daemons
inherit every transport's host-CPU and device-latency characteristics
from the models of :mod:`repro.core.offload` instead of hard-coding
them.

Host-side work occupies an application core (queueing interference);
device-side work releases the core — kswapd "yields the host CPU core to
a co-running application process and sleeps" during offloaded
compression (SVI-A, Fig 7 step 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

from repro.apps.node import ServerNode
from repro.core.offload import OffloadEngine
from repro.core.platform import Platform
from repro.errors import WorkloadError
from repro.sim.engine import Timeout
from repro.units import us

# Fraction of per-page host work spent submitting (the rest handles the
# completion after the wake-up).
SUBMIT_FRACTION = 0.6
# kswapd's conservatively-determined sleep while the device works (SVI-A).
MIN_DEVICE_SLEEP_NS = us(10.0)
# Control-plane work that never offloads: LRU isolation, rmap walks,
# zswap tree updates, page-table maintenance.  Charged per page on the
# host for *every* backend -- the reason even cxl-zswap leaves ~11 % of
# zswap's host CPU cost behind (SVII).
RECLAIM_CONTROL_NS = 2500.0
SCAN_CONTROL_NS = 600.0
# ksm offload batches scan work STYX-style: one submission (descriptor /
# doorbell write) covers a batch of pages, amortizing the per-op host
# protocol cost that would otherwise exceed the small per-page hash.
SCAN_SUBMIT_BATCH = 6
# LLC-pollution service-time inflation while a data plane is streaming.
# The host CPU path walks every page byte through the whole hierarchy;
# the offloads touch the LLC only via DDIO / NC-P result pushes, reducing
# pollution "to a similar degree" across offloads (SVII).
POLLUTION_WEIGHT = {
    "cpu": 0.40,
    "pcie-rdma": 0.13,
    "pcie-dma": 0.15,
    "cxl": 0.135,
}
# How much of a chunk's device time survives pipelining across pages.
# Effective per-page device time in a pipelined chunk, as a fraction of
# a single page's standalone device latency: the BF-3 runs compressions
# on 16 Arm cores in parallel; the DMA/CXL paths pipeline transfers with
# the (serial) streaming IP, whose compute is the bottleneck.
DEVICE_OVERLAP = {
    "cpu": 1.0,
    "pcie-rdma": 0.15,
    "pcie-dma": 0.35,
    "cxl": 0.70,
}


@dataclass(frozen=True)
class OpCost:
    """Host/device split for one data-plane operation."""

    host_ns: float
    device_ns: float

    @property
    def total_ns(self) -> float:
        return self.host_ns + self.device_ns


@dataclass(frozen=True)
class CostProfile:
    """Per-transport per-page costs, measured from the offload engine."""

    transport: str
    compress: OpCost
    decompress: OpCost
    hash: OpCost
    compare: OpCost

    @classmethod
    def from_engine(cls, platform: Platform, engine: OffloadEngine,
                    transport: str) -> "CostProfile":
        """Run each op once on the (idle) platform and split the cost."""
        def run(gen) -> OpCost:
            report = platform.sim.run_process(gen)
            return OpCost(report.host_cpu_ns,
                          max(0.0, report.total_ns - report.host_cpu_ns))

        return cls(
            transport=transport,
            compress=run(engine.compress_page(transport)),
            decompress=run(engine.decompress_page(transport)),
            hash=run(engine.hash_page(transport)),
            compare=run(engine.compare_pages(transport)),
        )


# Host cost of one early-wake completion check (read the shared region,
# find the device still busy, go back to sleep).
WAKE_CHECK_NS = 400.0


class ReclaimDaemon:
    """kswapd with a zswap backend on a chosen transport.

    ``device_sleep_ns`` is the paper's "conservatively determined period
    based on the data transfer and compression time (~10us)" (SVI-A):
    kswapd sleeps that long after submitting, then checks the shared
    region.  Sleeping too briefly burns host cycles on repeated checks;
    sleeping too long throttles reclaim and lets pressure build — the
    ext_sleep_tuning experiment sweeps this knob.
    """

    def __init__(self, node: ServerNode, profile: CostProfile,
                 chunk_pages: int = 16,
                 check_period_ns: float = us(150.0),
                 device_sleep_ns: Optional[float] = None,
                 pollution_scale: float = 1.0):
        if chunk_pages < 1:
            raise WorkloadError("chunk_pages must be positive")
        if device_sleep_ns is not None and device_sleep_ns <= 0:
            raise WorkloadError("device_sleep_ns must be positive")
        if pollution_scale < 0:
            raise WorkloadError("pollution_scale cannot be negative")
        self.node = node
        self.profile = profile
        self.chunk_pages = chunk_pages
        self.check_period_ns = check_period_ns
        self.device_sleep_ns = device_sleep_ns
        # Interference-channel ablation knob: scales the LLC-pollution
        # weight (0 disables that channel entirely).
        self.pollution_scale = pollution_scale
        self.pages_reclaimed = 0
        self.direct_entries = 0
        self.wake_checks = 0

    def _sleep_period(self, device_ns: float) -> float:
        """The configured sleep, or the paper's auto-sizing: slightly
        more than the estimated transfer+compression time, floored at
        ~10 us (SVI-A)."""
        if self.device_sleep_ns is not None:
            return self.device_sleep_ns
        return max(MIN_DEVICE_SLEEP_NS, device_ns * 1.15)

    def _device_wait(self, device_ns: float,
                     pollute_source: str, weight: float):
        """Sleep-and-check until the device finishes: each early wake
        costs a host check on a core before sleeping again."""
        node = self.node
        period = self._sleep_period(device_ns)
        remaining = device_ns
        while True:
            # kswapd cannot observe the device mid-flight: it sleeps its
            # full conservative period and only then checks the shared
            # region (SVI-A).  Overshoot is the price of a long period.
            node.pollute_start(pollute_source, weight)
            try:
                yield Timeout(period)
            finally:
                node.pollute_stop(pollute_source)
            remaining -= period
            if remaining <= 0:
                return
            # Early wake: the device is still working -- check and resleep.
            self.wake_checks += 1
            core = node.next_core_rr()
            yield core.acquire()
            try:
                yield Timeout(WAKE_CHECK_NS)
                node.feature_core_busy_ns += WAKE_CHECK_NS
            finally:
                core.release()

    # -- the background (asynchronous) path ------------------------------------

    def run(self, until_ns: float) -> Generator[Any, Any, None]:
        """The kswapd loop: reclaim whenever free memory sits below the
        low watermark, until it recovers above high (SVI-A)."""
        node = self.node
        while node.sim.now < until_ns:
            if node.pressure.below_low:
                while (not node.pressure.above_high
                       and node.sim.now < until_ns):
                    yield from self._reclaim_chunk()
            else:
                yield Timeout(self.check_period_ns)

    def _reclaim_chunk(self) -> Generator[Any, Any, None]:
        """Swap out one chunk of cold pages through zswap."""
        node, cost = self.node, self.profile.compress
        pages = self.chunk_pages
        transport = self.profile.transport
        weight = POLLUTION_WEIGHT[transport] * self.pollution_scale
        core = node.next_core_rr()

        if cost.device_ns <= 0:
            # cpu backend: the whole compression runs on the core.
            yield core.acquire()
            node.pollute_start("zswap", weight)
            try:
                hold = (cost.host_ns + RECLAIM_CONTROL_NS) * pages
                yield Timeout(hold)
                node.feature_core_busy_ns += hold
            finally:
                node.pollute_stop("zswap")
                core.release()
        else:
            # Offloaded: per mini-batch, submit on the core (a handful of
            # nt-st / descriptor writes), release it, and sleep while the
            # device works -- the core runs Redis requests in the gap
            # (Fig 7 step 3).  Mini-batches keep the holds short, as the
            # real submit path yields between pages.
            host_page_ns = cost.host_ns + RECLAIM_CONTROL_NS
            # cxl submits are a few posted stores per page; the PCIe
            # paths batch descriptor programming into blockier holds.
            mini = 4 if transport == "cxl" else 8
            for start in range(0, pages, mini):
                batch = min(mini, pages - start)
                submit = host_page_ns * SUBMIT_FRACTION * batch
                wake = host_page_ns * (1 - SUBMIT_FRACTION) * batch
                yield core.acquire()
                try:
                    yield Timeout(submit)
                    node.feature_core_busy_ns += submit
                finally:
                    core.release()
                device = max(MIN_DEVICE_SLEEP_NS,
                             cost.device_ns * batch
                             * DEVICE_OVERLAP[transport])
                yield from self._device_wait(device, "zswap", weight)
                yield core.acquire()
                try:
                    yield Timeout(wake)
                    node.feature_core_busy_ns += wake
                finally:
                    core.release()

        self.pages_reclaimed += pages
        node.pressure.release(pages)

    # -- the direct (synchronous) path ---------------------------------------------

    def inline_reclaim(self, held_core) -> Generator[Any, Any, None]:
        """Direct reclaim executed by an allocating task that already
        holds ``held_core``.  With the cpu backend the task burns its own
        core; with offloads it releases the core during the device phase
        (the thread blocks, the core runs other work)."""
        self.direct_entries += 1
        node, cost = self.node, self.profile.compress
        pages = self.chunk_pages           # DIRECT_RECLAIM_BATCH
        transport = self.profile.transport
        weight = POLLUTION_WEIGHT[transport] * self.pollution_scale
        node.pollute_start("zswap", weight)
        try:
            if cost.device_ns <= 0:
                hold = (cost.host_ns + RECLAIM_CONTROL_NS) * pages
                yield Timeout(hold)
                node.feature_core_busy_ns += hold
            else:
                host_page_ns = cost.host_ns + RECLAIM_CONTROL_NS
                submit = host_page_ns * SUBMIT_FRACTION * pages
                wake = host_page_ns * (1 - SUBMIT_FRACTION) * pages
                yield Timeout(submit)
                held_core.release()
                try:
                    device = max(MIN_DEVICE_SLEEP_NS,
                                 cost.device_ns * pages
                                 * DEVICE_OVERLAP[transport])
                    yield Timeout(device)
                finally:
                    yield held_core.acquire()
                # The grant is caller-owned: the allocating task that
                # invokes inline_reclaim holds the core in its own
                # try/finally release.
                yield Timeout(wake)  # reprolint: disable=SIM402
                node.feature_core_busy_ns += submit + wake
        finally:
            node.pollute_stop("zswap")
        self.pages_reclaimed += pages
        node.pressure.release(pages)


class ScanDaemon:
    """ksmd: periodically scans guest pages, hashing each and comparing
    merge candidates (SVI-B)."""

    def __init__(self, node: ServerNode, profile: CostProfile,
                 compare_probability: float = 0.35,
                 chunk_pages: int = 48,
                 sleep_between_chunks_ns: float = us(60.0),
                 pollution_scale: float = 1.0):
        if not 0 <= compare_probability <= 1:
            raise WorkloadError("compare_probability out of range")
        if pollution_scale < 0:
            raise WorkloadError("pollution_scale cannot be negative")
        self.node = node
        self.profile = profile
        self.compare_probability = compare_probability
        self.chunk_pages = chunk_pages
        self.sleep_between_chunks_ns = sleep_between_chunks_ns
        self.pollution_scale = pollution_scale
        self.pages_scanned = 0

    def _chunk_cost(self) -> OpCost:
        """Expected per-chunk cost: one hash per page plus the expected
        fraction of byte-by-byte comparisons."""
        h, c = self.profile.hash, self.profile.compare
        per_page_host = h.host_ns + self.compare_probability * c.host_ns
        if h.device_ns > 0:
            per_page_host /= SCAN_SUBMIT_BATCH   # batched submissions
        host = (per_page_host + SCAN_CONTROL_NS) * self.chunk_pages
        device = (h.device_ns + self.compare_probability * c.device_ns
                  ) * self.chunk_pages
        return OpCost(host, device * DEVICE_OVERLAP[self.profile.transport])

    def run(self, until_ns: float) -> Generator[Any, Any, None]:
        """Scan forever, hopping cores chunk by chunk (ksmd floats).

        The cpu backend holds its core for the whole chunk (hash +
        compare are inline); offloaded backends submit mini-batches and
        sleep while the device hashes/compares, releasing the core.
        """
        node = self.node
        transport = self.profile.transport
        weight = POLLUTION_WEIGHT[transport] * self.pollution_scale
        while node.sim.now < until_ns:
            cost = self._chunk_cost()
            core = node.next_core_rr()
            if cost.device_ns <= 0:
                yield core.acquire()
                node.pollute_start("ksm", weight)
                try:
                    yield Timeout(cost.host_ns)
                    node.feature_core_busy_ns += cost.host_ns
                finally:
                    node.pollute_stop("ksm")
                    core.release()
            else:
                mini = 4 if transport == "cxl" else 8
                slices = max(1, self.chunk_pages // mini)
                submit = cost.host_ns * SUBMIT_FRACTION / slices
                wake = cost.host_ns * (1 - SUBMIT_FRACTION) / slices
                device = max(MIN_DEVICE_SLEEP_NS, cost.device_ns / slices)
                for __ in range(slices):
                    yield core.acquire()
                    try:
                        yield Timeout(submit)
                        node.feature_core_busy_ns += submit
                    finally:
                        core.release()
                    node.pollute_start("ksm", weight)
                    try:
                        yield Timeout(device)
                    finally:
                        node.pollute_stop("ksm")
                    yield core.acquire()
                    try:
                        yield Timeout(wake)
                        node.feature_core_busy_ns += wake
                    finally:
                        core.release()
            self.pages_scanned += self.chunk_pages
            yield Timeout(self.sleep_between_chunks_ns)
