"""Active/inactive LRU page lists (the reclaim candidate source).

kswapd swaps out from the tail of the inactive list; referenced pages get
a second chance by rotating to the active list, mirroring Linux's
two-list clock approximation.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, Optional

from repro.errors import KernelError
from repro.kernel.page import Page


class LruLists:
    """Two-list LRU over page frames."""

    def __init__(self) -> None:
        # OrderedDict pfn -> Page; front = least recently used.
        self._active: "OrderedDict[int, Page]" = OrderedDict()
        self._inactive: "OrderedDict[int, Page]" = OrderedDict()

    # -- membership -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._active) + len(self._inactive)

    def __contains__(self, page: Page) -> bool:
        return page.pfn in self._active or page.pfn in self._inactive

    @property
    def active_count(self) -> int:
        return len(self._active)

    @property
    def inactive_count(self) -> int:
        return len(self._inactive)

    # -- insertion / touching ---------------------------------------------------

    def add(self, page: Page) -> None:
        """New mappings start on the inactive list (like a faulted-in
        page without the referenced bit)."""
        if page in self:
            raise KernelError(f"pfn {page.pfn} already on an LRU list")
        self._inactive[page.pfn] = page

    def touch(self, page: Page) -> None:
        """Mark the page referenced; a second touch promotes it."""
        if page.pfn in self._active:
            self._active.move_to_end(page.pfn)
            page.referenced = True
        elif page.pfn in self._inactive:
            if page.referenced:
                del self._inactive[page.pfn]
                self._active[page.pfn] = page
                page.referenced = False
            else:
                page.referenced = True
                self._inactive.move_to_end(page.pfn)
        else:
            raise KernelError(f"touch of unmapped pfn {page.pfn}")

    def remove(self, page: Page) -> None:
        if self._active.pop(page.pfn, None) is None:
            if self._inactive.pop(page.pfn, None) is None:
                raise KernelError(f"pfn {page.pfn} not on any LRU list")

    # -- reclaim -----------------------------------------------------------------

    def isolate_coldest(self) -> Optional[Page]:
        """Take the best reclaim candidate off the lists (inactive tail
        first; deactivate an active page when inactive is empty)."""
        if self._inactive:
            __, page = self._inactive.popitem(last=False)
            return page
        if self._active:
            __, page = self._active.popitem(last=False)
            page.referenced = False
            return page
        return None

    def rotate_to_inactive(self, count: int) -> int:
        """Age ``count`` pages from the active head to the inactive tail
        (kswapd's balancing pass).  Returns how many moved."""
        moved = 0
        while moved < count and self._active:
            __, page = self._active.popitem(last=False)
            page.referenced = False
            self._inactive[page.pfn] = page
            moved += 1
        return moved

    def pages(self) -> Iterator[Page]:
        yield from self._active.values()
        yield from self._inactive.values()
