"""Content-interned, refcounted page store.

The ksm/zswap studies are *by construction* full of byte-identical
pages — guest template pages, same-filled swap pages, repeated
compressed blobs.  The modeled device dedupes them; the simulator's
host memory should too.  :class:`PageStore` interns page-sized byte
strings by the same content hash the work cache uses
(:func:`~repro.kernel.workcache.cached_xxhash32`), with full-equality
collision chains, so every mapping of identical content shares one
canonical ``bytes`` object.

Copy-on-write falls out of Python's ``bytes`` immutability: writers
never mutate the canonical object — a write path *releases* the old
content and interns the new one (see ``VirtualMachine.write``), which
is the transparent copy-out.  Refcounts exist so the store can evict a
content entry the moment its last mapping goes away instead of pinning
every page ever seen; :meth:`release` is strict — over-releasing raises
rather than silently corrupting the count — and
:meth:`assert_balanced` lets tests prove no mapping leaked.

Poisoned pages are **never** interned: poison is per-physical-copy
state (a poisoned frame's bytes are known-bad), so folding it into a
shared canonical object would propagate the poison to innocent
mappings.  Callers pass ``poisoned=True`` and get their private buffer
back unshared.

Control follows the work-cache idiom: ``REPRO_PAGESTORE=0`` disables
interning (every caller keeps its private buffer); default on.  The
global :data:`PAGE_STORE` is surfaced by ``repro speed`` via
:meth:`snapshot` — intern hit rate and bytes deduplicated.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.kernel.workcache import cached_xxhash32

__all__ = ["PageStore", "PAGE_STORE", "set_pagestore", "pagestore_enabled"]

_forced: Optional[bool] = None


def set_pagestore(enabled: Optional[bool]) -> None:
    """Force content interning on/off; ``None`` defers to
    ``REPRO_PAGESTORE``."""
    global _forced
    _forced = enabled


def pagestore_enabled() -> bool:
    """Whether new page owners should intern their contents.

    Sampled at owner construction (VM / zswap pool build), not per
    page, so intern/release pairing stays consistent over an owner's
    life even if the ambient switch moves.
    """
    if _forced is not None:
        return _forced
    return os.environ.get("REPRO_PAGESTORE", "1").lower() not in (
        "0", "false", "off")


class PageStore:
    """Refcounted intern table: content hash → equality-checked chain."""

    __slots__ = ("_entries", "hits", "misses", "releases",
                 "poison_rejects", "bytes_deduped")

    def __init__(self) -> None:
        # hash -> [[canonical bytes, refcount], ...] (collision chain).
        self._entries: dict[int, list[list]] = {}
        self.hits = 0
        self.misses = 0
        self.releases = 0
        self.poison_rejects = 0
        self.bytes_deduped = 0

    # -- interning ------------------------------------------------------

    def intern(self, content: bytes, poisoned: bool = False) -> bytes:
        """Return the canonical object for ``content``, refcount +1.

        A poisoned buffer is returned untouched and untracked — its
        bytes must stay private to the one damaged physical copy.
        """
        if poisoned:
            self.poison_rejects += 1
            return content
        h = cached_xxhash32(content)
        chain = self._entries.get(h)
        if chain is None:
            self._entries[h] = [[content, 1]]
            self.misses += 1
            return content
        for pair in chain:
            canonical = pair[0]
            if canonical is content or canonical == content:
                pair[1] += 1
                self.hits += 1
                if canonical is not content:
                    self.bytes_deduped += len(content)
                return canonical
        chain.append([content, 1])
        self.misses += 1
        return content

    def release(self, content: bytes) -> None:
        """Drop one reference to interned ``content``; frees the entry at
        zero.  Raises ``KeyError`` for content this store never interned
        (or already fully released) — leaks must fail loudly."""
        h = cached_xxhash32(content)
        chain = self._entries.get(h)
        if chain is not None:
            for i, pair in enumerate(chain):
                if pair[0] is content or pair[0] == content:
                    pair[1] -= 1
                    self.releases += 1
                    if pair[1] <= 0:
                        del chain[i]
                        if not chain:
                            del self._entries[h]
                    return
        raise KeyError(f"release of un-interned content "
                       f"(hash 0x{h:08x}, {len(content)} B)")

    # -- introspection --------------------------------------------------

    @property
    def live_contents(self) -> int:
        """Distinct canonical byte strings currently interned."""
        return sum(len(chain) for chain in self._entries.values())

    @property
    def live_refs(self) -> int:
        return sum(pair[1] for chain in self._entries.values()
                   for pair in chain)

    @property
    def live_bytes(self) -> int:
        """Host memory actually held by canonical contents."""
        return sum(len(pair[0]) for chain in self._entries.values()
                   for pair in chain)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def assert_balanced(self) -> None:
        """Every intern must have been released: the store is empty.

        Leaks name their content hashes (with refcount and size) so a
        checkpoint round-trip that double-installed or under-released a
        store is debuggable from the message alone, not just countable.
        """
        if self._entries:
            rows = [
                f"0x{h:08x} ({pair[1]} ref(s), {len(pair[0])} B)"
                for h in sorted(self._entries)
                for pair in self._entries[h]
            ]
            shown, more = rows[:8], len(rows) - 8
            detail = ", ".join(shown) + (f", ... {more} more" if more > 0
                                         else "")
            raise AssertionError(
                f"page store leaked {self.live_refs} reference(s) across "
                f"{self.live_contents} content(s): {detail}")

    def reset(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.releases = 0
        self.poison_rejects = 0
        self.bytes_deduped = 0

    # -- checkpointing ----------------------------------------------------

    def __reduce_ex__(self, protocol):
        # The process-global store pickles by *identity* (a module-global
        # reference, like NO_FAULTS): a snapshotted graph that holds
        # PAGE_STORE — every interning VM does — must reconnect to the
        # live global on restore, so its releases land where the
        # checkpoint's ambient state was installed.  Private stores still
        # deep-copy.
        if self is PAGE_STORE:
            return "PAGE_STORE"
        return super().__reduce_ex__(protocol)

    def state(self) -> dict:
        """A detached copy of the full store state (chains *and*
        counters) for :mod:`repro.sim.checkpoint`.  The canonical bytes
        objects themselves are shared, not copied — pickling this dict
        alongside a platform graph keeps a restored platform's pages and
        the restored store's entries the same objects."""
        return {
            "entries": {h: [[pair[0], pair[1]] for pair in chain]
                        for h, chain in self._entries.items()},
            "counters": (self.hits, self.misses, self.releases,
                         self.poison_rejects, self.bytes_deduped),
        }

    def install_state(self, state: Optional[dict]) -> None:
        """Replace this store's contents with a captured :meth:`state`
        (``None`` is a no-op: the snapshot skipped ambient capture).
        Chains are re-copied so the installed store never aliases the
        mutable pairs of whoever produced the state."""
        if state is None:
            return
        self._entries = {h: [[pair[0], pair[1]] for pair in chain]
                         for h, chain in state["entries"].items()}
        (self.hits, self.misses, self.releases,
         self.poison_rejects, self.bytes_deduped) = state["counters"]

    def snapshot(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "releases": self.releases,
            "poison_rejects": self.poison_rejects,
            "hit_rate": round(self.hit_rate, 4),
            "bytes_deduped": self.bytes_deduped,
            "live_contents": self.live_contents,
            "live_refs": self.live_refs,
            "live_bytes": self.live_bytes,
        }


PAGE_STORE = PageStore()
