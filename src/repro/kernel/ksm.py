"""ksm: kernel samepage merging (SVI-B).

The scanner walks guest pages incrementally.  Per page it computes the
32-bit xxhash *change hint*; a page whose hint is unchanged since the
last pass is a merge candidate.  Candidates are checked against the
**stable tree** (already-merged content) and then the **unstable tree**
(candidates from this pass); equality is established by byte-by-byte
comparison — the two CPU- and memory-intensive functions the paper
offloads.

Timing flows through the :class:`~repro.core.offload.OffloadEngine`
(``cpu`` / ``cxl`` / ``pcie-dma`` / ``pcie-rdma``), so the same scanner
drives both the functional dedup tests and the Fig-8 interference runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator

from repro.core.offload import OffloadEngine, OffloadReport
from repro.errors import FaultError, KernelError
from repro.faults import HealthState
from repro.kernel.vm import VirtualMachine, VmPage
from repro.kernel.workcache import cached_xxhash32
from repro.resilience import NO_RESILIENCE
from repro.units import PAGE_SIZE


@dataclass
class SharedPage:
    """One stable-tree node: a merged physical page."""

    content: bytes
    sharers: int = 1


@dataclass
class KsmStats:
    pages_scanned: int = 0
    hash_computations: int = 0
    comparisons: int = 0
    pages_merged: int = 0
    stable_nodes: int = 0
    fallbacks: int = 0       # operations served by the fallback transport
    host_cpu_ns: float = 0.0

    @property
    def pages_saved(self) -> int:
        """Physical pages reclaimed by merging (sharers - 1 per node)."""
        return self.pages_merged


class Ksm:
    """The samepage-merging scanner."""

    def __init__(self, engine: OffloadEngine, transport: str,
                 vms: list[VirtualMachine], functional: bool = True,
                 fallback_transport: str = "cpu",
                 policy: Any = NO_RESILIENCE):
        if not vms:
            raise KernelError("ksm needs at least one VM to scan")
        self.engine = engine
        self.transport = transport
        self.fallback_transport = fallback_transport
        self.policy = policy
        self.vms = vms
        self.functional = functional
        self._stable: Dict[bytes, SharedPage] = {}
        self._unstable: Dict[bytes, tuple[VirtualMachine, VmPage]] = {}
        self._checksums: Dict[tuple[str, int], int] = {}
        self._cursor = 0                       # flat scan position
        self._scan_list = [(vm, page) for vm in vms for page in vm.pages()]
        self.stats = KsmStats()

    # ------------------------------------------------------------------
    # graceful degradation
    # ------------------------------------------------------------------

    def _transport_now(self) -> str:
        """Reroute to the fallback transport while the offload device is
        FAILED (scanning must make progress through a device death).
        A FAILED device with a due recovery probe gets the configured
        transport back so the engine's half-open machinery can run."""
        if (self.transport != self.fallback_transport
                and self.engine.health.state is HealthState.FAILED
                and not self.engine.health.probe_due(self.engine.p.sim.now)):
            self.stats.fallbacks += 1
            return self.fallback_transport
        return self.transport

    def _hash_op(self, data) -> Generator[Any, Any, OffloadReport]:
        if self.policy.armed and self.transport == "cxl":
            return (yield from self.policy.offload_op("hash", data=data))
        transport = self._transport_now()
        try:
            return (yield from self.engine.hash_page(transport, data=data))
        except FaultError:
            if transport == self.fallback_transport:
                raise
            self.stats.fallbacks += 1
            return (yield from self.engine.hash_page(
                self.fallback_transport, data=data))

    def _compare_op(self, a, b,
                    nbytes: int = PAGE_SIZE) -> Generator[Any, Any,
                                                          OffloadReport]:
        if self.policy.armed and self.transport == "cxl":
            return (yield from self.policy.offload_op(
                "compare", a=a, b=b, nbytes=nbytes))
        transport = self._transport_now()
        try:
            return (yield from self.engine.compare_pages(
                transport, a=a, b=b, nbytes=nbytes))
        except FaultError:
            if transport == self.fallback_transport:
                raise
            self.stats.fallbacks += 1
            return (yield from self.engine.compare_pages(
                self.fallback_transport, a=a, b=b, nbytes=nbytes))

    # ------------------------------------------------------------------
    # scanning
    # ------------------------------------------------------------------

    def scan_pages(self, count: int) -> Generator[Any, Any, int]:
        """Timed process: scan the next ``count`` pages (wrapping).
        Returns the number of merges performed in this batch.

        A full pass rebuilds the unstable tree, as Linux does.
        """
        merged = 0
        for __ in range(count):
            if self._cursor == 0:
                self._unstable.clear()
            vm, page = self._scan_list[self._cursor]
            self._cursor = (self._cursor + 1) % len(self._scan_list)
            merged += yield from self._scan_one(vm, page)
        return merged

    def full_scan(self) -> Generator[Any, Any, int]:
        """One complete pass over every scannable page."""
        return (yield from self.scan_pages(len(self._scan_list)))

    def _scan_one(self, vm: VirtualMachine,
                  page: VmPage) -> Generator[Any, Any, int]:
        self.stats.pages_scanned += 1
        if page.shared:
            return 0     # already merged; nothing to do

        # Change hint: the offloaded xxhash (SVI-B).
        report = yield from self._hash_op(
            page.content if self.functional else None)
        self.stats.hash_computations += 1
        self.stats.host_cpu_ns += report.host_cpu_ns
        checksum = (report.result if report.result is not None
                    else cached_xxhash32(page.content))

        key = (vm.name, page.vpn)
        previous = self._checksums.get(key)
        self._checksums[key] = checksum

        # Stable tree first: merge with an existing shared page.
        node = self._stable.get(page.content)
        if node is not None:
            yield from self._compare(page.content, node.content)
            node.sharers += 1
            page.shared = True
            self.stats.pages_merged += 1
            return 1

        # Volatile pages (hint changed) never enter the unstable tree.
        if previous is None or previous != checksum:
            return 0

        # Unstable tree: merge with a candidate from this pass.
        candidate = self._unstable.get(page.content)
        if candidate is not None:
            other_vm, other_page = candidate
            if other_page is page:
                return 0
            yield from self._compare(page.content, other_page.content)
            shared = SharedPage(page.content, sharers=2)
            self._stable[page.content] = shared
            self.stats.stable_nodes += 1
            page.shared = True
            other_page.shared = True
            del self._unstable[page.content]
            self.stats.pages_merged += 1
            return 1

        # Insert into the unstable tree (ordering established by a
        # partial byte-compare against a neighbour, charged as one
        # early-out comparison).
        if self._unstable:
            neighbour = next(iter(self._unstable))
            diff_at = _first_difference(page.content, neighbour)
            yield from self._compare_op(
                page.content if self.functional else None,
                neighbour if self.functional else None,
                nbytes=min(PAGE_SIZE, diff_at + 64),
            )
            self.stats.comparisons += 1
            self.stats.host_cpu_ns += self.engine.reports[-1].host_cpu_ns
        self._unstable[page.content] = (vm, page)
        return 0

    def _compare(self, a: bytes, b: bytes) -> Generator[Any, Any, None]:
        """Full byte-by-byte comparison via the configured transport."""
        report = yield from self._compare_op(
            a if self.functional else None,
            b if self.functional else None,
        )
        self.stats.comparisons += 1
        self.stats.host_cpu_ns += report.host_cpu_ns
        if self.functional and report.result not in (-1, None):
            raise KernelError("ksm attempted to merge differing pages")

    # ------------------------------------------------------------------
    # CoW breaking (guest writes)
    # ------------------------------------------------------------------

    def unshare(self, vm: VirtualMachine, vpn: int, new_content: bytes) -> None:
        """A guest write to a merged page: break the share (CoW)."""
        page = vm.page_of(vpn)
        was_shared = page.shared
        old_content = page.content
        vm.write(vpn, new_content)
        if not was_shared:
            return
        node = self._stable.get(old_content)
        if node is None:
            raise KernelError("shared page missing from the stable tree")
        node.sharers -= 1
        if node.sharers <= 0:
            del self._stable[old_content]

    @property
    def shared_pages(self) -> int:
        return sum(node.sharers for node in self._stable.values())

    @property
    def saved_pages(self) -> int:
        """Physical frames freed: every sharer beyond the first."""
        return sum(node.sharers - 1 for node in self._stable.values())


def _first_difference(a: bytes, b: bytes) -> int:
    n = min(len(a), len(b))
    for i in range(n):
        if a[i] != b[i]:
            return i
    return n
