"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class SimulationError(ReproError):
    """The discrete-event engine was used incorrectly (e.g. a process
    yielded an unknown command, or time went backwards)."""


class ConfigError(ReproError):
    """A configuration value is out of range or inconsistent."""


class CoherenceError(ReproError):
    """A cache-coherence invariant was violated (these indicate bugs in a
    protocol implementation, and are asserted on heavily in tests)."""


class AddressError(ReproError):
    """An address fell outside every mapped region, or was misaligned for
    the requested operation."""


class DeviceError(ReproError):
    """A device was driven outside its supported envelope (e.g. a D2D
    request to an unmapped device-memory region)."""


class OffloadError(ReproError):
    """The offload framework was misused (unknown transport, payload too
    large for the doorbell slot, completion for an unknown tag)."""


class KernelError(ReproError):
    """A simulated-kernel invariant failed (double free of a page frame,
    swap-in of a non-resident page, ...)."""


class WorkloadError(ReproError):
    """A workload generator was configured inconsistently."""


class CheckpointError(ReproError):
    """A simulator snapshot could not be taken or restored (live
    generator-based processes in the graph, unpicklable callbacks, a
    corrupt snapshot file).  The message says which — and how to get to
    a checkpointable state (usually: run the simulator to quiescence)."""


class FaultError(ReproError):
    """Base class for *injected or modeled hardware faults* (RAS events).

    Distinct from the classes above, which flag misuse of the library:
    a ``FaultError`` means the simulated hardware failed while being
    driven correctly.  Robust callers (the offload retry machinery,
    zswap/ksm graceful degradation) catch this base class; the concrete
    subclasses say what broke:

    ``LinkError``
        the CXL/PCIe link is down or was hot-reset mid-transaction;
    ``PoisonError``
        a consumed cache line carried CXL data poison;
    ``OffloadTimeoutError``
        a doorbell command's completion never arrived within the
        per-command timeout (device hang / dropped completion).
    """


class LinkError(FaultError):
    """A message was sent over a dead or resetting interconnect link."""


class PoisonError(FaultError):
    """A read consumed a line marked with CXL data poison."""


class OffloadTimeoutError(FaultError):
    """An offload command timed out waiting for its completion."""
