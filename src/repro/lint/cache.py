"""Content-hash result cache: ``make lint`` re-checks only what changed.

Per-file entries key on the file's own bytes — findings of the per-file
tier depend on nothing else.  The graph tier's findings depend on every
module, so its entry keys on the digest of all ``(path, content-hash)``
pairs; touching any file invalidates exactly the graph entry plus that
file's entry.  Cached values are *post-suppression* findings together
with the per-rule suppressed counts (suppression comments live in the
hashed content, so edits to them invalidate naturally).

``CACHE_VERSION`` folds the rule-catalogue signature into every key:
adding or changing a rule invalidates the whole cache without any
explicit flush.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Iterable, Optional, Tuple

CACHE_VERSION = 1


class ResultCache:
    """A JSON-backed ``key -> {"findings": [...], "suppressed": {...}}``
    map with load/save and an in-memory dirty bit."""

    def __init__(self, path: Path, catalogue_sig: str):
        self.path = path
        self.sig = catalogue_sig
        self._entries: Dict[str, dict] = {}
        self._dirty = False
        self._load()

    # -- persistence --------------------------------------------------------

    def _load(self) -> None:
        try:
            raw = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if raw.get("version") != CACHE_VERSION or raw.get("sig") != self.sig:
            return  # stale cache: rule set or format changed
        entries = raw.get("entries")
        if isinstance(entries, dict):
            self._entries = entries

    def save(self) -> None:
        if not self._dirty:
            return
        payload = {"version": CACHE_VERSION, "sig": self.sig,
                   "entries": self._entries}
        try:
            self.path.write_text(json.dumps(payload), encoding="utf-8")
        except OSError:
            return  # read-only checkout: run uncached
        self._dirty = False

    # -- keys ---------------------------------------------------------------

    def file_key(self, path: str, source: str) -> str:
        # The path is part of the key: cached findings embed it, so two
        # identical files must not share an entry.
        digest = hashlib.sha256(
            f"{path}\0{source}".encode("utf-8")).hexdigest()
        return f"file:{digest}"

    def graph_key(self, named_sources: Iterable[Tuple[str, str]]) -> str:
        whole = hashlib.sha256()
        for path, source in sorted(named_sources):
            part = hashlib.sha256(source.encode("utf-8")).hexdigest()
            whole.update(f"{path}\0{part}\n".encode("utf-8"))
        return f"graph:{whole.hexdigest()}"

    # -- entries ------------------------------------------------------------

    def get(self, key: str) -> Optional[dict]:
        entry = self._entries.get(key)
        if entry is None:
            return None
        if not isinstance(entry.get("findings"), list) or \
                not isinstance(entry.get("suppressed"), dict):
            return None
        return entry

    def put(self, key: str, entry: dict) -> None:
        self._entries[key] = entry
        self._dirty = True


def catalogue_signature() -> str:
    """Digest of every registered rule id + summary, per-file and graph."""
    from repro.lint.core import all_rules
    from repro.lint.graph import GRAPH_RULE_CATALOGUE

    parts = [f"{rule.id}:{rule.summary}" for rule in all_rules()]
    parts += [f"{rid}:{summary}" for rid, summary in GRAPH_RULE_CATALOGUE]
    return hashlib.sha256("\n".join(sorted(parts)).encode()).hexdigest()


def open_cache(path: str) -> ResultCache:
    return ResultCache(Path(path), catalogue_signature())
