"""reprolint core: findings, suppressions, and the file runner.

A *rule* is a named check over one parsed module; running the linter
parses each ``.py`` file exactly once into a :class:`LintModule` (source,
line table, AST, and a few shared derived facts) and hands it to every
registered rule.  Findings are filtered through the suppression comments
before being reported:

``# reprolint: disable=DET101`` (or ``disable=DET101, SIM202``)
    suppress the named rules on this statement;
``# reprolint: disable``
    suppress every rule on this statement;
``# reprolint: disable-file=DET101``
    suppress the named rules for the whole file (anywhere in the file).

A comment on *any* physical line of a multi-line statement suppresses
findings anchored to that statement.  Malformed directives (lowercase
rule ids, unknown keywords) are **not** applied — they are surfaced as
``LINT001``/``LINT002`` warning findings instead, so a typo can never
silently widen a suppression.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Set, Tuple

_MARKER_RE = re.compile(r"#\s*reprolint:\s*([^#]*)")
_RULE_ID_RE = re.compile(r"^[A-Z][A-Z0-9]*$")
# A rule list: `ID` or `ID, ID`; anything after a space is treated as
# justification prose (`disable=PERF402 fault test`).
_RULE_LIST_RE = re.compile(
    r"^\s*([A-Z][A-Z0-9]*(?:\s*,\s*[A-Z][A-Z0-9]*)*)(?:\s+(?![,=])[^=]*)?$")


@dataclass(frozen=True)
class Finding:
    """One lint finding, pointing at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass(frozen=True)
class Rule:
    """A registered lint rule: identifier, one-line rationale, checker."""

    id: str
    summary: str
    check: Callable[["LintModule"], Iterator[Finding]]


@dataclass(frozen=True)
class SuppressionProblem:
    """A ``# reprolint:`` directive that could not be applied."""

    line: int
    col: int
    reason: str
    rule_ids: Tuple[str, ...] = ()   # well-formed but unknown ids


@dataclass
class Suppressions:
    """Parsed suppression state for one module.

    ``per_line`` maps a physical line to the rule ids suppressed there
    (``None`` = every rule); after span expansion it covers every line
    of the statement the directive is attached to.  ``mentioned`` holds
    each well-formed rule id with the directive line it appeared on, for
    the unknown-rule check.
    """

    per_line: Dict[int, Optional[Set[str]]] = field(default_factory=dict)
    per_file: Set[str] = field(default_factory=set)
    problems: List[SuppressionProblem] = field(default_factory=list)
    mentioned: List[Tuple[int, int, str]] = field(default_factory=list)

    def add_line(self, line: int, ids: Optional[Set[str]]) -> None:
        if ids is None or self.per_line.get(line, set()) is None:
            self.per_line[line] = None
        else:
            self.per_line[line] = self.per_line.get(line, set()) | ids

    def covers(self, finding: Finding) -> bool:
        if finding.rule in self.per_file or "*" in self.per_file:
            return True
        ids = self.per_line.get(finding.line, ())
        return ids is None or (bool(ids) and finding.rule in ids)


class LintModule:
    """One parsed source file plus the derived facts rules share."""

    def __init__(self, path: str, source: str, tree: ast.Module):
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self._functions: Optional[List[ast.FunctionDef]] = None
        self._set_typed: Optional[Set[str]] = None
        self._suppressions: Optional[Suppressions] = None
        self._stmt_spans: Optional[List[Tuple[int, int]]] = None

    # -- factories ---------------------------------------------------------

    @classmethod
    def parse(cls, path: Path) -> "LintModule":
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        return cls(str(path), source, tree)

    # -- shared derived facts ---------------------------------------------

    def functions(self) -> List[ast.FunctionDef]:
        """Every function/method definition in the module (nested too)."""
        if self._functions is None:
            self._functions = [
                node for node in ast.walk(self.tree)
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            ]
        return self._functions

    def set_typed_names(self) -> Set[str]:
        """Names the module visibly binds to ``set`` objects.

        Covers ``x = set(...)``, ``x = {literal, set}``, ``x: set[...]``
        and the ``self.x`` forms of each (the attribute name is recorded
        without the ``self.`` prefix, which is how rules look it up).
        """
        if self._set_typed is not None:
            return self._set_typed
        names: Set[str] = set()

        def target_name(target: ast.expr) -> Optional[str]:
            if isinstance(target, ast.Name):
                return target.id
            if isinstance(target, ast.Attribute):
                return target.attr
            return None

        for node in ast.walk(self.tree):
            if isinstance(node, ast.Assign):
                if is_set_expr(node.value):
                    for tgt in node.targets:
                        name = target_name(tgt)
                        if name:
                            names.add(name)
            elif isinstance(node, ast.AnnAssign):
                if annotation_is_set(node.annotation) or (
                        node.value is not None and is_set_expr(node.value)):
                    name = target_name(node.target)
                    if name:
                        names.add(name)
        self._set_typed = names
        return names

    # -- suppression handling ---------------------------------------------

    def suppressions(self) -> Tuple[Dict[int, Optional[Set[str]]], Set[str]]:
        """Backwards-compatible view: ``(per_line, per_file)``."""
        supp = self.suppression_index()
        return supp.per_line, supp.per_file

    def suppression_index(self) -> Suppressions:
        """Parse suppression comments, strictly.

        The directive must be ``disable``/``disable-file``, optionally
        ``= RULE[, RULE...]`` with uppercase rule ids.  Anything else is
        recorded as a problem and **not** applied.  A directive on any
        physical line of a multi-line statement is expanded to cover the
        statement's whole span.
        """
        if self._suppressions is not None:
            return self._suppressions
        supp = Suppressions()
        for lineno, col, comment in self._comments():
            match = _MARKER_RE.search(comment)
            if not match:
                continue
            col += match.start()
            body = match.group(1).strip()
            kind, sep, spec = body.partition("=")
            kind = kind.strip()
            if kind not in ("disable", "disable-file"):
                supp.problems.append(SuppressionProblem(
                    lineno, col,
                    f"unknown reprolint directive {body!r} (expected "
                    "`disable` or `disable-file`)"))
                continue
            if not sep:
                ids: Optional[Set[str]] = None
            else:
                listed = _RULE_LIST_RE.match(spec)
                if not listed:
                    supp.problems.append(SuppressionProblem(
                        lineno, col,
                        f"malformed rule list {spec.strip()!r} in reprolint "
                        "directive (rule ids are uppercase, e.g. DET101)"))
                    continue
                ids = {part.strip()
                       for part in listed.group(1).split(",")}
                for rule_id in sorted(ids):
                    supp.mentioned.append((lineno, col, rule_id))
            if kind == "disable-file":
                supp.per_file.update(ids or {"*"})
            else:
                span = self._statement_span(lineno)
                for covered in range(span[0], span[1] + 1):
                    supp.add_line(covered, ids)
        self._suppressions = supp
        return supp

    def _comments(self) -> List[Tuple[int, int, str]]:
        """``(line, col, text)`` for every real comment token.

        Tokenising (rather than scanning raw lines) keeps directives
        quoted inside docstrings from being parsed as directives.
        """
        import io
        import tokenize

        out: List[Tuple[int, int, str]] = []
        try:
            tokens = tokenize.generate_tokens(
                io.StringIO(self.source).readline)
            for tok in tokens:
                if tok.type == tokenize.COMMENT:
                    out.append((tok.start[0], tok.start[1], tok.string))
        except (tokenize.TokenError, IndentationError, SyntaxError):
            # The module parsed, so this is pathological; fall back to a
            # raw line scan rather than losing suppressions.
            return [(i, 0, line) for i, line in
                    enumerate(self.lines, start=1) if "#" in line]
        return out

    def _statement_span(self, lineno: int) -> Tuple[int, int]:
        """The line range a directive on ``lineno`` suppresses.

        The smallest statement whose physical lines include ``lineno``;
        for compound statements (``if``/``for``/``def``...) only the
        header lines count, so a directive on the header never blankets
        the body.  A comment on its own line outside any statement
        covers just that line.
        """
        if self._stmt_spans is None:
            spans: List[Tuple[int, int]] = []
            for node in ast.walk(self.tree):
                if not isinstance(node, ast.stmt) or node.end_lineno is None:
                    continue
                body = getattr(node, "body", None)
                if isinstance(body, list) and body and \
                        isinstance(body[0], ast.stmt):
                    end = body[0].lineno - 1
                else:
                    end = node.end_lineno
                if end >= node.lineno:
                    spans.append((node.lineno, end))
            self._stmt_spans = sorted(spans, key=lambda s: s[1] - s[0])
        for start, end in self._stmt_spans:
            if start <= lineno <= end:
                return (start, end)
        return (lineno, lineno)


# ---------------------------------------------------------------------------
# Small AST helpers shared by the rule modules
# ---------------------------------------------------------------------------


def is_set_expr(node: ast.expr) -> bool:
    """Is this expression statically a ``set``?"""
    if isinstance(node, ast.Set):
        return True
    if isinstance(node, ast.SetComp):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
    return False


def annotation_is_set(node: ast.expr) -> bool:
    """Does this annotation denote a ``set``/``Set``/``frozenset`` type?"""
    if isinstance(node, ast.Name):
        return node.id in ("set", "Set", "frozenset", "FrozenSet")
    if isinstance(node, ast.Subscript):
        return annotation_is_set(node.value)
    if isinstance(node, ast.Attribute):
        return node.attr in ("Set", "FrozenSet")
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.startswith(("set[", "Set[", "frozenset["))
    return False


def dotted_name(node: ast.expr) -> str:
    """Render ``a.b.c`` attribute chains; empty string when not a chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def contains_yield(fn: ast.FunctionDef) -> bool:
    """Does the function body contain a ``yield`` of its own (not one in
    a nested function)?"""
    for node in ast.walk(fn):
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            if _owning_function(fn, node) is fn:
                return True
    return False


def _owning_function(root: ast.FunctionDef, target: ast.AST) -> ast.AST:
    """The innermost function enclosing ``target`` under ``root``."""
    owner: ast.AST = root
    stack: List[Tuple[ast.AST, ast.AST]] = [(root, root)]
    while stack:
        node, fn = stack.pop()
        if node is target:
            return fn
        for child in ast.iter_child_nodes(node):
            child_fn = child if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ) else fn
            stack.append((child, child_fn))
    return owner


def function_yields(fn: ast.FunctionDef) -> List[ast.AST]:
    """The ``yield``/``yield from`` expressions belonging to ``fn`` itself."""
    out: List[ast.AST] = []
    for node in ast.walk(fn):
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            if _owning_function(fn, node) is fn:
                out.append(node)
    return out


# ---------------------------------------------------------------------------
# Registry and runner
# ---------------------------------------------------------------------------


def all_rules() -> List[Rule]:
    """Every registered rule, id-ordered (import is deferred so the rule
    modules can use the helpers above)."""
    from repro.lint import (
        rules_determinism,
        rules_meta,
        rules_perf,
        rules_process,
        rules_ras,
        rules_units,
    )

    rules: List[Rule] = []
    for module in (rules_determinism, rules_meta, rules_perf,
                   rules_process, rules_ras, rules_units):
        rules.extend(module.RULES)
    return sorted(rules, key=lambda r: r.id)


def iter_python_files(paths: Iterable[str]) -> Iterator[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


@dataclass
class LintReport:
    """The outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: List[str] = field(default_factory=list)
    suppressed: Dict[str, int] = field(default_factory=dict)
    graph: bool = False

    @property
    def clean(self) -> bool:
        return not self.findings and not self.parse_errors

    def count_suppressed(self, rule_id: str, n: int = 1) -> None:
        self.suppressed[rule_id] = self.suppressed.get(rule_id, 0) + n

    def per_rule_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts

    def to_json(self) -> str:
        return json.dumps(
            {
                "files_checked": self.files_checked,
                "graph": self.graph,
                "parse_errors": self.parse_errors,
                "suppressed": {k: self.suppressed[k]
                               for k in sorted(self.suppressed)},
                "findings": [f.to_dict() for f in self.findings],
            },
            indent=2,
        )


def _rule_filter(select: Optional[Set[str]],
                 ignore: Optional[Set[str]]) -> Callable[[str], bool]:
    def wanted(rule_id: str) -> bool:
        if select and rule_id not in select:
            return False
        if ignore and rule_id in ignore:
            return False
        return True
    return wanted


def lint_paths(
    paths: Iterable[str],
    select: Optional[Set[str]] = None,
    ignore: Optional[Set[str]] = None,
    graph: bool = False,
    cache: Optional["ResultCache"] = None,
) -> LintReport:
    """Lint every ``.py`` file under ``paths`` with the registered rules.

    With ``graph=True`` the whole-program tier (``repro.lint.graph``)
    runs after the per-file rules: every module is parsed exactly once
    and the parse is shared between the two tiers.  ``cache`` keys
    results by content hash, so unchanged files (and an unchanged
    project, for the graph tier) skip rule execution entirely.
    """
    from repro.lint.graph import run_graph_passes
    from repro.lint.graph.loader import module_name_for

    # Rules always all run per file; ``select``/``ignore`` filter at
    # report time so cached results stay selection-independent.
    wanted = _rule_filter(select, ignore)
    root_list = list(paths)
    report = LintReport(graph=graph)

    # Phase 1: read everything, so the graph cache key is known before
    # any parsing happens.
    sources: List[Tuple[Path, Optional[str]]] = []
    for path in iter_python_files(root_list):
        try:
            sources.append((path, path.read_text(encoding="utf-8")))
        except UnicodeDecodeError as exc:
            report.parse_errors.append(f"{path}: {exc}")
            sources.append((path, None))
    graph_key = None
    graph_hit = None
    if graph and cache is not None:
        graph_key = cache.graph_key(
            (str(p), s) for p, s in sources if s is not None)
        graph_hit = cache.get(graph_key)

    # Phase 2: per-file tier (cached per file), collecting parses for
    # the graph tier when it still has to run.
    graph_modules: List[Tuple[str, LintModule]] = []
    suppressions_by_path: Dict[str, Suppressions] = {}
    need_parse_all = graph and graph_hit is None
    for path, source in sources:
        if source is None:
            continue
        report.files_checked += 1
        file_key = (cache.file_key(str(path), source)
                    if cache is not None else None)
        cached = cache.get(file_key) if file_key else None
        module: Optional[LintModule] = None
        if cached is None or need_parse_all:
            try:
                tree = ast.parse(source, filename=str(path))
            except SyntaxError as exc:
                report.parse_errors.append(f"{path}: {exc}")
                continue
            module = LintModule(str(path), source, tree)
        if module is not None:
            suppressions_by_path[str(module.path)] = \
                module.suppression_index()
            if graph:
                graph_modules.append(
                    (module_name_for(str(path), root_list), module))
        if cached is not None:
            for item in cached["findings"]:
                if wanted(item["rule"]):
                    report.findings.append(Finding(**item))
            for rule_id, n in cached["suppressed"].items():
                if wanted(rule_id):
                    report.count_suppressed(rule_id, n)
            continue
        assert module is not None
        supp = module.suppression_index()
        kept: List[Finding] = []
        hidden: Dict[str, int] = {}
        for rule in all_rules():
            for finding in rule.check(module):
                if supp.covers(finding):
                    hidden[finding.rule] = hidden.get(finding.rule, 0) + 1
                else:
                    kept.append(finding)
        if cache is not None and file_key:
            cache.put(file_key, {
                "findings": [f.to_dict() for f in kept],
                "suppressed": hidden,
            })
        for finding in kept:
            if wanted(finding.rule):
                report.findings.append(finding)
        for rule_id, n in hidden.items():
            if wanted(rule_id):
                report.count_suppressed(rule_id, n)

    # Phase 3: the whole-program tier.
    if graph:
        if graph_hit is not None:
            for item in graph_hit["findings"]:
                if wanted(item["rule"]):
                    report.findings.append(Finding(**item))
            for rule_id, n in graph_hit["suppressed"].items():
                if wanted(rule_id):
                    report.count_suppressed(rule_id, n)
        else:
            kept = []
            hidden = {}
            for finding in run_graph_passes(graph_modules):
                supp = suppressions_by_path.get(finding.path)
                if supp is not None and supp.covers(finding):
                    hidden[finding.rule] = hidden.get(finding.rule, 0) + 1
                else:
                    kept.append(finding)
            if cache is not None and graph_key:
                cache.put(graph_key, {
                    "findings": [f.to_dict() for f in kept],
                    "suppressed": hidden,
                })
            for finding in kept:
                if wanted(finding.rule):
                    report.findings.append(finding)
            for rule_id, n in hidden.items():
                if wanted(rule_id):
                    report.count_suppressed(rule_id, n)
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return report
