"""reprolint core: findings, suppressions, and the file runner.

A *rule* is a named check over one parsed module; running the linter
parses each ``.py`` file exactly once into a :class:`LintModule` (source,
line table, AST, and a few shared derived facts) and hands it to every
registered rule.  Findings are filtered through the suppression comments
before being reported:

``# reprolint: disable=DET101`` (or ``disable=DET101,SIM202``)
    suppress the named rules on this line only;
``# reprolint: disable``
    suppress every rule on this line;
``# reprolint: disable-file=DET101``
    suppress the named rules for the whole file.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Set, Tuple

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*(disable-file|disable)\s*(?:=\s*([A-Z0-9, ]+))?")


@dataclass(frozen=True)
class Finding:
    """One lint finding, pointing at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass(frozen=True)
class Rule:
    """A registered lint rule: identifier, one-line rationale, checker."""

    id: str
    summary: str
    check: Callable[["LintModule"], Iterator[Finding]]


class LintModule:
    """One parsed source file plus the derived facts rules share."""

    def __init__(self, path: str, source: str, tree: ast.Module):
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self._functions: Optional[List[ast.FunctionDef]] = None
        self._set_typed: Optional[Set[str]] = None

    # -- factories ---------------------------------------------------------

    @classmethod
    def parse(cls, path: Path) -> "LintModule":
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        return cls(str(path), source, tree)

    # -- shared derived facts ---------------------------------------------

    def functions(self) -> List[ast.FunctionDef]:
        """Every function/method definition in the module (nested too)."""
        if self._functions is None:
            self._functions = [
                node for node in ast.walk(self.tree)
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            ]
        return self._functions

    def set_typed_names(self) -> Set[str]:
        """Names the module visibly binds to ``set`` objects.

        Covers ``x = set(...)``, ``x = {literal, set}``, ``x: set[...]``
        and the ``self.x`` forms of each (the attribute name is recorded
        without the ``self.`` prefix, which is how rules look it up).
        """
        if self._set_typed is not None:
            return self._set_typed
        names: Set[str] = set()

        def target_name(target: ast.expr) -> Optional[str]:
            if isinstance(target, ast.Name):
                return target.id
            if isinstance(target, ast.Attribute):
                return target.attr
            return None

        for node in ast.walk(self.tree):
            if isinstance(node, ast.Assign):
                if is_set_expr(node.value):
                    for tgt in node.targets:
                        name = target_name(tgt)
                        if name:
                            names.add(name)
            elif isinstance(node, ast.AnnAssign):
                if annotation_is_set(node.annotation) or (
                        node.value is not None and is_set_expr(node.value)):
                    name = target_name(node.target)
                    if name:
                        names.add(name)
        self._set_typed = names
        return names

    # -- suppression handling ---------------------------------------------

    def suppressions(self) -> Tuple[Dict[int, Optional[Set[str]]], Set[str]]:
        """Parse suppression comments.

        Returns ``(per_line, per_file)`` where ``per_line`` maps a line
        number to a set of suppressed rule ids (``None`` = all rules) and
        ``per_file`` is the set of rule ids disabled module-wide.
        """
        per_line: Dict[int, Optional[Set[str]]] = {}
        per_file: Set[str] = set()
        for lineno, text in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(text)
            if not match:
                continue
            kind, rules = match.group(1), match.group(2)
            ids = ({r.strip() for r in rules.split(",") if r.strip()}
                   if rules else None)
            if kind == "disable-file":
                per_file.update(ids or {"*"})
            elif ids is None or per_line.get(lineno, set()) is None:
                per_line[lineno] = None
            else:
                per_line[lineno] = per_line.get(lineno, set()) | ids
        return per_line, per_file


# ---------------------------------------------------------------------------
# Small AST helpers shared by the rule modules
# ---------------------------------------------------------------------------


def is_set_expr(node: ast.expr) -> bool:
    """Is this expression statically a ``set``?"""
    if isinstance(node, ast.Set):
        return True
    if isinstance(node, ast.SetComp):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
    return False


def annotation_is_set(node: ast.expr) -> bool:
    """Does this annotation denote a ``set``/``Set``/``frozenset`` type?"""
    if isinstance(node, ast.Name):
        return node.id in ("set", "Set", "frozenset", "FrozenSet")
    if isinstance(node, ast.Subscript):
        return annotation_is_set(node.value)
    if isinstance(node, ast.Attribute):
        return node.attr in ("Set", "FrozenSet")
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.startswith(("set[", "Set[", "frozenset["))
    return False


def dotted_name(node: ast.expr) -> str:
    """Render ``a.b.c`` attribute chains; empty string when not a chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def contains_yield(fn: ast.FunctionDef) -> bool:
    """Does the function body contain a ``yield`` of its own (not one in
    a nested function)?"""
    for node in ast.walk(fn):
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            if _owning_function(fn, node) is fn:
                return True
    return False


def _owning_function(root: ast.FunctionDef, target: ast.AST) -> ast.AST:
    """The innermost function enclosing ``target`` under ``root``."""
    owner: ast.AST = root
    stack: List[Tuple[ast.AST, ast.AST]] = [(root, root)]
    while stack:
        node, fn = stack.pop()
        if node is target:
            return fn
        for child in ast.iter_child_nodes(node):
            child_fn = child if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ) else fn
            stack.append((child, child_fn))
    return owner


def function_yields(fn: ast.FunctionDef) -> List[ast.AST]:
    """The ``yield``/``yield from`` expressions belonging to ``fn`` itself."""
    out: List[ast.AST] = []
    for node in ast.walk(fn):
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            if _owning_function(fn, node) is fn:
                out.append(node)
    return out


# ---------------------------------------------------------------------------
# Registry and runner
# ---------------------------------------------------------------------------


def all_rules() -> List[Rule]:
    """Every registered rule, id-ordered (import is deferred so the rule
    modules can use the helpers above)."""
    from repro.lint import (
        rules_determinism,
        rules_perf,
        rules_process,
        rules_ras,
        rules_units,
    )

    rules: List[Rule] = []
    for module in (rules_determinism, rules_perf, rules_process,
                   rules_ras, rules_units):
        rules.extend(module.RULES)
    return sorted(rules, key=lambda r: r.id)


def iter_python_files(paths: Iterable[str]) -> Iterator[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


@dataclass
class LintReport:
    """The outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings and not self.parse_errors

    def to_json(self) -> str:
        return json.dumps(
            {
                "files_checked": self.files_checked,
                "parse_errors": self.parse_errors,
                "findings": [f.to_dict() for f in self.findings],
            },
            indent=2,
        )


def lint_paths(
    paths: Iterable[str],
    select: Optional[Set[str]] = None,
    ignore: Optional[Set[str]] = None,
) -> LintReport:
    """Lint every ``.py`` file under ``paths`` with the registered rules."""
    rules = all_rules()
    if select:
        rules = [r for r in rules if r.id in select]
    if ignore:
        rules = [r for r in rules if r.id not in ignore]
    report = LintReport()
    for path in iter_python_files(paths):
        try:
            module = LintModule.parse(path)
        except (SyntaxError, UnicodeDecodeError) as exc:
            report.parse_errors.append(f"{path}: {exc}")
            continue
        report.files_checked += 1
        per_line, per_file = module.suppressions()
        for rule in rules:
            if rule.id in per_file or "*" in per_file:
                continue
            for finding in rule.check(module):
                suppressed = per_line.get(finding.line, ())
                if suppressed is None or (suppressed and
                                          finding.rule in suppressed):
                    continue
                report.findings.append(finding)
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return report
