"""Determinism-hazard rules (DET1xx).

The simulator's claim is bit-exact reproducibility: a seeded experiment
must produce the identical figure on every run.  Three things break that
silently: reading the wall clock, drawing from an unseeded RNG, and
letting ``set`` iteration order leak into event scheduling or output.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.lint.core import (
    Finding,
    LintModule,
    Rule,
    dotted_name,
    is_set_expr,
)

# Files allowed to read the wall clock / host entropy: the RNG seed
# helper, the CLI (which reports human-facing elapsed time), and the
# speed benchmarks (where wall time is the measurand).
_CLOCK_ALLOWED_SUFFIXES = ("sim/rng.py", "repro/cli.py",
                           "analysis/speed.py")

_WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "datetime.now",
    "datetime.utcnow",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
}

_NUMPY_RANDOM_PREFIXES = ("np.random.", "numpy.random.")


def _allowed_clock_file(path: str) -> bool:
    normalized = path.replace("\\", "/")
    return normalized.endswith(_CLOCK_ALLOWED_SUFFIXES)


def check_det101(module: LintModule) -> Iterator[Finding]:
    """DET101: wall-clock read outside ``sim/rng.py`` and the CLI."""
    if _allowed_clock_file(module.path):
        return
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name in _WALL_CLOCK_CALLS:
            yield Finding(
                "DET101", module.path, node.lineno, node.col_offset,
                f"wall-clock read `{name}()` leaks host time into a "
                "deterministic simulation; use `sim.now` (sim time) or "
                "confine wall-clock reporting to the CLI",
            )


def check_det102(module: LintModule) -> Iterator[Finding]:
    """DET102: unseeded randomness outside ``sim/rng.py``."""
    allowed = _allowed_clock_file(module.path)
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import) and not allowed:
            for alias in node.names:
                if alias.name == "random":
                    yield Finding(
                        "DET102", module.path, node.lineno, node.col_offset,
                        "stdlib `random` is process-seeded; draw from a "
                        "`DeterministicRng` (repro.sim.rng) instead",
                    )
        elif isinstance(node, ast.ImportFrom) and not allowed:
            if node.module == "random":
                yield Finding(
                    "DET102", module.path, node.lineno, node.col_offset,
                    "stdlib `random` is process-seeded; draw from a "
                    "`DeterministicRng` (repro.sim.rng) instead",
                )
        elif isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name.endswith("default_rng") and not (node.args or node.keywords):
                yield Finding(
                    "DET102", module.path, node.lineno, node.col_offset,
                    "`default_rng()` without a seed draws from OS entropy; "
                    "pass an explicit seed (see DeterministicRng)",
                )
            elif (name.startswith(_NUMPY_RANDOM_PREFIXES) and not allowed
                  and not (name.endswith("default_rng")
                           and (node.args or node.keywords))):
                # np.random.default_rng(seed) constructs an explicitly
                # seeded generator — that is the deterministic idiom, not
                # the global-stream hazard this rule exists for.
                yield Finding(
                    "DET102", module.path, node.lineno, node.col_offset,
                    f"`{name}` uses numpy's global (unseeded) stream; fork "
                    "a `DeterministicRng` instead",
                )


def _iter_targets(node: ast.AST) -> List[ast.expr]:
    """The iterables a node loops over (for / comprehensions)."""
    if isinstance(node, (ast.For, ast.AsyncFor)):
        return [node.iter]
    if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                         ast.GeneratorExp)):
        return [gen.iter for gen in node.generators]
    return []


def check_det103(module: LintModule) -> Iterator[Finding]:
    """DET103: iteration over a ``set`` whose order can leak into event
    scheduling, accumulated floats, or printed output."""
    set_names = module.set_typed_names()
    for node in ast.walk(module.tree):
        for target in _iter_targets(node):
            hazard = None
            if is_set_expr(target):
                hazard = "a set expression"
            elif isinstance(target, ast.Name) and target.id in set_names:
                hazard = f"set-typed name `{target.id}`"
            elif (isinstance(target, ast.Attribute)
                  and target.attr in set_names):
                hazard = f"set-typed attribute `{target.attr}`"
            if hazard is not None:
                yield Finding(
                    "DET103", module.path, target.lineno, target.col_offset,
                    f"iterating {hazard}: set order is hash-randomized "
                    "across runs for object keys; iterate `sorted(...)` or "
                    "use an ordered container",
                )


RULES = [
    Rule("DET101", "wall-clock read in simulation code", check_det101),
    Rule("DET102", "unseeded randomness", check_det102),
    Rule("DET103", "set iteration order leak", check_det103),
]
