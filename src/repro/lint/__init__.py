"""`repro.lint`: validation machinery for the simulator.

Two layers share this package:

**reprolint** (static analysis)
    An AST-based lint pass with rules specific to this codebase:
    determinism hazards (wall-clock reads, unseeded randomness, ordering
    leaks through ``set`` iteration), sim-process protocol misuse
    (yielding non-commands, re-entering the event loop from a process,
    un-defused failable events), and unit hygiene (float timestamp
    equality, raw magnitudes where :mod:`repro.units` helpers belong).
    Run it as ``python -m repro lint src tests``; every rule is
    documented in ``docs/LINT.md`` and suppressible with a trailing
    ``# reprolint: disable=RULE`` comment.

**runtime sanitizers**
    :class:`~repro.lint.sanitizer.CoherenceSanitizer` checks the global
    MESI+Owned invariants behind Table III after every line-state
    transition, and :class:`~repro.lint.races.RaceDetector` flags two
    processes mutating the same simulation state at the identical
    sim-timestamp without an ordering edge.  Both are opt-in via
    :class:`~repro.config.SanitizerConfig` (zero cost when disarmed).
"""

from __future__ import annotations

from repro.lint.core import Finding, LintModule, Rule, all_rules, lint_paths
from repro.lint.races import RaceDetector, RaceViolation
from repro.lint.sanitizer import CoherenceSanitizer, CoherenceViolation

__all__ = [
    "Finding",
    "LintModule",
    "Rule",
    "all_rules",
    "lint_paths",
    "CoherenceSanitizer",
    "CoherenceViolation",
    "RaceDetector",
    "RaceViolation",
]
