"""Performance-hazard rules (PERF4xx).

The engine's hot paths are measured (``python -m repro speed``) and
baselined in CI, but the most common way to *creep* slower is idiomatic
code that double-pays scheduling overhead.  These rules flag the known
shapes.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import Finding, LintModule, Rule, dotted_name

_TRIGGERS = ("succeed", "fail")


def check_perf401(module: LintModule) -> Iterator[Finding]:
    """PERF401: ``sim.call_soon(ev.succeed, ...)`` double-defers.

    ``Event.succeed``/``Event.fail`` already deliver their callbacks
    through the zero-delay queue, so wrapping the trigger in
    ``call_soon`` costs a second trip through the scheduler (and a
    second seq number) for nothing.  Call the trigger directly — unless
    the *trigger itself* must be deferred, e.g. a resource hand-off
    that returns the event untriggered to the caller first; suppress
    those sites with ``# reprolint: disable=PERF401`` and a comment
    saying why.
    """
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call) or not node.args:
            continue
        func = dotted_name(node.func)
        if not (func == "call_soon" or func.endswith(".call_soon")):
            continue
        target = node.args[0]
        if isinstance(target, ast.Attribute) and target.attr in _TRIGGERS:
            owner = dotted_name(target.value) or "<event>"
            yield Finding(
                "PERF401", module.path, node.lineno, node.col_offset,
                f"`call_soon({owner}.{target.attr}, ...)` defers a trigger "
                "that already defers its callbacks — call "
                f"`{owner}.{target.attr}(...)` directly, or suppress with "
                "a comment if the double deferral is load-bearing",
            )


_PER_LINE_CHARGES = {
    "using": "`Resource.using_bulk(cost, count)` or a fastpath train",
    "send": "`Link.send_bulk(direction, payload, count)`",
}


def check_perf402(module: LintModule) -> Iterator[Finding]:
    """PERF402: per-line FIFO charge inside a streaming loop.

    A loop that ``yield from``s a single-grant charge (``Resource.using``,
    ``Link.send``) once per iteration walks the full scheduler once per
    line — the shape the bulk fast-forward layer exists to replace.  Use
    the batched API, or hand the stream to
    :mod:`repro.core.fastpath`.  Loops that *must* stay per-line (fault
    paths, contended FIFOs whose holders interleave) should carry
    ``# reprolint: disable=PERF402`` on the loop line with a comment
    saying why.
    """
    seen = set()
    for node in ast.walk(module.tree):
        if not isinstance(node, (ast.For, ast.While)):
            continue
        for sub in ast.walk(node):
            if not (isinstance(sub, ast.YieldFrom)
                    and isinstance(sub.value, ast.Call)
                    and isinstance(sub.value.func, ast.Attribute)):
                continue
            attr = sub.value.func.attr
            if attr not in _PER_LINE_CHARGES or sub.lineno in seen:
                continue
            seen.add(sub.lineno)
            owner = dotted_name(sub.value.func.value) or "<obj>"
            yield Finding(
                "PERF402", module.path, node.lineno, node.col_offset,
                f"loop charges `{owner}.{attr}(...)` once per iteration; "
                f"batch it with {_PER_LINE_CHARGES[attr]}, or suppress "
                "with a comment if per-line interleaving is load-bearing",
            )


_PERF403_PATHS = ("repro/apps", "repro/experiments")


def _reads_clock(expr: ast.expr) -> bool:
    """Whether the expression reads the simulated clock (``*.now``)."""
    for sub in ast.walk(expr):
        if isinstance(sub, ast.Attribute) and sub.attr == "now":
            return True
    return False


def check_perf403(module: LintModule) -> Iterator[Finding]:
    """PERF403: per-event latency samples accumulated into a bare list.

    In experiment/app code, ``somelist.append(<clock-derived value>)``
    inside a loop grows one entry per simulated event — on a scale run
    that is an unbounded RSS leak (the failure mode ``ext_scale``
    exists to prevent).  Record samples through a latency recorder
    instead (:func:`repro.sim.stats.latency_recorder`, or an injected
    :class:`~repro.sim.stats.StreamingLatencyStats` for shared O(1)
    accumulation).  Sites that *deliberately* keep every sample (a
    bounded result vector that is part of the experiment's payload)
    should carry ``# reprolint: disable=PERF403`` with a comment saying
    what bounds them.
    """
    path = module.path.replace("\\", "/")
    if not any(fragment in path for fragment in _PERF403_PATHS):
        return
    seen = set()
    for node in ast.walk(module.tree):
        if not isinstance(node, (ast.For, ast.While)):
            continue
        for sub in ast.walk(node):
            if not (isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr == "append"
                    and len(sub.args) == 1):
                continue
            if sub.lineno in seen or not _reads_clock(sub.args[0]):
                continue
            seen.add(sub.lineno)
            owner = dotted_name(sub.func.value) or "<list>"
            yield Finding(
                "PERF403", module.path, sub.lineno, sub.col_offset,
                f"`{owner}.append(...)` accumulates a clock-derived "
                "sample per loop iteration — unbounded on scale runs; "
                "record through a latency recorder "
                "(repro.sim.stats.latency_recorder), or suppress with "
                "a comment saying what bounds the list",
            )


def _sweep_point_fn_names(tree: ast.AST) -> set:
    """Names referenced as the point-``fn`` of a cold sweep: the second
    argument of ``SweepPoint(...)`` calls and the second element of the
    ``(key, fn, args, kwargs)`` tuples fed to ``SweepSpec.build``.
    ``ForkSpec`` warm-ups and points are deliberately not collected —
    they already share their warm-up through a checkpoint."""
    names = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = dotted_name(node.func) or ""
        if func == "SweepPoint" or func.endswith(".SweepPoint"):
            if len(node.args) >= 2 and isinstance(node.args[1], ast.Name):
                names.add(node.args[1].id)
        elif func == "SweepSpec.build" or func.endswith(".SweepSpec.build"):
            for sub in ast.walk(node):
                if (isinstance(sub, (ast.Tuple, ast.List))
                        and len(sub.elts) >= 2
                        and isinstance(sub.elts[1], ast.Name)):
                    names.add(sub.elts[1].id)
    return names


def check_perf404(module: LintModule) -> Iterator[Finding]:
    """PERF404: a sweep point that rebuilds Platforms on every point.

    A point function that constructs two or more ``Platform`` instances
    (typically its own plus a calibration throwaway) repeats the same
    point-independent warm-up once per swept value — the shape
    :func:`repro.sim.parallel.run_forked_sweep` exists to remove.  Split
    the warm-up into a module-level function, declare the sweep as a
    :class:`~repro.sim.parallel.ForkSpec`, and let every point fork from
    one checkpoint (see ``docs/CHECKPOINT.md``).  Points whose warm-up
    genuinely differs per value (e.g. per-point fault arming) should
    carry ``# reprolint: disable=PERF404`` with a comment saying why.
    """
    point_fns = _sweep_point_fn_names(module.tree)
    if not point_fns:
        return
    for node in module.tree.body:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if node.name not in point_fns:
            continue
        sites = [sub for sub in ast.walk(node)
                 if isinstance(sub, ast.Call)
                 and ((dotted_name(sub.func) or "").split(".")[-1]
                      == "Platform")]
        if len(sites) >= 2:
            yield Finding(
                "PERF404", module.path, node.lineno, node.col_offset,
                f"sweep point `{node.name}` constructs {len(sites)} "
                "Platforms per point (its own plus calibration); hoist "
                "the shared warm-up into a ForkSpec and fork each point "
                "from a checkpoint (repro.sim.parallel.run_forked_sweep), "
                "or suppress with a comment saying why every point must "
                "rebuild",
            )


def _bulk_items_arg(call: ast.Call):
    """The ``items`` argument of a ``send_bulk(dst, kind, items, ...)``
    call, positional or keyword; ``None`` if absent."""
    if len(call.args) >= 3:
        return call.args[2]
    for kw in call.keywords:
        if kw.arg == "items":
            return kw.value
    return None


def check_perf405(module: LintModule) -> Iterator[Finding]:
    """PERF405: per-request fabric wire inside a serving loop.

    ``FabricPort.send_bulk`` exists so that one wire carries a whole
    per-destination batch (one ``header_bytes`` charge, ``item_bytes``
    per record, one delivery event at the receiver).  Calling it with a
    single-element literal inside a loop —

        for user, issue in requests:
            port.send_bulk(dst, "req", [(user, issue)], send_ns)

    — pays the header, the sequencing, and the receiver's per-wire
    dispatch once per request: the cross-shard round-trip cost scales
    with requests instead of destinations.  Group the loop's items per
    destination first and issue one wire per group (the shape every
    :mod:`repro.rack.host` sender uses).  A site that genuinely must
    emit one record per wire (e.g. a protocol-ordering probe) should
    carry ``# reprolint: disable=PERF405`` with a comment saying why.
    """
    seen = set()
    for node in ast.walk(module.tree):
        if not isinstance(node, (ast.For, ast.While)):
            continue
        for sub in ast.walk(node):
            if not (isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr == "send_bulk"):
                continue
            if sub.lineno in seen:
                continue
            items = _bulk_items_arg(sub)
            if not (isinstance(items, (ast.List, ast.Tuple))
                    and len(items.elts) == 1):
                continue
            seen.add(sub.lineno)
            owner = dotted_name(sub.func.value) or "<port>"
            yield Finding(
                "PERF405", module.path, sub.lineno, sub.col_offset,
                f"`{owner}.send_bulk(...)` sends a single-item wire per "
                "loop iteration — a per-request cross-shard round-trip; "
                "group the items per destination and send one batched "
                "wire per group, or suppress with a comment if one "
                "record per wire is load-bearing",
            )


#: Identifiers whose presence inside an epoch loop shows it consults a
#: quiescence signal (shard idle horizons, the coordinator's pending
#: count, or the fast-forward machinery itself).
_PERF406_MARKERS = frozenset((
    "horizon", "idle_ns", "idle_min", "in_flight", "fastforward",
    "fast_forward", "ff_jumps", "epochs_skipped", "rack_ff_enabled",
))


def check_perf406(module: LintModule) -> Iterator[Finding]:
    """PERF406: epoch loop polls an empty fabric every barrier.

    A coordinator loop that both collects ``fabric.deliveries(...)``
    and ``pool.step(...)``s its shards once per epoch pays a full
    barrier even when every shard is idle and nothing is in flight —
    exactly the empty 500 µs spins the quiescent-epoch fast-forward in
    :func:`repro.rack.cluster.run_rack` exists to skip.  The loop is
    clean when it consults a quiescence signal anywhere in its body:
    the shards' ``idle_ns`` horizons, ``Fabric.in_flight``,
    ``Simulator.horizon()``, or the fast-forward gate itself.  A
    coordinator that genuinely must step every epoch (e.g. a lockstep
    trace comparator) should carry ``# reprolint: disable=PERF406``
    with a comment saying why.
    """
    for node in ast.walk(module.tree):
        if not isinstance(node, (ast.For, ast.While)):
            continue
        has_deliveries = has_step = quiescent = False
        for sub in ast.walk(node):
            if (isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)):
                if sub.func.attr == "deliveries":
                    has_deliveries = True
                elif sub.func.attr == "step":
                    has_step = True
            if isinstance(sub, ast.Attribute) \
                    and sub.attr in _PERF406_MARKERS:
                quiescent = True
            elif isinstance(sub, ast.Name) and sub.id in _PERF406_MARKERS:
                quiescent = True
        if has_deliveries and has_step and not quiescent:
            yield Finding(
                "PERF406", module.path, node.lineno, node.col_offset,
                "epoch loop steps shards and drains fabric deliveries "
                "without consulting a quiescence signal (idle_ns "
                "horizons, Fabric.in_flight, Simulator.horizon()): "
                "empty barriers spin at full cost — add a quiescent-"
                "epoch fast-forward like repro.rack.cluster.run_rack, "
                "or suppress with a comment if lockstep stepping is "
                "load-bearing",
            )


RULES = [
    Rule("PERF401", "redundant call_soon around an Event trigger",
         check_perf401),
    Rule("PERF402", "per-line FIFO charge in a streaming loop",
         check_perf402),
    Rule("PERF403", "unbounded clock-sample accumulation in a bare list",
         check_perf403),
    Rule("PERF404", "sweep point rebuilding Platforms per point",
         check_perf404),
    Rule("PERF405", "per-request fabric wire in a serving loop",
         check_perf405),
    Rule("PERF406", "epoch loop polling an empty fabric every barrier",
         check_perf406),
]
