"""Sim-process protocol rules (SIM2xx).

The event engine accepts exactly four yielded commands (`Timeout`,
`Event`, `Process`, or a nested generator), must never be re-entered from
inside a running process, and turns an unwaited `Event.fail` into a hard
diagnostic unless the failure is defused.  Each misuse here is a runtime
crash — or worse, a silently wrong schedule — that this pass catches at
review time instead.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from repro.lint.core import (
    Finding,
    LintModule,
    Rule,
    dotted_name,
    function_yields,
)

# A function is treated as a *process generator* when it yields one of
# these engine commands (vs. a plain data generator, which never does).
_COMMAND_CALLS = ("Timeout", "timeout_event", "acquire", "get", "event")


def _is_command_expr(value: Optional[ast.expr]) -> bool:
    if value is None:
        return False
    if isinstance(value, ast.Call):
        func = value.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else "")
        return name in _COMMAND_CALLS or name.endswith("_event")
    return False


def _is_process_generator(fn: ast.FunctionDef) -> bool:
    for node in function_yields(fn):
        if isinstance(node, ast.YieldFrom):
            return True
        if isinstance(node, ast.Yield) and _is_command_expr(node.value):
            return True
    return False


def check_sim201(module: LintModule) -> Iterator[Finding]:
    """SIM201: a process generator yields a plain constant.

    The engine dispatches on the yielded command; a bare number, string,
    or ``None`` raises ``SimulationError`` at runtime.  Only functions
    that also yield a recognizable command are checked, so plain data
    generators stay out of scope.
    """
    for fn in module.functions():
        if not _is_process_generator(fn):
            continue
        for node in function_yields(fn):
            if not isinstance(node, ast.Yield):
                continue
            value = node.value
            if value is None or (isinstance(value, ast.Constant)
                                 and not isinstance(value.value, bool)):
                shown = ("nothing (yields None)" if value is None
                         else f"constant {value.value!r}")
                yield Finding(
                    "SIM201", module.path, node.lineno, node.col_offset,
                    f"process generator `{fn.name}` yields {shown}; the "
                    "engine only accepts Timeout, Event, Process, or a "
                    "nested generator",
                )


def check_sim202(module: LintModule) -> Iterator[Finding]:
    """SIM202: `Simulator.run`/`run_process` called from inside a process.

    The event loop is not reentrant: calling back into it from a running
    generator corrupts the clock.  Processes compose with ``yield from``
    instead.
    """
    for fn in module.functions():
        if not function_yields(fn):
            continue
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in ("run", "run_process"):
                continue
            receiver = dotted_name(func.value)
            if receiver == "sim" or receiver.endswith(".sim"):
                yield Finding(
                    "SIM202", module.path, node.lineno, node.col_offset,
                    f"`{receiver}.{func.attr}(...)` inside a process "
                    "generator re-enters the event loop; use `yield from` "
                    "or `yield sim.spawn(...)` instead",
                )


def _local_event_names(fn: ast.FunctionDef) -> Set[str]:
    """Local names assigned from ``*.event()`` or ``Event(...)``."""
    names: Set[str] = set()
    for node in ast.walk(fn):
        if not isinstance(node, ast.Assign) or not isinstance(
                node.value, ast.Call):
            continue
        func = node.value.func
        created = (isinstance(func, ast.Attribute) and func.attr == "event") \
            or (isinstance(func, ast.Name) and func.id == "Event")
        if not created:
            continue
        for tgt in node.targets:
            if isinstance(tgt, ast.Name):
                names.add(tgt.id)
    return names


def _name_escapes(fn: ast.FunctionDef, name: str,
                  skip: ast.AST) -> bool:
    """Can anything observe ``name`` besides the `.fail()` call itself?

    True when the event is yielded, returned, defused, registered a
    callback, stored somewhere reachable, or passed to any call.
    """
    for node in ast.walk(fn):
        if node is skip:
            continue
        if isinstance(node, (ast.Yield, ast.YieldFrom, ast.Return)):
            for sub in ast.walk(node):
                if isinstance(sub, ast.Name) and sub.id == name:
                    return True
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and isinstance(
                    func.value, ast.Name) and func.value.id == name:
                if func.attr in ("defuse", "add_callback", "succeed"):
                    return True
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                for sub in ast.walk(arg):
                    if isinstance(sub, ast.Name) and sub.id == name:
                        return True
        elif isinstance(node, ast.Assign):
            if any(not isinstance(tgt, ast.Name) for tgt in node.targets):
                for sub in ast.walk(node.value):
                    if isinstance(sub, ast.Name) and sub.id == name:
                        return True
    return False


def check_sim203(module: LintModule) -> Iterator[Finding]:
    """SIM203: `Event.fail` on an event nothing can wait on or defuse.

    Failing a locally-created event that never escapes the function
    guarantees the engine's uncaught-failure diagnostic fires — the
    fault can neither be observed nor suppressed.
    """
    for fn in module.functions():
        event_names = _local_event_names(fn)
        if not event_names:
            continue
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr == "fail"):
                continue
            if not (isinstance(func.value, ast.Name)
                    and func.value.id in event_names):
                continue
            if not _name_escapes(fn, func.value.id, skip=node):
                yield Finding(
                    "SIM203", module.path, node.lineno, node.col_offset,
                    f"`{func.value.id}.fail(...)` on an event with no "
                    "reachable waiter: the uncaught-failure diagnostic "
                    "will fire; yield the event somewhere or call "
                    "`.defuse()`",
                )


def _plain_functions(module: LintModule) -> Dict[str, ast.FunctionDef]:
    """Module- and class-level functions that contain no ``yield``."""
    out: Dict[str, ast.FunctionDef] = {}
    for fn in module.functions():
        if not function_yields(fn):
            out[fn.name] = fn
    return out


def check_sim204(module: LintModule) -> Iterator[Finding]:
    """SIM204: spawning something that is not a generator.

    ``sim.spawn(fn)`` (forgetting the call), ``spawn(lambda: ...)``, and
    ``spawn(<constant>)`` all raise at the first step; the generator must
    be *instantiated* (``sim.spawn(fn(...))``).
    """
    plain = _plain_functions(module)
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        attr = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else "")
        if attr not in ("spawn", "run_process"):
            continue
        if not node.args:
            continue
        arg = node.args[0]
        problem = None
        if isinstance(arg, ast.Lambda):
            problem = "a lambda (call it, or make it a generator)"
        elif isinstance(arg, ast.Constant):
            problem = f"constant {arg.value!r}"
        elif isinstance(arg, ast.Name) and arg.id in plain:
            problem = (f"`{arg.id}`, a plain function — did you mean "
                       f"`{arg.id}(...)`?")
        if problem is not None:
            yield Finding(
                "SIM204", module.path, arg.lineno, arg.col_offset,
                f"`{attr}(...)` needs an instantiated generator, got "
                f"{problem}",
            )


RULES = [
    Rule("SIM201", "process yields a non-command constant", check_sim201),
    Rule("SIM202", "event loop re-entered from a process", check_sim202),
    Rule("SIM203", "Event.fail without reachable waiter/defuse", check_sim203),
    Rule("SIM204", "spawn of a non-generator", check_sim204),
]
