"""Project loader and symbol table for the graph tier.

Every module is parsed exactly once (the :class:`~repro.lint.core.LintModule`
objects come straight from the per-file runner); this module organises
them into a :class:`Project`: dotted module names, per-module import
bindings, top-level functions, classes with their methods, and the class
hierarchy needed for method resolution.

Qualified names (``qname``) look like ``repro.sim.engine:Simulator.run``
— module, colon, then the in-module dotted path — and are the node ids
the call graph and the passes share.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.lint.core import LintModule

Symbol = Union["ModuleInfo", "ClassInfo", "FunctionInfo"]


class FunctionInfo:
    """One function or method definition."""

    __slots__ = ("name", "qname", "module", "cls", "node", "params",
                 "has_yield", "decorators")

    def __init__(self, name: str, qname: str, module: "ModuleInfo",
                 cls: Optional["ClassInfo"], node: ast.AST):
        self.name = name
        self.qname = qname
        self.module = module
        self.cls = cls
        self.node = node
        args = node.args
        names = [a.arg for a in args.posonlyargs + args.args]
        if cls is not None and names and names[0] in ("self", "cls"):
            names = names[1:]
        self.params: List[str] = names + [a.arg for a in args.kwonlyargs]
        self.has_yield = _has_own_yield(node)
        self.decorators: List[str] = [
            _decorator_name(dec) for dec in node.decorator_list
        ]

    @property
    def path(self) -> str:
        return self.module.path

    def param_index(self, name: str) -> Optional[int]:
        try:
            return self.params.index(name)
        except ValueError:
            return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<fn {self.qname}>"


class ClassInfo:
    """One class definition with its methods and raw base names."""

    __slots__ = ("name", "qname", "module", "node", "base_names", "methods",
                 "attr_types")

    def __init__(self, name: str, qname: str, module: "ModuleInfo",
                 node: ast.ClassDef):
        self.name = name
        self.qname = qname
        self.module = module
        self.node = node
        self.base_names: List[str] = []
        for base in node.bases:
            dotted = _dotted(base)
            if dotted:
                self.base_names.append(dotted)
        self.methods: Dict[str, FunctionInfo] = {}
        # attribute name -> dotted class name it is constructed from in
        # any method body (``self.link = Link(...)``); used by the call
        # graph's light receiver typing.
        self.attr_types: Dict[str, str] = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<class {self.qname}>"


class ModuleInfo:
    """One parsed module: bindings, functions, classes."""

    __slots__ = ("name", "path", "lint", "imports", "functions", "classes")

    def __init__(self, name: str, lint: LintModule):
        self.name = name
        self.path = lint.path
        self.lint = lint
        # bound name -> dotted target ("engine" -> "repro.sim.engine",
        # "Timeout" -> "repro.sim.engine.Timeout", ...)
        self.imports: Dict[str, str] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<module {self.name}>"


class Project:
    """The whole parsed project: modules, symbols, class hierarchy."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self._methods_by_name: Dict[str, List[FunctionInfo]] = {}
        self._subclasses: Dict[str, List[ClassInfo]] = {}

    # -- construction ------------------------------------------------------

    @classmethod
    def from_modules(
            cls, modules: Iterable[Tuple[str, LintModule]]) -> "Project":
        project = cls()
        for name, lint in modules:
            project._add_module(name, lint)
        project._link_hierarchy()
        return project

    def _add_module(self, name: str, lint: LintModule) -> None:
        info = ModuleInfo(name, lint)
        self.modules[name] = info
        _collect_imports(info)
        for node in lint.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = FunctionInfo(node.name, f"{name}:{node.name}",
                                  info, None, node)
                info.functions[node.name] = fn
                self.functions[fn.qname] = fn
            elif isinstance(node, ast.ClassDef):
                self._add_class(info, node)

    def _add_class(self, module: ModuleInfo, node: ast.ClassDef) -> None:
        ci = ClassInfo(node.name, f"{module.name}:{node.name}", module, node)
        module.classes[node.name] = ci
        self.classes[ci.qname] = ci
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = FunctionInfo(
                    item.name, f"{module.name}:{node.name}.{item.name}",
                    module, ci, item)
                ci.methods[item.name] = fn
                self.functions[fn.qname] = fn
                self._methods_by_name.setdefault(item.name, []).append(fn)
                _collect_attr_types(ci, item)

    def _link_hierarchy(self) -> None:
        for ci in self.classes.values():
            for base_name in ci.base_names:
                base = self.resolve_class(ci.module, base_name)
                if base is not None:
                    self._subclasses.setdefault(base.qname, []).append(ci)

    # -- symbol resolution -------------------------------------------------

    def resolve_dotted(self, module: ModuleInfo,
                       dotted: str) -> Optional[Symbol]:
        """Resolve ``a.b.c`` as seen from ``module`` to a project symbol."""
        if not dotted:
            return None
        parts = dotted.split(".")
        head, rest = parts[0], parts[1:]
        target: Optional[Symbol] = None
        if head in module.functions:
            target = module.functions[head]
        elif head in module.classes:
            target = module.classes[head]
        elif head in module.imports:
            target = self._resolve_absolute(module.imports[head])
        elif head in self.modules:
            target = self.modules[head]
        if target is None:
            return None
        for part in rest:
            target = self._member(target, part)
            if target is None:
                return None
        return target

    def _resolve_absolute(self, dotted: str) -> Optional[Symbol]:
        """Resolve an absolute dotted target (from an import binding)."""
        if dotted in self.modules:
            return self.modules[dotted]
        if "." in dotted:
            prefix, leaf = dotted.rsplit(".", 1)
            parent = self._resolve_absolute(prefix)
            if parent is not None:
                return self._member(parent, leaf)
        return None

    def _member(self, symbol: Symbol, name: str) -> Optional[Symbol]:
        if isinstance(symbol, ModuleInfo):
            if name in symbol.functions:
                return symbol.functions[name]
            if name in symbol.classes:
                return symbol.classes[name]
            if name in symbol.imports:
                return self._resolve_absolute(symbol.imports[name])
            sub = f"{symbol.name}.{name}"
            return self.modules.get(sub)
        if isinstance(symbol, ClassInfo):
            return self.lookup_method(symbol, name)
        return None

    def resolve_class(self, module: ModuleInfo,
                      dotted: str) -> Optional[ClassInfo]:
        symbol = self.resolve_dotted(module, dotted)
        return symbol if isinstance(symbol, ClassInfo) else None

    # -- class hierarchy ---------------------------------------------------

    def mro(self, ci: ClassInfo) -> List[ClassInfo]:
        """The class and its resolvable ancestors, nearest first."""
        out: List[ClassInfo] = []
        seen = {ci.qname}
        queue = [ci]
        while queue:
            cur = queue.pop(0)
            out.append(cur)
            for base_name in cur.base_names:
                base = self.resolve_class(cur.module, base_name)
                if base is not None and base.qname not in seen:
                    seen.add(base.qname)
                    queue.append(base)
        return out

    def subclasses(self, ci: ClassInfo) -> List[ClassInfo]:
        """All transitive subclasses known to the project."""
        out: List[ClassInfo] = []
        seen = set()
        queue = list(self._subclasses.get(ci.qname, ()))
        while queue:
            cur = queue.pop(0)
            if cur.qname in seen:
                continue
            seen.add(cur.qname)
            out.append(cur)
            queue.extend(self._subclasses.get(cur.qname, ()))
        return out

    def lookup_method(self, ci: ClassInfo,
                      name: str) -> Optional[FunctionInfo]:
        """Resolve ``name`` along the MRO (defining class wins)."""
        for cls in self.mro(ci):
            if name in cls.methods:
                return cls.methods[name]
        return None

    def methods_named(self, name: str) -> List[FunctionInfo]:
        """Every method with this name anywhere in the project."""
        return list(self._methods_by_name.get(name, ()))

    def class_named(self, name: str) -> Optional[ClassInfo]:
        """The unique class with this bare name, if exactly one exists."""
        found = [ci for ci in self.classes.values() if ci.name == name]
        return found[0] if len(found) == 1 else None


# ---------------------------------------------------------------------------
# Module-name derivation and file loading
# ---------------------------------------------------------------------------


def module_name_for(path: str, roots: Iterable[str]) -> str:
    """Dotted module name for ``path``, relative to the lint roots.

    ``src/repro/sim/engine.py`` linted under root ``src`` becomes
    ``repro.sim.engine``; a bare fixture file becomes its stem.  Package
    ``__init__`` files name the package itself.
    """
    normalized = path.replace("\\", "/")
    rel = None
    for raw in sorted((r.replace("\\", "/").rstrip("/") for r in roots),
                      key=len, reverse=True):
        if normalized == raw:
            rel = normalized.rsplit("/", 1)[-1]
            break
        if raw and normalized.startswith(raw + "/"):
            rel = normalized[len(raw) + 1:]
            break
    if rel is None:
        rel = normalized.rsplit("/", 1)[-1]
    if rel.endswith(".py"):
        rel = rel[:-3]
    parts = [p for p in rel.split("/") if p]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else "__root__"


# ---------------------------------------------------------------------------
# AST helpers
# ---------------------------------------------------------------------------


def _dotted(node: ast.expr) -> str:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _decorator_name(node: ast.expr) -> str:
    if isinstance(node, ast.Call):
        node = node.func
    return _dotted(node)


def _has_own_yield(fn: ast.AST) -> bool:
    stack: List[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return False


def _collect_attr_types(ci: ClassInfo, method: ast.AST) -> None:
    """Record ``self.attr = ClassName(...)`` constructor assignments.

    The call graph uses these to type ``self.attr.method()`` receivers;
    first assignment wins (``__init__`` is visited first in source order
    for the idiomatic case).
    """
    for node in ast.walk(method):
        if not isinstance(node, ast.Assign):
            continue
        if not isinstance(node.value, ast.Call):
            continue
        ctor = _dotted(node.value.func)
        # Only confident constructor shapes: the called name is
        # capitalized (``Link(...)``, ``mod.Link(...)``); bare lowercase
        # calls are left untyped rather than guessed.
        if not ctor or not ctor.split(".")[-1][:1].isupper():
            continue
        for tgt in node.targets:
            if (isinstance(tgt, ast.Attribute)
                    and isinstance(tgt.value, ast.Name)
                    and tgt.value.id == "self"
                    and tgt.attr not in ci.attr_types):
                ci.attr_types[tgt.attr] = ctor


def _collect_imports(info: ModuleInfo) -> None:
    for node in ast.walk(info.lint.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    info.imports[alias.asname] = alias.name
                else:
                    info.imports[alias.name.split(".")[0]] = \
                        alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                # Relative import: climb from the module's package, one
                # step per extra dot beyond the first.
                anchor = info.name.split(".")[:-1]
                climb = node.level - 1
                if climb:
                    anchor = anchor[:-climb] if climb <= len(anchor) else []
                base = ".".join(anchor + ([base] if base else []))
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                info.imports[bound] = (f"{base}.{alias.name}"
                                       if base else alias.name)
