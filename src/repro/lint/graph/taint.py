"""Interprocedural determinism taint (DET2xx).

Sources — wall-clock reads, OS entropy, environment reads, unordered
(set/dict-order) iteration — are tracked through assignments, calls and
returns, and reported **only** when the tainted value reaches simulation
state: engine scheduling (``Timeout``/``WakeAt``/``schedule``/``timer``),
RNG seeds, event completion values, or emitted stats.  A wall-clock read
that feeds a log line is fine; one that feeds a ``Timeout`` is a
reproducibility bug even when the read and the sink live in different
modules — the per-file DET1xx rules cannot see that flow.

Sanitizers keep the pass quiet on clean code: values produced by
``repro.sim.rng`` (``DeterministicRng`` draws are seeded by contract)
carry no taint, and ``sorted(...)`` strips the unordered-iteration
taint.

Per-kind rules::

    DET201  wall clock      time.time/perf_counter/monotonic/datetime.now
    DET202  OS entropy      os.urandom, stdlib random, unseeded default_rng
    DET203  environment     os.environ / os.getenv
    DET204  unordered iter  list(set), iteration over set-typed values
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.core import Finding, dotted_name, is_set_expr
from repro.lint.graph.callgraph import CallGraph, CallSite
from repro.lint.graph.loader import FunctionInfo, Project

KIND_RULE = {
    "clock": "DET201",
    "entropy": "DET202",
    "env": "DET203",
    "setorder": "DET204",
}

KIND_LABEL = {
    "clock": "wall-clock",
    "entropy": "OS-entropy",
    "env": "environment-read",
    "setorder": "unordered-iteration",
}

_WALL_CLOCK_CALLS = {
    "time.time", "time.time_ns", "time.perf_counter",
    "time.perf_counter_ns", "time.monotonic", "time.monotonic_ns",
    "time.process_time", "datetime.now", "datetime.utcnow",
    "datetime.datetime.now", "datetime.datetime.utcnow",
}

_ENTROPY_CALLS = {"os.urandom", "secrets.token_bytes", "secrets.randbits",
                  "uuid.uuid4"}

_ENV_CALLS = {"os.getenv", "os.environ.get", "os.environ.items",
              "os.environ.keys", "os.environ.values"}

# Modules whose return values are deterministic by contract.
_SANITIZER_MODULES = {"repro.sim.rng"}
_SANITIZER_CLASSES = {"DeterministicRng"}

# Sink shapes: simulation state the taint must reach to be reported.
_SINK_CTORS = {"Timeout": "engine scheduling (Timeout delay)",
               "WakeAt": "engine scheduling (WakeAt deadline)"}
_SINK_METHODS = {
    "schedule": "engine scheduling (schedule delay)",
    "schedule_at": "engine scheduling (schedule_at deadline)",
    "call_at": "engine scheduling (call_at deadline)",
    "timer": "engine scheduling (timer delay)",
    "succeed": "an event completion value",
    "record": "emitted stats (record)",
    "observe": "emitted stats (observe)",
    "add_sample": "emitted stats (add_sample)",
}
_SEED_KEYWORD = "seed"


class Taint:
    """A taint value: concrete kinds (with provenance) + parameter marks."""

    __slots__ = ("kinds", "params")

    def __init__(self, kinds: Optional[Dict[str, str]] = None,
                 params: Optional[Set[int]] = None):
        self.kinds: Dict[str, str] = dict(kinds or {})
        self.params: Set[int] = set(params or ())

    def __bool__(self) -> bool:
        return bool(self.kinds or self.params)

    def merged(self, other: "Taint") -> "Taint":
        kinds = dict(other.kinds)
        kinds.update(self.kinds)
        return Taint(kinds, self.params | other.params)

    def without(self, kind: str) -> "Taint":
        kinds = {k: v for k, v in self.kinds.items() if k != kind}
        return Taint(kinds, set(self.params))

    def copy(self) -> "Taint":
        return Taint(self.kinds, self.params)


EMPTY = Taint()


class Summary:
    """What one function does with taint, seen from a call site."""

    __slots__ = ("returns", "param_returns", "param_sinks")

    def __init__(self) -> None:
        self.returns = Taint()
        # param index -> True when taint on that argument reaches the
        # function's return value.
        self.param_returns: Set[int] = set()
        # param index -> sink label when taint on that argument reaches a
        # sink inside the function (directly or transitively).
        self.param_sinks: Dict[int, str] = {}

    def snapshot(self) -> Tuple:
        return (tuple(sorted(self.returns.kinds)),
                tuple(sorted(self.returns.params)),
                tuple(sorted(self.param_returns)),
                tuple(sorted(self.param_sinks.items())))


def check_taint(project: Project, graph: CallGraph) -> List[Finding]:
    """Run the DET2xx pass; returns id-sorted findings."""
    analysis = _TaintAnalysis(project, graph)
    analysis.solve()
    return analysis.report()


class _TaintAnalysis:

    def __init__(self, project: Project, graph: CallGraph):
        self.project = project
        self.graph = graph
        self.summaries: Dict[str, Summary] = {
            qname: Summary() for qname in project.functions
        }
        self.module_globals: Dict[Tuple[str, str], Taint] = {}
        self._collect_module_globals()

    # -- module-level assignments -----------------------------------------

    def _collect_module_globals(self) -> None:
        for module in self.project.modules.values():
            env: Dict[str, Taint] = {}
            for node in module.lint.tree.body:
                if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                        and isinstance(node.targets[0], ast.Name):
                    taint = self._eval(node.value, env, None, None)
                    if taint:
                        env[node.targets[0].id] = taint
            for name, taint in env.items():
                self.module_globals[(module.name, name)] = taint

    # -- fixpoint over function summaries ---------------------------------

    def solve(self) -> None:
        for _ in range(12):  # call chains deeper than this don't occur
            changed = False
            for fn in self.project.functions.values():
                before = self.summaries[fn.qname].snapshot()
                self._analyze(fn, emit=None)
                if self.summaries[fn.qname].snapshot() != before:
                    changed = True
            if not changed:
                break

    def report(self) -> List[Finding]:
        findings: Dict[Tuple, Finding] = {}

        def emit(finding: Finding) -> None:
            findings.setdefault(
                (finding.rule, finding.path, finding.line, finding.col,
                 finding.message), finding)

        for fn in self.project.functions.values():
            self._analyze(fn, emit=emit)
        return sorted(findings.values(),
                      key=lambda f: (f.path, f.line, f.col, f.rule))

    # -- one function ------------------------------------------------------

    def _analyze(self, fn: FunctionInfo, emit) -> None:
        summary = self.summaries[fn.qname]
        env: Dict[str, Taint] = {
            name: Taint(params={idx})
            for idx, name in enumerate(fn.params)
        }
        # Two passes approximate loop-carried flows.
        for _ in range(2):
            self._exec_block(fn, fn.node.body, env, summary, emit)

    def _exec_block(self, fn: FunctionInfo, body: List[ast.stmt],
                    env: Dict[str, Taint], summary: Summary, emit) -> None:
        for stmt in body:
            self._exec_stmt(fn, stmt, env, summary, emit)

    def _exec_stmt(self, fn: FunctionInfo, stmt: ast.stmt,
                   env: Dict[str, Taint], summary: Summary, emit) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # nested definitions are analyzed as their own nodes
        if isinstance(stmt, ast.Assign):
            taint = self._eval(stmt.value, env, fn, emit)
            for tgt in stmt.targets:
                self._bind(tgt, taint, env)
            return
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            taint = self._eval(stmt.value, env, fn, emit)
            self._bind(stmt.target, taint, env)
            return
        if isinstance(stmt, ast.AugAssign):
            taint = self._eval(stmt.value, env, fn, emit)
            if isinstance(stmt.target, ast.Name):
                prev = env.get(stmt.target.id, EMPTY)
                env[stmt.target.id] = prev.merged(taint)
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                taint = self._eval(stmt.value, env, fn, emit)
                summary.returns = summary.returns.merged(
                    Taint(taint.kinds, set()))
                summary.param_returns |= taint.params
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_taint = self._eval(stmt.iter, env, fn, emit)
            if self._iterates_unordered(fn, stmt.iter):
                iter_taint = iter_taint.merged(Taint(
                    {"setorder": _describe(stmt.iter)}))
            self._bind(stmt.target, iter_taint, env)
            self._exec_block(fn, stmt.body, env, summary, emit)
            self._exec_block(fn, stmt.orelse, env, summary, emit)
            return
        if isinstance(stmt, ast.While):
            self._eval(stmt.test, env, fn, emit)
            self._exec_block(fn, stmt.body, env, summary, emit)
            self._exec_block(fn, stmt.orelse, env, summary, emit)
            return
        if isinstance(stmt, ast.If):
            self._eval(stmt.test, env, fn, emit)
            self._exec_block(fn, stmt.body, env, summary, emit)
            self._exec_block(fn, stmt.orelse, env, summary, emit)
            return
        if isinstance(stmt, ast.Try):
            self._exec_block(fn, stmt.body, env, summary, emit)
            for handler in stmt.handlers:
                self._exec_block(fn, handler.body, env, summary, emit)
            self._exec_block(fn, stmt.orelse, env, summary, emit)
            self._exec_block(fn, stmt.finalbody, env, summary, emit)
            return
        if isinstance(stmt, ast.With):
            for item in stmt.items:
                taint = self._eval(item.context_expr, env, fn, emit)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, taint, env)
            self._exec_block(fn, stmt.body, env, summary, emit)
            return
        if isinstance(stmt, ast.Expr):
            self._eval(stmt.value, env, fn, emit)
            return
        # Everything else (pass, raise, import, ...): evaluate any nested
        # expressions so sinks inside them are still seen.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._eval(child, env, fn, emit)

    def _bind(self, target: ast.expr, taint: Taint,
              env: Dict[str, Taint]) -> None:
        if isinstance(target, ast.Name):
            if taint:
                env[target.id] = taint.copy()
            else:
                env.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, taint, env)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, taint, env)
        # Attribute/subscript targets: not tracked (field-insensitive).

    # -- expression evaluation --------------------------------------------

    def _eval(self, expr: ast.expr, env: Dict[str, Taint],
              fn: Optional[FunctionInfo], emit) -> Taint:
        if isinstance(expr, ast.Constant):
            return EMPTY
        if isinstance(expr, ast.Name):
            taint = env.get(expr.id)
            if taint is not None:
                return taint
            if fn is not None:
                glob = self.module_globals.get((fn.module.name, expr.id))
                if glob is not None:
                    return glob
            return EMPTY
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, env, fn, emit)
        if isinstance(expr, ast.Attribute):
            dotted = dotted_name(expr)
            if dotted == "os.environ":
                return Taint({"env": "os.environ"})
            return self._eval(expr.value, env, fn, emit)
        if isinstance(expr, ast.Subscript):
            base = self._eval(expr.value, env, fn, emit)
            idx = self._eval(expr.slice, env, fn, emit)
            return base.merged(idx)
        if isinstance(expr, (ast.BinOp,)):
            return self._eval(expr.left, env, fn, emit).merged(
                self._eval(expr.right, env, fn, emit))
        if isinstance(expr, ast.BoolOp):
            out = EMPTY
            for value in expr.values:
                out = out.merged(self._eval(value, env, fn, emit))
            return out
        if isinstance(expr, ast.UnaryOp):
            return self._eval(expr.operand, env, fn, emit)
        if isinstance(expr, ast.Compare):
            out = self._eval(expr.left, env, fn, emit)
            for comp in expr.comparators:
                out = out.merged(self._eval(comp, env, fn, emit))
            return out
        if isinstance(expr, ast.IfExp):
            self._eval(expr.test, env, fn, emit)
            return self._eval(expr.body, env, fn, emit).merged(
                self._eval(expr.orelse, env, fn, emit))
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            out = EMPTY
            for elt in expr.elts:
                out = out.merged(self._eval(elt, env, fn, emit))
            return out
        if isinstance(expr, ast.Dict):
            out = EMPTY
            for key in expr.keys:
                if key is not None:
                    out = out.merged(self._eval(key, env, fn, emit))
            for value in expr.values:
                out = out.merged(self._eval(value, env, fn, emit))
            return out
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp)):
            return self._eval_comp(expr, env, fn, emit)
        if isinstance(expr, (ast.Yield, ast.YieldFrom, ast.Await)):
            if expr.value is not None:
                return self._eval(expr.value, env, fn, emit)
            return EMPTY
        if isinstance(expr, ast.Starred):
            return self._eval(expr.value, env, fn, emit)
        if isinstance(expr, ast.JoinedStr):
            out = EMPTY
            for value in expr.values:
                out = out.merged(self._eval(value, env, fn, emit))
            return out
        if isinstance(expr, ast.FormattedValue):
            return self._eval(expr.value, env, fn, emit)
        if isinstance(expr, ast.Lambda):
            return EMPTY
        return EMPTY

    def _eval_comp(self, expr: ast.expr, env: Dict[str, Taint],
                   fn, emit) -> Taint:
        local = dict(env)
        out = EMPTY
        for gen in expr.generators:
            taint = self._eval(gen.iter, local, fn, emit)
            if fn is not None and self._iterates_unordered(fn, gen.iter):
                taint = taint.merged(Taint(
                    {"setorder": _describe(gen.iter)}))
            self._bind(gen.target, taint, local)
            out = out.merged(Taint(taint.kinds, taint.params))
        if isinstance(expr, ast.DictComp):
            out = out.merged(self._eval(expr.key, local, fn, emit))
            out = out.merged(self._eval(expr.value, local, fn, emit))
        else:
            out = out.merged(self._eval(expr.elt, local, fn, emit))
        return out

    def _iterates_unordered(self, fn: FunctionInfo,
                            target: ast.expr) -> bool:
        if is_set_expr(target):
            return True
        set_names = fn.module.lint.set_typed_names()
        if isinstance(target, ast.Name) and target.id in set_names:
            return True
        if isinstance(target, ast.Attribute) and target.attr in set_names:
            return True
        return False

    # -- calls: sources, sanitizers, summaries, sinks ---------------------

    def _eval_call(self, node: ast.Call, env: Dict[str, Taint],
                   fn: Optional[FunctionInfo], emit) -> Taint:
        dotted = dotted_name(node.func)
        arg_taints = [self._eval(arg, env, fn, emit) for arg in node.args]
        kw_taints = {kw.arg: self._eval(kw.value, env, fn, emit)
                     for kw in node.keywords}

        # Sinks first: anything tainted flowing into simulation state.
        if fn is not None:
            self._check_sinks(node, dotted, arg_taints, kw_taints, fn, emit)

        # Sources.
        if dotted in _WALL_CLOCK_CALLS:
            return Taint({"clock": f"{dotted}()"})
        if dotted in _ENTROPY_CALLS:
            return Taint({"entropy": f"{dotted}()"})
        if dotted in _ENV_CALLS or dotted.startswith("os.environ."):
            return Taint({"env": f"{dotted}()"})
        if dotted.startswith("random.") and len(dotted.split(".")) == 2:
            return Taint({"entropy": f"{dotted}()"})
        if dotted.endswith("default_rng") and not (node.args or node.keywords):
            return Taint({"entropy": f"{dotted}()"})

        passthrough = EMPTY
        for taint in arg_taints:
            passthrough = passthrough.merged(taint)
        for taint in kw_taints.values():
            passthrough = passthrough.merged(taint)

        # ``sorted(...)`` imposes a deterministic order: the
        # unordered-iteration taint is sanitized, everything else flows.
        if dotted == "sorted":
            return passthrough.without("setorder")
        if dotted in ("list", "tuple") and node.args and \
                fn is not None and self._iterates_unordered(fn, node.args[0]):
            return passthrough.merged(Taint(
                {"setorder": _describe(node.args[0])}))

        # Resolved project callees: summaries instead of pass-through.
        site = self._site_for(fn, node)
        if site is not None and site.callees:
            if self._is_sanitizer(site):
                return EMPTY
            out = EMPTY
            for callee in site.callees:
                cs = self.summaries.get(callee.qname)
                if cs is None:
                    continue
                out = out.merged(Taint(cs.returns.kinds, set()))
                for idx in sorted(cs.param_returns):
                    taint = self._arg_taint(callee, node, idx,
                                            arg_taints, kw_taints)
                    if taint is not None:
                        out = out.merged(taint)
            return out
        return passthrough

    def _is_sanitizer(self, site: CallSite) -> bool:
        for callee in site.callees:
            if callee.module.name in _SANITIZER_MODULES:
                return True
            if callee.cls is not None and \
                    callee.cls.name in _SANITIZER_CLASSES:
                return True
        return False

    def _site_for(self, fn: Optional[FunctionInfo],
                  node: ast.Call) -> Optional[CallSite]:
        if fn is None:
            return None
        for site in self.graph.sites_in(fn.qname):
            if site.node is node:
                return site
        return None

    def _arg_taint(self, callee: FunctionInfo, node: ast.Call, idx: int,
                   arg_taints: List[Taint],
                   kw_taints: Dict[Optional[str], Taint]) -> Optional[Taint]:
        if idx < len(arg_taints):
            return arg_taints[idx]
        if idx < len(callee.params):
            return kw_taints.get(callee.params[idx])
        return None

    def _check_sinks(self, node: ast.Call, dotted: str,
                     arg_taints: List[Taint],
                     kw_taints: Dict[Optional[str], Taint],
                     fn: FunctionInfo, emit) -> None:
        summary = self.summaries[fn.qname]

        def hit(taint: Optional[Taint], label: str,
                anchor: ast.expr) -> None:
            if not taint:
                return
            for kind, source in sorted(taint.kinds.items()):
                if emit is not None:
                    emit(Finding(
                        KIND_RULE[kind], fn.path, anchor.lineno,
                        anchor.col_offset,
                        f"{KIND_LABEL[kind]} taint (from {source}) reaches "
                        f"{label}; route it through repro.sim.rng or drop "
                        "it before it touches sim state",
                    ))
            for idx in sorted(taint.params):
                if idx not in summary.param_sinks:
                    summary.param_sinks[idx] = label

        leaf = dotted.split(".")[-1] if dotted else ""
        if leaf in _SINK_CTORS and node.args:
            hit(arg_taints[0], _SINK_CTORS[leaf], node.args[0])
        elif leaf in _SINK_METHODS and isinstance(node.func, ast.Attribute):
            if node.args:
                hit(arg_taints[0], _SINK_METHODS[leaf], node.args[0])
        if leaf in ("DeterministicRng", "fork") and node.args:
            hit(arg_taints[0], "an RNG seed", node.args[0])
        for kw in node.keywords:
            if kw.arg == _SEED_KEYWORD:
                hit(kw_taints.get(kw.arg), "an RNG seed", kw.value)

        # Transitive sinks through resolved callees.
        site = self._site_for(fn, node)
        if site is None:
            return
        for callee in site.callees:
            cs = self.summaries.get(callee.qname)
            if cs is None:
                continue
            for idx, label in sorted(cs.param_sinks.items()):
                taint = self._arg_taint(callee, node, idx,
                                        arg_taints, kw_taints)
                anchor: ast.expr = node
                if idx < len(node.args):
                    anchor = node.args[idx]
                else:
                    for kw in node.keywords:
                        if idx < len(callee.params) and \
                                kw.arg == callee.params[idx]:
                            anchor = kw.value
                hit(taint, f"{label} via `{callee.name}()`", anchor)


def _describe(expr: ast.expr) -> str:
    dotted = dotted_name(expr)
    if dotted:
        return f"set-order iteration of `{dotted}`"
    return "set-order iteration"
