"""Whole-program analysis tier for reprolint.

The per-file rules (DET1xx/SIM2xx/UNIT3xx/...) see one module at a time;
this package parses the whole project once into a symbol table
(:mod:`repro.lint.graph.loader`), builds a call graph with method
resolution over the ``repro.*`` class hierarchy
(:mod:`repro.lint.graph.callgraph`), and runs three interprocedural
passes on top of it:

- :mod:`repro.lint.graph.taint` — determinism taint (DET2xx): wall
  clock, OS entropy, environment reads and unordered iteration tracked
  through calls and returns, reported only when they reach simulation
  state;
- :mod:`repro.lint.graph.protocol` — process-protocol abstract
  interpretation (SIM4xx): acquire/release pairing of grants across
  ``yield`` points including exception edges, and failable events that
  escape un-defused through a caller;
- :mod:`repro.lint.graph.units` — unit-dimension inference (UNIT4xx):
  ns/bytes/lines dimensions propagated from :mod:`repro.units`
  constructors through assignments, arithmetic and call signatures.

Entry point: :func:`run_graph_passes`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.lint.core import Finding, LintModule


#: (rule id, one-line summary) for every graph-tier rule, id-ordered.
GRAPH_RULE_CATALOGUE: List[Tuple[str, str]] = [
    ("DET201", "wall-clock taint reaches simulation state"),
    ("DET202", "OS-entropy taint reaches simulation state"),
    ("DET203", "environment-read taint reaches simulation state"),
    ("DET204", "unordered-iteration taint reaches simulation state"),
    ("SIM401", "acquired grant leaks (no reachable release)"),
    ("SIM402", "grant held across an unprotected yield"),
    ("SIM403", "failable event escapes un-defused through a caller"),
    ("UNIT401", "mixed-dimension arithmetic"),
    ("UNIT402", "wrong-dimension argument to a dimension-typed parameter"),
    ("UNIT403", "raw magnitude flows into a dimension-typed parameter"),
]

GRAPH_RULE_IDS: List[str] = [rule_id for rule_id, _ in GRAPH_RULE_CATALOGUE]


def run_graph_passes(
    modules: Iterable[Tuple[str, LintModule]],
) -> List[Finding]:
    """Run every interprocedural pass over the project.

    ``modules`` is an iterable of ``(module_name, LintModule)`` pairs —
    the same parsed modules the per-file tier used, so each source file
    is parsed exactly once per lint run.
    """
    from repro.lint.graph.callgraph import build_call_graph
    from repro.lint.graph.loader import Project
    from repro.lint.graph.protocol import check_protocol
    from repro.lint.graph.taint import check_taint
    from repro.lint.graph.units import check_units

    project = Project.from_modules(modules)
    graph = build_call_graph(project)
    findings: List[Finding] = []
    findings.extend(check_taint(project, graph))
    findings.extend(check_protocol(project, graph))
    findings.extend(check_units(project, graph))
    return findings


def graph_rule_summaries() -> Dict[str, str]:
    return dict(GRAPH_RULE_CATALOGUE)
