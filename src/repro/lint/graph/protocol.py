"""Process-protocol abstract interpretation (SIM4xx).

Simulation processes hold *grants*: a ``Resource.acquire`` (also the
wires inside ``Link`` and the queues inside ``MemoryChannel``) admits
the process and must be paired with exactly one ``release``.  The
per-file tier cannot check this — the repo's idioms split acquire and
release across helper generators, across methods (``MemoryChannel``
acquires in ``write_line`` and releases in ``_drain_one``), and across
modules.  This pass interprets each process generator abstractly,
tracking the set of held grants through branches, loops, ``try`` blocks
and ``yield from`` helper calls (via net-effect summaries), and flags:

``SIM401`` — an acquired grant with *no reachable release anywhere*:
    the resource is function-local (or handed in) and neither this
    function, a called helper, nor any other project function ever
    releases it.  Capacity leaks away one admission at a time.

``SIM402`` — a grant held across a ``yield`` with no ``try/finally``
    (or ``except``) releasing it: the function does release on the
    straight-line path, but a failed event at that yield point raises
    through the generator and the release is skipped.

``SIM403`` — a call to a function that returns an event it may
    ``fail(...)``, where the caller drops the result (or binds it and
    never yields, defuses, stores or forwards it): the failure can
    neither be observed nor suppressed, so the engine's
    uncaught-failure diagnostic is guaranteed to fire.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.core import Finding, dotted_name
from repro.lint.graph.callgraph import CallGraph
from repro.lint.graph.loader import FunctionInfo, Project

# Grant key: ("local"|"param"|"self"|"other", name)
Key = Tuple[str, str]

_RESOURCE_CTORS = {"Resource", "Pipe", "Link", "MemoryChannel"}


def check_protocol(project: Project, graph: CallGraph) -> List[Finding]:
    analysis = _ProtocolAnalysis(project, graph)
    return analysis.run()


class _FnFacts:
    """Syntactic acquire/release facts for one function."""

    __slots__ = ("acquired", "released", "local_resources",
                 "net_acquired_params", "released_params",
                 "net_acquired_self", "returns_failable")

    def __init__(self) -> None:
        self.acquired: Set[Key] = set()
        self.released: Set[Key] = set()
        self.local_resources: Set[str] = set()   # names built by a ctor here
        self.net_acquired_params: Set[int] = set()
        self.released_params: Set[int] = set()
        self.net_acquired_self: Set[str] = set()
        self.returns_failable = False


class _ProtocolAnalysis:

    def __init__(self, project: Project, graph: CallGraph):
        self.project = project
        self.graph = graph
        self.facts: Dict[str, _FnFacts] = {}
        # Every attribute name that any project function releases —
        # the cross-function hand-off index (write_line -> _drain_one).
        self.released_attrs_anywhere: Set[str] = set()
        self.released_names_anywhere: Set[str] = set()
        for fn in project.functions.values():
            facts = self._collect(fn)
            self.facts[fn.qname] = facts
            for kind, name in sorted(facts.released):
                if kind == "self":
                    self.released_attrs_anywhere.add(name)
                else:
                    self.released_names_anywhere.add(name)
        self._close_failable()

    # -- fact collection ---------------------------------------------------

    def _collect(self, fn: FunctionInfo) -> _FnFacts:
        facts = _FnFacts()
        params = set(fn.params)
        aliases: Dict[str, Key] = {}
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                name = node.targets[0].id
                if isinstance(node.value, ast.Call):
                    ctor = dotted_name(node.value.func).split(".")[-1]
                    if ctor in _RESOURCE_CTORS:
                        facts.local_resources.add(name)
                key = self._expr_key(node.value, params, aliases, fn)
                if key is not None:
                    aliases[name] = key
            elif isinstance(node, ast.Call):
                func = node.func
                if not isinstance(func, ast.Attribute):
                    continue
                if func.attr == "acquire":
                    key = self._receiver_key(func.value, params, aliases, fn)
                    facts.acquired.add(key)
                elif func.attr == "release":
                    key = self._receiver_key(func.value, params, aliases, fn)
                    facts.released.add(key)
        for key in facts.acquired - facts.released:
            kind, name = key
            if kind == "param":
                idx = fn.param_index(name)
                if idx is not None:
                    facts.net_acquired_params.add(idx)
            elif kind == "self":
                facts.net_acquired_self.add(name)
        for key in sorted(facts.released):
            kind, name = key
            if kind == "param":
                idx = fn.param_index(name)
                if idx is not None:
                    facts.released_params.add(idx)
        facts.returns_failable = self._returns_failable_local(fn)
        return facts

    def _receiver_key(self, expr: ast.expr, params: Set[str],
                      aliases: Dict[str, Key],
                      fn: FunctionInfo) -> Key:
        key = self._expr_key(expr, params, aliases, fn)
        return key if key is not None else ("other", dotted_name(expr) or "?")

    def _expr_key(self, expr: ast.expr, params: Set[str],
                  aliases: Dict[str, Key],
                  fn: FunctionInfo) -> Optional[Key]:
        if isinstance(expr, ast.Name):
            if expr.id in aliases:
                return aliases[expr.id]
            if expr.id in params:
                return ("param", expr.id)
            return ("local", expr.id)
        if isinstance(expr, ast.Attribute):
            if isinstance(expr.value, ast.Name) and expr.value.id == "self":
                return ("self", expr.attr)
            # foo.bar receivers: keyed by the attribute name so a release
            # of the same attribute elsewhere pairs up.
            return ("other", expr.attr)
        if isinstance(expr, ast.Subscript):
            return self._expr_key(expr.value, params, aliases, fn)
        return None

    # -- SIM403 summaries --------------------------------------------------

    def _returns_failable_local(self, fn: FunctionInfo) -> bool:
        """Does ``fn`` return a locally created event it may fail?"""
        event_names: Set[str] = set()
        failed: Set[str] = set()
        returned: Set[str] = set()
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign) and isinstance(
                    node.value, ast.Call):
                func = node.value.func
                is_event = (isinstance(func, ast.Attribute)
                            and func.attr == "event") or (
                    isinstance(func, ast.Name) and func.id == "Event")
                if is_event:
                    for tgt in node.targets:
                        if isinstance(tgt, ast.Name):
                            event_names.add(tgt.id)
            elif isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute) and func.attr == "fail" \
                        and isinstance(func.value, ast.Name):
                    failed.add(func.value.id)
            elif isinstance(node, ast.Return) and isinstance(
                    node.value, ast.Name):
                returned.add(node.value.id)
        return bool(event_names & failed & returned)

    def _close_failable(self) -> None:
        """Propagate returns-failable through pass-through returns."""
        for _ in range(6):
            changed = False
            for fn in self.project.functions.values():
                facts = self.facts[fn.qname]
                if facts.returns_failable:
                    continue
                for node in ast.walk(fn.node):
                    if not (isinstance(node, ast.Return)
                            and isinstance(node.value, ast.Call)):
                        continue
                    for callee in self._callees(fn, node.value):
                        if self.facts[callee.qname].returns_failable:
                            facts.returns_failable = True
                            changed = True
                            break
            if not changed:
                break

    def _callees(self, fn: FunctionInfo,
                 call: ast.Call) -> List[FunctionInfo]:
        for site in self.graph.sites_in(fn.qname):
            if site.node is call:
                return site.callees
        return []

    # -- the passes --------------------------------------------------------

    def run(self) -> List[Finding]:
        findings: List[Finding] = []
        for fn in self.project.functions.values():
            findings.extend(self._check_leaks(fn))
            if fn.has_yield:
                findings.extend(self._check_unprotected_yields(fn))
            findings.extend(self._check_dropped_failables(fn))
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return findings

    # SIM401 ---------------------------------------------------------------

    def _check_leaks(self, fn: FunctionInfo) -> List[Finding]:
        facts = self.facts[fn.qname]
        out: List[Finding] = []
        held = facts.acquired - facts.released
        # Interprocedural acquires: a called helper that net-acquires one
        # of our locals/params/attrs counts as an acquire here; a helper
        # that releases them counts as a release.
        helper_acquired, helper_released = self._helper_effects(fn)
        held |= helper_acquired
        held -= helper_released
        held -= facts.released
        for kind, name in sorted(held):
            if kind == "local" and name in facts.local_resources:
                if self._escapes(fn, name):
                    continue
                out.append(self._leak_finding(fn, kind, name))
            elif kind == "self":
                if name in self.released_attrs_anywhere:
                    continue
                out.append(self._leak_finding(fn, kind, name))
            # param/other grants: release legitimately lives with the
            # resource's owner; the caller-side check covers the locals.
        return out

    def _helper_effects(self, fn: FunctionInfo) -> Tuple[Set[Key], Set[Key]]:
        params = set(fn.params)
        aliases: Dict[str, Key] = {}
        acquired: Set[Key] = set()
        released: Set[Key] = set()
        for site in self.graph.sites_in(fn.qname):
            call = site.node
            for callee in site.callees:
                cf = self.facts.get(callee.qname)
                if cf is None:
                    continue
                for idx in sorted(cf.net_acquired_params):
                    key = self._arg_key(fn, call, callee, idx,
                                        params, aliases)
                    if key is not None:
                        acquired.add(key)
                for idx in sorted(cf.released_params):
                    key = self._arg_key(fn, call, callee, idx,
                                        params, aliases)
                    if key is not None:
                        released.add(key)
                # self.helper() with net self-attr effects propagates to
                # our own self when the receiver is our self.
                func = call.func
                if isinstance(func, ast.Attribute) and isinstance(
                        func.value, ast.Name) and func.value.id == "self":
                    for attr in sorted(cf.net_acquired_self):
                        acquired.add(("self", attr))
        return acquired, released

    def _arg_key(self, fn: FunctionInfo, call: ast.Call,
                 callee: FunctionInfo, idx: int, params: Set[str],
                 aliases: Dict[str, Key]) -> Optional[Key]:
        expr: Optional[ast.expr] = None
        if idx < len(call.args):
            expr = call.args[idx]
        else:
            for kw in call.keywords:
                if idx < len(callee.params) and kw.arg == callee.params[idx]:
                    expr = kw.value
        if expr is None:
            return None
        return self._expr_key(expr, params, aliases, fn)

    def _escapes(self, fn: FunctionInfo, name: str) -> bool:
        """Is the local resource observable outside this function?"""
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Return) and node.value is not None:
                for sub in ast.walk(node.value):
                    if isinstance(sub, ast.Name) and sub.id == name:
                        return True
            elif isinstance(node, ast.Assign):
                if any(not isinstance(t, ast.Name) for t in node.targets):
                    for sub in ast.walk(node.value):
                        if isinstance(sub, ast.Name) and sub.id == name:
                            return True
        return False

    def _leak_finding(self, fn: FunctionInfo, kind: str,
                      name: str) -> Finding:
        node = self._acquire_node(fn, kind, name) or fn.node
        shown = f"self.{name}" if kind == "self" else name
        return Finding(
            "SIM401", fn.path, node.lineno, node.col_offset,
            f"grant on `{shown}` acquired in `{fn.name}` is never "
            "released — not here, not in a called helper, not anywhere "
            "in the project; one admission leaks per call",
        )

    def _acquire_node(self, fn: FunctionInfo, kind: str,
                      name: str) -> Optional[ast.AST]:
        params = set(fn.params)
        aliases: Dict[str, Key] = {}
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                    isinstance(node.targets[0], ast.Name):
                key = self._expr_key(node.value, params, aliases, fn)
                if key is not None:
                    aliases[node.targets[0].id] = key
            if isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Attribute) and node.func.attr == "acquire":
                key = self._receiver_key(node.func.value, params, aliases, fn)
                if key == (kind, name):
                    return node
        # Helper-acquired grants anchor at the helper call.
        for site in self.graph.sites_in(fn.qname):
            for callee in site.callees:
                cf = self.facts.get(callee.qname)
                if cf is None:
                    continue
                if cf.net_acquired_params or cf.net_acquired_self:
                    return site.node
        return None

    # SIM402 ---------------------------------------------------------------

    def _check_unprotected_yields(self, fn: FunctionInfo) -> List[Finding]:
        facts = self.facts[fn.qname]
        if not facts.acquired & facts.released:
            return []  # nothing is both acquired and released here
        out: List[Finding] = []
        params = set(fn.params)
        aliases: Dict[str, Key] = {}
        reported: Set[Tuple[int, Key]] = set()

        def walk(stmts: List[ast.stmt], held: Set[Key],
                 protected: Set[Key]) -> Set[Key]:
            for stmt in stmts:
                held = step(stmt, held, protected)
            return held

        def yields_in(stmt: ast.stmt) -> List[ast.AST]:
            found: List[ast.AST] = []
            stack: List[ast.AST] = [stmt]
            while stack:
                node = stack.pop()
                if isinstance(node, (ast.Yield, ast.YieldFrom)):
                    found.append(node)
                    continue
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                    continue
                stack.extend(ast.iter_child_nodes(node))
            return found

        def acquire_key_of(stmt: ast.stmt) -> Optional[Key]:
            # ``yield X.acquire()`` as an expression statement or the RHS
            # of an assignment.
            value = None
            if isinstance(stmt, ast.Expr):
                value = stmt.value
            elif isinstance(stmt, ast.Assign):
                value = stmt.value
            if isinstance(value, ast.Yield) and isinstance(
                    value.value, ast.Call):
                call = value.value
                if isinstance(call.func, ast.Attribute) and \
                        call.func.attr == "acquire":
                    return self._receiver_key(call.func.value, params,
                                              aliases, fn)
            return None

        def release_keys_of(stmt: ast.stmt) -> Set[Key]:
            keys: Set[Key] = set()
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call) and isinstance(
                        node.func, ast.Attribute) and \
                        node.func.attr == "release":
                    keys.add(self._receiver_key(node.func.value, params,
                                                aliases, fn))
            return keys

        def check_yields(stmt: ast.stmt, held: Set[Key],
                         protected: Set[Key],
                         skip: Optional[Key]) -> None:
            exposed = {k for k in held
                       if k not in protected and k in facts.released}
            if not exposed:
                return
            for ynode in yields_in(stmt):
                for key in sorted(exposed):
                    if key == skip:
                        continue
                    mark = (ynode.lineno, key)
                    if mark in reported:
                        continue
                    reported.add(mark)
                    kind, name = key
                    shown = f"self.{name}" if kind == "self" else name
                    out.append(Finding(
                        "SIM402", fn.path, ynode.lineno, ynode.col_offset,
                        f"grant on `{shown}` is held across this yield "
                        "with no try/finally releasing it: a failed event "
                        "here raises through the generator and the "
                        "release is skipped; wrap the held region in "
                        "try/finally",
                    ))

        def step(stmt: ast.stmt, held: Set[Key],
                 protected: Set[Key]) -> Set[Key]:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                return held
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name):
                key = self._expr_key(stmt.value, params, aliases, fn)
                if key is not None and not isinstance(stmt.value, ast.Yield):
                    aliases[stmt.targets[0].id] = key
            acq = acquire_key_of(stmt)
            if acq is not None:
                # The acquire-yield itself: other held grants are exposed
                # while we wait for admission.
                check_yields(stmt, held, protected, skip=acq)
                return held | {acq}
            if isinstance(stmt, ast.Try):
                inner = set(protected)
                for final_stmt in stmt.finalbody:
                    inner |= release_keys_of(final_stmt)
                for handler in stmt.handlers:
                    for hstmt in handler.body:
                        inner |= release_keys_of(hstmt)
                held = walk(stmt.body, held, inner)
                for handler in stmt.handlers:
                    held = walk(handler.body, held, protected)
                held = walk(stmt.orelse, held, protected)
                held = walk(stmt.finalbody, held, protected)
                return held
            if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                held = walk(stmt.body, held, protected)
                held = walk(stmt.orelse, held, protected)
                return held
            if isinstance(stmt, ast.If):
                after_body = walk(stmt.body, set(held), protected)
                after_else = walk(stmt.orelse, set(held), protected)
                return after_body | after_else
            if isinstance(stmt, ast.With):
                return walk(stmt.body, held, protected)
            # Plain statement: releases first, then yield exposure.
            released_here = release_keys_of(stmt)
            remaining = held - released_here
            check_yields(stmt, remaining, protected, skip=None)
            return remaining

        walk(fn.node.body, set(), set())
        out.sort(key=lambda f: (f.line, f.col))
        return out

    # SIM403 ---------------------------------------------------------------

    def _check_dropped_failables(self, fn: FunctionInfo) -> List[Finding]:
        out: List[Finding] = []
        # Statements inside ``with pytest.raises(...)`` exist to provoke
        # the failure — dropping the event is the point of the test.
        in_raises: Set[int] = set()
        for node in ast.walk(fn.node):
            if isinstance(node, ast.With):
                for item in node.items:
                    ctx = item.context_expr
                    if isinstance(ctx, ast.Call) and \
                            dotted_name(ctx.func).endswith("raises"):
                        for stmt in node.body:
                            for sub in ast.walk(stmt):
                                in_raises.add(id(sub))
                        break
        # Names bound to failable-returning calls, and how they are used.
        bound: Dict[str, ast.Call] = {}
        used: Set[str] = set()
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Expr) and isinstance(
                    node.value, ast.Call):
                if id(node.value) in in_raises:
                    continue
                callees = self._callees(fn, node.value)
                if callees and all(self.facts[c.qname].returns_failable
                                   for c in callees):
                    name = callees[0].name
                    out.append(Finding(
                        "SIM403", fn.path, node.lineno, node.col_offset,
                        f"result of `{name}()` is a failable event and is "
                        "discarded: a failure can neither be observed nor "
                        "defused, so the uncaught-failure diagnostic will "
                        "fire; yield it, store it, or call `.defuse()`",
                    ))
            elif isinstance(node, ast.Assign) and isinstance(
                    node.value, ast.Call) and len(node.targets) == 1 and \
                    isinstance(node.targets[0], ast.Name):
                callees = self._callees(fn, node.value)
                if callees and all(self.facts[c.qname].returns_failable
                                   for c in callees):
                    bound[node.targets[0].id] = node.value
        if bound:
            for node in ast.walk(fn.node):
                if isinstance(node, ast.Assign):
                    sources = [node.value]
                elif isinstance(node, (ast.Yield, ast.YieldFrom, ast.Return)):
                    sources = [node.value] if node.value is not None else []
                elif isinstance(node, ast.Call):
                    sources = list(node.args) + \
                        [kw.value for kw in node.keywords]
                    func = node.func
                    if isinstance(func, ast.Attribute) and isinstance(
                            func.value, ast.Name) and \
                            func.value.id in bound and \
                            func.attr in ("defuse", "add_callback",
                                          "succeed"):
                        used.add(func.value.id)
                else:
                    continue
                for src in sources:
                    if src is None:
                        continue
                    for sub in ast.walk(src):
                        if isinstance(sub, ast.Name) and sub.id in bound:
                            used.add(sub.id)
            for name, call in sorted(bound.items()):
                if name in used:
                    continue
                out.append(Finding(
                    "SIM403", fn.path, call.lineno, call.col_offset,
                    f"`{name}` holds a failable event that is never "
                    "yielded, defused, stored or forwarded: its failure "
                    "cannot be observed; yield it or call `.defuse()`",
                ))
        out.sort(key=lambda f: (f.line, f.col))
        return out
