"""Unit-dimension inference (UNIT4xx).

All simulator time is float nanoseconds, all sizes are bytes, and
transfer shapes count 64 B cache lines.  The :mod:`repro.units`
constructors (``us``, ``ms``, ``kib``, ``mib``, ``cachelines``, ...) and
the naming convention (``*_ns``, ``*_bytes``, ``*_per_ns``) declare the
dimension of almost every quantity in the tree; this pass propagates
those dimensions through assignments, arithmetic and call signatures
(resolved through the call graph) and flags the flows the per-file
UNIT3xx rules cannot see:

``UNIT401`` — mixed-dimension arithmetic: ``ns + bytes`` has no meaning
    at any magnitude and always indicates a dropped conversion.

``UNIT402`` — an argument with a confidently inferred dimension passed
    to a parameter whose name declares a *different* dimension — e.g. a
    bytes value handed to a ``*_ns`` parameter two modules away.

``UNIT403`` — a large raw numeric magnitude (>= 1 ms worth of ns, or
    >= 64 KiB worth of bytes) flowing into a dimension-typed parameter
    positionally or through a variable, where the per-file UNIT302 rule
    (which only sees literal keywords) is blind.  State the magnitude
    with a :mod:`repro.units` helper instead.

Rates are understood just enough to stay quiet on clean code:
``bytes / *_per_ns`` is ns, ``bytes / ns`` is a rate, and arithmetic
with an unknown side is never flagged.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from repro.lint.core import Finding, dotted_name
from repro.lint.graph.callgraph import CallGraph
from repro.lint.graph.loader import FunctionInfo, Project

NS = "ns"
BYTES = "bytes"
LINES = "lines"
RATE = "bytes/ns"
DIMLESS = "dimless"

_CONCRETE = (NS, BYTES, LINES)

_UNITS_RETURNS = {
    "ns": NS, "us": NS, "ms": NS, "seconds": NS,
    "ghz_period_ns": NS, "mhz_period_ns": NS,
    "kib": BYTES, "mib": BYTES, "gib": BYTES,
    "cachelines": LINES,
    "gbps_to_bytes_per_ns": RATE, "gib_per_s_to_bytes_per_ns": RATE,
}

_UNITS_CONSTANTS = {
    "NS": NS, "US": NS, "MS": NS, "SEC": NS,
    "CACHELINE": BYTES, "PAGE_SIZE": BYTES,
}

# Raw-magnitude limits, matching the per-file UNIT302 thresholds.
_NS_LIMIT = 1_000_000.0
_BYTES_LIMIT = 64 * 1024


class Dim:
    """An inferred dimension, optionally carrying a literal magnitude."""

    __slots__ = ("kind", "literal")

    def __init__(self, kind: Optional[str],
                 literal: Optional[float] = None):
        self.kind = kind
        self.literal = literal

    @property
    def concrete(self) -> bool:
        return self.kind in _CONCRETE


UNKNOWN = Dim(None)


def name_dim(name: str) -> Optional[str]:
    """The dimension a name's suffix declares, if any.

    Lowercase ``*_rate`` is deliberately left unknown — in-tree it names
    both fractions (``hit_rate``) and bytes/ns rates
    (``input_ready_rate``); only the uppercase ``*_RATE`` constants are
    uniformly bytes/ns.
    """
    lowered = name.lower()
    if lowered.endswith("per_ns"):
        return RATE
    if name.endswith("_RATE"):
        return RATE
    if lowered.endswith("_ns") or name == "now":
        return NS
    if lowered.endswith(("_bytes", "nbytes")):
        return BYTES
    if lowered.endswith("_lines"):
        return LINES
    return None


def check_units(project: Project, graph: CallGraph) -> List[Finding]:
    analysis = _UnitAnalysis(project, graph)
    return analysis.run()


class _UnitAnalysis:

    def __init__(self, project: Project, graph: CallGraph):
        self.project = project
        self.graph = graph
        self.findings: List[Finding] = []
        self._seen: set = set()
        # qname -> return dimension, two rounds for pass-through returns.
        self.return_dims: Dict[str, Optional[str]] = {}
        self.module_consts: Dict[Tuple[str, str], Dim] = {}
        self._collect_module_consts()
        self._solve_return_dims()

    # -- module-level constants -------------------------------------------

    def _collect_module_consts(self) -> None:
        for module in self.project.modules.values():
            env: Dict[str, Dim] = {}
            for node in module.lint.tree.body:
                if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                        and isinstance(node.targets[0], ast.Name):
                    name = node.targets[0].id
                    dim = self._dim_of(node.value, env, None, check=False)
                    declared = name_dim(name)
                    if declared is not None and dim.kind is None:
                        dim = Dim(declared, dim.literal)
                    env[name] = dim
            for name, dim in env.items():
                if dim.kind is not None or dim.literal is not None:
                    self.module_consts[(module.name, name)] = dim

    # -- function return dimensions ---------------------------------------

    def _solve_return_dims(self) -> None:
        for _ in range(3):
            changed = False
            for fn in self.project.functions.values():
                dim = self._infer_return_dim(fn)
                if self.return_dims.get(fn.qname) != dim:
                    self.return_dims[fn.qname] = dim
                    changed = True
            if not changed:
                break

    def _infer_return_dim(self, fn: FunctionInfo) -> Optional[str]:
        declared = name_dim(fn.name)
        if declared is not None:
            return declared
        if fn.module.name == "repro.units":
            return _UNITS_RETURNS.get(fn.name)
        kinds = set()
        env = self._param_env(fn)
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Return) and node.value is not None:
                dim = self._dim_of(node.value, env, fn, check=False)
                kinds.add(dim.kind)
        kinds.discard(None)
        if len(kinds) == 1:
            return kinds.pop()
        return None

    def _param_env(self, fn: FunctionInfo) -> Dict[str, Dim]:
        env: Dict[str, Dim] = {}
        for name in fn.params:
            declared = name_dim(name)
            if declared is not None:
                env[name] = Dim(declared)
        return env

    # -- the pass ----------------------------------------------------------

    def run(self) -> List[Finding]:
        for fn in self.project.functions.values():
            env = self._param_env(fn)
            # Two passes approximate loop-carried assignments; findings
            # are deduplicated by location.
            for check in (False, True):
                self._exec_block(fn, fn.node.body, env, check)
        self.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return self.findings

    def _emit(self, rule: str, fn: FunctionInfo, node: ast.AST,
              message: str) -> None:
        mark = (rule, fn.path, node.lineno, node.col_offset)
        if mark in self._seen:
            return
        self._seen.add(mark)
        self.findings.append(Finding(rule, fn.path, node.lineno,
                                     node.col_offset, message))

    def _exec_block(self, fn: FunctionInfo, body: List[ast.stmt],
                    env: Dict[str, Dim], check: bool) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name):
                dim = self._dim_of(stmt.value, env, fn, check)
                name = stmt.targets[0].id
                declared = name_dim(name)
                if declared is not None and dim.kind is None:
                    dim = Dim(declared, dim.literal)
                env[name] = dim
                continue
            if isinstance(stmt, ast.AugAssign) and isinstance(
                    stmt.target, ast.Name):
                left = env.get(stmt.target.id, UNKNOWN)
                right = self._dim_of(stmt.value, env, fn, check)
                result = self._combine(stmt.op, left, right, stmt, fn, check)
                env[stmt.target.id] = result
                continue
            # Generic statement: evaluate nested expressions for checks,
            # then recurse into nested blocks.
            for field in ast.iter_fields(stmt):
                _, value = field
                if isinstance(value, ast.expr):
                    self._dim_of(value, env, fn, check)
                elif isinstance(value, list):
                    exprs = [v for v in value if isinstance(v, ast.expr)]
                    for exprv in exprs:
                        self._dim_of(exprv, env, fn, check)
                    stmts = [v for v in value if isinstance(v, ast.stmt)]
                    if stmts:
                        self._exec_block(fn, stmts, env, check)
                elif isinstance(value, ast.excepthandler):
                    pass
            if isinstance(stmt, ast.Try):
                for handler in stmt.handlers:
                    self._exec_block(fn, handler.body, env, check)

    # -- expression dimensions --------------------------------------------

    def _dim_of(self, expr: ast.expr, env: Dict[str, Dim],
                fn: Optional[FunctionInfo], check: bool) -> Dim:
        if isinstance(expr, ast.Constant):
            if isinstance(expr.value, bool) or not isinstance(
                    expr.value, (int, float)):
                return UNKNOWN
            return Dim(None, float(expr.value))
        if isinstance(expr, ast.UnaryOp):
            inner = self._dim_of(expr.operand, env, fn, check)
            if isinstance(expr.op, ast.USub) and inner.literal is not None:
                return Dim(inner.kind, -inner.literal)
            return inner
        if isinstance(expr, ast.Name):
            if expr.id in env:
                return env[expr.id]
            if fn is not None:
                const = self.module_consts.get((fn.module.name, expr.id))
                if const is not None:
                    return const
                if expr.id in _UNITS_CONSTANTS and \
                        self._binds_units_constant(fn, expr.id):
                    return Dim(_UNITS_CONSTANTS[expr.id])
            declared = name_dim(expr.id)
            return Dim(declared) if declared else UNKNOWN
        if isinstance(expr, ast.Attribute):
            declared = name_dim(expr.attr)
            if declared is not None:
                return Dim(declared)
            if expr.attr in _UNITS_CONSTANTS:
                return Dim(_UNITS_CONSTANTS[expr.attr])
            return UNKNOWN
        if isinstance(expr, ast.BinOp):
            left = self._dim_of(expr.left, env, fn, check)
            right = self._dim_of(expr.right, env, fn, check)
            return self._combine(expr.op, left, right, expr, fn, check)
        if isinstance(expr, ast.Call):
            return self._dim_of_call(expr, env, fn, check)
        if isinstance(expr, ast.IfExp):
            self._dim_of(expr.test, env, fn, check)
            body = self._dim_of(expr.body, env, fn, check)
            orelse = self._dim_of(expr.orelse, env, fn, check)
            if body.kind == orelse.kind:
                return Dim(body.kind)
            return UNKNOWN
        if isinstance(expr, (ast.Yield, ast.YieldFrom, ast.Await)):
            if expr.value is not None:
                self._dim_of(expr.value, env, fn, check)
            return UNKNOWN
        if isinstance(expr, ast.Compare):
            self._dim_of(expr.left, env, fn, check)
            for comp in expr.comparators:
                self._dim_of(comp, env, fn, check)
            return UNKNOWN
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            for elt in expr.elts:
                self._dim_of(elt, env, fn, check)
            return UNKNOWN
        if isinstance(expr, ast.Subscript):
            self._dim_of(expr.value, env, fn, check)
            return UNKNOWN
        return UNKNOWN

    def _binds_units_constant(self, fn: FunctionInfo, name: str) -> bool:
        target = fn.module.imports.get(name, "")
        return target.startswith("repro.units")

    def _combine(self, op: ast.operator, left: Dim, right: Dim,
                 node: ast.AST, fn: Optional[FunctionInfo],
                 check: bool) -> Dim:
        if isinstance(op, (ast.Add, ast.Sub)):
            if left.concrete and right.concrete and left.kind != right.kind:
                if check and fn is not None:
                    self._emit(
                        "UNIT401", fn, node,
                        f"mixed-dimension arithmetic: `{left.kind}` "
                        f"{'+' if isinstance(op, ast.Add) else '-'} "
                        f"`{right.kind}` has no meaning; convert one side "
                        "with repro.units first",
                    )
                return UNKNOWN
            kind = left.kind if left.concrete else (
                right.kind if right.concrete else
                (left.kind or right.kind))
            literal = None
            if left.literal is not None and right.literal is not None:
                literal = (left.literal + right.literal
                           if isinstance(op, ast.Add)
                           else left.literal - right.literal)
            return Dim(kind, literal)
        if isinstance(op, ast.Mult):
            lit = None
            if left.literal is not None and right.literal is not None:
                lit = left.literal * right.literal
            for a, b in ((left, right), (right, left)):
                if a.concrete and (b.kind is None and b.literal is not None
                                   or b.kind == DIMLESS):
                    return Dim(a.kind, lit)
                if a.kind == RATE and b.kind == NS:
                    return Dim(BYTES)
            if left.kind is None and right.kind is None:
                return Dim(None, lit)
            return UNKNOWN
        if isinstance(op, (ast.Div, ast.FloorDiv)):
            if left.kind == BYTES and right.kind == RATE:
                return Dim(NS)
            if left.kind == BYTES and right.kind == NS:
                return Dim(RATE)
            if left.kind is not None and left.kind == right.kind:
                return Dim(DIMLESS)
            if left.concrete and (right.kind == DIMLESS or
                                  (right.kind is None
                                   and right.literal is not None)):
                # Dividing by a plain number scales the magnitude; an
                # *unknown* divisor could be a rate, so it erases the
                # dimension rather than keeping it.
                lit = None
                if left.literal is not None and right.literal:
                    lit = left.literal / right.literal
                return Dim(left.kind, lit)
            if left.literal is not None and right.literal:
                return Dim(None, left.literal / right.literal)
            return UNKNOWN
        return UNKNOWN

    # -- calls: signature checks ------------------------------------------

    def _dim_of_call(self, node: ast.Call, env: Dict[str, Dim],
                     fn: Optional[FunctionInfo], check: bool) -> Dim:
        arg_dims = [self._dim_of(arg, env, fn, check) for arg in node.args]
        kw_dims = {kw.arg: self._dim_of(kw.value, env, fn, check)
                   for kw in node.keywords}
        dotted = dotted_name(node.func)
        leaf = dotted.split(".")[-1] if dotted else ""

        if check and fn is not None:
            self._check_args(node, leaf, arg_dims, kw_dims, fn)

        # min/max/abs preserve a consistent argument dimension.
        if leaf in ("min", "max", "abs") and arg_dims:
            kinds = {d.kind for d in arg_dims}
            if len(kinds) == 1 and None not in kinds:
                return Dim(kinds.pop())
            return UNKNOWN

        # Return dimension.
        if leaf in _UNITS_RETURNS and fn is not None and \
                self._is_units_call(fn, dotted):
            return Dim(_UNITS_RETURNS[leaf])
        declared = name_dim(leaf)
        if declared is not None:
            return Dim(declared)
        site = self._site_for(fn, node)
        if site is not None and site.callees:
            kinds = {self.return_dims.get(c.qname) for c in site.callees}
            if len(kinds) == 1:
                kind = kinds.pop()
                if kind is not None:
                    return Dim(kind)
        return UNKNOWN

    def _is_units_call(self, fn: FunctionInfo, dotted: str) -> bool:
        head = dotted.split(".")[0]
        target = fn.module.imports.get(head, "")
        if target.startswith("repro.units") or target == "repro":
            return True
        # Fixtures and in-package code may define/import the helpers
        # under the same canonical names; resolved symbols win.
        symbol = self.project.resolve_dotted(fn.module, dotted)
        return isinstance(symbol, FunctionInfo) and \
            symbol.module.name.endswith("units")

    def _site_for(self, fn: Optional[FunctionInfo], node: ast.Call):
        if fn is None:
            return None
        for site in self.graph.sites_in(fn.qname):
            if site.node is node:
                return site
        return None

    def _check_args(self, node: ast.Call, leaf: str,
                    arg_dims: List[Dim], kw_dims: Dict[Optional[str], Dim],
                    fn: FunctionInfo) -> None:
        # Keyword names declare dimensions even for unresolved callees.
        for kw, dim in zip(node.keywords, [kw_dims[kw.arg]
                                           for kw in node.keywords]):
            if kw.arg is None:
                continue
            declared = name_dim(kw.arg)
            if declared in _CONCRETE:
                self._check_one(kw.value, dim, declared, kw.arg, fn)
        # Resolved callees declare positional parameter dimensions.
        site = self._site_for(fn, node)
        if site is None or not site.callees:
            return
        callee = site.callees[0]
        for idx, dim in enumerate(arg_dims):
            if idx >= len(callee.params):
                break
            pname = callee.params[idx]
            declared = name_dim(pname)
            if declared in _CONCRETE:
                self._check_one(node.args[idx], dim, declared, pname, fn)
        for kw in node.keywords:
            if kw.arg is None or kw.arg not in callee.params:
                continue
            declared = name_dim(kw.arg)
            if declared in _CONCRETE:
                self._check_one(kw.value, kw_dims[kw.arg], declared,
                                kw.arg, fn)

    def _check_one(self, anchor: ast.expr, dim: Dim, declared: str,
                   pname: str, fn: FunctionInfo) -> None:
        if dim.concrete and dim.kind != declared:
            self._emit(
                "UNIT402", fn, anchor,
                f"`{pname}` expects {declared} but the argument is "
                f"{dim.kind}; convert with repro.units before the call",
            )
            return
        if dim.kind is None and dim.literal is not None:
            limit = _NS_LIMIT if declared == NS else _BYTES_LIMIT
            if declared in (NS, BYTES) and abs(dim.literal) >= limit:
                helper = "us(...)/ms(...)" if declared == NS else \
                    "kib(...)/mib(...)"
                self._emit(
                    "UNIT403", fn, anchor,
                    f"raw magnitude {dim.literal:g} flows into "
                    f"`{pname}` ({declared}); state the unit with "
                    f"repro.units ({helper})",
                )
