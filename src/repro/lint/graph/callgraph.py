"""Call graph construction with method resolution.

Each function body is scanned once; every ``ast.Call`` is resolved to
the project functions it can reach:

- ``name(...)`` — a module-level function, an imported function, or a
  class (resolving to its ``__init__``);
- ``self.m(...)`` — the method along the class's MRO, *plus* every
  override in known subclasses (virtual dispatch: the pass must follow
  the call wherever it can land);
- ``mod.f(...)`` / ``mod.Class(...)`` — through the import bindings;
- ``obj.m(...)`` — typed receivers first (parameter annotations, local
  ``x = Class(...)`` assignments, ``self.attr`` constructor types), then
  a by-name fallback when exactly one project class defines ``m``.

The fallback keeps the graph useful without real type inference; it is
deliberately skipped for dunder names and very common method names
(``get``, ``put``, ``run``...) where a unique definition would still be
a coincidence.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional

from repro.lint.graph.loader import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    Project,
    _dotted,
)

# By-name fallback is suppressed for these: too generic for a unique
# project definition to be trustworthy.
_FALLBACK_SKIP = {
    "get", "put", "run", "start", "stop", "close", "read", "write",
    "append", "add", "pop", "update", "items", "keys", "values", "copy",
    "format", "join", "split", "strip",
}


class CallSite:
    """One resolved call expression inside a function body."""

    __slots__ = ("node", "callees", "via_fallback")

    def __init__(self, node: ast.Call, callees: List[FunctionInfo],
                 via_fallback: bool = False):
        self.node = node
        self.callees = callees
        self.via_fallback = via_fallback


class CallGraph:
    """Call sites per function plus forward/backward edge maps."""

    def __init__(self) -> None:
        self.sites: Dict[str, List[CallSite]] = {}
        self.edges: Dict[str, List[str]] = {}
        self.callers: Dict[str, List[str]] = {}

    def add(self, caller: FunctionInfo, site: CallSite) -> None:
        self.sites.setdefault(caller.qname, []).append(site)
        for callee in site.callees:
            fwd = self.edges.setdefault(caller.qname, [])
            if callee.qname not in fwd:
                fwd.append(callee.qname)
            back = self.callers.setdefault(callee.qname, [])
            if caller.qname not in back:
                back.append(caller.qname)

    def callees_of(self, qname: str) -> List[str]:
        return self.edges.get(qname, [])

    def sites_in(self, qname: str) -> List[CallSite]:
        return self.sites.get(qname, [])


def build_call_graph(project: Project) -> CallGraph:
    graph = CallGraph()
    for fn in project.functions.values():
        env = _TypeEnv(project, fn)
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            site = _resolve_call(project, fn, env, node)
            if site is not None:
                graph.add(fn, site)
    return graph


class _TypeEnv:
    """Light receiver typing for one function body.

    Maps local names to :class:`ClassInfo` from parameter annotations
    and ``x = Class(...)`` / ``x = self.attr`` assignments; one forward
    collection pass, no flow sensitivity.
    """

    def __init__(self, project: Project, fn: FunctionInfo):
        self.project = project
        self.fn = fn
        self.types: Dict[str, ClassInfo] = {}
        self._collect()

    def _collect(self) -> None:
        args = self.fn.node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            ci = self._annotation_class(arg.annotation)
            if ci is not None:
                self.types[arg.arg] = ci
        for node in ast.walk(self.fn.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                name = node.targets[0].id
                ci = self.class_of_expr(node.value)
                if ci is not None and name not in self.types:
                    self.types[name] = ci
            elif isinstance(node, ast.AnnAssign) \
                    and isinstance(node.target, ast.Name):
                ci = self._annotation_class(node.annotation)
                if ci is not None:
                    self.types[node.target.id] = ci

    def _annotation_class(self,
                          annotation: Optional[ast.expr]) -> Optional[ClassInfo]:
        if annotation is None:
            return None
        if isinstance(annotation, ast.Constant) \
                and isinstance(annotation.value, str):
            dotted = annotation.value.strip().strip("\"'")
        else:
            dotted = _dotted(annotation)
        if not dotted:
            return None
        ci = self.project.resolve_class(self.fn.module, dotted)
        if ci is None:
            ci = self.project.class_named(dotted.split(".")[-1])
        return ci

    def class_of_expr(self, expr: ast.expr) -> Optional[ClassInfo]:
        """The class an expression evaluates to, when confidently known."""
        if isinstance(expr, ast.Call):
            dotted = _dotted(expr.func)
            if dotted:
                symbol = self.project.resolve_dotted(self.fn.module, dotted)
                if isinstance(symbol, ClassInfo):
                    return symbol
                leaf = dotted.split(".")[-1]
                if leaf[:1].isupper():
                    return self.project.class_named(leaf)
            return None
        if isinstance(expr, ast.Name):
            if expr.id in self.types:
                return self.types[expr.id]
            symbol = self.project.resolve_dotted(self.fn.module, expr.id)
            return symbol if isinstance(symbol, ClassInfo) else None
        if isinstance(expr, ast.Attribute):
            if isinstance(expr.value, ast.Name) and expr.value.id == "self" \
                    and self.fn.cls is not None:
                for cls in self.project.mro(self.fn.cls):
                    ctor = cls.attr_types.get(expr.attr)
                    if ctor:
                        ci = self.project.resolve_class(cls.module, ctor)
                        if ci is None:
                            ci = self.project.class_named(
                                ctor.split(".")[-1])
                        return ci
        return None


def _resolve_call(project: Project, fn: FunctionInfo, env: _TypeEnv,
                  node: ast.Call) -> Optional[CallSite]:
    func = node.func
    # name(...) — plain or dotted-through-imports call
    dotted = _dotted(func)
    if dotted and not dotted.startswith("self."):
        symbol = project.resolve_dotted(fn.module, dotted)
        if isinstance(symbol, FunctionInfo):
            return CallSite(node, [symbol])
        if isinstance(symbol, ClassInfo):
            init = project.lookup_method(symbol, "__init__")
            return CallSite(node, [init] if init else [])
    if isinstance(func, ast.Attribute):
        method = func.attr
        receiver: Optional[ClassInfo] = None
        if isinstance(func.value, ast.Name) and func.value.id == "self":
            receiver = fn.cls
        else:
            receiver = env.class_of_expr(func.value)
        if receiver is not None:
            resolved = project.lookup_method(receiver, method)
            callees: List[FunctionInfo] = [resolved] if resolved else []
            # Virtual dispatch: the call can land on any override below
            # the static receiver type.
            for sub in project.subclasses(receiver):
                if method in sub.methods and sub.methods[method] not in callees:
                    callees.append(sub.methods[method])
            if callees:
                return CallSite(node, callees)
        # By-name fallback: unique project definition of the method.
        if not method.startswith("__") and method not in _FALLBACK_SKIP:
            named = project.methods_named(method)
            if len(named) == 1:
                return CallSite(node, named, via_fallback=True)
    return None
