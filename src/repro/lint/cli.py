"""``python -m repro lint``: run reprolint over source trees.

Exit codes: 0 clean, 1 findings, 2 usage or parse errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Set

from repro.lint.core import all_rules, lint_paths


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="reprolint: determinism, sim-process protocol, and "
                    "unit-hygiene checks for the repro simulator "
                    "(rule catalogue: docs/LINT.md)",
    )
    parser.add_argument("paths", nargs="*", default=["src", "tests"],
                        help="files or directories to lint "
                             "(default: src tests)")
    parser.add_argument("--format", choices=["text", "json"], default="text",
                        help="output format (json is machine-readable)")
    parser.add_argument("--select", default=None, metavar="RULES",
                        help="comma-separated rule ids to run exclusively")
    parser.add_argument("--ignore", default=None, metavar="RULES",
                        help="comma-separated rule ids to skip")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    return parser


def _id_set(spec: Optional[str]) -> Optional[Set[str]]:
    if not spec:
        return None
    return {part.strip() for part in spec.split(",") if part.strip()}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  {rule.summary}")
        return 0
    known = {rule.id for rule in all_rules()}
    select, ignore = _id_set(args.select), _id_set(args.ignore)
    for chosen in (select or set()) | (ignore or set()):
        if chosen not in known:
            print(f"repro lint: unknown rule id {chosen!r} "
                  f"(known: {', '.join(sorted(known))})", file=sys.stderr)
            return 2
    report = lint_paths(args.paths, select=select, ignore=ignore)
    if args.format == "json":
        print(report.to_json())
    else:
        for finding in report.findings:
            print(finding.format())
        for error in report.parse_errors:
            print(f"parse error: {error}", file=sys.stderr)
        summary = (f"{report.files_checked} files checked, "
                   f"{len(report.findings)} finding(s)")
        print(summary if report.findings else f"{summary} — clean")
    if report.parse_errors:
        return 2
    return 1 if report.findings else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
