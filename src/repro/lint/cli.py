"""``python -m repro lint``: run reprolint over source trees.

Exit codes (documented in docs/LINT.md):

* ``0`` — clean: no findings (or, with ``--baseline``, no findings
  beyond the baseline; with ``--write-baseline``, the write succeeded);
* ``1`` — findings were reported;
* ``2`` — usage errors (unknown rule id) or files that failed to parse.
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter
from pathlib import Path
from typing import Dict, List, Optional, Set

from repro.lint.cache import open_cache
from repro.lint.core import Finding, LintReport, all_rules, lint_paths

DEFAULT_CACHE = ".reprolint_cache.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="reprolint: determinism, sim-process protocol, and "
                    "unit-hygiene checks for the repro simulator "
                    "(rule catalogue: docs/LINT.md)",
    )
    parser.add_argument("paths", nargs="*", default=["src", "tests"],
                        help="files or directories to lint "
                             "(default: src tests)")
    parser.add_argument("--graph", action="store_true",
                        help="also run the whole-program tier: call-graph "
                             "determinism taint (DET2xx), process-protocol "
                             "(SIM4xx) and unit-dimension (UNIT4xx) passes")
    parser.add_argument("--format", choices=["text", "json", "sarif"],
                        default="text",
                        help="output format (json/sarif are "
                             "machine-readable)")
    parser.add_argument("--output", default=None, metavar="FILE",
                        help="write the report to FILE instead of stdout")
    parser.add_argument("--select", default=None, metavar="RULES",
                        help="comma-separated rule ids to run exclusively")
    parser.add_argument("--ignore", default=None, metavar="RULES",
                        help="comma-separated rule ids to skip")
    parser.add_argument("--summary", action="store_true",
                        help="print per-rule finding and suppressed counts")
    parser.add_argument("--baseline", default=None, metavar="FILE",
                        help="only fail on findings not present in this "
                             "baseline file")
    parser.add_argument("--write-baseline", action="store_true",
                        help="record current findings into --baseline "
                             "and exit 0")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the content-hash result cache")
    parser.add_argument("--cache-file", default=DEFAULT_CACHE,
                        metavar="FILE", help="cache location "
                        f"(default: {DEFAULT_CACHE})")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    return parser


def _id_set(spec: Optional[str]) -> Optional[Set[str]]:
    if not spec:
        return None
    return {part.strip() for part in spec.split(",") if part.strip()}


def _fingerprint(finding: Finding) -> str:
    # Line-agnostic: unrelated edits above a finding must not turn it
    # into a "new" finding for the baseline gate.
    return f"{finding.rule}|{finding.path}|{finding.message}"


def _baseline_counts(path: str) -> Optional[Counter]:
    import json
    try:
        raw = json.loads(Path(path).read_text(encoding="utf-8"))
    except FileNotFoundError:
        return Counter()  # no baseline yet: everything is new
    except (OSError, ValueError):
        return None
    return Counter(raw.get("fingerprints", {}))


def _write_baseline(path: str, report: LintReport) -> None:
    import json
    counts: Counter = Counter(_fingerprint(f) for f in report.findings)
    payload = {"fingerprints": {k: counts[k] for k in sorted(counts)}}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n",
                          encoding="utf-8")


def _summary_lines(report: LintReport) -> List[str]:
    found = report.per_rule_counts()
    rules = sorted(set(found) | set(report.suppressed))
    lines = ["rule      findings  suppressed"]
    for rule_id in rules:
        lines.append(f"{rule_id:<10}{found.get(rule_id, 0):>8}"
                     f"{report.suppressed.get(rule_id, 0):>12}")
    total_f = sum(found.values())
    total_s = sum(report.suppressed.values())
    lines.append(f"{'total':<10}{total_f:>8}{total_s:>12}")
    return lines


def _known_ids() -> Set[str]:
    from repro.lint.graph import GRAPH_RULE_IDS
    return {rule.id for rule in all_rules()} | set(GRAPH_RULE_IDS)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        from repro.lint.graph import GRAPH_RULE_CATALOGUE
        for rule in all_rules():
            print(f"{rule.id}  {rule.summary}")
        for rule_id, summary in GRAPH_RULE_CATALOGUE:
            print(f"{rule_id}  {summary}  [--graph]")
        return 0
    known = _known_ids()
    select, ignore = _id_set(args.select), _id_set(args.ignore)
    for chosen in (select or set()) | (ignore or set()):
        if chosen not in known:
            print(f"repro lint: unknown rule id {chosen!r} "
                  f"(known: {', '.join(sorted(known))})", file=sys.stderr)
            return 2
    if args.write_baseline and not args.baseline:
        print("repro lint: --write-baseline requires --baseline FILE",
              file=sys.stderr)
        return 2

    cache = None if args.no_cache else open_cache(args.cache_file)
    report = lint_paths(args.paths, select=select, ignore=ignore,
                        graph=args.graph, cache=cache)
    if cache is not None:
        cache.save()

    new_findings = report.findings
    if args.baseline and not args.write_baseline:
        baseline = _baseline_counts(args.baseline)
        if baseline is None:
            print(f"repro lint: baseline {args.baseline!r} is unreadable",
                  file=sys.stderr)
            return 2
        budget: Dict[str, int] = dict(baseline)
        new_findings = []
        for finding in report.findings:
            key = _fingerprint(finding)
            if budget.get(key, 0) > 0:
                budget[key] -= 1
            else:
                new_findings.append(finding)

    out = sys.stdout
    if args.output:
        out = open(args.output, "w", encoding="utf-8")
    try:
        if args.format == "json":
            print(report.to_json(), file=out)
        elif args.format == "sarif":
            from repro.lint.sarif import report_to_sarif_json
            print(report_to_sarif_json(report), file=out)
        else:
            new_ids = {id(f) for f in new_findings}
            baselined = bool(args.baseline) and not args.write_baseline
            for finding in report.findings:
                marker = ("" if id(finding) in new_ids or not baselined
                          else " [baseline]")
                print(finding.format() + marker, file=out)
            for error in report.parse_errors:
                print(f"parse error: {error}", file=sys.stderr)
            if args.summary:
                for line in _summary_lines(report):
                    print(line, file=out)
            tier = " (+graph)" if report.graph else ""
            summary = (f"{report.files_checked} files checked{tier}, "
                       f"{len(report.findings)} finding(s), "
                       f"{sum(report.suppressed.values())} suppressed")
            print(summary if report.findings else f"{summary} — clean",
                  file=out)
    finally:
        if args.output:
            out.close()

    if args.write_baseline:
        _write_baseline(args.baseline, report)
        print(f"baseline written: {args.baseline} "
              f"({len(report.findings)} finding(s))", file=sys.stderr)
        if report.parse_errors:
            return 2
        return 0
    if report.parse_errors:
        return 2
    return 1 if new_findings else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
