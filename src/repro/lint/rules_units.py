"""Unit-hygiene rules (UNIT3xx).

All simulator time is float nanoseconds and all sizes are bytes; the
:mod:`repro.units` helpers exist so magnitudes read like the paper.
These rules catch the two ways raw floats sneak back in: exact equality
between two *computed* timestamps (accumulated float error makes the
comparison scheduling-dependent) and large magic literals where a units
helper states the intent.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.core import Finding, LintModule, Rule

_TS_NAME_SUFFIXES = ("_ns",)

# A raw `_ns=` keyword at or above this magnitude should use us()/ms().
_NS_LITERAL_LIMIT = 1_000_000.0
# A raw `_bytes=` keyword at or above this should use kib()/mib()/gib().
_BYTES_LITERAL_LIMIT = 64 * 1024


def _ts_suffixed(name: str) -> bool:
    """``_ns``-suffixed, excluding rates like ``bytes_per_ns``."""
    return name.endswith(_TS_NAME_SUFFIXES) and not name.endswith("per_ns")


def _is_timestampish(node: ast.expr) -> bool:
    """Is this expression a *computed* sim timestamp?

    Covers ``sim.now`` / ``self.sim.now``-style attributes, names or
    attributes ending in ``_ns`` (but not rates like ``bytes_per_ns``),
    and arithmetic over such terms.  Literals are deliberately excluded:
    comparing ``sim.now`` against an exact representable constant is
    deterministic and idiomatic in tests.
    """
    if isinstance(node, ast.Attribute):
        return node.attr == "now" or _ts_suffixed(node.attr)
    if isinstance(node, ast.Name):
        return _ts_suffixed(node.id)
    if isinstance(node, ast.BinOp):
        return _is_timestampish(node.left) or _is_timestampish(node.right)
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute):
            return _ts_suffixed(func.attr)
        if isinstance(func, ast.Name):
            return _ts_suffixed(func.id)
    return False


def _is_dynamic(node: ast.expr) -> bool:
    """Does this expression read the live clock or compute a value?

    A plain attribute chain (``report.total_ns``, ``costs.read_ns``) is a
    *stored* quantity: exact equality against another stored quantity is
    an identity check, not a schedule race.  The hazard needs at least
    one operand that is freshly computed — a ``.now`` read, arithmetic,
    or a call — whose float value depends on the event schedule.
    """
    for sub in ast.walk(node):
        if isinstance(sub, (ast.BinOp, ast.Call)):
            return True
        if isinstance(sub, ast.Attribute) and sub.attr == "now":
            return True
    return False


def check_unit301(module: LintModule) -> Iterator[Finding]:
    """UNIT301: ``==``/``!=`` between two computed sim timestamps."""
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left] + list(node.comparators)
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if (_is_timestampish(left) and _is_timestampish(right)
                    and (_is_dynamic(left) or _is_dynamic(right))):
                yield Finding(
                    "UNIT301", module.path, node.lineno, node.col_offset,
                    "exact float equality between two computed sim "
                    "timestamps is schedule-dependent; compare with a "
                    "tolerance (pytest.approx / math.isclose) or compare "
                    "event counts instead",
                )


def _numeric_literal(node: ast.expr) -> Optional[float]:
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)) \
            and not isinstance(node.value, bool):
        return float(node.value)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _numeric_literal(node.operand)
        return -inner if inner is not None else None
    return None


def check_unit302(module: LintModule) -> Iterator[Finding]:
    """UNIT302: large raw literal passed to a ``*_ns``/``*_bytes``
    parameter where a :mod:`repro.units` helper states the magnitude."""
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        for kw in node.keywords:
            if kw.arg is None:
                continue
            value = _numeric_literal(kw.value)
            if value is None:
                continue
            if kw.arg.endswith("_ns") and abs(value) >= _NS_LITERAL_LIMIT:
                yield Finding(
                    "UNIT302", module.path, kw.value.lineno,
                    kw.value.col_offset,
                    f"raw literal `{kw.arg}={value:g}`: state the unit "
                    "with repro.units (us(...), ms(...), seconds(...))",
                )
            elif kw.arg.endswith("_bytes") and value >= _BYTES_LITERAL_LIMIT:
                yield Finding(
                    "UNIT302", module.path, kw.value.lineno,
                    kw.value.col_offset,
                    f"raw literal `{kw.arg}={int(value)}`: state the "
                    "magnitude with repro.units (kib(...), mib(...), "
                    "gib(...))",
                )


RULES = [
    Rule("UNIT301", "float equality between computed timestamps",
         check_unit301),
    Rule("UNIT302", "raw magnitude literal where a units helper belongs",
         check_unit302),
]
