"""Sim-time race detector: scheduling-order-dependent mutations.

Two processes that mutate the same simulation state (a cache line, a
pipe) at the *identical sim-timestamp* with no ordering edge between
them produce results that depend only on scheduling order — the engine
is deterministic, so such a pair silently bakes the current spawn order
into every figure, and the next refactor of a hot path changes the
numbers without failing a test.

The detector records a ``(key, actor, sim-timestamp)`` touch per
mutation and a parent edge per scheduled callback: every callback
scheduled *while task T executes* is a causal child of T, which is
exactly how ordering flows through an :class:`~repro.sim.engine.Event`
trigger, a :class:`~repro.sim.resources.Resource` hand-off, or a
``Timeout``.  A mutation conflicts when the previous mutation of the
same key happened at the same timestamp, from a different actor, and is
not among the causal ancestors of the current task.

Armed via ``SanitizerConfig.races`` / ``Platform.arm_sanitizers()``;
the engine and the instrumented models pay a single ``is None`` test
per operation when disarmed.  Bookkeeping grows with the number of
scheduled callbacks, so arm it for tests, not for long sweeps.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, Dict, Hashable, List, Tuple

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator


def _label(actor: object) -> str:
    """A human-readable actor name for violation messages."""
    name = getattr(actor, "name", None)
    if name:
        return str(name)
    qualname = getattr(actor, "__qualname__", None)
    if qualname:
        return str(qualname)
    return repr(actor)


@dataclass(frozen=True)
class RaceViolation:
    """One unordered same-timestamp mutation pair."""

    key: Hashable
    time_ns: float
    first_actor: str
    second_actor: str

    def format(self) -> str:
        return (f"race on {self.key!r} @ {self.time_ns:g} ns: "
                f"{self.first_actor!r} and {self.second_actor!r} mutate it "
                "at the same timestamp with no ordering edge "
                "(Event/Resource/Timeout chain)")


class RaceDetector:
    """Flags unordered same-timestamp mutations of shared sim state."""

    def __init__(self, sim: "Simulator", strict: bool = True):
        self.sim = sim
        self.strict = strict
        self.violations: List[RaceViolation] = []
        self.mutations = 0
        # task id -> the task that scheduled it (causal parent)
        self._parent: Dict[int, int] = {}
        # key -> (time, actor object, task id) of the last mutation;
        # actors compare by identity so same-named processes still differ
        self._last: Dict[Hashable, Tuple[float, object, int]] = {}
        # recent non-mutating synchronization touches, for diagnostics
        self.touches: Deque[Tuple[Hashable, float, int]] = deque(maxlen=1024)

    def arm(self) -> "RaceDetector":
        """Install on the simulator; the engine starts feeding edges."""
        self.sim.race_detector = self
        return self

    @property
    def clean(self) -> bool:
        return not self.violations

    def assert_clean(self) -> None:
        if self.violations:
            detail = "\n".join(v.format() for v in self.violations)
            raise SimulationError(
                f"{len(self.violations)} sim-time race(s):\n{detail}")

    # -- engine hooks ------------------------------------------------------

    def note_schedule(self, child_task: int, parent_task: int) -> None:
        """Record that ``parent_task`` scheduled ``child_task``."""
        if parent_task:
            self._parent[child_task] = parent_task

    # -- the touch API (called by instrumented models) ---------------------

    def touch(self, key: Hashable) -> None:
        """Record a synchronization touch (Resource admission) for
        diagnostics; touches are ordering points, never conflicts."""
        self.touches.append((key, self.sim.now, self.sim.current_task))

    def mutate(self, key: Hashable, actor: object = None) -> None:
        """Record a mutation of ``key`` by the currently-running task."""
        self.mutations += 1
        now = self.sim.now
        task = self.sim.current_task
        if actor is None:
            actor = self.sim.current_actor
        prev = self._last.get(key)
        self._last[key] = (now, actor, task)
        if prev is None:
            return
        prev_time, prev_actor, prev_task = prev
        if prev_time != now or prev_actor is actor:
            return
        if self._ordered_after(prev_task, task):
            return
        violation = RaceViolation(key, now, _label(prev_actor), _label(actor))
        self.violations.append(violation)
        if self.strict:
            raise SimulationError(f"race detector: {violation.format()}")

    # -- causality ---------------------------------------------------------

    def _ordered_after(self, ancestor: int, task: int) -> bool:
        """Is ``ancestor`` on the causal parent chain of ``task``?

        Task ids increase monotonically, so the walk stops as soon as it
        passes below ``ancestor``.
        """
        current = task
        while current > ancestor:
            parent = self._parent.get(current, 0)
            if parent == 0:
                return False
            current = parent
        return current == ancestor
