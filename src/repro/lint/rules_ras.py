"""RAS / graceful-degradation rules (RAS5xx).

The resilience layer (:mod:`repro.resilience`) only protects offloads
that flow *through* it: a call site that drives the engine's data-plane
generators directly gets no circuit breaker, no hedging, and no SLO
accounting — it will hang on a dead device for the full timeout-retry
budget that the rest of the service is already routing around.  These
rules keep app- and experiment-level code honest about that.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import Finding, LintModule, Rule, dotted_name

#: the engine's data-plane entry points the policy wraps
_ENGINE_OPS = ("compress_page", "decompress_page", "hash_page",
               "compare_pages")

#: only app/experiment layers are held to the policy boundary — the
#: kernel features (zswap/ksm) *are* the sanctioned wrappers, and the
#: engine's own internals obviously call themselves
_RAS501_PATHS = ("repro/apps", "repro/experiments")


def check_ras501(module: LintModule) -> Iterator[Finding]:
    """RAS501: offload call site bypasses the resilience wrapper.

    In app/experiment code, calling ``engine.compress_page(...)`` (or
    any engine data-plane generator) directly skips the degradation
    layer: no breaker fail-fast, no hedged backup, no per-tenant
    ledger.  Route through a feature object (``Zswap``/``Ksm`` with an
    armed policy) or :meth:`ResiliencePolicy.offload_op` instead.
    Deliberate raw-transport microbenchmarks (measuring the device, not
    the service) should carry ``# reprolint: disable=RAS501`` with a
    comment saying so.
    """
    path = module.path.replace("\\", "/")
    if not any(fragment in path for fragment in _RAS501_PATHS):
        return
    for node in ast.walk(module.tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _ENGINE_OPS):
            continue
        owner = dotted_name(node.func.value) or "<engine>"
        yield Finding(
            "RAS501", module.path, node.lineno, node.col_offset,
            f"`{owner}.{node.func.attr}(...)` bypasses the resilience "
            "layer — route the offload through Zswap/Ksm or "
            "ResiliencePolicy.offload_op, or suppress with a comment if "
            "this is a deliberate raw-transport measurement",
        )


RULES = [
    Rule("RAS501", "offload call site bypasses the resilience wrapper",
         check_ras501),
]
