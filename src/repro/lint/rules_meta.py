"""LINT0xx: the linter checking its own directives.

A suppression comment that does not parse used to degrade silently —
``# reprolint: disable=sim401`` (lowercase) fell through the old regex
as a blanket ``disable`` and hid *every* rule on the line.  Strict
parsing in :mod:`repro.lint.core` now refuses to apply such directives;
these rules make the refusal visible:

``LINT001`` — the directive is malformed: unknown keyword, or rule ids
    that are not uppercase identifiers.  It was ignored.
``LINT002`` — the directive is well-formed but names a rule id the
    linter does not know, so it suppresses nothing.
"""

from __future__ import annotations

from typing import Iterator, Optional, Set

from repro.lint.core import Finding, LintModule, Rule

_known_ids: Optional[Set[str]] = None


def _known_rule_ids() -> Set[str]:
    global _known_ids
    if _known_ids is None:
        from repro.lint.core import all_rules
        from repro.lint.graph import GRAPH_RULE_IDS

        _known_ids = {rule.id for rule in all_rules()} | set(GRAPH_RULE_IDS)
        _known_ids.add("*")
    return _known_ids


def check_malformed_suppression(module: LintModule) -> Iterator[Finding]:
    for problem in module.suppression_index().problems:
        yield Finding(
            "LINT001", module.path, problem.line, problem.col,
            f"suppression not applied: {problem.reason}",
        )


def check_unknown_rule(module: LintModule) -> Iterator[Finding]:
    known = _known_rule_ids()
    for line, col, rule_id in module.suppression_index().mentioned:
        if rule_id not in known:
            yield Finding(
                "LINT002", module.path, line, col,
                f"suppression names unknown rule id `{rule_id}`; it "
                "suppresses nothing (see `repro lint --list-rules`)",
            )


RULES = [
    Rule("LINT001", "malformed reprolint directive was ignored",
         check_malformed_suppression),
    Rule("LINT002", "suppression names an unknown rule id",
         check_unknown_rule),
]
