"""CoherenceSanitizer: global MESI+Owned invariants, checked live.

Table III (and the unit tests that enumerate it) pin down *per-request*
state outcomes; this sanitizer checks the *global* invariants those
outcomes must compose into, after every line-state transition in every
watched cache (host LLC, each DCOH slice's HMC and DMC):

``single-owner``
    at most one cache holds a line in MODIFIED/EXCLUSIVE/OWNED;
``no-sharer-with-writer``
    while any cache holds a line writable (M/E), no other cache holds
    it in any valid state;
``owned-clean``
    OWNED implies clean: a MODIFIED line must be written back (via the
    M->S/I paths) before it can be held OWNED — a direct M->O
    transition hides a dirty line behind a clean-looking state;
``dirty-evict-writeback``
    a MODIFIED victim leaving a cache by capacity eviction or flush
    must have a writeback sink, or the newest data is silently lost;
``poison-scrub``
    CXL data poison is only cleared by an explicit full-line-overwrite
    scrub (`CacheLine.scrub_poison` / `SetAssociativeCache.clear_poison`),
    never by a plain attribute store.

Arming is opt-in (``SanitizerConfig.coherence`` or
``Platform.arm_sanitizers()``); a disarmed cache pays only a None check
per transition.  In ``strict`` mode the first violation raises
:class:`~repro.errors.CoherenceError`; otherwise violations accumulate
in :attr:`CoherenceSanitizer.violations` for post-run assertions.

Scope note: the host-core access paths model the paper's methodology
(lines of interest are confined with CLDEMOTE/CLFLUSH) and do not snoop
the device caches, so the sanitizer is meant for DCOH-driven flows —
exactly the ones Table III and the fault-resilience scenarios exercise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Tuple

from repro.errors import CoherenceError
from repro.mem.coherence import LineState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mem.cache import CacheLine, SetAssociativeCache
    from repro.sim.engine import Simulator

_OWNER_STATES = (LineState.MODIFIED, LineState.EXCLUSIVE, LineState.OWNED)


@dataclass(frozen=True)
class CoherenceViolation:
    """One recorded invariant violation."""

    invariant: str
    addr: int
    time_ns: float
    message: str

    def format(self) -> str:
        return (f"[{self.invariant}] line {hex(self.addr)} "
                f"@ {self.time_ns:g} ns: {self.message}")


class CoherenceSanitizer:
    """Watches a group of caches and checks cross-cache line invariants."""

    INVARIANTS = ("single-owner", "no-sharer-with-writer", "owned-clean",
                  "dirty-evict-writeback", "poison-scrub")

    def __init__(self, sim: "Simulator", strict: bool = True):
        self.sim = sim
        self.strict = strict
        self.caches: List["SetAssociativeCache"] = []
        self.violations: List[CoherenceViolation] = []
        self.checks = 0

    # -- wiring ------------------------------------------------------------

    def watch(self, cache: "SetAssociativeCache") -> None:
        """Arm this sanitizer on ``cache`` (and adopt its resident lines)."""
        if cache not in self.caches:
            self.caches.append(cache)
        cache.sanitizer = self
        for line in cache.lines():
            line.owner = cache

    @property
    def clean(self) -> bool:
        return not self.violations

    def assert_clean(self) -> None:
        """Raise with every recorded violation (post-run check)."""
        if self.violations:
            detail = "\n".join(v.format() for v in self.violations)
            raise CoherenceError(
                f"{len(self.violations)} coherence invariant violation(s):\n"
                f"{detail}")

    # -- reporting ---------------------------------------------------------

    def _report(self, invariant: str, addr: int, message: str) -> None:
        violation = CoherenceViolation(invariant, addr, self.sim.now, message)
        self.violations.append(violation)
        if self.strict:
            raise CoherenceError(f"coherence sanitizer: {violation.format()}")

    # -- hooks called from the cache model ---------------------------------

    def on_state_set(self, cache: "SetAssociativeCache", line: "CacheLine",
                     old: LineState, new: LineState) -> None:
        if old is LineState.MODIFIED and new is LineState.OWNED:
            self._report(
                "owned-clean", line.addr,
                f"{cache.name}: MODIFIED -> OWNED without a writeback "
                "(OWNED must be clean; write back, then downgrade)")
        self.check_line(line.addr)

    def on_insert(self, cache: "SetAssociativeCache",
                  line: "CacheLine") -> None:
        self.check_line(line.addr)

    def on_dirty_evict(self, cache: "SetAssociativeCache", line: "CacheLine",
                       has_writeback: bool) -> None:
        if not has_writeback:
            self._report(
                "dirty-evict-writeback", line.addr,
                f"{cache.name}: MODIFIED victim evicted with no writeback "
                "sink — the newest data is dropped")

    def on_poison_cleared(self, cache: "SetAssociativeCache",
                          line: "CacheLine", scrubbed: bool) -> None:
        if not scrubbed:
            self._report(
                "poison-scrub", line.addr,
                f"{cache.name}: poison cleared by a plain store; only a "
                "full-line overwrite (scrub_poison/clear_poison) may "
                "clear poison")

    # -- the cross-cache check ---------------------------------------------

    def states_of(self, addr: int) -> List[Tuple[str, LineState]]:
        """Valid (cache name, state) holders of ``addr`` right now."""
        out = []
        for cache in self.caches:
            state = cache.state_of(addr)
            if state.is_valid:
                out.append((cache.name, state))
        return out

    def check_line(self, addr: int) -> None:
        """Check the single-owner and sharer/writer invariants on ``addr``."""
        self.checks += 1
        holders = self.states_of(addr)
        if len(holders) < 2:
            return
        owners = [(name, st) for name, st in holders if st in _OWNER_STATES]
        if len(owners) > 1:
            self._report(
                "single-owner", addr,
                "multiple M/E/O holders: " + ", ".join(
                    f"{name}={st.value}" for name, st in owners))
        writers = [(name, st) for name, st in holders if st.is_writable]
        if writers and len(holders) > len(writers):
            self._report(
                "no-sharer-with-writer", addr,
                "writable holder coexists with other valid copies: "
                + ", ".join(f"{name}={st.value}" for name, st in holders))
