"""SARIF 2.1.0 serialisation of a lint report.

Static Analysis Results Interchange Format — the one schema both GitHub
code scanning and most editors ingest.  One ``run`` per report; the
driver advertises the full rule catalogue (per-file and graph tiers) so
viewers can show rule metadata even for rules with zero results.
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple

from repro.lint.core import LintReport

_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
           "master/Schemata/sarif-schema-2.1.0.json")


def _all_rule_metadata() -> List[Tuple[str, str]]:
    from repro.lint.core import all_rules
    from repro.lint.graph import GRAPH_RULE_CATALOGUE

    pairs = [(rule.id, rule.summary) for rule in all_rules()]
    pairs += list(GRAPH_RULE_CATALOGUE)
    return sorted(pairs)


def report_to_sarif(report: LintReport) -> Dict[str, object]:
    rules_meta = _all_rule_metadata()
    rule_index = {rid: i for i, (rid, _) in enumerate(rules_meta)}
    results = []
    for finding in report.findings:
        results.append({
            "ruleId": finding.rule,
            "ruleIndex": rule_index.get(finding.rule, -1),
            "level": "warning",
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path,
                                         "uriBaseId": "SRCROOT"},
                    "region": {"startLine": finding.line,
                               "startColumn": finding.col + 1},
                },
            }],
        })
    invocation = {
        "executionSuccessful": not report.parse_errors,
        "toolExecutionNotifications": [
            {"level": "error", "message": {"text": err}}
            for err in report.parse_errors
        ],
    }
    return {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "reprolint",
                "informationUri": "docs/LINT.md",
                "rules": [
                    {"id": rid, "shortDescription": {"text": summary}}
                    for rid, summary in rules_meta
                ],
            }},
            "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
            "invocations": [invocation],
            "results": results,
        }],
    }


def report_to_sarif_json(report: LintReport) -> str:
    return json.dumps(report_to_sarif(report), indent=2)
