"""The antagonist workload (SVII methodology).

"An antagonist workload, which allocates and frees memory space
periodically" runs on the other half of the cores and is what pushes
free memory below the watermarks, forcing zswap activity while Redis
serves requests.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.apps.node import MemoryPressure
from repro.sim.engine import Simulator, Timeout
from repro.sim.rng import DeterministicRng
from repro.units import ms


class Antagonist:
    """Periodic allocate/hold/free cycle against the shared pressure."""

    def __init__(self, sim: Simulator, pressure: MemoryPressure,
                 rng: DeterministicRng,
                 burst_pages: int = 4096,
                 period_ns: float = ms(12.0),
                 hold_fraction: float = 0.75,
                 release_fraction: float = 0.5):
        self.sim = sim
        self.pressure = pressure
        self.rng = rng
        self.burst_pages = burst_pages
        self.period_ns = period_ns
        self.hold_fraction = hold_fraction
        self.release_fraction = release_fraction
        self.cycles = 0

    def run(self, until_ns: float) -> Generator[Any, Any, None]:
        """Allocate a burst, hold it, free most of it, repeat.

        Frees less than it allocates early on (a growing footprint), so
        pressure ratchets up the way a co-located batch job's RSS does.
        """
        while self.sim.now < until_ns:
            burst = int(self.rng.jitter(self.burst_pages, 0.2))
            granted = self.pressure.consume(burst)
            self.cycles += 1
            yield Timeout(self.rng.jitter(self.period_ns * self.hold_fraction,
                                          0.15))
            # Keep part of the burst resident: net footprint growth that
            # only reclaim can push back against.
            self.pressure.release(int(granted * self.release_fraction))
            yield Timeout(self.rng.jitter(
                self.period_ns * (1.0 - self.hold_fraction), 0.15))
