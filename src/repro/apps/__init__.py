"""End-to-end application workloads (SVII): a Redis-like KVS served on
simulated cores, YCSB A-D request generators, the antagonist allocator
that creates memory pressure, and open-loop latency clients."""

from repro.apps.kvs import KeyValueStore, RedisServer
from repro.apps.ycsb import YcsbOp, YcsbWorkload, WORKLOADS
from repro.apps.node import ServerNode, MemoryPressure
from repro.apps.antagonist import Antagonist
from repro.apps.latency import OpenLoopClient

__all__ = [
    "KeyValueStore",
    "RedisServer",
    "YcsbOp",
    "YcsbWorkload",
    "WORKLOADS",
    "ServerNode",
    "MemoryPressure",
    "Antagonist",
    "OpenLoopClient",
]
