"""YCSB workload generators (SVII, Benchmark).

The paper uses four of the core YCSB workloads against Redis with a
uniform key distribution:

=====  ===========================  ==========================
name   mix                          paper label
=====  ===========================  ==========================
``a``  50 % read / 50 % update      update heavy
``b``  95 % read / 5 % update       read heavy
``c``  100 % read                   read only
``d``  95 % read / 5 % insert       read latest
=====  ===========================  ==========================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

from repro.errors import WorkloadError
from repro.sim.rng import DeterministicRng


class YcsbOp(enum.Enum):
    READ = "read"
    UPDATE = "update"
    INSERT = "insert"


@dataclass(frozen=True)
class WorkloadMix:
    name: str
    description: str
    read: float
    update: float
    insert: float

    def __post_init__(self) -> None:
        total = self.read + self.update + self.insert
        if abs(total - 1.0) > 1e-9:
            raise WorkloadError(f"mix of {self.name} sums to {total}")


WORKLOADS = {
    "a": WorkloadMix("a", "update heavy", read=0.50, update=0.50, insert=0.0),
    "b": WorkloadMix("b", "read heavy", read=0.95, update=0.05, insert=0.0),
    "c": WorkloadMix("c", "read only", read=1.0, update=0.0, insert=0.0),
    "d": WorkloadMix("d", "read latest", read=0.95, update=0.0, insert=0.05),
}


@dataclass(frozen=True)
class YcsbRequest:
    op: YcsbOp
    key: str
    value_size: int = 0


class ZipfianGenerator:
    """Bounded zipfian keys, the standard YCSB algorithm (Gray et al.).

    YCSB's default request distribution; the paper opts for uniform, but
    both are provided so skewed-popularity studies are possible.
    """

    def __init__(self, items: int, rng: DeterministicRng,
                 theta: float = 0.99):
        if items < 1:
            raise WorkloadError("zipfian needs at least one item")
        if not 0 < theta < 1:
            raise WorkloadError(f"zipfian theta out of range: {theta}")
        self.items = items
        self.rng = rng
        self.theta = theta
        self._zetan = sum(1.0 / (i ** theta) for i in range(1, items + 1))
        self._zeta2 = 1.0 + 0.5 ** theta
        self._alpha = 1.0 / (1.0 - theta)
        self._eta = ((1.0 - (2.0 / items) ** (1.0 - theta))
                     / (1.0 - self._zeta2 / self._zetan))

    def next_index(self) -> int:
        u = self.rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < self._zeta2:
            return 1
        return int(self.items
                   * (self._eta * u - self._eta + 1.0) ** self._alpha)


class YcsbWorkload:
    """Generates YCSB requests.

    ``distribution`` selects the key popularity: ``uniform`` (the
    paper's choice, SVII) or ``zipfian`` (YCSB's default skew).
    """

    def __init__(self, name: str, rng: DeterministicRng,
                 record_count: int = 100_000, value_size: int = 100,
                 distribution: str = "uniform"):
        if name not in WORKLOADS:
            raise WorkloadError(
                f"unknown YCSB workload {name!r}; choose from {sorted(WORKLOADS)}")
        if distribution not in ("uniform", "zipfian"):
            raise WorkloadError(f"unknown distribution {distribution!r}")
        self.mix = WORKLOADS[name]
        self.rng = rng
        self.record_count = record_count
        self.value_size = value_size
        self.distribution = distribution
        self._zipf = (ZipfianGenerator(record_count, rng)
                      if distribution == "zipfian" else None)
        self._inserted = record_count

    def _pick_key(self) -> str:
        if self._zipf is not None:
            return f"user{min(self._zipf.next_index(), self._inserted - 1)}"
        return f"user{self.rng.randint(0, self._inserted)}"

    def next_request(self) -> YcsbRequest:
        draw = self.rng.random()
        if draw < self.mix.read:
            return YcsbRequest(YcsbOp.READ, self._pick_key())
        if draw < self.mix.read + self.mix.update:
            return YcsbRequest(YcsbOp.UPDATE, self._pick_key(),
                               self.value_size)
        key = f"user{self._inserted}"
        self._inserted += 1
        return YcsbRequest(YcsbOp.INSERT, key, self.value_size)

    def requests(self, count: int) -> Iterator[YcsbRequest]:
        for __ in range(count):
            yield self.next_request()

    def make_value(self) -> bytes:
        return self.rng.random_bytes(self.value_size)
