"""The server node: cores, memory pressure, and interference accounting.

This is the stage for the Fig-8 experiments.  A node has ``app_cores``
run queues (one Redis server or VM vCPU pinned per core, SVII
methodology); kernel-feature daemons compete for the same cores and
pollute the shared LLC.  Interference therefore reaches a request
through exactly three mechanistic channels:

1. **queueing** — a request waits while its core runs feature work;
2. **inline direct reclaim** — an allocating request below the *min*
   watermark performs reclaim itself before completing;
3. **cache pollution** — while feature data-planes stream pages through
   the cache hierarchy, every request's service time inflates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import KernelError, WorkloadError
from repro.sim.engine import Simulator
from repro.sim.resources import Resource
from repro.sim.rng import DeterministicRng


@dataclass
class MemoryPressure:
    """Free-memory accounting driving the reclaim watermarks.

    A counter model (not the functional frame allocator) so that Fig-8
    runs can cover seconds of simulated time over ~10^5 pages cheaply;
    the functional allocator is exercised by the integration tests.
    """

    total_pages: int
    free_pages: int
    min_pages: int
    low_pages: int
    high_pages: int

    def __post_init__(self) -> None:
        if not (0 < self.min_pages < self.low_pages < self.high_pages
                <= self.total_pages):
            raise KernelError(f"bad watermark ordering: {self}")

    @classmethod
    def sized(cls, total_pages: int) -> "MemoryPressure":
        min_pages = max(64, total_pages // 50)
        return cls(total_pages, total_pages,
                   min_pages, min_pages * 2, min_pages * 3)

    @property
    def below_low(self) -> bool:
        return self.free_pages < self.low_pages

    @property
    def below_min(self) -> bool:
        return self.free_pages < self.min_pages

    @property
    def above_high(self) -> bool:
        return self.free_pages > self.high_pages

    def consume(self, pages: int) -> int:
        """Allocate up to ``pages``; returns how many were granted."""
        granted = min(pages, self.free_pages)
        self.free_pages -= granted
        return granted

    def release(self, pages: int) -> None:
        self.free_pages = min(self.total_pages, self.free_pages + pages)


class ServerNode:
    """Cores + pressure + pollution for one interference scenario."""

    def __init__(self, sim: Simulator, rng: DeterministicRng,
                 app_cores: int, pressure: Optional[MemoryPressure] = None):
        if app_cores < 1:
            raise WorkloadError("need at least one application core")
        self.sim = sim
        self.rng = rng
        self.cores = [Resource(sim, 1, f"core{i}") for i in range(app_cores)]
        self.pressure = pressure or MemoryPressure.sized(1 << 18)
        # LLC-pollution bookkeeping: active polluters with weights.
        self._pollution: Dict[str, int] = {}
        self._pollution_weight: Dict[str, float] = {}
        self._rr = 0
        self.feature_core_busy_ns = 0.0     # host cycles burned by features
        self.app_core_busy_ns = 0.0

    # -- core placement -----------------------------------------------------

    def core(self, index: int) -> Resource:
        return self.cores[index % len(self.cores)]

    def next_core_rr(self) -> Resource:
        """Round-robin placement for floating daemons (kswapd/ksmd are
        not pinned and preempt whichever core they land on)."""
        core = self.cores[self._rr % len(self.cores)]
        self._rr += 1
        return core

    # -- pollution ------------------------------------------------------------

    def pollute_start(self, source: str, weight: float) -> None:
        self._pollution[source] = self._pollution.get(source, 0) + 1
        self._pollution_weight[source] = weight

    def pollute_stop(self, source: str) -> None:
        count = self._pollution.get(source, 0)
        if count <= 0:
            raise WorkloadError(f"pollution underflow for {source!r}")
        self._pollution[source] = count - 1

    def service_factor(self) -> float:
        """Service-time inflation from currently active polluters."""
        factor = 1.0
        for source, count in self._pollution.items():
            if count > 0:
                factor += self._pollution_weight[source]
        return factor

    def pollution_active(self) -> bool:
        return any(count > 0 for count in self._pollution.values())
