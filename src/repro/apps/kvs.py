"""A Redis-like in-memory key-value store.

Functional half: a real hash map storing byte values, so integration
tests can assert reads-after-writes across the zswap fault path.
Timing half: a per-operation service-time model for the latency
experiments (single-threaded event loop, like Redis).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.apps.ycsb import YcsbOp
from repro.errors import WorkloadError
from repro.sim.rng import DeterministicRng
from repro.units import us

# Service-time anchors for one request on a 2.2 GHz core (network stack +
# command parse + hash-map op).  Real Redis does ~80-120k op/s/core.
BASE_SERVICE_NS = us(9.0)
UPDATE_EXTRA_NS = us(1.5)      # allocation + copy on writes
INSERT_EXTRA_NS = us(2.0)


class KeyValueStore:
    """The functional store."""

    def __init__(self) -> None:
        self._data: Dict[str, bytes] = {}
        self.gets = 0
        self.sets = 0

    def get(self, key: str) -> Optional[bytes]:
        self.gets += 1
        return self._data.get(key)

    def set(self, key: str, value: bytes) -> None:
        self.sets += 1
        self._data[key] = value

    def __len__(self) -> int:
        return len(self._data)


class RedisServer:
    """One single-threaded server instance pinned to a core."""

    def __init__(self, name: str, rng: DeterministicRng):
        self.name = name
        self.rng = rng
        self.store = KeyValueStore()
        self.requests_served = 0

    def service_ns(self, op: YcsbOp) -> float:
        """Base service time for one request (before interference)."""
        base = BASE_SERVICE_NS
        if op is YcsbOp.UPDATE:
            base += UPDATE_EXTRA_NS
        elif op is YcsbOp.INSERT:
            base += INSERT_EXTRA_NS
        # Natural service-time variation (value sizes, dict rehash, ...)
        return self.rng.jitter(base, 0.12)

    def execute(self, op: YcsbOp, key: str,
                value: Optional[bytes] = None) -> Optional[bytes]:
        """Functional execution of one request."""
        self.requests_served += 1
        if op is YcsbOp.READ:
            return self.store.get(key)
        if op in (YcsbOp.UPDATE, YcsbOp.INSERT):
            if value is None:
                raise WorkloadError(f"{op} requires a value")
            self.store.set(key, value)
            return None
        raise WorkloadError(f"unsupported op {op}")
