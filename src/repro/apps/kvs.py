"""A Redis-like in-memory key-value store.

Functional half: a real hash map storing byte values, so integration
tests can assert reads-after-writes across the zswap fault path.
Timing half: a per-operation service-time model for the latency
experiments (single-threaded event loop, like Redis).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.apps.ycsb import YcsbOp
from repro.errors import WorkloadError
from repro.sim.rng import DeterministicRng
from repro.units import us

# Service-time anchors for one request on a 2.2 GHz core (network stack +
# command parse + hash-map op).  Real Redis does ~80-120k op/s/core.
BASE_SERVICE_NS = us(9.0)
UPDATE_EXTRA_NS = us(1.5)      # allocation + copy on writes
INSERT_EXTRA_NS = us(2.0)


class KeyValueStore:
    """The functional store."""

    def __init__(self) -> None:
        self._data: Dict[str, bytes] = {}
        self.gets = 0
        self.sets = 0

    def get(self, key: str) -> Optional[bytes]:
        self.gets += 1
        return self._data.get(key)

    def set(self, key: str, value: bytes) -> None:
        self.sets += 1
        self._data[key] = value

    def __len__(self) -> int:
        return len(self._data)


class BoundedKeyValueStore(KeyValueStore):
    """A capacity-capped hot tier over the functional store.

    The rack keeps each shard's resident working set bounded: inserting
    a new key at capacity evicts the oldest resident (FIFO via dict
    insertion order), modeling demotion to the CXL-backed cold tier.
    This is what keeps a 10M-user rack run's RSS flat — the store holds
    ``capacity`` entries no matter how many users cycle through.
    """

    def __init__(self, capacity: int) -> None:
        super().__init__()
        if capacity <= 0:
            raise ValueError(f"capacity must be positive: {capacity}")
        self.capacity = capacity
        self.evictions = 0

    def _make_room(self) -> None:
        data = self._data
        while len(data) >= self.capacity:
            del data[next(iter(data))]
            self.evictions += 1

    def set(self, key: str, value: bytes) -> None:
        if key not in self._data:
            self._make_room()
        super().set(key, value)

    def install(self, key: str, value: bytes) -> None:
        """Admit a migrated record without counting it as a client SET
        (rebalance traffic is not workload traffic)."""
        if key not in self._data:
            self._make_room()
        self._data[key] = value


class RedisServer:
    """One single-threaded server instance pinned to a core."""

    def __init__(self, name: str, rng: DeterministicRng):
        self.name = name
        self.rng = rng
        self.store = KeyValueStore()
        self.requests_served = 0

    def service_ns(self, op: YcsbOp) -> float:
        """Base service time for one request (before interference)."""
        base = BASE_SERVICE_NS
        if op is YcsbOp.UPDATE:
            base += UPDATE_EXTRA_NS
        elif op is YcsbOp.INSERT:
            base += INSERT_EXTRA_NS
        # Natural service-time variation (value sizes, dict rehash, ...)
        return self.rng.jitter(base, 0.12)

    def execute(self, op: YcsbOp, key: str,
                value: Optional[bytes] = None) -> Optional[bytes]:
        """Functional execution of one request."""
        self.requests_served += 1
        if op is YcsbOp.READ:
            return self.store.get(key)
        if op in (YcsbOp.UPDATE, YcsbOp.INSERT):
            if value is None:
                raise WorkloadError(f"{op} requires a value")
            self.store.set(key, value)
            return None
        raise WorkloadError(f"unsupported op {op}")
