"""Open-loop latency clients (SVII, tail latency).

YCSB clients issue requests at a Poisson rate regardless of completions
(open loop), so queueing delays show up fully in the measured latency —
the standard way to expose tail effects.  p99 is read from the recorded
distribution, normalized against a no-feature baseline by the harness.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.apps.kvs import RedisServer
from repro.apps.node import ServerNode
from repro.apps.ycsb import YcsbOp, YcsbWorkload
from repro.errors import WorkloadError
from repro.sim.engine import Timeout
from repro.sim.resources import Resource
from repro.resilience import NO_RESILIENCE, Tenant
from repro.sim.rng import DeterministicRng
from repro.sim.stats import LatencyRecorder, LatencyStats

# Probability that an UPDATE/INSERT needs a fresh page (slab refill).
ALLOC_PROBABILITY = 0.06


class OpenLoopClient:
    """Drives one Redis server pinned to one core."""

    def __init__(self, node: ServerNode, server: RedisServer, core: Resource,
                 workload: YcsbWorkload, rng: DeterministicRng,
                 rate_per_s: float,
                 direct_reclaim: Optional[Callable[[Resource],
                                                   Generator]] = None,
                 functional: bool = False,
                 stats: Optional[LatencyRecorder] = None,
                 tenant: Optional[Tenant] = None,
                 policy: Any = NO_RESILIENCE):
        if rate_per_s <= 0:
            raise WorkloadError(f"arrival rate must be positive: {rate_per_s}")
        self.node = node
        self.server = server
        self.core = core
        self.workload = workload
        self.rng = rng
        self.interarrival_ns = 1e9 / rate_per_s
        self.direct_reclaim = direct_reclaim
        # functional mode really executes each request against the KVS,
        # so end-to-end runs can assert read-your-writes alongside p99.
        self.functional = functional
        # Injectable so scale sweeps can share one O(1)-memory streaming
        # recorder across every client; per-client exact stats otherwise.
        self.stats = LatencyStats() if stats is None else stats
        # QoS identity + degradation policy: an armed policy may shed
        # this client's arrivals during brownout and keeps the tenant's
        # SLO ledger; the NO_RESILIENCE default admits everything with
        # a single attribute test.
        self.tenant = tenant
        self.policy = policy
        self.shed = 0
        self.direct_reclaim_hits = 0
        self.functional_errors = 0
        self._written: dict[str, bytes] = {}

    # -- driving ------------------------------------------------------------------

    def run(self, until_ns: float) -> Generator[Any, Any, None]:
        """Generate Poisson arrivals until the deadline.

        Armed admission control sheds at *arrival* — a shed request
        costs zero simulated work (no core acquire, no service), which
        is the whole point of load shedding."""
        sim = self.node.sim
        while sim.now < until_ns:
            yield Timeout(self.rng.exponential(self.interarrival_ns))
            request = self.workload.next_request()
            if self.policy.armed and not self.policy.admit(self.tenant):
                self.shed += 1
                continue
            sim.spawn(self._request(request.op, request.key), "redis.request")

    def _request(self, op: YcsbOp, key: str) -> Generator[Any, Any, None]:
        sim = self.node.sim
        arrived = sim.now
        yield self.core.acquire()
        try:
            service = self.server.service_ns(op) * self.node.service_factor()
            yield Timeout(service)
            self.node.app_core_busy_ns += service
            if self.functional:
                self._execute(op, key)
            else:
                self.server.requests_served += 1
            if (op is not YcsbOp.READ
                    and self.direct_reclaim is not None
                    and self.rng.random() < ALLOC_PROBABILITY):
                granted = self.node.pressure.consume(1)
                if self.node.pressure.below_min or granted == 0:
                    # The allocation cannot be satisfied: this request
                    # performs direct reclaim itself (SVI-A direct path).
                    self.direct_reclaim_hits += 1
                    yield from self.direct_reclaim(self.core)
        finally:
            self.core.release()
        latency = sim.now - arrived
        self.stats.record(latency)
        if self.policy.armed:
            self.policy.record_request(self.tenant, latency)

    def _execute(self, op: YcsbOp, key: str) -> None:
        """Really run the request against the KVS (functional mode)."""
        if op is YcsbOp.READ:
            value = self.server.execute(op, key)
            expected = self._written.get(key)
            if expected is not None and value != expected:
                self.functional_errors += 1
        else:
            value = self.workload.make_value()
            self.server.execute(op, key, value)
            self._written[key] = value
