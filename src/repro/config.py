"""System configuration: the paper's testbed (Table II) as dataclasses.

Every timing constant in the simulator lives here, with the derivation
documented next to it.  Absolute anchors come from numbers the paper (or
its cited companion work, Sun et al. MICRO'23) states explicitly:

* PCIe 5.0 round trip for a 64 B uncacheable read: ~1 us; a 256 B MMIO
  read therefore exceeds 4 us (SI, SII-A).
* The FPGA LSU issues one 64 B request per 400 MHz cycle -> 25.6 GB/s
  issue ceiling (SV-A).
* CXL x16 @ 32 GT/s has ~40 % more raw bandwidth than UPI 18 lanes
  @ 20 GT/s (SV-A).
* Host memory controllers have 32-entry x 64 B write queues; writes
  "complete" upon enqueue (SV-A).
* H2D loads to the same Agilex-7 as a Type-3 device measure ~390 ns
  (Sun et al.), and the host CPU runs 5.5x faster than the FPGA (SV-B).

Relative shapes (the +38 %/+96 %/... deltas of Figs 3-5) then emerge from
the component composition performed by the device and host models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.units import kib, mib


# ---------------------------------------------------------------------------
# Interconnect links
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LinkConfig:
    """A point-to-point interconnect link.

    ``propagation_ns`` is the one-way flight+logic latency of the link;
    ``bytes_per_ns`` the raw serialization rate in each direction;
    ``header_bytes`` per-message protocol overhead (TLP/flit header).
    """

    name: str
    propagation_ns: float
    bytes_per_ns: float
    header_bytes: int = 16

    def __post_init__(self) -> None:
        if self.propagation_ns < 0 or self.bytes_per_ns <= 0:
            raise ConfigError(f"invalid link config: {self}")

    def serialization_ns(self, payload_bytes: int) -> float:
        """Time to push one message's bits onto the wire."""
        return (payload_bytes + self.header_bytes) / self.bytes_per_ns


def cxl_link() -> LinkConfig:
    """CXL 1.1 over PCIe 5.0 x16: 32 GT/s x 16 / 8 = 64 GB/s raw.

    The 35 ns propagation reflects the hardened R-Tile CXL endpoint plus
    host-side CXL port logic (one direction).
    """
    return LinkConfig("cxl-x16", propagation_ns=35.0, bytes_per_ns=64.0)


def upi_link() -> LinkConfig:
    """UPI: 20 GT/s x 18 lanes / 8 = 45 GB/s raw; mature, lower latency."""
    return LinkConfig("upi", propagation_ns=27.0, bytes_per_ns=45.0)


def pcie_link(lanes: int = 16) -> LinkConfig:
    """Plain PCIe 5.0: 32 GT/s per lane; x16 = 64 GB/s, x32 (BF-3) doubles.

    Propagation includes TLP framing/replay logic, slightly above the CXL
    flit path.
    """
    if lanes not in (8, 16, 32):
        raise ConfigError(f"unsupported PCIe width: x{lanes}")
    return LinkConfig(
        f"pcie5-x{lanes}", propagation_ns=150.0, bytes_per_ns=4.0 * lanes,
        header_bytes=24,
    )


# ---------------------------------------------------------------------------
# DRAM / memory controllers
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DramConfig:
    """One DRAM channel behind a memory controller."""

    name: str
    read_ns: float                 # closed-page random read latency
    write_queue_entries: int = 32  # 64 B posted-write queue entries
    bytes_per_ns: float = 38.4     # peak (sequential) channel bandwidth
    write_enqueue_ns: float = 4.0  # time to accept a posted write
    # Random single-line writes are row-cycle limited (activate + write +
    # precharge), far below the sequential peak.  This is what the write
    # queue drains at for the paper's random-address microbenchmark, and
    # what makes write bandwidth collapse past the queue capacity.
    random_write_ns: float = 50.0

    def __post_init__(self) -> None:
        if self.read_ns <= 0 or self.write_queue_entries < 1:
            raise ConfigError(f"invalid DRAM config: {self}")

    def drain_ns_per_line(self) -> float:
        """Time for the controller to retire one queued random 64 B write."""
        return self.random_write_ns


def ddr5_4800() -> DramConfig:
    """Host channel: DDR5-4800 = 38.4 GB/s; ~90 ns device-level read."""
    return DramConfig("ddr5-4800", read_ns=90.0, bytes_per_ns=38.4,
                      random_write_ns=50.0)


def ddr4_2400() -> DramConfig:
    """Agilex-7 device channel: DDR4-2400 = 19.2 GB/s; slower FPGA PHY."""
    return DramConfig("ddr4-2400", read_ns=130.0, bytes_per_ns=19.2,
                      random_write_ns=60.0)


def ddr5_5200() -> DramConfig:
    """BF-3 channel: DDR5-5200 = 41.6 GB/s."""
    return DramConfig("ddr5-5200", read_ns=95.0, bytes_per_ns=41.6,
                      random_write_ns=48.0)


# ---------------------------------------------------------------------------
# Host CPU
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class HostConfig:
    """One socket of the dual-socket Xeon 6538Y+ host (Table II)."""

    cores: int = 32
    freq_ghz: float = 2.2
    l1_kib: int = 48
    l2_kib: int = 2048
    llc_mib: int = 60
    llc_ways: int = 15
    mem_channels: int = 8
    dram: DramConfig = field(default_factory=ddr5_4800)

    # Latency anchors (core's view, local socket)
    issue_ns: float = 10.0          # core pipeline + L1/L2 miss detection
    l1_ns: float = 2.0
    l2_ns: float = 6.0
    llc_ns: float = 22.0
    home_agent_ns: float = 15.0     # CHA lookup/snoop filter
    # Memory-level parallelism windows (outstanding 64 B misses)
    load_mlp: int = 6               # fill buffers usable by demand loads
    nt_load_mlp: int = 6            # non-temporal loads coalesce worse
    store_mlp: int = 10             # senior-store drain window
    wc_buffers: int = 12            # write-combining buffers for nt-st
    # Uncacheable / non-temporal extra costs
    nt_load_extra_ns: float = 45.0  # fencing + no-LFB-reuse penalty
    nt_store_post_ns: float = 28.0  # retire once handed to WC buffer path
    # Cross-socket extras: an LLC miss at the home CHA must consult the
    # memory directory and wait for snoop responses before forwarding
    # remote data -- the reason remote-DRAM latency exceeds remote-LLC
    # latency by far more than the local LLC->DRAM delta.
    remote_miss_extra_ns: float = 90.0
    # Single-core LLC data-path throughput (per 64 B line)
    llc_bw_ns_per_line: float = 16.0
    llc_load_mlp: int = 6
    # Outstanding-request credits toward a CXL.mem region are scarcer than
    # toward local DRAM (uncore credit pools), capping H2D bandwidth.
    cxl_load_mlp: int = 3
    cxl_nt_load_mlp: int = 4       # nt loads coalesce better on UC-ish CXL

    cxl_store_window: int = 2       # strongly-ordered stores drain ~2 at a time

    @property
    def cycle_ns(self) -> float:
        return 1.0 / self.freq_ghz

    @property
    def llc_bytes(self) -> int:
        return mib(self.llc_mib)


# ---------------------------------------------------------------------------
# CXL Type-2 device (Agilex-7)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DcohConfig:
    """One DCOH slice: device caches + coherence engine (SIV).

    ``slices`` instantiates multiple MC/DCOH/CAFU triples, interleaved
    at cache-line granularity (SIV: "one or more instances").
    """

    slices: int = 1
    hmc_kib: int = 128         # host-memory cache, 4-way
    hmc_ways: int = 4
    dmc_kib: int = 32          # device-memory cache, direct-mapped
    dmc_ways: int = 1
    lookup_ns: float = 5.0     # HMC/DMC tag lookup (2 FPGA cycles)
    engine_ns: float = 42.0    # soft R-Tile wrapper + DCOH request handling
    write_issue_gap_ns: float = 10.0  # DCOH write-path throughput (4 cycles)


@dataclass(frozen=True)
class CxlType2Config:
    """Intel Agilex-7 I-Series configured as a CXL Type-2 device."""

    freq_mhz: float = 400.0          # FPGA fabric clock
    dcoh: DcohConfig = field(default_factory=DcohConfig)
    link: LinkConfig = field(default_factory=cxl_link)
    mem_channels: int = 2
    dram: DramConfig = field(default_factory=ddr4_2400)
    lsu_outstanding: int = 64        # CXL.cache request-address-file depth
    # Host-side CXL home-agent costs: the generic CXL coherence path is
    # less mature than UPI's (SV-A), hence pricier than
    # HostConfig.home_agent_ns.  Reads traverse the data path (54 ns);
    # writes/ownership grants complete at the CHA (30 ns); an LLC miss on
    # a CXL-originated read adds a directory consultation (48 ns).
    host_agent_ns: float = 54.0
    host_agent_write_ns: float = 30.0
    host_agent_miss_extra_ns: float = 48.0
    # H2D extra costs on the Type-2 path (absent on Type-3): DMC coherence
    # check, state downgrade of an owned line, and writeback of a modified
    # line before device memory can serve the host (SV-C).
    h2d_dmc_check_ns: float = 20.0
    h2d_state_change_ns: float = 45.0
    h2d_modified_writeback_ns: float = 160.0
    # H2D path: soft logic between hardened IP and the device MC
    h2d_fabric_ns: float = 170.0

    @property
    def cycle_ns(self) -> float:
        return 1000.0 / self.freq_mhz

    @property
    def lsu_issue_ns(self) -> float:
        """One 64 B request per fabric cycle => 25.6 GB/s issue ceiling."""
        return self.cycle_ns


@dataclass(frozen=True)
class CxlType3Config:
    """The same Agilex-7 flashed as a Type-3 device: no CXL.cache, no
    device caches; H2D requests go straight to the device MC."""

    link: LinkConfig = field(default_factory=cxl_link)
    mem_channels: int = 2
    dram: DramConfig = field(default_factory=ddr4_2400)
    h2d_fabric_ns: float = 170.0


# ---------------------------------------------------------------------------
# PCIe devices
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PcieDeviceConfig:
    """Agilex-7 as a plain PCIe 5.0 x16 device (MMIO + DMA)."""

    link: LinkConfig = field(default_factory=pcie_link)
    dram: DramConfig = field(default_factory=ddr4_2400)
    mem_channels: int = 2
    # MMIO: an uncacheable 64 B read round trip is ~1 us (SII-A)
    mmio_read_rt_ns: float = 1000.0
    mmio_write_oneway_ns: float = 300.0   # WC write, one in flight (ordering)
    # DMA engine (Intel MCDMA-style)
    dma_setup_ns: float = 600.0           # descriptor build + doorbell + fetch
    dma_completion_ns: float = 300.0      # status write-back / polling notice
    dma_bytes_per_ns: float = 30.0        # sustained engine throughput


@dataclass(frozen=True)
class SnicConfig:
    """NVIDIA BlueField-3: PCIe 5.0 x32, RDMA + DOCA DMA + Arm cores."""

    link: LinkConfig = field(default_factory=lambda: pcie_link(32))
    dram: DramConfig = field(default_factory=ddr5_5200)
    arm_cores: int = 16
    arm_freq_ghz: float = 2.0
    rdma_post_ns: float = 250.0           # verbs post_send/doorbell on host
    rdma_nic_ns: float = 700.0            # NIC WQE fetch + processing
    rdma_bytes_per_ns: float = 40.0       # saturates ~40 GB/s (x32)
    doca_sw_ns: float = 1900.0            # DOCA DMA software stack overhead
    doca_bytes_per_ns: float = 25.0
    interrupt_ns: float = 2000.0          # host interrupt + wakeup cost


# ---------------------------------------------------------------------------
# Whole system
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SanitizerConfig:
    """Opt-in runtime validation (see :mod:`repro.lint`).

    ``coherence`` arms the :class:`~repro.lint.sanitizer.CoherenceSanitizer`
    on the host LLC and every DCOH slice's HMC/DMC; ``races`` arms the
    sim-time :class:`~repro.lint.races.RaceDetector` in the event engine.
    ``strict`` raises on the first violation; otherwise violations
    accumulate for post-run ``assert_clean()``.  Both sanitizers are
    zero-cost when disarmed (the default), so production sweeps keep
    bit-identical outputs.
    """

    coherence: bool = False
    races: bool = False
    strict: bool = True

    @property
    def any_armed(self) -> bool:
        return self.coherence or self.races


@dataclass(frozen=True)
class SystemConfig:
    """The full testbed of Table II."""

    host: HostConfig = field(default_factory=HostConfig)
    upi: LinkConfig = field(default_factory=upi_link)
    cxl_t2: CxlType2Config = field(default_factory=CxlType2Config)
    cxl_t3: CxlType3Config = field(default_factory=CxlType3Config)
    pcie_dev: PcieDeviceConfig = field(default_factory=PcieDeviceConfig)
    snic: SnicConfig = field(default_factory=SnicConfig)
    seed: int = 2024
    # Relative gaussian noise applied to every timed stage, producing the
    # paper's error bars without perturbing medians.
    latency_noise: float = 0.03
    # Runtime sanitizers (disarmed by default; see repro.lint).
    sanitizers: SanitizerConfig = field(default_factory=SanitizerConfig)


def default_system() -> SystemConfig:
    """The testbed exactly as Table II describes it."""
    return SystemConfig()


def sub_numa_half_system() -> SystemConfig:
    """SVII methodology: sub-NUMA clustering, half the socket (16 cores,
    4 memory channels) to match the prior work's testbed."""
    host = HostConfig(cores=16, mem_channels=4, llc_mib=30)
    return SystemConfig(host=host)
