"""Seeded randomness for deterministic simulations.

Every stochastic choice in the library draws from a
:class:`DeterministicRng` created from an explicit seed, so repeated runs
(and CI) see identical event orders and identical measurements.
"""

from __future__ import annotations

import numpy as np


class DeterministicRng:
    """Thin, purpose-named wrapper over ``numpy.random.Generator``.

    The wrapper exists so models express *intent* (``jitter``,
    ``random_cacheline``) instead of raw distribution calls, and so a
    stream can be forked per subsystem without correlated draws.
    """

    def __init__(self, seed: int):
        self.seed = int(seed)
        self._gen = np.random.default_rng(self.seed)

    def fork(self, salt: int) -> "DeterministicRng":
        """Derive an independent stream (stable across runs).

        Pure: forking never advances this stream, so construction-time
        forks can be reordered (e.g. split across a checkpointed warm-up
        and a restored point) without perturbing any draw.
        """
        return DeterministicRng((self.seed * 1_000_003 + salt) & 0x7FFFFFFF)

    # -- checkpointing -----------------------------------------------------

    def state(self) -> dict:
        """The full bit-generator state (position included), for
        checkpoint tests that pin stream continuity across a restore.
        Ordinary pickling already round-trips this implicitly."""
        return {"seed": self.seed,
                "bit_generator": self._gen.bit_generator.state}

    def install_state(self, state: dict) -> None:
        """Rewind/advance this stream to a captured :meth:`state`."""
        self.seed = int(state["seed"])
        self._gen.bit_generator.state = state["bit_generator"]

    # -- draws -------------------------------------------------------------

    def jitter(self, base: float, rel_std: float) -> float:
        """A positive latency sample: ``base`` with relative gaussian noise.

        Negative samples are clamped to 10 % of base, keeping latencies
        physical while preserving the configured spread for error bars.
        """
        if rel_std <= 0:
            return base
        sample = self._gen.normal(base, base * rel_std)
        return max(sample, base * 0.1)

    def uniform(self, low: float, high: float) -> float:
        return float(self._gen.uniform(low, high))

    def exponential(self, mean: float) -> float:
        return float(self._gen.exponential(mean))

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high)``."""
        return int(self._gen.integers(low, high))

    def random_cachelines(self, count: int, region_lines: int) -> np.ndarray:
        """``count`` distinct random cache-line indices within a region.

        Falls back to sampling with replacement when the region is smaller
        than the request (mirrors wrap-around in the microbenchmark).
        """
        if count <= region_lines:
            return self._gen.choice(region_lines, size=count, replace=False)
        return self._gen.integers(0, region_lines, size=count)

    def shuffle(self, items: list) -> None:
        self._gen.shuffle(items)

    def choice(self, items: list):
        return items[int(self._gen.integers(0, len(items)))]

    def random_bytes(self, n: int) -> bytes:
        return self._gen.bytes(n)

    def random(self) -> float:
        return float(self._gen.random())

    # -- vector draws ------------------------------------------------------
    # Batched variants for per-epoch request serving (repro.rack): one
    # generator call per epoch instead of one per request.  Each consumes
    # exactly ``size`` draws regardless of parameter values, so stream
    # positions stay aligned across code paths.

    def random_array(self, size: int) -> np.ndarray:
        """``size`` uniform floats in ``[0, 1)``."""
        return self._gen.random(size)

    def integers_array(self, low: int, high: int, size: int) -> np.ndarray:
        """``size`` uniform integers in ``[low, high)``."""
        return self._gen.integers(low, high, size=size)

    def exponential_array(self, mean: float, size: int) -> np.ndarray:
        """``size`` exponential interarrival samples."""
        return self._gen.exponential(mean, size)

    def jitter_array(self, base: np.ndarray, rel_std: float) -> np.ndarray:
        """Vector :meth:`jitter`: one positive sample per element of
        ``base``, with the same 10 %-of-base clamp."""
        base = np.asarray(base, dtype=float)
        if rel_std <= 0:
            return base.copy()
        sample = self._gen.normal(base, base * rel_std)
        return np.maximum(sample, base * 0.1)
