"""Deterministic discrete-event simulation kernel.

The engine is deliberately small: a time-ordered heap of callbacks, plus
generator-based *processes* in the style of SimPy.  A process is a Python
generator that yields *commands*:

``Timeout(dt)``
    suspend for ``dt`` nanoseconds of simulated time;
``Event``
    suspend until the event is triggered (receiving its value);
another generator
    run the sub-process inline and receive its return value;
``Process``
    suspend until a previously spawned process finishes.

Determinism matters because benchmarks assert on shapes: events scheduled
for the same timestamp fire in schedule order (a monotone sequence number
breaks ties), and all randomness flows through :mod:`repro.sim.rng`.
"""

from repro.sim.engine import Event, Process, Simulator, Timeout, WakeAt
from repro.sim.resources import Pipe, Resource
from repro.sim.rng import DeterministicRng
from repro.sim.stats import LatencyStats, Summary, bandwidth_gbps, summarize
from repro.sim.trace import Span, Tracer

__all__ = [
    "Event",
    "Process",
    "Simulator",
    "Timeout",
    "WakeAt",
    "Resource",
    "Pipe",
    "DeterministicRng",
    "LatencyStats",
    "Summary",
    "summarize",
    "bandwidth_gbps",
    "Span",
    "Tracer",
]
