"""Gating and statistics for the bulk line-stream fast-forward.

``REPRO_BULK=0`` (or :func:`set_bulk`\\ ``(False)``) disables every batched
path in the simulator; all models then walk their per-line event chains.
The two modes are bit-exact by contract: every batched path performs the
identical left-to-right chain of float additions its per-line twin would,
and ``tests/equivalence`` diffs whole experiment outputs both ways.

:data:`BULK_STATS` is a process-global counter block surfaced by
``repro speed`` — how many trains ran, how many lines they carried, and
why prospective trains fell back to the per-line path.
"""

from __future__ import annotations

import os
from typing import Dict, Optional

_forced: Optional[bool] = None


def set_bulk(enabled: Optional[bool]) -> None:
    """Force bulk fast-forward on/off; ``None`` defers to ``REPRO_BULK``."""
    global _forced
    _forced = enabled


def bulk_enabled() -> bool:
    """Whether batched paths may engage (checked per prospective train)."""
    if _forced is not None:
        return _forced
    return os.environ.get("REPRO_BULK", "1").lower() not in ("0", "false",
                                                             "off")


class BulkStats:
    """Counters for batched trains and their per-line fallbacks."""

    __slots__ = ("batches", "lines", "fallbacks")

    def __init__(self) -> None:
        self.batches: Dict[str, int] = {}
        self.lines: Dict[str, int] = {}
        self.fallbacks: Dict[str, int] = {}

    def reset(self) -> None:
        self.batches.clear()
        self.lines.clear()
        self.fallbacks.clear()

    def batch(self, kind: str, count: int) -> None:
        self.batches[kind] = self.batches.get(kind, 0) + 1
        self.lines[kind] = self.lines.get(kind, 0) + count

    def fallback(self, reason: str) -> None:
        self.fallbacks[reason] = self.fallbacks.get(reason, 0) + 1

    @property
    def total_batches(self) -> int:
        return sum(self.batches.values())

    @property
    def total_lines(self) -> int:
        return sum(self.lines.values())

    def snapshot(self) -> dict:
        return {
            "batches": dict(sorted(self.batches.items())),
            "lines": dict(sorted(self.lines.items())),
            "fallbacks": dict(sorted(self.fallbacks.items())),
            "total_batches": self.total_batches,
            "total_lines": self.total_lines,
        }


BULK_STATS = BulkStats()
