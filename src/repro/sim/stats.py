"""Measurement statistics used by the characterization harness.

The paper reports the **median** over >=1 K repetitions with standard
deviations as error bars, and p99 latency for the end-to-end experiments.
This module implements exactly those reductions.

Two latency recorders share one API (``record``/``count``/``p50``/
``p99``/``p999``/``mean``/``summary``):

* :class:`LatencyStats` — **exact**: keeps every sample and answers
  percentile queries from a cached sorted array.  The default, and the
  only mode the paper figures use — their outputs are byte-golden.
* :class:`StreamingLatencyStats` — **O(1) memory**: P² quantile
  estimators (Jain & Chlamtac 1985) for the three tail points plus
  exact running moments.  ``REPRO_STATS=stream`` (or
  :func:`set_stats`\\ ``("stream")``) switches :func:`latency_recorder`
  for scale runs whose sample counts would otherwise grow RSS without
  bound; accuracy tolerances are pinned in docs/PERFORMANCE.md.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Union

import numpy as np


@dataclass(frozen=True)
class Summary:
    """Median/mean/std summary of repeated measurements."""

    n: int
    median: float
    mean: float
    std: float
    minimum: float
    maximum: float

    def __str__(self) -> str:  # pragma: no cover - display helper
        return (
            f"median={self.median:.1f} mean={self.mean:.1f} "
            f"std={self.std:.1f} (n={self.n})"
        )


def summarize(samples: Sequence[float]) -> Summary:
    """Reduce repeated measurements the way the paper does (median + std)."""
    if not len(samples):
        raise ValueError("cannot summarize zero samples")
    arr = np.asarray(samples, dtype=float)
    return Summary(
        n=len(arr),
        median=float(np.median(arr)),
        mean=float(arr.mean()),
        std=float(arr.std()),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
    )


def bandwidth_gbps(total_bytes: int, elapsed_ns: float) -> float:
    """Achieved bandwidth in GB/s (decimal) for a timed transfer."""
    if elapsed_ns <= 0:
        raise ValueError(f"elapsed time must be positive: {elapsed_ns}")
    return total_bytes / elapsed_ns


class LatencyStats:
    """Exact latency recorder with percentile queries.

    Used by the end-to-end Redis experiments: clients record one sample per
    request, and the harness queries p50/p99/p999 at the end of the run.

    Percentile queries run against a cached sorted array; recording a new
    sample invalidates it.  The cache only changes *when* the list-to-array
    conversion and sort happen — ``np.percentile`` over the same values is
    bit-identical either way — so a p50/p99/p999 sweep over millions of
    samples pays the O(n log n) once instead of per query.
    """

    def __init__(self) -> None:
        self._samples: list[float] = []
        self._sorted: Optional[np.ndarray] = None

    def record(self, latency_ns: float) -> None:
        if latency_ns < 0:
            raise ValueError(f"negative latency: {latency_ns}")
        self._samples.append(latency_ns)
        self._sorted = None

    def extend(self, samples: Iterable[float]) -> None:
        for sample in samples:
            self.record(sample)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def count(self) -> int:
        return len(self._samples)

    def __getstate__(self) -> dict:
        # Checkpoint hygiene: the sorted cache never travels.  Dropping
        # it keeps snapshot payloads lean and — more importantly — makes
        # a restored recorder *provably* rebuild from ``_samples``: a
        # carried cache of matching length would satisfy the staleness
        # heuristic in ``_sorted_array`` whether or not its contents
        # still corresponded to the samples.
        return {"_samples": self._samples}

    def __setstate__(self, state: dict) -> None:
        self._samples = state["_samples"]
        self._sorted = None

    def _sorted_array(self) -> np.ndarray:
        arr = self._sorted
        if arr is None or len(arr) != len(self._samples):
            arr = np.sort(np.asarray(self._samples, dtype=float))
            self._sorted = arr
        return arr

    def percentile(self, pct: float) -> float:
        if not self._samples:
            raise ValueError("no samples recorded")
        return float(np.percentile(self._sorted_array(), pct))

    def percentile_or(self, pct: float, default: float = 0.0) -> float:
        """``percentile`` that answers ``default`` instead of raising on
        an empty recorder — for SLO reports over tenants that may have
        had every request shed."""
        if not self._samples:
            return default
        return self.percentile(pct)

    def p50(self) -> float:
        return self.percentile(50.0)

    def p99(self) -> float:
        return self.percentile(99.0)

    def p999(self) -> float:
        return self.percentile(99.9)

    def mean(self) -> float:
        if not self._samples:
            raise ValueError("no samples recorded")
        return float(np.mean(self._sorted_array()))

    def summary(self) -> Summary:
        return summarize(self._samples)


class _P2Quantile:
    """One P² marker bank: streaming estimate of a single quantile in
    O(1) memory (Jain & Chlamtac, CACM 1985).

    Five markers track (min, q/2-ish, q, (1+q)/2-ish, max); each new
    observation shifts marker counts and nudges the middle heights by a
    piecewise-parabolic fit.  Pure float arithmetic — deterministic for
    a given sample order, which is all the simulator ever produces.
    """

    __slots__ = ("p", "_heights", "_pos", "_want", "_grow", "_n")

    def __init__(self, p: float) -> None:
        if not 0.0 < p < 1.0:
            raise ValueError(f"quantile must be in (0, 1): {p}")
        self.p = p
        self._heights: list[float] = []
        self._pos = [0, 1, 2, 3, 4]
        self._want = [0.0, 0.0, 0.0, 0.0, 0.0]
        self._grow = (0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0)
        self._n = 0

    def add(self, x: float) -> None:
        self._n += 1
        heights = self._heights
        if self._n <= 5:
            heights.append(x)
            if self._n == 5:
                heights.sort()
                self._pos = [0, 1, 2, 3, 4]
                p = self.p
                self._want = [0.0, 2.0 * p, 4.0 * p, 2.0 + 2.0 * p, 4.0]
            return
        pos = self._pos
        if x < heights[0]:
            heights[0] = x
            k = 0
        elif x >= heights[4]:
            heights[4] = x
            k = 3
        elif x < heights[1]:
            k = 0
        elif x < heights[2]:
            k = 1
        elif x < heights[3]:
            k = 2
        else:
            k = 3
        for i in range(k + 1, 5):
            pos[i] += 1
        want = self._want
        grow = self._grow
        for i in range(1, 5):
            want[i] += grow[i]
        for i in (1, 2, 3):
            d = want[i] - pos[i]
            if (d >= 1.0 and pos[i + 1] - pos[i] > 1) or \
               (d <= -1.0 and pos[i - 1] - pos[i] < -1):
                step = 1 if d >= 1.0 else -1
                h = self._parabolic(i, step)
                if heights[i - 1] < h < heights[i + 1]:
                    heights[i] = h
                else:
                    heights[i] = self._linear(i, step)
                pos[i] += step

    def _parabolic(self, i: int, d: int) -> float:
        q, n = self._heights, self._pos
        return q[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))

    def _linear(self, i: int, d: int) -> float:
        q, n = self._heights, self._pos
        return q[i] + d * (q[i + d] - q[i]) / (n[i + d] - n[i])

    def value(self) -> float:
        if self._n == 0:
            raise ValueError("no samples recorded")
        heights = self._heights
        if self._n < 5:
            # Too few points for the marker bank: exact quantile of what
            # we have (same linear interpolation numpy uses).
            srt = sorted(heights)
            rank = self.p * (len(srt) - 1)
            lo = int(rank)
            hi = min(lo + 1, len(srt) - 1)
            return srt[lo] + (srt[hi] - srt[lo]) * (rank - lo)
        return heights[2]


class StreamingLatencyStats:
    """O(1)-memory drop-in for :class:`LatencyStats` on scale runs.

    Tracks P² estimators for the recorder's tail points (p50/p99/p999 by
    default) plus *exact* running count/mean/variance/min/max — only the
    percentile values are approximate.  ``percentile`` answers solely
    for the tracked points; anything else raises, loudly, rather than
    silently extrapolating.
    """

    #: quantiles every recorder tracks (match LatencyStats's query trio)
    DEFAULT_QUANTILES = (0.50, 0.99, 0.999)

    def __init__(self,
                 quantiles: Sequence[float] = DEFAULT_QUANTILES) -> None:
        self._marks = {round(q * 100.0, 6): _P2Quantile(q)
                       for q in quantiles}
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def record(self, latency_ns: float) -> None:
        if latency_ns < 0:
            raise ValueError(f"negative latency: {latency_ns}")
        self._count += 1
        delta = latency_ns - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (latency_ns - self._mean)
        if latency_ns < self._min:
            self._min = latency_ns
        if latency_ns > self._max:
            self._max = latency_ns
        for mark in self._marks.values():
            mark.add(latency_ns)

    def extend(self, samples: Iterable[float]) -> None:
        for sample in samples:
            self.record(sample)

    def __len__(self) -> int:
        return self._count

    @property
    def count(self) -> int:
        return self._count

    def percentile(self, pct: float) -> float:
        if self._count == 0:
            raise ValueError("no samples recorded")
        mark = self._marks.get(round(float(pct), 6))
        if mark is None:
            tracked = sorted(self._marks)
            raise ValueError(
                f"streaming recorder only tracks percentiles {tracked}; "
                f"got {pct!r} — use exact LatencyStats for ad-hoc queries")
        return float(mark.value())

    def percentile_or(self, pct: float, default: float = 0.0) -> float:
        """``percentile`` that answers ``default`` instead of raising on
        an empty recorder (untracked points still raise, loudly)."""
        if self._count == 0:
            return default
        return self.percentile(pct)

    def p50(self) -> float:
        return self.percentile(50.0)

    def p99(self) -> float:
        return self.percentile(99.0)

    def p999(self) -> float:
        return self.percentile(99.9)

    def mean(self) -> float:
        if self._count == 0:
            raise ValueError("no samples recorded")
        return self._mean

    def summary(self) -> Summary:
        if self._count == 0:
            raise ValueError("cannot summarize zero samples")
        std = (self._m2 / self._count) ** 0.5 if self._count else 0.0
        return Summary(
            n=self._count,
            median=self.percentile(50.0),
            mean=self._mean,
            std=std,
            minimum=self._min,
            maximum=self._max,
        )


LatencyRecorder = Union[LatencyStats, StreamingLatencyStats]

_forced_stats: Optional[str] = None


def set_stats(mode: Optional[str]) -> None:
    """Force the recorder flavour: ``"exact"``, ``"stream"``, or ``None``
    to defer to the ``REPRO_STATS`` environment variable."""
    global _forced_stats
    if mode not in (None, "exact", "stream"):
        raise ValueError(f"set_stats expects 'exact'/'stream'/None, "
                         f"got {mode!r}")
    _forced_stats = mode


def stats_mode() -> str:
    """The effective recorder flavour for :func:`latency_recorder`."""
    if _forced_stats is not None:
        return _forced_stats
    env = os.environ.get("REPRO_STATS", "exact").lower()
    return "stream" if env in ("stream", "streaming", "p2") else "exact"


def latency_recorder() -> LatencyRecorder:
    """Build the ambient-mode latency recorder.

    Exact mode is the default — every paper figure stays byte-golden.
    ``REPRO_STATS=stream`` swaps in :class:`StreamingLatencyStats` for
    runs whose request counts would otherwise hold every sample live.
    """
    if stats_mode() == "stream":
        return StreamingLatencyStats()
    return LatencyStats()
