"""Measurement statistics used by the characterization harness.

The paper reports the **median** over >=1 K repetitions with standard
deviations as error bars, and p99 latency for the end-to-end experiments.
This module implements exactly those reductions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np


@dataclass(frozen=True)
class Summary:
    """Median/mean/std summary of repeated measurements."""

    n: int
    median: float
    mean: float
    std: float
    minimum: float
    maximum: float

    def __str__(self) -> str:  # pragma: no cover - display helper
        return (
            f"median={self.median:.1f} mean={self.mean:.1f} "
            f"std={self.std:.1f} (n={self.n})"
        )


def summarize(samples: Sequence[float]) -> Summary:
    """Reduce repeated measurements the way the paper does (median + std)."""
    if not len(samples):
        raise ValueError("cannot summarize zero samples")
    arr = np.asarray(samples, dtype=float)
    return Summary(
        n=len(arr),
        median=float(np.median(arr)),
        mean=float(arr.mean()),
        std=float(arr.std()),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
    )


def bandwidth_gbps(total_bytes: int, elapsed_ns: float) -> float:
    """Achieved bandwidth in GB/s (decimal) for a timed transfer."""
    if elapsed_ns <= 0:
        raise ValueError(f"elapsed time must be positive: {elapsed_ns}")
    return total_bytes / elapsed_ns


class LatencyStats:
    """Streaming latency recorder with percentile queries.

    Used by the end-to-end Redis experiments: clients record one sample per
    request, and the harness queries p50/p99/p999 at the end of the run.
    """

    def __init__(self) -> None:
        self._samples: list[float] = []

    def record(self, latency_ns: float) -> None:
        if latency_ns < 0:
            raise ValueError(f"negative latency: {latency_ns}")
        self._samples.append(latency_ns)

    def extend(self, samples: Iterable[float]) -> None:
        for sample in samples:
            self.record(sample)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def count(self) -> int:
        return len(self._samples)

    def percentile(self, pct: float) -> float:
        if not self._samples:
            raise ValueError("no samples recorded")
        return float(np.percentile(np.asarray(self._samples), pct))

    def p50(self) -> float:
        return self.percentile(50.0)

    def p99(self) -> float:
        return self.percentile(99.0)

    def p999(self) -> float:
        return self.percentile(99.9)

    def mean(self) -> float:
        if not self._samples:
            raise ValueError("no samples recorded")
        return float(np.mean(np.asarray(self._samples)))

    def summary(self) -> Summary:
        return summarize(self._samples)
