"""Measurement statistics used by the characterization harness.

The paper reports the **median** over >=1 K repetitions with standard
deviations as error bars, and p99 latency for the end-to-end experiments.
This module implements exactly those reductions.

Two latency recorders share one API (``record``/``count``/``p50``/
``p99``/``p999``/``mean``/``summary``):

* :class:`LatencyStats` — **exact**: keeps every sample and answers
  percentile queries from a cached sorted array.  The default, and the
  only mode the paper figures use — their outputs are byte-golden.
* :class:`StreamingLatencyStats` — **O(1) memory**: P² quantile
  estimators (Jain & Chlamtac 1985) for the three tail points plus
  exact running moments.  ``REPRO_STATS=stream`` (or
  :func:`set_stats`\\ ``("stream")``) switches :func:`latency_recorder`
  for scale runs whose sample counts would otherwise grow RSS without
  bound; accuracy tolerances are pinned in docs/PERFORMANCE.md.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Union

import numpy as np


@dataclass(frozen=True)
class Summary:
    """Median/mean/std summary of repeated measurements."""

    n: int
    median: float
    mean: float
    std: float
    minimum: float
    maximum: float

    def __str__(self) -> str:  # pragma: no cover - display helper
        return (
            f"median={self.median:.1f} mean={self.mean:.1f} "
            f"std={self.std:.1f} (n={self.n})"
        )


def summarize(samples: Sequence[float]) -> Summary:
    """Reduce repeated measurements the way the paper does (median + std)."""
    if not len(samples):
        raise ValueError("cannot summarize zero samples")
    arr = np.asarray(samples, dtype=float)
    return Summary(
        n=len(arr),
        median=float(np.median(arr)),
        mean=float(arr.mean()),
        std=float(arr.std()),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
    )


def bandwidth_gbps(total_bytes: int, elapsed_ns: float) -> float:
    """Achieved bandwidth in GB/s (decimal) for a timed transfer."""
    if elapsed_ns <= 0:
        raise ValueError(f"elapsed time must be positive: {elapsed_ns}")
    return total_bytes / elapsed_ns


class LatencyStats:
    """Exact latency recorder with percentile queries.

    Used by the end-to-end Redis experiments: clients record one sample per
    request, and the harness queries p50/p99/p999 at the end of the run.

    Percentile queries run against a cached sorted array; recording a new
    sample invalidates it.  The cache only changes *when* the list-to-array
    conversion and sort happen — ``np.percentile`` over the same values is
    bit-identical either way — so a p50/p99/p999 sweep over millions of
    samples pays the O(n log n) once instead of per query.
    """

    def __init__(self) -> None:
        self._samples: list[float] = []
        self._sorted: Optional[np.ndarray] = None

    def record(self, latency_ns: float) -> None:
        if latency_ns < 0:
            raise ValueError(f"negative latency: {latency_ns}")
        self._samples.append(latency_ns)
        self._sorted = None

    def extend(self, samples: Iterable[float]) -> None:
        for sample in samples:
            self.record(sample)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def count(self) -> int:
        return len(self._samples)

    def __getstate__(self) -> dict:
        # Checkpoint hygiene: the sorted cache never travels.  Dropping
        # it keeps snapshot payloads lean and — more importantly — makes
        # a restored recorder *provably* rebuild from ``_samples``: a
        # carried cache of matching length would satisfy the staleness
        # heuristic in ``_sorted_array`` whether or not its contents
        # still corresponded to the samples.
        return {"_samples": self._samples}

    def __setstate__(self, state: dict) -> None:
        self._samples = state["_samples"]
        self._sorted = None

    def _sorted_array(self) -> np.ndarray:
        arr = self._sorted
        if arr is None or len(arr) != len(self._samples):
            arr = np.sort(np.asarray(self._samples, dtype=float))
            self._sorted = arr
        return arr

    def percentile(self, pct: float) -> float:
        if not self._samples:
            raise ValueError("no samples recorded")
        return float(np.percentile(self._sorted_array(), pct))

    def percentile_or(self, pct: float, default: float = 0.0) -> float:
        """``percentile`` that answers ``default`` instead of raising on
        an empty recorder — for SLO reports over tenants that may have
        had every request shed."""
        if not self._samples:
            return default
        return self.percentile(pct)

    def p50(self) -> float:
        return self.percentile(50.0)

    def p99(self) -> float:
        return self.percentile(99.0)

    def p999(self) -> float:
        return self.percentile(99.9)

    def mean(self) -> float:
        if not self._samples:
            raise ValueError("no samples recorded")
        return float(np.mean(self._sorted_array()))

    def summary(self) -> Summary:
        return summarize(self._samples)


class _P2Quantile:
    """One P² marker bank: streaming estimate of a single quantile in
    O(1) memory (Jain & Chlamtac, CACM 1985).

    Five markers track (min, q/2-ish, q, (1+q)/2-ish, max); each new
    observation shifts marker counts and nudges the middle heights by a
    piecewise-parabolic fit.  Pure float arithmetic — deterministic for
    a given sample order, which is all the simulator ever produces.
    """

    __slots__ = ("p", "_heights", "_pos", "_want", "_grow", "_n")

    def __init__(self, p: float) -> None:
        if not 0.0 < p < 1.0:
            raise ValueError(f"quantile must be in (0, 1): {p}")
        self.p = p
        self._heights: list[float] = []
        self._pos = [0, 1, 2, 3, 4]
        self._want = [0.0, 0.0, 0.0, 0.0, 0.0]
        self._grow = (0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0)
        self._n = 0

    def add(self, x: float) -> None:
        self._n += 1
        heights = self._heights
        if self._n <= 5:
            heights.append(x)
            if self._n == 5:
                heights.sort()
                self._pos = [0, 1, 2, 3, 4]
                p = self.p
                self._want = [0.0, 2.0 * p, 4.0 * p, 2.0 + 2.0 * p, 4.0]
            return
        pos = self._pos
        if x < heights[0]:
            heights[0] = x
            k = 0
        elif x >= heights[4]:
            heights[4] = x
            k = 3
        elif x < heights[1]:
            k = 0
        elif x < heights[2]:
            k = 1
        elif x < heights[3]:
            k = 2
        else:
            k = 3
        for i in range(k + 1, 5):
            pos[i] += 1
        want = self._want
        grow = self._grow
        for i in range(1, 5):
            want[i] += grow[i]
        for i in (1, 2, 3):
            d = want[i] - pos[i]
            if (d >= 1.0 and pos[i + 1] - pos[i] > 1) or \
               (d <= -1.0 and pos[i - 1] - pos[i] < -1):
                step = 1 if d >= 1.0 else -1
                h = self._parabolic(i, step)
                if heights[i - 1] < h < heights[i + 1]:
                    heights[i] = h
                else:
                    heights[i] = self._linear(i, step)
                pos[i] += step

    def _parabolic(self, i: int, d: int) -> float:
        q, n = self._heights, self._pos
        return q[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))

    def _linear(self, i: int, d: int) -> float:
        q, n = self._heights, self._pos
        return q[i] + d * (q[i + d] - q[i]) / (n[i + d] - n[i])

    def value(self) -> float:
        if self._n == 0:
            raise ValueError("no samples recorded")
        heights = self._heights
        if self._n < 5:
            # Too few points for the marker bank: exact quantile of what
            # we have (same linear interpolation numpy uses).
            srt = sorted(heights)
            rank = self.p * (len(srt) - 1)
            lo = int(rank)
            hi = min(lo + 1, len(srt) - 1)
            return srt[lo] + (srt[hi] - srt[lo]) * (rank - lo)
        return heights[2]

    # -- merging -----------------------------------------------------------

    @staticmethod
    def _cdf_at(heights: Sequence[float], fracs: Sequence[float],
                x: float) -> float:
        """The bank's piecewise-linear sketch CDF at ``x``: linear
        between markers, 0 below the min, 1 above the max.  Zero-width
        segments (duplicate heights) step to the right-hand fraction."""
        if x <= heights[0]:
            return 0.0
        if x >= heights[-1]:
            return 1.0
        for i in range(len(heights) - 1):
            if x <= heights[i + 1]:
                lo, hi = heights[i], heights[i + 1]
                if hi == lo:
                    return fracs[i + 1]
                return fracs[i] + (fracs[i + 1] - fracs[i]) * \
                    (x - lo) / (hi - lo)
        return 1.0  # pragma: no cover - unreachable (x < heights[-1])

    def _adopt(self, other: "_P2Quantile") -> None:
        self._heights = list(other._heights)
        self._pos = list(other._pos)
        self._want = list(other._want)
        self._n = other._n

    def merge(self, other: "_P2Quantile") -> None:
        """Combine ``other``'s state into this bank.

        Three regimes, each deterministic for a given pair of states:

        * either side has fewer than 5 samples — its raw samples are
          replayed through :meth:`add` (exact);
        * both banks are live — the merged markers are read off the
          **count-weighted mixture** of the two piecewise-linear sketch
          CDFs, inverted at the canonical marker fractions
          ``(0, p/2, p, (1+p)/2, 1)``.  The inversion is exact *for the
          sketches*, so the merged estimate inherits only the input
          banks' own P² error (plus the piecewise-linear interpolation
          already inherent in P²): no new error term grows with the
          number of merges beyond the banks' sketch error.  The
          end markers stay the exact running min/max.

        The merged ``_pos``/``_want`` are reset to their ideal values
        for the combined count, as if the bank had converged there —
        the same state a long-running bank trends toward.  Empirical
        accuracy against the exact pooled percentile is pinned in
        ``tests/sim/test_stats_merge.py``: well under 1 % relative on
        p50, but roughly 10 % worst-case on p99/p999 for the
        exponential-tailed populations the rack merges — two 5-marker
        piecewise-linear sketches simply carry little resolution beyond
        their outermost markers, so tail error is dominated by the
        input banks' own sketch error plus the mixture interpolation.
        Consumers that need tight merged tails (none in-tree today)
        should track the tail point directly as an extra quantile.
        """
        if other.p != self.p:
            raise ValueError(
                f"cannot merge banks for different quantiles: "
                f"{self.p} vs {other.p}")
        if other._n == 0:
            return
        if self._n == 0:
            self._adopt(other)
            return
        if other._n < 5:
            # Raw samples on the right: replay them (exact).
            for x in list(other._heights):
                self.add(x)
            return
        if self._n < 5:
            # Raw samples on the left: replay into a copy of the bank.
            merged = _P2Quantile(self.p)
            merged._adopt(other)
            for x in list(self._heights):
                merged.add(x)
            self._adopt(merged)
            return
        wa, wb = self._n, other._n
        tot = wa + wb
        fracs = self._grow
        knots = sorted(set(self._heights) | set(other._heights))
        mix = [(wa * self._cdf_at(self._heights, fracs, x)
                + wb * self._cdf_at(other._heights, fracs, x)) / tot
               for x in knots]
        heights = []
        for target in fracs:
            if target <= mix[0]:
                heights.append(knots[0])
                continue
            if target >= mix[-1]:
                heights.append(knots[-1])
                continue
            j = 0
            while mix[j + 1] < target:
                j += 1
            lo_f, hi_f = mix[j], mix[j + 1]
            lo_x, hi_x = knots[j], knots[j + 1]
            if hi_f == lo_f:
                heights.append(hi_x)
            else:
                heights.append(lo_x + (hi_x - lo_x) *
                               (target - lo_f) / (hi_f - lo_f))
        # Exact extremes survive the mixture by construction (the
        # mixture CDF is 0/1 exactly at the combined min/max).
        heights[0] = min(self._heights[0], other._heights[0])
        heights[4] = max(self._heights[4], other._heights[4])
        for i in range(1, 5):
            if heights[i] < heights[i - 1]:
                heights[i] = heights[i - 1]
        # Ideal marker positions/targets for the combined count, kept
        # strictly increasing (the update rules divide by pos gaps).
        pos = [int(round((tot - 1) * g)) for g in self._grow]
        pos[0], pos[4] = 0, tot - 1
        for i in (1, 2, 3):
            pos[i] = max(pos[i], pos[i - 1] + 1)
        for i in (3, 2, 1):
            pos[i] = min(pos[i], pos[i + 1] - 1)
        p = self.p
        base_want = [0.0, 2.0 * p, 4.0 * p, 2.0 + 2.0 * p, 4.0]
        self._heights = heights
        self._pos = pos
        self._want = [base_want[i] + (tot - 5) * self._grow[i]
                      for i in range(5)]
        self._n = tot


class StreamingLatencyStats:
    """O(1)-memory drop-in for :class:`LatencyStats` on scale runs.

    Tracks P² estimators for the recorder's tail points (p50/p99/p999 by
    default) plus *exact* running count/mean/variance/min/max — only the
    percentile values are approximate.  ``percentile`` answers solely
    for the tracked points; anything else raises, loudly, rather than
    silently extrapolating.
    """

    #: quantiles every recorder tracks (match LatencyStats's query trio)
    DEFAULT_QUANTILES = (0.50, 0.99, 0.999)

    def __init__(self,
                 quantiles: Sequence[float] = DEFAULT_QUANTILES) -> None:
        self._marks = {round(q * 100.0, 6): _P2Quantile(q)
                       for q in quantiles}
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def record(self, latency_ns: float) -> None:
        if latency_ns < 0:
            raise ValueError(f"negative latency: {latency_ns}")
        self._count += 1
        delta = latency_ns - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (latency_ns - self._mean)
        if latency_ns < self._min:
            self._min = latency_ns
        if latency_ns > self._max:
            self._max = latency_ns
        for mark in self._marks.values():
            mark.add(latency_ns)

    def extend(self, samples: Iterable[float]) -> None:
        for sample in samples:
            self.record(sample)

    def merge(self, other: "StreamingLatencyStats") -> "StreamingLatencyStats":
        """Fold ``other``'s state into this recorder (and return self).

        Count/mean/M2 combine exactly (Chan et al.'s parallel variance
        update), min/max exactly; each P² bank merges via
        :meth:`_P2Quantile.merge` — see its docstring for the error
        contract.  Merging is associative-in-practice but *ordered*
        (float rounding and marker interpolation differ with order), so
        callers that need byte-stable output must merge in a fixed
        order; the rack merges shard recorders in shard-id order.
        """
        if set(self._marks) != set(other._marks):
            raise ValueError(
                f"recorders track different quantiles: "
                f"{sorted(self._marks)} vs {sorted(other._marks)}")
        if other._count == 0:
            return self
        n1, n2 = self._count, other._count
        tot = n1 + n2
        if n1 == 0:
            self._mean, self._m2 = other._mean, other._m2
        else:
            delta = other._mean - self._mean
            self._m2 = self._m2 + other._m2 + delta * delta * n1 * n2 / tot
            self._mean = self._mean + delta * n2 / tot
        self._count = tot
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        for key, mark in self._marks.items():
            mark.merge(other._marks[key])
        return self

    def __len__(self) -> int:
        return self._count

    @property
    def count(self) -> int:
        return self._count

    def percentile(self, pct: float) -> float:
        if self._count == 0:
            raise ValueError("no samples recorded")
        mark = self._marks.get(round(float(pct), 6))
        if mark is None:
            tracked = sorted(self._marks)
            raise ValueError(
                f"streaming recorder only tracks percentiles {tracked}; "
                f"got {pct!r} — use exact LatencyStats for ad-hoc queries")
        return float(mark.value())

    def percentile_or(self, pct: float, default: float = 0.0) -> float:
        """``percentile`` that answers ``default`` instead of raising on
        an empty recorder (untracked points still raise, loudly)."""
        if self._count == 0:
            return default
        return self.percentile(pct)

    def p50(self) -> float:
        return self.percentile(50.0)

    def p99(self) -> float:
        return self.percentile(99.0)

    def p999(self) -> float:
        return self.percentile(99.9)

    def mean(self) -> float:
        if self._count == 0:
            raise ValueError("no samples recorded")
        return self._mean

    def summary(self) -> Summary:
        if self._count == 0:
            raise ValueError("cannot summarize zero samples")
        std = (self._m2 / self._count) ** 0.5 if self._count else 0.0
        return Summary(
            n=self._count,
            median=self.percentile(50.0),
            mean=self._mean,
            std=std,
            minimum=self._min,
            maximum=self._max,
        )


LatencyRecorder = Union[LatencyStats, StreamingLatencyStats]

_forced_stats: Optional[str] = None


def set_stats(mode: Optional[str]) -> None:
    """Force the recorder flavour: ``"exact"``, ``"stream"``, or ``None``
    to defer to the ``REPRO_STATS`` environment variable."""
    global _forced_stats
    if mode not in (None, "exact", "stream"):
        raise ValueError(f"set_stats expects 'exact'/'stream'/None, "
                         f"got {mode!r}")
    _forced_stats = mode


def stats_mode() -> str:
    """The effective recorder flavour for :func:`latency_recorder`."""
    if _forced_stats is not None:
        return _forced_stats
    env = os.environ.get("REPRO_STATS", "exact").lower()
    return "stream" if env in ("stream", "streaming", "p2") else "exact"


def latency_recorder() -> LatencyRecorder:
    """Build the ambient-mode latency recorder.

    Exact mode is the default — every paper figure stays byte-golden.
    ``REPRO_STATS=stream`` swaps in :class:`StreamingLatencyStats` for
    runs whose request counts would otherwise hold every sample live.
    """
    if stats_mode() == "stream":
        return StreamingLatencyStats()
    return LatencyStats()
