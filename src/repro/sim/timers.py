"""Hierarchical timer wheel for the event engine.

The heap serves arbitrary timestamp streams in O(log n) per operation,
but the simulator's timer traffic is heavily *clustered*: doorbell
timeouts, RAS reaping, retry backoff, and open-loop client periods all
land on a handful of distinct deadlines at any instant, most of them
near ``now``.  :class:`TimerWheel` exploits that shape with a
hierarchical calendar:

* **near level** — a dict keyed by *exact* float deadline holding FIFO
  buckets, plus a small heap of the distinct deadlines.  Scheduling a
  timer whose deadline already exists is one dict hit and a list
  append — amortised O(1) — and a bucket needs no sorting on drain
  because appends arrive in sequence order (time cannot advance into a
  deadline while inserts at that deadline are still possible; a sort
  only runs after a cascade merged two provenances, where timsort's
  sorted-run detection keeps it near-linear).
* **far levels** — coarse buckets of 2^12 / 2^20 / 2^28 ns spans keyed
  by ``deadline >> shift``, for timers beyond the 4096 ns near window
  (command timeouts, watchdogs).  A far bucket *cascades* toward the
  near level only when the clock approaches its span, so a long-lived
  timeout costs O(1) at schedule time and O(levels) total, not a heap
  reshuffle under every nearer event.
* **overflow** — a plain heap for deadlines ≥ 2^36 ns (~69 s) out;
  effectively cold.

Ordering is the engine's documented contract — *equal timestamps fire
in scheduling order* — and holds bit-for-bit against the heap path:
a drained bucket carries exactly the entries of one timestamp, sorted
by the same global sequence numbers the heap would have compared
(``tests/sim/test_engine_order.py`` replays interleaved schedules both
ways and diffs the traces).

Cancellation is **lazy**: :meth:`Timer.cancel` marks a tombstone; the
entry still occupies its slot and still pops at its ``(time, seq)``
position in *both* timer modes, where :meth:`Timer._fire` skips the
user-visible trigger.  The clock therefore advances through cancelled
deadlines identically with the wheel on or off, which is what keeps
experiment outputs byte-identical — O(1) cancel is the point: reaping
an armed offload timeout no longer pays a heap delete or a drift in
queue shape.

**Tombstone reaping** (``REPRO_TIMERS_REAP``, default on) keeps the
lazy-cancel contract without the drain cost.  Each cancel stays O(1) —
a set-add of the entry's ``(time, seq)`` key — and the structure is
*compacted* on cold paths only: when a cascade redistributes a far
bucket its dead entries are dropped instead of re-homed, and when the
tombstone ratio exceeds 1/2 a full sweep (:meth:`TimerWheel.reap`, or
the heap-mode rebuild in the engine) removes every dead entry at once.
The amortized cost per cancel is O(1) because a sweep only runs once
the dead entries are the majority of the structure.  Byte-identity is
preserved by the *dead horizon*: the maximum deadline among reaped
tombstones is folded into the clock when an unbounded run drains —
exactly where the lazily-popped tombstone would have left it — so the
``(time, seq)`` trajectory of live work and the final ``now`` match
the non-reaped run bit for bit (pinned in ``tests/sim``).

Mode control follows the bulk fast-forward idiom: ``REPRO_TIMERS=heap``
(or :func:`set_timers`\\ ``("heap")``) routes every timer through the
classic heap; the wheel is the default.  The choice is sampled at
:class:`~repro.sim.engine.Simulator` construction, as is the reaping
flag.
"""

from __future__ import annotations

import os
from heapq import heapify as _heapify, heappop, heappush
from typing import Any, Callable, Optional

__all__ = [
    "TimerWheel", "Timer", "WheelStats", "WHEEL_STATS",
    "set_timers", "timers_mode", "wheel_enabled",
    "set_timers_reap", "timers_reap_enabled",
    "NEAR_SPAN_NS", "LEVEL_SHIFTS",
]

# Deadlines closer than this (ns) go straight to the exact-time near
# level; one level-0 span of the classic 256-slot / 2^4-tick geometry.
NEAR_SPAN_NS = 4096.0
_NEAR_SPAN_TICKS = 4096

# Far-level spans: a level with shift ``s`` holds deadlines up to
# ``1 << (s + 8)`` ticks ahead in buckets ``1 << s`` ticks wide — the
# hierarchical-wheel geometry (256 buckets per level) without the fixed
# slot array: only occupied buckets exist.
LEVEL_SHIFTS = (12, 20, 28)

_forced: Optional[str] = None


def set_timers(mode: Optional[str]) -> None:
    """Force the timer structure: ``"wheel"``, ``"heap"``, or ``None``
    to defer to the ``REPRO_TIMERS`` environment variable."""
    global _forced
    if mode not in (None, "wheel", "heap"):
        raise ValueError(f"set_timers expects 'wheel'/'heap'/None, "
                         f"got {mode!r}")
    _forced = mode


def timers_mode() -> str:
    """The effective timer mode for newly built simulators."""
    if _forced is not None:
        return _forced
    env = os.environ.get("REPRO_TIMERS", "wheel").lower()
    return "heap" if env in ("heap", "0", "false", "off") else "wheel"


def wheel_enabled() -> bool:
    return timers_mode() == "wheel"


_forced_reap: Optional[bool] = None


def set_timers_reap(enabled: Optional[bool]) -> None:
    """Force tombstone reaping on/off; ``None`` defers to the
    ``REPRO_TIMERS_REAP`` environment variable (default: on).  Sampled
    at :class:`~repro.sim.engine.Simulator` construction."""
    global _forced_reap
    if enabled not in (None, True, False):
        raise ValueError(f"set_timers_reap expects True/False/None, "
                         f"got {enabled!r}")
    _forced_reap = enabled


def timers_reap_enabled() -> bool:
    """Whether cancelled-timer tombstones are compacted out of the timer
    structure (on) or drained lazily through their slots (off).  The
    live-event trajectory and final clock are byte-identical either
    way; only wall-clock differs."""
    if _forced_reap is not None:
        return _forced_reap
    return os.environ.get("REPRO_TIMERS_REAP", "1").lower() not in (
        "0", "false", "off")


class WheelStats:
    """Process-global wheel counters surfaced by ``repro speed``.

    Everything is accounted on cold or amortised paths (refill,
    cascade, far insert, cancel) so the hot schedule path carries no
    counter traffic; ``scheduled`` is reconstructed as fired + live.
    """

    __slots__ = ("fired", "cancelled", "cascades", "far_inserts",
                 "overflow_inserts", "refills", "max_distinct_deadlines",
                 "reaped", "reap_sweeps", "dead_fired")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.fired = 0
        self.cancelled = 0
        self.cascades = 0
        self.far_inserts = 0
        self.overflow_inserts = 0
        self.refills = 0
        self.max_distinct_deadlines = 0
        self.reaped = 0        # tombstones compacted out of a structure
        self.reap_sweeps = 0   # full-structure compaction passes
        self.dead_fired = 0    # tombstones that drained through a slot

    def snapshot(self) -> dict:
        return {
            "fired": self.fired,
            "cancelled": self.cancelled,
            "cascades": self.cascades,
            "far_inserts": self.far_inserts,
            "overflow_inserts": self.overflow_inserts,
            "refills": self.refills,
            "max_distinct_deadlines": self.max_distinct_deadlines,
            "reaped": self.reaped,
            "reap_sweeps": self.reap_sweeps,
            "dead_fired": self.dead_fired,
        }

    def describe(self) -> dict:
        """:meth:`snapshot` plus the reconciled outstanding-tombstone
        count.  ``cancelled`` only ever increments (in
        :meth:`Timer.cancel`), so on its own it over-reports pending
        tombstones on long-running racks; every cancelled timer is
        eventually either *reaped* (compacted out) or *dead-fired*
        (drained through its slot), and the difference is what is still
        occupying the structures."""
        out = self.snapshot()
        out["tombstones_pending"] = max(
            0, self.cancelled - self.reaped - self.dead_fired)
        return out


WHEEL_STATS = WheelStats()


class TimerWheel:
    """The hierarchical calendar described in the module docstring.

    The engine's run loop and schedule fast paths touch ``near``,
    ``near_times``, ``count``, ``ready`` and ``ready_time`` directly —
    they are the hot interface, deliberately plain attributes.  Entries
    are ``(time, seq, fn, args)`` tuples, the same shape the heap uses.
    """

    __slots__ = ("near", "near_times", "levels", "overflow", "count",
                 "ready", "ready_time", "_far_next", "dead", "dead_horizon",
                 "nursery", "nursery_min")

    def __init__(self) -> None:
        # time -> [(time, seq, fn, args), ...] in insertion (= seq) order.
        self.near: dict = {}
        self.near_times: list = []       # heap of distinct near deadlines
        # [(shift, {bucket_id: [entry, ...]}, [bucket_id heap]), ...]
        self.levels = tuple((s, {}, []) for s in LEVEL_SHIFTS)
        self.overflow: list = []         # entry heap, deadlines >= 2^36 out
        self.count = 0                   # live entries not yet handed out
        self.ready: list = []            # current drained bucket, reversed
        self.ready_time = 0.0
        self._far_next = float("inf")    # lower bound on any far deadline
        # Tombstone bookkeeping (see module docstring): (time, seq) keys
        # of cancelled entries still occupying a slot, and the maximum
        # deadline among entries compacted *out* — the engine folds it
        # into the clock where the lazy pop would have left it.
        self.dead: set = set()
        self.dead_horizon = 0.0
        # Cancellable-timer staging area: (time, seq) -> entry.  Entries
        # rest here until a refill is about to hand out a bucket at or
        # past ``nursery_min`` (a lower bound; cancels leave it stale);
        # a cancel that beats that flush deletes the entry outright — no
        # insert, no tombstone, no sweep.  Watchdog races that almost
        # never fire (the whole point of Simulator.timer) thus cost two
        # dict ops total.
        self.nursery: dict = {}
        self.nursery_min = float("inf")

    # -- scheduling (cold half; the near fast path is inlined in the
    # -- engine, mirrored by insert() below for non-inlined callers) ----

    def insert(self, t: float, seq: int, fn: Callable[..., None],
               args: tuple, now: float) -> None:
        """Schedule ``fn(*args)`` at absolute deadline ``t`` (> now)."""
        if t - now < NEAR_SPAN_NS:
            near = self.near
            b = near.get(t)
            if b is None:
                near[t] = [(t, seq, fn, args)]
                heappush(self.near_times, t)
            else:
                b.append((t, seq, fn, args))
            self.count += 1
        else:
            self.insert_far(t, seq, fn, args, int(now))

    def insert_far(self, t: float, seq: int, fn: Callable[..., None],
                   args: tuple, base_tick: int) -> None:
        """Place a beyond-near-window deadline on its hierarchy level."""
        tick = int(t)
        d = tick - base_tick
        for shift, buckets, ids in self.levels:
            if not d >> (shift + 8):
                bucket_id = tick >> shift
                b = buckets.get(bucket_id)
                if b is None:
                    buckets[bucket_id] = [(t, seq, fn, args)]
                    heappush(ids, bucket_id)
                    bound = float(bucket_id << shift)
                    if bound < self._far_next:
                        self._far_next = bound
                else:
                    b.append((t, seq, fn, args))
                self.count += 1
                WHEEL_STATS.far_inserts += 1
                return
        heappush(self.overflow, (t, seq, fn, args))
        if t < self._far_next:
            self._far_next = t
        self.count += 1
        WHEEL_STATS.overflow_inserts += 1

    def flush_nursery(self, now: Optional[float] = None) -> None:
        """Move staged cancellable timers into the wheel proper.

        :meth:`refill` calls this whenever the bucket it is about to
        hand out lies at or past ``nursery_min`` — i.e. strictly before
        the wheel fires anything at or after a staged deadline — so
        staging is invisible to firing order.  With ``now`` the entries
        take the normal near/far routing; without it (bare test
        callers) each entry lands on the near level under its own
        window base, which is always correct, just heavier on
        ``near_times``.
        """
        nursery = self.nursery
        if not nursery:
            self.nursery_min = float("inf")
            return
        if now is None:
            for entry in nursery.values():
                self._place(entry, int(entry[0]) & ~(_NEAR_SPAN_TICKS - 1))
        else:
            near = self.near
            base = int(now)
            for entry in nursery.values():
                t = entry[0]
                if t - now < NEAR_SPAN_NS:
                    b = near.get(t)
                    if b is None:
                        near[t] = [entry]
                        heappush(self.near_times, t)
                    else:
                        b.append(entry)
                else:
                    # insert_far re-counts the entry; staging already did.
                    self.count -= 1
                    self.insert_far(t, entry[1], entry[2], entry[3], base)
        nursery.clear()
        self.nursery_min = float("inf")

    # -- draining -------------------------------------------------------

    def refill(self, now: Optional[float] = None) -> None:
        """Pop the earliest deadline bucket into ``ready``/``ready_time``.

        Call only with ``count > 0`` and ``ready`` empty.  Flushes the
        nursery whenever a staged deadline could be at or before the
        bucket about to be handed out, and cascades far buckets down
        whenever one could still contain an entry at (or before) the
        earliest near deadline — so the returned bucket provably holds
        *every* live entry of its timestamp, staged or not.
        """
        stats = WHEEL_STATS
        near_times = self.near_times
        nursery = self.nursery
        while True:
            if near_times:
                tmin = near_times[0]
                if nursery and self.nursery_min <= tmin:
                    self.flush_nursery(now)
                    continue
                if self._far_next <= tmin:
                    self._cascade_one()
                    continue
                t = heappop(near_times)
                bucket = self.near.pop(t)
                n = len(bucket)
                if n > 1:
                    # Appends arrive in seq order, so this is usually a
                    # no-op pass; a cascade may have interleaved two
                    # provenances, which timsort mends cheaply.
                    bucket.sort()
                    bucket.reverse()     # engine pops from the end
                self.ready = bucket
                self.ready_time = t
                self.count -= n
                stats.fired += n
                stats.refills += 1
                ndl = len(near_times)
                if ndl > stats.max_distinct_deadlines:
                    stats.max_distinct_deadlines = ndl
                return
            if not self.count:
                # A cascade reaped away the remaining tombstones: the
                # wheel is empty and ``ready`` stays empty — the run
                # loop re-checks ``count`` and stops cleanly.
                return
            if nursery and self.nursery_min <= self._far_next:
                # Near level dry and a staged deadline could precede
                # anything in the hierarchy (or everything live is
                # staged).
                self.flush_nursery(now)
                continue
            # Near level dry: everything live sits in the hierarchy.
            self._cascade_one()

    def _cascade_one(self) -> None:
        """Redistribute the earliest far bucket one level down."""
        best_level = None
        best_bound = float("inf")
        for level in self.levels:
            ids = level[2]
            if ids:
                bound = float(ids[0] << level[0])
                if bound < best_bound:
                    best_bound = bound
                    best_level = level
        overflow = self.overflow
        dead = self.dead
        if overflow and overflow[0][0] < best_bound:
            # Overflow cascades one entry at a time (cold by design).
            entry = heappop(overflow)
            if dead and (entry[0], entry[1]) in dead:
                self._drop_dead(entry)
            else:
                self._place(entry, int(entry[0]) & ~(_NEAR_SPAN_TICKS - 1))
        elif best_level is not None:
            shift, buckets, ids = best_level
            bucket_id = heappop(ids)
            # Route each entry relative to the bucket's own base so it
            # lands *strictly* below this level, never back onto it —
            # dead entries are dropped here instead of re-homed (the
            # cascade half of tombstone reaping).
            base = bucket_id << shift
            for entry in buckets.pop(bucket_id):
                if dead and (entry[0], entry[1]) in dead:
                    self._drop_dead(entry)
                else:
                    self._place(entry, base)
        else:  # pragma: no cover - refill precondition violated
            raise RuntimeError("cascade on an empty wheel")
        WHEEL_STATS.cascades += 1
        # Recompute the far lower bound from scratch (cold path).
        nxt = float("inf")
        for shift, _buckets, ids in self.levels:
            if ids:
                bound = float(ids[0] << shift)
                if bound < nxt:
                    nxt = bound
        if overflow and overflow[0][0] < nxt:
            nxt = overflow[0][0]
        self._far_next = nxt

    def unready(self) -> None:
        """Return a drained-but-unfired ``ready`` bucket to the near
        level.

        ``Simulator.run(until=...)`` can stop *before* the popped
        bucket's timestamp.  Leaving the bucket parked in ``ready``
        would pin the wheel's notion of "earliest" at that future time,
        so timers inserted later at earlier deadlines (the next run's
        work) would sit behind it forever.  Re-homing the bucket — and
        refunding the refill's accounting — restores the invariant that
        ``ready`` is only ever the authoritative earliest bucket while a
        run loop is actively draining it.
        """
        bucket = self.ready
        if not bucket:
            return
        self.ready = []
        bucket.reverse()                 # back to ascending seq order
        t = self.ready_time
        existing = self.near.get(t)
        if existing is None:
            self.near[t] = bucket
            heappush(self.near_times, t)
        else:
            # Inserts at this exact deadline may have landed while the
            # bucket was out; merge and let the seq sort restore order.
            existing.extend(bucket)
            existing.sort()
        self.count += len(bucket)
        WHEEL_STATS.fired -= len(bucket)

    def _place(self, entry: tuple, base_tick: int) -> None:
        """Re-home a cascading entry relative to ``base_tick`` (no
        count/stat changes — the entry never left the wheel)."""
        t = entry[0]
        tick = int(t)
        d = tick - base_tick
        if d < _NEAR_SPAN_TICKS:
            near = self.near
            b = near.get(t)
            if b is None:
                near[t] = [entry]
                heappush(self.near_times, t)
            else:
                b.append(entry)
            return
        for shift, buckets, ids in self.levels:
            if not d >> (shift + 8):
                bucket_id = tick >> shift
                b = buckets.get(bucket_id)
                if b is None:
                    buckets[bucket_id] = [entry]
                    heappush(ids, bucket_id)
                else:
                    b.append(entry)
                return
        heappush(self.overflow, entry)

    # -- tombstone reaping ----------------------------------------------

    def _drop_dead(self, entry: tuple) -> None:
        """Discard one tombstoned entry leaving a structure (cascade
        path): deregister its key, refund the live count, and advance
        the dead horizon to where its lazy pop would have left the
        clock."""
        self.dead.discard((entry[0], entry[1]))
        self.count -= 1
        if entry[0] > self.dead_horizon:
            self.dead_horizon = entry[0]
        WHEEL_STATS.reaped += 1

    def reap(self) -> int:
        """Compact every tombstoned entry out of the wheel; returns the
        number removed.  O(live) — amortized O(1) per cancel because the
        engine only triggers it when tombstones outnumber live entries
        (ratio > 1/2).  Mutates ``near_times``/level id-heaps *in
        place* so locals captured by an in-progress run loop stay
        valid.  Entries parked in ``ready`` are left to drain lazily
        (they are already accounted as fired)."""
        dead = self.dead
        if not dead:
            return 0
        removed = 0
        horizon = self.dead_horizon
        # Scan order: far levels, overflow, then near — cancelled timers
        # are overwhelmingly long-dated watchdogs, so the (live-heavy)
        # near scan usually short-circuits on an already-empty dead set.
        for _shift, buckets, ids in self.levels:
            if not dead:
                break
            rebuilt = False
            for bucket_id in list(buckets):
                bucket = buckets[bucket_id]
                kept = []
                for entry in bucket:
                    if (entry[0], entry[1]) in dead:
                        dead.discard((entry[0], entry[1]))
                        removed += 1
                        if entry[0] > horizon:
                            horizon = entry[0]
                    else:
                        kept.append(entry)
                if len(kept) == len(bucket):
                    continue
                if kept:
                    buckets[bucket_id] = kept
                else:
                    del buckets[bucket_id]
                    rebuilt = True
            if rebuilt:
                ids[:] = list(buckets)
                _heapify(ids)
        if dead and self.overflow:
            kept = []
            for entry in self.overflow:
                if (entry[0], entry[1]) in dead:
                    dead.discard((entry[0], entry[1]))
                    removed += 1
                    if entry[0] > horizon:
                        horizon = entry[0]
                else:
                    kept.append(entry)
            if len(kept) != len(self.overflow):
                self.overflow[:] = kept
                _heapify(self.overflow)
        if dead:
            near = self.near
            rebuilt_near = False
            for t in list(near):
                bucket = near[t]
                kept = []
                for entry in bucket:
                    if (entry[0], entry[1]) in dead:
                        dead.discard((entry[0], entry[1]))
                        removed += 1
                        if entry[0] > horizon:
                            horizon = entry[0]
                    else:
                        kept.append(entry)
                if len(kept) == len(bucket):
                    continue
                if kept:
                    near[t] = kept
                else:
                    del near[t]
                    rebuilt_near = True
            if rebuilt_near:
                self.near_times[:] = list(near)
                _heapify(self.near_times)
        if not removed:
            return 0
        self.count -= removed
        self.dead_horizon = horizon
        # Recompute the far lower bound: reaping may have emptied the
        # bucket that anchored it (same cold-path recompute a cascade
        # does).
        nxt = float("inf")
        for shift, _buckets, ids in self.levels:
            if ids:
                bound = float(ids[0] << shift)
                if bound < nxt:
                    nxt = bound
        if self.overflow and self.overflow[0][0] < nxt:
            nxt = self.overflow[0][0]
        self._far_next = nxt
        stats = WHEEL_STATS
        stats.reaped += removed
        stats.reap_sweeps += 1
        return removed

    # -- introspection --------------------------------------------------

    def __len__(self) -> int:
        return self.count + len(self.ready)

    def entries(self):
        """Yield every live ``(time, seq, fn, args)`` entry — near
        buckets, far hierarchy, overflow, staged nursery, and the
        drained-but-unfired ``ready`` remainder — in no particular
        order.  Checkpoint diagnostics and tests use this; the run loop
        never does."""
        for bucket in self.near.values():
            yield from bucket
        for _shift, buckets, _ids in self.levels:
            for bucket in buckets.values():
                yield from bucket
        yield from self.overflow
        yield from self.nursery.values()
        yield from self.ready

    def snapshot(self) -> dict:
        """Structure occupancy (live entries; see WHEEL_STATS for
        cumulative counters)."""
        return {
            "live": len(self),
            "near_deadlines": len(self.near),
            "far_buckets": sum(len(level[1]) for level in self.levels),
            "overflow": len(self.overflow),
        }


class Timer:
    """A cancellable timer handle from :meth:`Simulator.timer`.

    ``event`` triggers with the timer's value at the deadline unless
    :meth:`cancel` ran first.  Cancellation is a tombstone: the
    scheduled entry still pops at its ``(time, seq)`` — keeping the
    clock's trajectory identical in wheel and heap modes — and the
    trigger is simply skipped, so cancel is O(1) with no queue surgery.
    When reaping is enabled the engine registers the carrier key on the
    handle so cancel can also note the tombstone for later compaction
    (still O(1): one set-add plus a counter check).

    The ``event`` itself is allocated lazily: timeout races that never
    fire — the whole reason this API exists — usually never wait on it
    either (``sim.any_of`` holds its own reference; watchdogs that are
    cancelled every period touch only the handle), so the common
    cancel-before-fire path allocates no Event at all.
    """

    __slots__ = ("_event", "cancelled", "_sim", "_key")

    def __init__(self, event: Any = None, sim: Any = None) -> None:
        self._event = event
        self.cancelled = False
        self._sim = sim if sim is not None else getattr(event, "sim", None)
        self._key = None

    @property
    def event(self) -> Any:
        """The completion event (created on first access)."""
        ev = self._event
        if ev is None:
            from repro.sim.engine import Event
            ev = self._event = Event(self._sim, name="timer")
        return ev

    def cancel(self) -> bool:
        """Stop the timer from triggering; returns False if it already
        fired (too late), True otherwise.  Idempotent."""
        ev = self._event
        if ev is not None and ev._triggered:
            return False
        if not self.cancelled:
            self.cancelled = True
            WHEEL_STATS.cancelled += 1
            key = self._key
            if key is not None:
                # Inlined tombstone note (this is the hot path the
                # timers_reap speed cell measures): register the carrier
                # key and compact once tombstones outnumber live
                # entries.  The entry would otherwise pop lazily at its
                # (time, seq); reaping drops it early and folds the
                # skipped deadline into the carrier's phantom horizon so
                # an unbounded run ends at the same clock reading.
                sim = self._sim
                wheel = sim._wheel
                if wheel is not None:
                    if wheel.nursery.pop(key, None) is not None:
                        # Cancel beat the flush: the entry never reached
                        # the wheel.  Fold where its lazy pop would have
                        # left the clock and we are done.
                        wheel.count -= 1
                        if key[0] > wheel.dead_horizon:
                            wheel.dead_horizon = key[0]
                        WHEEL_STATS.reaped += 1
                    else:
                        dead = wheel.dead
                        dead.add(key)
                        if len(dead) * 2 > wheel.count:
                            wheel.reap()
                else:
                    dead = sim._heap_dead
                    dead.add(key)
                    if len(dead) * 2 > len(sim._heap):
                        sim._reap_heap()
        return True

    @property
    def active(self) -> bool:
        if self.cancelled:
            return False
        ev = self._event
        return ev is None or not ev._triggered

    def _fire(self, value: Any) -> None:
        if not self.cancelled:
            self.event.succeed(value)
        else:
            # A tombstone popped lazily before any sweep reached it:
            # deregister the key so a later sweep cannot double-count.
            WHEEL_STATS.dead_fired += 1
            key = self._key
            if key is not None:
                sim = self._sim
                wheel = sim._wheel
                if wheel is not None:
                    wheel.dead.discard(key)
                else:
                    sim._heap_dead.discard(key)
