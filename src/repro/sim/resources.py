"""Shared-resource primitives built on the event engine.

Two primitives cover everything the models need:

:class:`Resource`
    a counted semaphore with FIFO admission — used for DMA engines,
    LD/ST-queue slots, memory-controller write-queue entries, link
    serialization, and accelerator-IP occupancy;
:class:`Pipe`
    an unbounded FIFO message channel — used for doorbell mailboxes,
    descriptor rings, and pipelined producer/consumer stages.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator

from repro.errors import SimulationError
from repro.sim.engine import Event, Simulator, Timeout, WakeAt


class Resource:
    """FIFO counted resource with ``capacity`` concurrent holders."""

    __slots__ = ("sim", "capacity", "name", "_in_use", "_waiters")

    def __init__(self, sim: Simulator, capacity: int, name: str = ""):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1: {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def available(self) -> int:
        return self.capacity - self._in_use

    def acquire(self) -> Event:
        """Return an event that triggers when a slot is granted."""
        sim = self.sim
        if sim.race_detector is not None:
            # Resources are *ordering points* for the race detector: an
            # admission is logged as a touch, never as a conflict (the
            # grant chain itself provides the happens-before edge).
            sim.race_detector.touch(("resource", self.name or id(self)))
        ev = Event(sim)
        if self._in_use < self.capacity:
            self._in_use += 1
            # Deferred wake is the semantic: the grant resumes the caller
            # through the scheduling queue, after already-queued work.
            sim.call_soon(ev.succeed, None)  # reprolint: disable=PERF401
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        """Release one held slot, admitting the oldest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._waiters:
            # Hand the slot directly to the next waiter: _in_use unchanged.
            self._waiters.popleft().succeed(None)
        else:
            self._in_use -= 1

    def using(self, hold_ns: float) -> Generator[Any, Any, None]:
        """Process helper: acquire, hold for ``hold_ns``, release."""
        yield self.acquire()
        try:
            yield Timeout(hold_ns)
        finally:
            self.release()

    def using_bulk(self, cost_ns: float,
                   count: int) -> Generator[Any, Any, None]:
        """Batched grant: ``count`` back-to-back ``using(cost_ns)`` cycles
        collapsed into one acquire, one wake, one release.

        Bit-exactness contract (``docs/PERFORMANCE.md``): for a *sole
        sequential user* of the resource — nobody else holding or
        waiting for the duration of the batch — a per-line loop of
        ``yield from r.using(cost_ns)`` resumes at ``t += cost_ns`` once
        per cycle, and this helper performs the identical left-to-right
        chain of float additions, then lands on the result with a single
        :class:`~repro.sim.engine.WakeAt`.  Callers are responsible for
        the homogeneity check; when contention is possible they must
        fall back to the per-line path.
        """
        if count <= 0:
            return
        yield self.acquire()
        try:
            end = self.sim.now
            for _ in range(count):
                end += cost_ns
            yield WakeAt(end)
        finally:
            self.release()


class Pipe:
    """Unbounded FIFO channel between processes.

    ``put`` never blocks; ``get`` returns an event that triggers with the
    next item (immediately if one is already queued).  Items are delivered
    in insertion order, one per getter, in getter-arrival order.
    """

    __slots__ = ("sim", "name", "_items", "_getters")

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        rd = self.sim.race_detector
        if rd is not None:
            # Unordered same-timestamp puts deliver in scheduling order —
            # exactly the hazard the detector exists to surface.
            rd.mutate(("pipe", self.name or id(self)))
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        sim = self.sim
        ev = Event(sim)
        if self._items:
            # Deferred delivery keeps get-on-nonempty ordered after work
            # already queued at this timestamp (same contract as Resource).
            sim.call_soon(ev.succeed, self._items.popleft())  # reprolint: disable=PERF401
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking poll: ``(True, item)`` or ``(False, None)``."""
        if self._items:
            return True, self._items.popleft()
        return False, None

    def remove_where(self, pred: Any) -> list[Any]:
        """Remove and return every queued item for which ``pred(item)`` is
        true, preserving the order of the rest.  Items already handed to a
        getter are not affected (used for reaping orphaned doorbell
        entries after a timeout)."""
        removed: list[Any] = []
        kept: Deque[Any] = deque()
        for item in self._items:
            (removed if pred(item) else kept).append(item)
        if removed:
            self._items = kept
        return removed
