r"""Deterministic whole-simulator snapshots: checkpoint once, fork N times.

Every sweep in this repo is a grid of *independent* simulator instances,
and every point of a grid replays the same warm-up — platform
construction, cost-profile calibration, pool prefill — before the swept
parameter even matters.  This module lifts the bulk-fast-forward idea
one level up: run the warm-up **once**, snapshot the entire object
graph, and *fork* each point from the snapshot instead of recomputing
it (the software-simulator analogue of gem5-style checkpointing that
CXL-DMSim and Cohet lean on for full-system CXL campaigns).

A :func:`snapshot` captures, in one pickle payload:

* the **engine** — clock, global sequence counter, and any pending
  heap / timer-wheel / delta entries, so post-restore scheduling
  continues with exactly the ``(time, seq)`` ordering the original
  would have produced (tombstoned cancelled timers included: they must
  still pop at their slot for the clock trajectory to match);
* every object reachable from the root — caches, DCOH state, RNG
  streams (`numpy` generators serialize their full bit-generator
  state), latency recorders (exact and streaming), resilience breaker
  state, doorbells, pools;
* the **ambient stores** — the process-global content-interned
  :data:`~repro.kernel.pagestore.PAGE_STORE` and the
  :data:`~repro.kernel.workcache.WORK_CACHE`, captured in the *same*
  payload so a restored platform's page bytes and the restored store's
  canonical entries are the **same objects** (pickle memoization), and
  refcount accounting stays balanced across forks.

**What cannot be snapshotted:** live generator-based processes.  A
generator frame has no portable serialization, so a checkpoint must be
taken at *quiescence* — after :meth:`Simulator.run` drained the queues
(or with only generator-free callbacks pending, e.g. plain timers and
tombstones).  :class:`~repro.errors.CheckpointError` says so, loudly,
instead of producing a snapshot that silently dropped work.

Determinism contract (pinned by ``tests/sim/test_checkpoint_equiv.py``
exactly the way bulk off/on and wheel off/on are pinned): a point
forked from a warm-up checkpoint produces **byte-identical** output to
a cold run that executed the same warm-up followed by the same point.
``REPRO_CHECKPOINT=0`` (or :func:`set_checkpoint`\ ``(False)``) routes
:func:`~repro.sim.parallel.run_forked_sweep` through the cold path.
"""

from __future__ import annotations

import hashlib
import io
import os
import pickle
import pickletools
from typing import Any, Dict, Optional

from repro.errors import CheckpointError

__all__ = [
    "Checkpoint", "CheckpointStats", "CHECKPOINT_STATS",
    "snapshot", "set_checkpoint", "checkpoint_enabled",
]

#: Fixed pickle protocol: snapshots written by one interpreter must load
#: in any other worker of the same sweep, and the payload digest must
#: not depend on which Python minor version happened to run the warm-up.
PICKLE_PROTOCOL = 4

_forced: Optional[bool] = None


def set_checkpoint(enabled: Optional[bool]) -> None:
    """Force checkpoint-fork sweeps on/off; ``None`` defers to the
    ``REPRO_CHECKPOINT`` environment variable (default: on)."""
    global _forced
    _forced = enabled


def checkpoint_enabled() -> bool:
    """Whether :func:`~repro.sim.parallel.run_forked_sweep` forks points
    from a warm-up snapshot (on) or replays the warm-up per point (off).
    Outputs are byte-identical either way; only wall-clock differs."""
    if _forced is not None:
        return _forced
    return os.environ.get("REPRO_CHECKPOINT", "1").lower() not in (
        "0", "false", "off", "cold")


class CheckpointStats:
    """Process-global checkpoint telemetry surfaced by ``repro speed``."""

    __slots__ = ("snapshots", "restores", "cold_warmups", "snapshot_bytes",
                 "largest_snapshot_bytes")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.snapshots = 0
        self.restores = 0
        self.cold_warmups = 0
        self.snapshot_bytes = 0
        self.largest_snapshot_bytes = 0

    def snapshot(self) -> dict:
        return {
            "snapshots": self.snapshots,
            "restores": self.restores,
            "cold_warmups": self.cold_warmups,
            "snapshot_bytes": self.snapshot_bytes,
            "largest_snapshot_bytes": self.largest_snapshot_bytes,
        }


CHECKPOINT_STATS = CheckpointStats()

# Persisted-snapshot header: refuse to restore a payload written under a
# different schema instead of failing somewhere deep inside pickle.
_FILE_MAGIC = b"repro-checkpoint/1\n"


def _ambient_state() -> Dict[str, Any]:
    """Capture the process-global stores a restored run depends on.

    The page store is *load-bearing*: a restored platform releases the
    page references its warm-up interned, so every fork must start from
    the store state the warm-up left behind or refcounts go negative.
    The work cache is pure memoization (correctness never depends on
    its contents) but is carried so a fork starts exactly as warm as
    the cold run would be at the same point.
    """
    from repro.kernel.pagestore import PAGE_STORE
    from repro.kernel.workcache import WORK_CACHE
    return {
        "pagestore": PAGE_STORE.state(),
        "workcache": WORK_CACHE.state(),
    }


def _install_ambient(state: Dict[str, Any]) -> None:
    from repro.kernel.pagestore import PAGE_STORE
    from repro.kernel.workcache import WORK_CACHE
    PAGE_STORE.install_state(state["pagestore"])
    WORK_CACHE.install_state(state["workcache"])


def _find_sim(root: Any) -> Any:
    """Best-effort discovery of the Simulator inside ``root`` (for
    quiescence diagnostics and snapshot metadata)."""
    from repro.sim.engine import Simulator
    if isinstance(root, Simulator):
        return root
    sim = getattr(root, "sim", None)
    if sim is not None and isinstance(sim, Simulator):
        return sim
    if isinstance(root, (tuple, list)):
        for item in root:
            found = _find_sim(item)
            if found is not None:
                return found
    return None


class Checkpoint:
    """One immutable snapshot; every :meth:`restore` is an independent
    fork.

    The payload is opaque pickled bytes; ``digest`` is its SHA-256 —
    two checkpoints of identical state taken in one process share a
    digest, which is what the experiment cache and the fork telemetry
    key on.  A Checkpoint is itself picklable, so parallel sweeps ship
    it to pool workers like any other argument.
    """

    __slots__ = ("payload", "digest", "label", "now", "seq", "pending")

    def __init__(self, payload: bytes, label: str = "",
                 now: Optional[float] = None, seq: Optional[int] = None,
                 pending: int = 0):
        self.payload = payload
        self.digest = hashlib.sha256(payload).hexdigest()
        self.label = label
        self.now = now
        self.seq = seq
        self.pending = pending

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Checkpoint({self.label or '<unnamed>'}, "
                f"{len(self.payload):,d} B, digest {self.digest[:12]}, "
                f"now={self.now}, seq={self.seq}, pending={self.pending})")

    def __reduce__(self):
        return (_rebuild_checkpoint,
                (self.payload, self.label, self.now, self.seq, self.pending))

    # -- forking --------------------------------------------------------

    def restore(self, install_ambient: bool = True) -> Any:
        """Materialize an independent copy of the snapshotted root.

        Each call is a fresh fork: restored objects share nothing with
        the original graph or with other forks.  With
        ``install_ambient`` (the default) the process-global page store
        and work cache are reset to their snapshotted state first, so
        the fork's intern/release accounting balances exactly as the
        warm-up left it — a sweep worker owns its process's ambient
        stores for the duration of the point.
        """
        try:
            root, ambient = pickle.loads(self.payload)
        except Exception as exc:
            raise CheckpointError(
                f"checkpoint {self.label!r} failed to restore: {exc!r} "
                "(corrupt payload, or a module moved since the snapshot "
                "was taken)") from exc
        if install_ambient:
            _install_ambient(ambient)
        CHECKPOINT_STATS.restores += 1
        return root

    # -- persistence ----------------------------------------------------

    def save(self, path: str) -> None:
        """Write the snapshot to ``path`` (header + payload)."""
        meta = {"label": self.label, "now": self.now, "seq": self.seq,
                "pending": self.pending}
        with open(path, "wb") as fh:
            fh.write(_FILE_MAGIC)
            pickle.dump(meta, fh, protocol=PICKLE_PROTOCOL)
            fh.write(self.payload)

    @classmethod
    def load(cls, path: str) -> "Checkpoint":
        """Read a snapshot previously written by :meth:`save`."""
        with open(path, "rb") as fh:
            magic = fh.read(len(_FILE_MAGIC))
            if magic != _FILE_MAGIC:
                raise CheckpointError(
                    f"{path}: not a repro checkpoint (bad magic "
                    f"{magic[:20]!r})")
            meta = pickle.load(fh)
            payload = fh.read()
        return cls(payload, label=meta["label"], now=meta["now"],
                   seq=meta["seq"], pending=meta["pending"])


def _rebuild_checkpoint(payload: bytes, label: str, now, seq,
                        pending: int) -> Checkpoint:
    return Checkpoint(payload, label=label, now=now, seq=seq,
                      pending=pending)


def snapshot(root: Any, label: str = "",
             include_ambient: bool = True) -> Checkpoint:
    """Snapshot ``root`` (a Platform, a Simulator, or any tuple of
    simulation objects sharing one Simulator) into a :class:`Checkpoint`.

    Raises :class:`~repro.errors.CheckpointError` when the graph holds
    live generator-based processes (or other unpicklable callbacks) —
    run the simulator to quiescence first.  Pending *generator-free*
    work (plain timers, ``Event.succeed`` deadlines, cancelled-timer
    tombstones) is carried and fires post-restore at exactly its
    original ``(time, seq)`` slot.
    """
    sim = _find_sim(root)
    ambient = _ambient_state() if include_ambient else {
        "pagestore": None, "workcache": None}
    try:
        payload = pickle.dumps((root, ambient), protocol=PICKLE_PROTOCOL)
    except (TypeError, AttributeError, pickle.PicklingError) as exc:
        pending = sim.pending_count if sim is not None else -1
        raise CheckpointError(
            f"cannot checkpoint {label or type(root).__name__!r}: {exc} — "
            "snapshots require a quiescent simulator (no live "
            "generator-based processes and no unpicklable callbacks in "
            f"the queues; {pending} entr(y/ies) pending).  Run the "
            "warm-up to completion (sim.run()) before checkpointing, "
            "and spawn the point's processes after restore."
        ) from exc
    stats = CHECKPOINT_STATS
    stats.snapshots += 1
    stats.snapshot_bytes += len(payload)
    if len(payload) > stats.largest_snapshot_bytes:
        stats.largest_snapshot_bytes = len(payload)
    return Checkpoint(
        payload, label=label,
        now=sim.now if sim is not None else None,
        seq=sim._seq if sim is not None else None,
        pending=sim.pending_count if sim is not None else 0)


def payload_summary(cp: Checkpoint, top: int = 8) -> str:
    """Operator-facing breakdown of what dominates a snapshot payload
    (``pickletools`` opcode walk; debugging aid, never on a hot path)."""
    counts: Dict[str, int] = {}
    last_global = "<root>"
    for opcode, arg, _pos in pickletools.genops(io.BytesIO(cp.payload)):
        if opcode.name in ("GLOBAL", "STACK_GLOBAL") and arg:
            last_global = str(arg).replace("\n", ".").replace(" ", ".")
        elif opcode.name in ("BINBYTES", "SHORT_BINBYTES", "BINBYTES8",
                             "BINUNICODE", "SHORT_BINUNICODE"):
            counts[last_global] = counts.get(last_global, 0) + len(arg or b"")
    rows = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))[:top]
    lines = [f"checkpoint {cp.label or '<unnamed>'}: "
             f"{len(cp.payload):,d} B total"]
    for name, nbytes in rows:
        lines.append(f"  {nbytes:>10,d} B near {name}")
    return "\n".join(lines)
