"""The discrete-event engine: simulator clock, events, and processes."""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Any, Callable, Generator, Iterable, Optional

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.races import RaceDetector

ProcessGen = Generator[Any, Any, Any]


class Timeout:
    """Command yielded by a process to suspend for ``delay`` ns."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        self.delay = float(delay)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Timeout({self.delay!r})"


class _Failure:
    """Internal envelope carrying a failed event's exception to waiters."""

    __slots__ = ("exc",)

    def __init__(self, exc: BaseException):
        self.exc = exc


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; calling :meth:`succeed` triggers it exactly
    once, delivering ``value`` to every waiter.  Waiting on an already
    triggered event resumes the waiter immediately (at the current time).

    Calling :meth:`fail` instead triggers the event *with an exception*:
    every process waiting at a ``yield`` has the exception thrown into it
    at that point, where ordinary ``try/except`` handles it.  A failure
    nobody waits on raises a :class:`SimulationError` diagnostic out of
    :meth:`Simulator.run` so injected faults can never vanish silently;
    :meth:`defuse` suppresses the diagnostic for callers that inspect
    :attr:`exc` out-of-band.
    """

    __slots__ = ("sim", "name", "_value", "_triggered", "_callbacks",
                 "_exc", "_defused")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self._value: Any = None
        self._triggered = False
        self._callbacks: list[Callable[[Any], None]] = []
        self._exc: Optional[BaseException] = None
        self._defused = False

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def failed(self) -> bool:
        return self._triggered and self._exc is not None

    @property
    def exc(self) -> Optional[BaseException]:
        """The failure exception, or None for pending/succeeded events."""
        return self._exc

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event value read before trigger")
        if self._exc is not None:
            raise self._exc
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        if self._triggered:
            raise SimulationError("event triggered twice")
        self._triggered = True
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            self.sim.call_soon(cb, value)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with ``exc``; waiters have it thrown at their
        ``yield``."""
        if self._triggered:
            raise SimulationError("event triggered twice")
        if not isinstance(exc, BaseException):
            raise SimulationError(f"Event.fail needs an exception, "
                                  f"got {exc!r}")
        self._triggered = True
        self._exc = exc
        callbacks, self._callbacks = self._callbacks, []
        if callbacks:
            self._defused = True
            failure = _Failure(exc)
            for cb in callbacks:
                self.sim.call_soon(cb, failure)
        else:
            # Nobody is waiting: raise a diagnostic unless a waiter (or a
            # defuse) arrives within the current delta-cycle.
            self.sim.call_soon(self._unhandled_check)
        return self

    def defuse(self) -> "Event":
        """Mark this event's (current or future) failure as handled
        out-of-band, suppressing the uncaught-failure diagnostic."""
        self._defused = True
        return self

    def _unhandled_check(self) -> None:
        if not self._defused:
            where = self.name or "event"
            raise SimulationError(
                f"uncaught failure in {where}: {self._exc!r}"
            ) from self._exc

    def add_callback(self, cb: Callable[[Any], None]) -> None:
        """Run ``cb(value)`` when (or immediately-soon if already)
        triggered."""
        if self._triggered:
            if self._exc is not None:
                self._defused = True
                self.sim.call_soon(cb, _Failure(self._exc))
            else:
                self.sim.call_soon(cb, self._value)
        else:
            self._callbacks.append(cb)


class Process:
    """A running generator-based process.

    Created via :meth:`Simulator.spawn`.  A ``Process`` is itself waitable:
    yielding it from another process suspends the waiter until this process
    returns, delivering the return value.
    """

    __slots__ = ("sim", "name", "done", "_stack")

    def __init__(self, sim: "Simulator", gen: ProcessGen, name: str = ""):
        self.sim = sim
        self.name = name or getattr(gen, "__name__", "process")
        self.done = Event(sim, name=f"process {self.name!r}")
        # Explicit call stack of generators: yielding a generator pushes it,
        # StopIteration pops it and sends the return value to the caller.
        self._stack: list[ProcessGen] = [gen]

    @property
    def finished(self) -> bool:
        return self.done.triggered

    @property
    def failed(self) -> bool:
        return self.done.failed

    @property
    def result(self) -> Any:
        """The return value; re-raises the exception for a failed process."""
        return self.done.value

    # -- driving ----------------------------------------------------------

    def _step(self, sent_value: Any) -> None:
        """Advance the top generator with ``sent_value`` and interpret the
        command it yields.  A :class:`_Failure` is thrown into the
        generator at its ``yield``; an exception the generator does not
        handle unwinds the explicit stack and ultimately fails
        :attr:`done` (failing the waiters of this process in turn)."""
        while True:
            gen = self._stack[-1]
            try:
                if type(sent_value) is _Failure:
                    exc = sent_value.exc
                    sent_value = None
                    command = gen.throw(exc)
                else:
                    command = gen.send(sent_value)
            except StopIteration as stop:
                self._stack.pop()
                if not self._stack:
                    self.done.succeed(stop.value)
                    return
                sent_value = stop.value
                continue
            except Exception as exc:     # noqa: BLE001 - fault propagation
                self._stack.pop()
                if not self._stack:
                    self.done.fail(exc)
                    return
                sent_value = _Failure(exc)
                continue
            self._dispatch(command)
            return

    def _dispatch(self, command: Any) -> None:
        if isinstance(command, Timeout):
            self.sim.schedule(command.delay, self._step, None)
        elif isinstance(command, Event):
            command.add_callback(self._step)
        elif isinstance(command, Process):
            command.done.add_callback(self._step)
        elif _is_generator(command):
            self._stack.append(command)
            self.sim.call_soon(self._step, None)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported command: "
                f"{command!r}"
            )


def _is_generator(obj: Any) -> bool:
    return hasattr(obj, "send") and hasattr(obj, "throw")


class Simulator:
    """Deterministic event loop.

    Events at equal timestamps fire in scheduling order.  Time is a float
    in nanoseconds and never decreases.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._heap: list[tuple[float, int, Callable[..., None], tuple]] = []
        # Sanitizer hooks (see repro.lint.races): when armed, the engine
        # feeds the detector one causal edge per scheduled callback and
        # exposes which task/process is currently executing.  Disarmed
        # (the default), the only cost is an `is None` test per schedule.
        self.race_detector: Optional["RaceDetector"] = None
        self.current_task = 0
        self.current_actor: Any = None

    @property
    def now(self) -> float:
        """Current simulated time in nanoseconds."""
        return self._now

    # -- scheduling -------------------------------------------------------

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` ns of simulated time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay}")
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, self._seq, fn, args))
        if self.race_detector is not None:
            self.race_detector.note_schedule(self._seq, self.current_task)

    def call_soon(self, fn: Callable[..., None], *args: Any) -> None:
        """Run ``fn(*args)`` at the current time, after already queued
        same-time work."""
        self.schedule(0.0, fn, *args)

    def event(self) -> Event:
        """Create a fresh pending :class:`Event`."""
        return Event(self)

    def timeout_event(self, delay: float, value: Any = None) -> Event:
        """An event that triggers ``delay`` ns from now."""
        ev = Event(self)
        self.schedule(delay, ev.succeed, value)
        return ev

    def spawn(self, gen: ProcessGen, name: str = "") -> Process:
        """Start a process; it takes its first step at the current time."""
        proc = Process(self, gen, name)
        self.call_soon(proc._step, None)
        return proc

    # -- running ----------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Execute events until the heap drains or ``until`` is reached.

        Returns the final simulated time.  When ``until`` is given, the
        clock is advanced exactly to ``until`` even if the last event fired
        earlier.
        """
        while self._heap:
            at, seq, fn, args = self._heap[0]
            if until is not None and at > until:
                break
            heapq.heappop(self._heap)
            self._now = at
            if self.race_detector is not None:
                self.current_task = seq
                owner = getattr(fn, "__self__", None)
                self.current_actor = owner if isinstance(owner, Process) \
                    else fn
            fn(*args)
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def run_process(self, gen: ProcessGen, name: str = "") -> Any:
        """Spawn ``gen``, run the simulation until it finishes, and return
        its result.  Raises if the heap drains first (deadlock), and
        re-raises the process's own exception if it failed."""
        proc = self.spawn(gen, name)
        # The caller reads `result` below, which re-raises failures, so
        # the in-loop uncaught-failure diagnostic would be redundant.
        proc.done.defuse()
        self.run()
        if not proc.finished:
            raise SimulationError(
                f"simulation deadlocked: process {proc.name!r} never finished"
            )
        return proc.result

    def all_of(self, events: Iterable[Event]) -> Event:
        """An event that triggers once every input event has triggered,
        with the list of their values (input order preserved).

        If any input *fails*, the aggregate fails immediately with that
        exception (first failure wins; later outcomes are absorbed)."""
        events = list(events)
        done = Event(self, name="all_of")
        if not events:
            self.call_soon(done.succeed, [])
            return done
        remaining = [len(events)]
        values: list[Any] = [None] * len(events)

        def make_cb(i: int) -> Callable[[Any], None]:
            def cb(value: Any) -> None:
                if done.triggered:
                    return                 # a sibling already failed it
                if type(value) is _Failure:
                    done.fail(value.exc)
                    return
                values[i] = value
                remaining[0] -= 1
                if remaining[0] == 0:
                    done.succeed(list(values))

            return cb

        for i, ev in enumerate(events):
            ev.add_callback(make_cb(i))
        return done

    def any_of(self, events: Iterable[Event]) -> Event:
        """An event that triggers with ``(index, value)`` of the first
        input to trigger (useful for racing a completion against a
        timeout).  If the first outcome is a failure, the aggregate fails
        with it; later outcomes are absorbed either way."""
        events = list(events)
        if not events:
            raise SimulationError("any_of needs at least one event")
        done = Event(self, name="any_of")

        def make_cb(i: int) -> Callable[[Any], None]:
            def cb(value: Any) -> None:
                if done.triggered:
                    return
                if type(value) is _Failure:
                    done.fail(value.exc)
                    return
                done.succeed((i, value))

            return cb

        for i, ev in enumerate(events):
            ev.add_callback(make_cb(i))
        return done
