"""The discrete-event engine: simulator clock, events, and processes."""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import SimulationError

ProcessGen = Generator[Any, Any, Any]


class Timeout:
    """Command yielded by a process to suspend for ``delay`` ns."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        self.delay = float(delay)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Timeout({self.delay!r})"


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; calling :meth:`succeed` triggers it exactly
    once, delivering ``value`` to every waiter.  Waiting on an already
    triggered event resumes the waiter immediately (at the current time).
    """

    __slots__ = ("sim", "_value", "_triggered", "_callbacks")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._value: Any = None
        self._triggered = False
        self._callbacks: list[Callable[[Any], None]] = []

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event value read before trigger")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        if self._triggered:
            raise SimulationError("event triggered twice")
        self._triggered = True
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            self.sim.call_soon(cb, value)
        return self

    def add_callback(self, cb: Callable[[Any], None]) -> None:
        """Run ``cb(value)`` when (or immediately-soon if already)
        triggered."""
        if self._triggered:
            self.sim.call_soon(cb, self._value)
        else:
            self._callbacks.append(cb)


class Process:
    """A running generator-based process.

    Created via :meth:`Simulator.spawn`.  A ``Process`` is itself waitable:
    yielding it from another process suspends the waiter until this process
    returns, delivering the return value.
    """

    __slots__ = ("sim", "name", "done", "_stack")

    def __init__(self, sim: "Simulator", gen: ProcessGen, name: str = ""):
        self.sim = sim
        self.name = name or getattr(gen, "__name__", "process")
        self.done = Event(sim)
        # Explicit call stack of generators: yielding a generator pushes it,
        # StopIteration pops it and sends the return value to the caller.
        self._stack: list[ProcessGen] = [gen]

    @property
    def finished(self) -> bool:
        return self.done.triggered

    @property
    def result(self) -> Any:
        return self.done.value

    # -- driving ----------------------------------------------------------

    def _step(self, sent_value: Any) -> None:
        """Advance the top generator with ``sent_value`` and interpret the
        command it yields."""
        while True:
            gen = self._stack[-1]
            try:
                command = gen.send(sent_value)
            except StopIteration as stop:
                self._stack.pop()
                if not self._stack:
                    self.done.succeed(stop.value)
                    return
                sent_value = stop.value
                continue
            self._dispatch(command)
            return

    def _dispatch(self, command: Any) -> None:
        if isinstance(command, Timeout):
            self.sim.schedule(command.delay, self._step, None)
        elif isinstance(command, Event):
            command.add_callback(self._step)
        elif isinstance(command, Process):
            command.done.add_callback(self._step)
        elif _is_generator(command):
            self._stack.append(command)
            self.sim.call_soon(self._step, None)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported command: "
                f"{command!r}"
            )


def _is_generator(obj: Any) -> bool:
    return hasattr(obj, "send") and hasattr(obj, "throw")


class Simulator:
    """Deterministic event loop.

    Events at equal timestamps fire in scheduling order.  Time is a float
    in nanoseconds and never decreases.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._heap: list[tuple[float, int, Callable[..., None], tuple]] = []

    @property
    def now(self) -> float:
        """Current simulated time in nanoseconds."""
        return self._now

    # -- scheduling -------------------------------------------------------

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` ns of simulated time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay}")
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, self._seq, fn, args))

    def call_soon(self, fn: Callable[..., None], *args: Any) -> None:
        """Run ``fn(*args)`` at the current time, after already queued
        same-time work."""
        self.schedule(0.0, fn, *args)

    def event(self) -> Event:
        """Create a fresh pending :class:`Event`."""
        return Event(self)

    def timeout_event(self, delay: float, value: Any = None) -> Event:
        """An event that triggers ``delay`` ns from now."""
        ev = Event(self)
        self.schedule(delay, ev.succeed, value)
        return ev

    def spawn(self, gen: ProcessGen, name: str = "") -> Process:
        """Start a process; it takes its first step at the current time."""
        proc = Process(self, gen, name)
        self.call_soon(proc._step, None)
        return proc

    # -- running ----------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Execute events until the heap drains or ``until`` is reached.

        Returns the final simulated time.  When ``until`` is given, the
        clock is advanced exactly to ``until`` even if the last event fired
        earlier.
        """
        while self._heap:
            at, __, fn, args = self._heap[0]
            if until is not None and at > until:
                break
            heapq.heappop(self._heap)
            self._now = at
            fn(*args)
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def run_process(self, gen: ProcessGen, name: str = "") -> Any:
        """Spawn ``gen``, run the simulation until it finishes, and return
        its result.  Raises if the heap drains first (deadlock)."""
        proc = self.spawn(gen, name)
        self.run()
        if not proc.finished:
            raise SimulationError(
                f"simulation deadlocked: process {proc.name!r} never finished"
            )
        return proc.result

    def all_of(self, events: Iterable[Event]) -> Event:
        """An event that triggers once every input event has triggered,
        with the list of their values (input order preserved)."""
        events = list(events)
        done = Event(self)
        if not events:
            self.call_soon(done.succeed, [])
            return done
        remaining = [len(events)]
        values: list[Any] = [None] * len(events)

        def make_cb(i: int) -> Callable[[Any], None]:
            def cb(value: Any) -> None:
                values[i] = value
                remaining[0] -= 1
                if remaining[0] == 0:
                    done.succeed(list(values))

            return cb

        for i, ev in enumerate(events):
            ev.add_callback(make_cb(i))
        return done
