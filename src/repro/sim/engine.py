"""The discrete-event engine: simulator clock, events, and processes.

Hot-path design (see docs/PERFORMANCE.md): zero-delay work — every
``call_soon``, event trigger, and process hand-off — bypasses the heap
and lands on a FIFO *delta queue* drained at the current timestamp.
Both queues share one monotone sequence counter and :meth:`Simulator.run`
merges them by it, so the documented contract — *equal timestamps fire
in scheduling order* — is preserved exactly; the delta queue is a
faster carrier for the same order, not a new ordering domain
(pinned by ``tests/sim/test_engine_order.py``).
"""

from __future__ import annotations

import heapq
from types import GeneratorType
from typing import TYPE_CHECKING, Any, Callable, Deque, Generator, Iterable, Optional

from collections import deque

from repro.errors import SimulationError
from repro.sim.timers import (WHEEL_STATS, Timer, TimerWheel,
                              timers_reap_enabled, wheel_enabled)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.races import RaceDetector

ProcessGen = Generator[Any, Any, Any]

# Triggered events hand their (cleared) callback lists back to the
# simulator for reuse; the cap bounds the memory kept across bursts.
_CB_POOL_MAX = 128

# Deadlines closer than this go to the wheel's exact-time near level;
# farther ones take its hierarchy (see repro.sim.timers).
_NEAR_SPAN_NS = 4096.0

# Shared args tuple for the ubiquitous `fn(None)` resume entries.
_NONE_ARGS = (None,)

_heappush = heapq.heappush


class Timeout:
    """Command yielded by a process to suspend for ``delay`` ns."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        self.delay = float(delay)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Timeout({self.delay!r})"


class WakeAt:
    """Command yielded by a process to suspend until the *absolute*
    simulated time ``at`` (ns).

    ``Timeout`` advances the clock by ``now + delay`` — one float
    addition chosen by the engine.  Bulk fast-forward paths
    (``docs/PERFORMANCE.md``) instead compute an end-of-train timestamp
    with exactly the same sequence of additions the per-line path would
    have performed, and need to land on *that* float bit-for-bit;
    ``WakeAt`` schedules at the precomputed absolute time with no
    further arithmetic.  ``at`` equal to the current time resumes via
    the delta queue; a past timestamp is an error.
    """

    __slots__ = ("at",)

    def __init__(self, at: float):
        self.at = float(at)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WakeAt({self.at!r})"


class _Failure:
    """Internal envelope carrying a failed event's exception to waiters."""

    __slots__ = ("exc",)

    def __init__(self, exc: BaseException):
        self.exc = exc


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; calling :meth:`succeed` triggers it exactly
    once, delivering ``value`` to every waiter.  Waiting on an already
    triggered event resumes the waiter immediately (at the current time).

    Calling :meth:`fail` instead triggers the event *with an exception*:
    every process waiting at a ``yield`` has the exception thrown into it
    at that point, where ordinary ``try/except`` handles it.  A failure
    nobody waits on raises a :class:`SimulationError` diagnostic out of
    :meth:`Simulator.run` so injected faults can never vanish silently;
    :meth:`defuse` suppresses the diagnostic for callers that inspect
    :attr:`exc` out-of-band.

    Callback storage is adaptive: ``None`` (no waiter), a bare callable
    (exactly one waiter — the overwhelmingly common case), or a list
    recycled through the simulator's pool (multiple waiters).  Fire-and-
    forget and single-waiter events never allocate a list at all.
    """

    __slots__ = ("sim", "name", "_value", "_triggered", "_callbacks",
                 "_exc", "_defused")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self._value: Any = None
        self._triggered = False
        # None | a single callable | a pooled list of callables.
        self._callbacks: Any = None
        self._exc: Optional[BaseException] = None
        self._defused = False

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def failed(self) -> bool:
        return self._triggered and self._exc is not None

    @property
    def exc(self) -> Optional[BaseException]:
        """The failure exception, or None for pending/succeeded events."""
        return self._exc

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event value read before trigger")
        if self._exc is not None:
            raise self._exc
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        if self._triggered:
            raise SimulationError("event triggered twice")
        self._triggered = True
        self._value = value
        callbacks = self._callbacks
        if callbacks is not None:
            self._callbacks = None
            sim = self.sim
            if type(callbacks) is not list:
                # Single waiter: inlined call_soon (the hot path).
                if sim.race_detector is None:
                    sim._seq = seq = sim._seq + 1
                    sim._delta.append((seq, callbacks, (value,)))
                else:
                    sim.call_soon(callbacks, value)
            else:
                if sim.race_detector is None:
                    # Inline the call_soon loop: one shared seq bump per
                    # callback, straight onto the delta queue.
                    delta = sim._delta
                    seq = sim._seq
                    for cb in callbacks:
                        seq += 1
                        delta.append((seq, cb, (value,)))
                    sim._seq = seq
                else:
                    for cb in callbacks:
                        sim.call_soon(cb, value)
                callbacks.clear()
                pool = sim._cb_pool
                if len(pool) < _CB_POOL_MAX:
                    pool.append(callbacks)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with ``exc``; waiters have it thrown at their
        ``yield``."""
        if self._triggered:
            raise SimulationError("event triggered twice")
        if not isinstance(exc, BaseException):
            raise SimulationError(f"Event.fail needs an exception, "
                                  f"got {exc!r}")
        self._triggered = True
        self._exc = exc
        callbacks = self._callbacks
        self._callbacks = None
        sim = self.sim
        if callbacks is None:
            # Nobody is waiting: raise a diagnostic unless a waiter (or a
            # defuse) arrives within the current delta-cycle.
            sim.call_soon(self._unhandled_check)
        elif type(callbacks) is not list:
            self._defused = True
            sim.call_soon(callbacks, _Failure(exc))
        else:
            self._defused = True
            failure = _Failure(exc)
            for cb in callbacks:
                sim.call_soon(cb, failure)
            callbacks.clear()
            pool = sim._cb_pool
            if len(pool) < _CB_POOL_MAX:
                pool.append(callbacks)
        return self

    def defuse(self) -> "Event":
        """Mark this event's (current or future) failure as handled
        out-of-band, suppressing the uncaught-failure diagnostic."""
        self._defused = True
        return self

    def _unhandled_check(self) -> None:
        if not self._defused:
            where = self.name or "event"
            raise SimulationError(
                f"uncaught failure in {where}: {self._exc!r}"
            ) from self._exc

    def add_callback(self, cb: Callable[[Any], None]) -> None:
        """Run ``cb(value)`` when (or immediately-soon if already)
        triggered."""
        if self._triggered:
            if self._exc is not None:
                self._defused = True
                self.sim.call_soon(cb, _Failure(self._exc))
            else:
                self.sim.call_soon(cb, self._value)
        else:
            callbacks = self._callbacks
            if callbacks is None:
                self._callbacks = cb          # first waiter: stored bare
            elif type(callbacks) is list:
                callbacks.append(cb)
            else:
                # Second waiter: promote to a (pooled) list.
                pool = self.sim._cb_pool
                promoted = pool.pop() if pool else []
                promoted.append(callbacks)
                promoted.append(cb)
                self._callbacks = promoted


class Process:
    """A running generator-based process.

    Created via :meth:`Simulator.spawn`.  A ``Process`` is itself waitable:
    yielding it from another process suspends the waiter until this process
    returns, delivering the return value.
    """

    __slots__ = ("sim", "name", "done", "_stack")

    def __init__(self, sim: "Simulator", gen: ProcessGen, name: str = ""):
        self.sim = sim
        self.name = name or getattr(gen, "__name__", "process")
        self.done = Event(sim, name=f"process {self.name!r}")
        # Explicit call stack of generators: yielding a generator pushes it,
        # StopIteration pops it and sends the return value to the caller.
        self._stack: list[ProcessGen] = [gen]

    @property
    def finished(self) -> bool:
        return self.done.triggered

    @property
    def failed(self) -> bool:
        return self.done.failed

    @property
    def result(self) -> Any:
        """The return value; re-raises the exception for a failed process."""
        return self.done.value

    # -- driving ----------------------------------------------------------

    def _step(self, sent_value: Any) -> None:
        """Advance the top generator with ``sent_value`` and interpret the
        command it yields.  A :class:`_Failure` is thrown into the
        generator at its ``yield``; an exception the generator does not
        handle unwinds the explicit stack and ultimately fails
        :attr:`done` (failing the waiters of this process in turn)."""
        stack = self._stack
        while True:
            gen = stack[-1]
            try:
                if type(sent_value) is _Failure:
                    exc = sent_value.exc
                    sent_value = None
                    command = gen.throw(exc)
                else:
                    command = gen.send(sent_value)
            except StopIteration as stop:
                stack.pop()
                if not stack:
                    self.done.succeed(stop.value)
                    return
                sent_value = stop.value
                continue
            except Exception as exc:     # noqa: BLE001 - fault propagation
                stack.pop()
                if not stack:
                    self.done.fail(exc)
                    return
                sent_value = _Failure(exc)
                continue
            # Dispatch inline, hottest commands first: a Timeout is the
            # single most common yield across every model, a plain Event
            # the second; exact-type tests beat isinstance chains and the
            # slow path keeps subclasses working.  The near-window wheel
            # insert is flattened right here — dict hit + append — since
            # process timeouts dominate every model's schedule traffic.
            cls = command.__class__
            if cls is Timeout:
                sim = self.sim
                delay = command.delay
                wheel = sim._wheel
                if wheel is not None and 0.0 < delay < _NEAR_SPAN_NS:
                    t = sim._now + delay
                    sim._seq = seq = sim._seq + 1
                    near = wheel.near
                    b = near.get(t)
                    if b is None:
                        near[t] = [(t, seq, self._step, _NONE_ARGS)]
                        _heappush(wheel.near_times, t)
                    else:
                        b.append((t, seq, self._step, _NONE_ARGS))
                    wheel.count += 1
                    if sim.race_detector is not None:
                        sim.race_detector.note_schedule(seq,
                                                        sim.current_task)
                else:
                    sim.schedule(delay, self._step, None)
            elif cls is Event:
                command.add_callback(self._step)
            elif cls is WakeAt:
                self.sim.schedule_at(command.at, self._step, None)
            else:
                self._dispatch(command)
            return

    def _dispatch(self, command: Any) -> None:
        if type(command) is GeneratorType:
            self._stack.append(command)
            self.sim.call_soon(self._step, None)
        elif isinstance(command, Timeout):
            self.sim.schedule(command.delay, self._step, None)
        elif isinstance(command, Event):
            command.add_callback(self._step)
        elif isinstance(command, WakeAt):
            self.sim.schedule_at(command.at, self._step, None)
        elif isinstance(command, Process):
            command.done.add_callback(self._step)
        elif _is_generator(command):
            self._stack.append(command)
            self.sim.call_soon(self._step, None)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported command: "
                f"{command!r}"
            )


def _is_generator(obj: Any) -> bool:
    """Duck-typed fallback for generator-shaped objects that are not
    ``GeneratorType`` (e.g. instrumented wrappers); the common case is
    handled by the exact type check in :meth:`Process._dispatch`."""
    return hasattr(obj, "send") and hasattr(obj, "throw")


class Simulator:
    """Deterministic event loop.

    Events at equal timestamps fire in scheduling order.  Time is a float
    in nanoseconds and never decreases.

    Two queues carry the work: a heap for future timestamps and a FIFO
    *delta queue* for zero-delay callbacks at the current timestamp.
    Every entry carries a globally monotone sequence number and the run
    loop merges the queues by it, so queue placement is invisible to the
    ordering contract.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._heap: list[tuple[float, int, Callable[..., None], tuple]] = []
        # Timer carrier: a hierarchical wheel (repro.sim.timers) unless
        # REPRO_TIMERS=heap pins the classic heap.  Sampled once per
        # simulator; both carriers share _seq, so firing order — and
        # therefore every output byte — is identical either way.
        self._wheel: Optional[TimerWheel] = \
            TimerWheel() if wheel_enabled() else None
        # Tombstone reaping (repro.sim.timers): cancelled timers register
        # their carrier key so compaction can drop them instead of
        # replaying the pop.  The heap carrier keeps its dead-set and
        # phantom horizon here; the wheel carries its own.
        self._reap = timers_reap_enabled()
        self._heap_dead: set = set()
        self._dead_horizon = 0.0
        # Zero-delay callbacks at the current time, FIFO in seq order.
        # Invariant: entries are only drained at the timestamp they were
        # appended at — time cannot advance while the queue is non-empty.
        self._delta: Deque[tuple[int, Callable[..., None], tuple]] = deque()
        # Recycled Event callback lists (see Event.add_callback).
        self._cb_pool: list[list[Callable[[Any], None]]] = []
        # Sanitizer hooks (see repro.lint.races): when armed, the engine
        # feeds the detector one causal edge per scheduled callback and
        # exposes which task/process is currently executing.  Disarmed
        # (the default), the only cost is an `is None` test per schedule.
        self.race_detector: Optional["RaceDetector"] = None
        self.current_task = 0
        self.current_actor: Any = None

    @property
    def now(self) -> float:
        """Current simulated time in nanoseconds."""
        return self._now

    # -- checkpointing ----------------------------------------------------

    @property
    def pending_count(self) -> int:
        """Live entries across all queues (heap/wheel/delta), cancelled-
        timer tombstones included."""
        n = len(self._heap) + len(self._delta)
        wheel = self._wheel
        if wheel is not None:
            n += len(wheel)
        return n

    @property
    def quiescent(self) -> bool:
        """True when every queue has drained — the state :meth:`run`
        leaves behind (absent an ``until`` cutoff), and the state
        :meth:`checkpoint` wants: nothing pending means no live
        generator frames can be waiting in the queues."""
        return self.pending_count == 0

    def checkpoint(self, root: Any = None, label: str = "") -> Any:
        """Snapshot ``root`` (default: this simulator alone) and
        everything reachable from it into an immutable, forkable
        :class:`~repro.sim.checkpoint.Checkpoint`.

        Pass the object graph that owns this simulator (a Platform, or
        a tuple of platform + workload objects) as ``root`` — restoring
        the checkpoint then yields an independent copy of the whole
        graph, clock and ``(time, seq)`` ordering preserved, ambient
        page-store/work-cache state included.  Raises
        :class:`~repro.errors.CheckpointError` if the graph holds live
        generator-based processes (run to quiescence first).
        """
        from repro.sim.checkpoint import snapshot
        return snapshot(self if root is None else root, label=label)

    @staticmethod
    def restore(cp: Any) -> Any:
        """Fork an independent copy of a checkpointed graph; see
        :meth:`~repro.sim.checkpoint.Checkpoint.restore`."""
        return cp.restore()

    # -- scheduling -------------------------------------------------------

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` ns of simulated time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay}")
        self._seq = seq = self._seq + 1
        if delay == 0.0:
            self._delta.append((seq, fn, args))
        else:
            wheel = self._wheel
            if wheel is None:
                heapq.heappush(self._heap, (self._now + delay, seq, fn, args))
            else:
                wheel.insert(self._now + delay, seq, fn, args, self._now)
        if self.race_detector is not None:
            self.race_detector.note_schedule(seq, self.current_task)

    def schedule_at(self, at: float, fn: Callable[..., None],
                    *args: Any) -> None:
        """Run ``fn(*args)`` at the *absolute* simulated time ``at``.

        Unlike :meth:`schedule`, no ``now + delay`` addition is
        performed — the callback fires at exactly the float given, which
        is what the bulk fast-forward layer needs to reproduce per-line
        timestamps bit-for-bit.  ``at == now`` lands on the delta queue.
        """
        if at < self._now:
            raise SimulationError(
                f"cannot schedule into the past: {at} < {self._now}")
        self._seq = seq = self._seq + 1
        if at == self._now:
            self._delta.append((seq, fn, args))
        else:
            wheel = self._wheel
            if wheel is None:
                heapq.heappush(self._heap, (at, seq, fn, args))
            else:
                wheel.insert(at, seq, fn, args, self._now)
        if self.race_detector is not None:
            self.race_detector.note_schedule(seq, self.current_task)

    # Absolute-time scheduling under its conventional event-loop name.
    call_at = schedule_at

    def call_soon(self, fn: Callable[..., None], *args: Any) -> None:
        """Run ``fn(*args)`` at the current time, after already queued
        same-time work."""
        self._seq = seq = self._seq + 1
        self._delta.append((seq, fn, args))
        if self.race_detector is not None:
            self.race_detector.note_schedule(seq, self.current_task)

    def event(self) -> Event:
        """Create a fresh pending :class:`Event`."""
        return Event(self)

    def timeout_event(self, delay: float, value: Any = None) -> Event:
        """An event that triggers ``delay`` ns from now."""
        ev = Event(self)
        # Inlined self.schedule(delay, ev.succeed, value): this is the
        # hottest constructor in the transfer models.
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay}")
        self._seq = seq = self._seq + 1
        if delay == 0.0:
            self._delta.append((seq, ev.succeed, (value,)))
        else:
            wheel = self._wheel
            if wheel is None:
                heapq.heappush(self._heap,
                               (self._now + delay, seq, ev.succeed, (value,)))
            else:
                wheel.insert(self._now + delay, seq, ev.succeed, (value,),
                             self._now)
        if self.race_detector is not None:
            self.race_detector.note_schedule(seq, self.current_task)
        return ev

    def timer(self, delay: float, value: Any = None) -> Timer:
        """A *cancellable* timeout: returns a :class:`Timer` handle whose
        ``event`` triggers with ``value`` after ``delay`` ns unless
        :meth:`Timer.cancel` runs first.

        Cancel is O(1) and lazy — the tombstoned entry still pops at its
        ``(time, seq)`` slot without triggering, so the clock's
        trajectory (and every output byte) is identical whether or not
        a timer was cancelled via the wheel or the heap carrier.  Use
        this for timeout races that usually *don't* fire (doorbell
        completion waits, RAS watchdogs): the skipped trigger saves the
        dead event delivery that ``timeout_event`` would still pay.

        With reaping enabled (the default) the handle also remembers its
        carrier ``(time, seq)`` key, so a cancel can note the tombstone
        for compaction — see :meth:`_note_timer_cancel`.
        """
        if not self._reap or delay <= 0.0:
            # Legacy path (REPRO_TIMERS_REAP=0 kill switch): eager event,
            # lazy tombstone pop, no registration.
            handle = Timer(Event(self, name="timer"))
            self.schedule(delay, handle._fire, value)
            return handle
        handle = Timer(None, self)
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay}")
        self._seq = seq = self._seq + 1
        t = self._now + delay
        key = (t, seq)
        wheel = self._wheel
        if wheel is None:
            heapq.heappush(self._heap, (t, seq, handle._fire, (value,)))
        else:
            # Stage rather than insert: refill flushes the nursery
            # before handing out any bucket at or past ``t``, and a
            # cancel that beats the flush skips the wheel entirely.
            wheel.nursery[key] = (t, seq, handle._fire, (value,))
            wheel.count += 1
            if t < wheel.nursery_min:
                wheel.nursery_min = t
        if self.race_detector is not None:
            self.race_detector.note_schedule(seq, self.current_task)
        handle._key = key
        return handle

    # -- tombstone reaping -------------------------------------------------
    # Cancel-side bookkeeping lives inline in Timer.cancel (the hot
    # path); the heap-carrier sweep lives here because the heap is the
    # simulator's own structure.

    def _reap_heap(self) -> int:
        """Compact tombstoned entries out of the heap carrier; returns
        the number removed.  Mutates ``self._heap`` in place so the
        local binding a running :meth:`run` loop holds stays valid."""
        dead = self._heap_dead
        if not dead:
            return 0
        heap = self._heap
        kept = []
        horizon = self._dead_horizon
        removed = 0
        for entry in heap:
            if (entry[0], entry[1]) in dead:
                dead.discard((entry[0], entry[1]))
                removed += 1
                if entry[0] > horizon:
                    horizon = entry[0]
            else:
                kept.append(entry)
        if not removed:
            return 0
        heap[:] = kept
        heapq.heapify(heap)
        self._dead_horizon = horizon
        stats = WHEEL_STATS
        stats.reaped += removed
        stats.reap_sweeps += 1
        return removed

    def horizon(self) -> float:
        """Earliest pending live timestamp, or ``+inf`` when idle.

        Pending zero-delay work reads as ``now``.  Tombstones are
        compacted first so a cancelled watchdog cannot pin the horizon —
        the rack fast-forward eligibility check depends on this: a
        per-epoch heartbeat leaves one tombstone behind every window,
        and without the sweep the rack could never look idle."""
        if self._delta:
            return self._now
        wheel = self._wheel
        if wheel is not None:
            if wheel.dead:
                wheel.reap()
            if wheel.ready:
                return wheel.ready_time
            nxt = wheel._far_next
            near_times = wheel.near_times
            if near_times and near_times[0] < nxt:
                nxt = near_times[0]
            # nursery_min is a (possibly stale-low) lower bound on the
            # staged deadlines — a pessimistic horizon is safe: callers
            # (the rack fast-forward) just jump a little shorter.
            if wheel.nursery and wheel.nursery_min < nxt:
                nxt = wheel.nursery_min
            return nxt
        if self._heap_dead:
            self._reap_heap()
        heap = self._heap
        return heap[0][0] if heap else float("inf")

    def spawn(self, gen: ProcessGen, name: str = "") -> Process:
        """Start a process; it takes its first step at the current time."""
        proc = Process(self, gen, name)
        self.call_soon(proc._step, None)
        return proc

    # -- running ----------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Execute events until both queues drain or ``until`` is reached.

        Returns the final simulated time.  When ``until`` is given, the
        clock is advanced exactly to ``until`` even if the last event fired
        earlier.
        """
        # Hot loop: heap/delta/heappop bound locally, and the armed state
        # is sampled once — arm sanitizers *before* calling run() (every
        # Platform path does).  The disarmed loop carries no per-event
        # race-detector probe at all.  Each timer carrier (wheel / heap)
        # gets its own specialized pair of loops.
        if self._wheel is not None:
            return self._run_wheel(until)
        heap = self._heap
        delta = self._delta
        heappop = heapq.heappop
        if self.race_detector is None:
            while heap or delta:
                # Merge the two queues by sequence number: a delta entry
                # is next unless a heap entry at the *same* timestamp was
                # scheduled earlier (the heap head is never in the past).
                if delta:
                    if until is not None and self._now > until:
                        break
                    if heap:
                        head = heap[0]
                        if head[0] == self._now and head[1] < delta[0][0]:
                            heappop(heap)
                            head[2](*head[3])
                            continue
                    entry = delta.popleft()
                    entry[1](*entry[2])
                else:
                    head = heap[0]
                    at = head[0]
                    if until is not None and at > until:
                        break
                    heappop(heap)
                    self._now = at
                    head[2](*head[3])
        else:
            while heap or delta:
                if delta and (not heap or heap[0][0] != self._now
                              or heap[0][1] > delta[0][0]):
                    if until is not None and self._now > until:
                        break
                    seq, fn, args = delta.popleft()
                else:
                    at = heap[0][0]
                    if until is not None and at > until:
                        break
                    at, seq, fn, args = heappop(heap)
                    self._now = at
                self.current_task = seq
                owner = getattr(fn, "__self__", None)
                self.current_actor = owner if isinstance(owner, Process) \
                    else fn
                fn(*args)
        if until is not None:
            if until > self._now:
                self._now = until
        elif self._dead_horizon > self._now:
            # Phantom horizon: reaped tombstones would have popped (and
            # advanced the clock) before the queues drained; land on the
            # same final reading the lazy pops would have produced.
            self._now = self._dead_horizon
        return self._now

    def _run_wheel(self, until: Optional[float]) -> float:
        """The :meth:`run` loops for the timer-wheel carrier.

        Merge rule (provably the same order the heap loops produce): the
        ``ready`` bucket holds every live entry of one timestamp, all
        scheduled strictly before the clock reached it — so when its
        timestamp equals ``now``, every bucket entry's seq is smaller
        than any delta entry's (delta work at ``now`` was enqueued while
        draining) and the bucket drains first; when the bucket timestamp
        is in the future, pending delta work at ``now`` drains first.
        No per-event seq comparison is needed; the structure *is* the
        order.
        """
        wheel = self._wheel
        delta = self._delta
        ready = wheel.ready
        if self.race_detector is None:
            while True:
                if ready:
                    t = wheel.ready_time
                    if not delta or t == self._now:
                        if until is not None and t > until:
                            break
                        e = ready.pop()
                        self._now = t
                        e[2](*e[3])
                        continue
                if delta:
                    if until is not None and self._now > until:
                        break
                    entry = delta.popleft()
                    entry[1](*entry[2])
                elif wheel.count:
                    wheel.refill(self._now)
                    ready = wheel.ready
                else:
                    break
        else:
            while True:
                if ready and (not delta or wheel.ready_time == self._now):
                    t = wheel.ready_time
                    if until is not None and t > until:
                        break
                    at, seq, fn, args = ready.pop()
                    self._now = at
                elif delta:
                    if until is not None and self._now > until:
                        break
                    seq, fn, args = delta.popleft()
                elif wheel.count:
                    wheel.refill(self._now)
                    ready = wheel.ready
                    continue
                else:
                    break
                self.current_task = seq
                owner = getattr(fn, "__self__", None)
                self.current_actor = owner if isinstance(owner, Process) \
                    else fn
                fn(*args)
        # A bounded run may break with a refilled bucket still unfired
        # (its timestamp past ``until``); hand it back so timers the
        # caller schedules before the next run can fire ahead of it.
        wheel.unready()
        if until is not None:
            if until > self._now:
                self._now = until
        elif wheel.dead_horizon > self._now:
            # Same phantom-horizon fold as the heap loops (see run()).
            self._now = wheel.dead_horizon
        return self._now

    def run_process(self, gen: ProcessGen, name: str = "") -> Any:
        """Spawn ``gen``, run the simulation until it finishes, and return
        its result.  Raises if the queues drain first (deadlock), and
        re-raises the process's own exception if it failed."""
        proc = self.spawn(gen, name)
        # The caller reads `result` below, which re-raises failures, so
        # the in-loop uncaught-failure diagnostic would be redundant.
        proc.done.defuse()
        self.run()
        if not proc.finished:
            raise SimulationError(
                f"simulation deadlocked: process {proc.name!r} never finished"
            )
        return proc.result

    def all_of(self, events: Iterable[Event]) -> Event:
        """An event that triggers once every input event has triggered,
        with the list of their values (input order preserved).

        If any input *fails*, the aggregate fails immediately with that
        exception (first failure wins; later outcomes are absorbed)."""
        events = list(events)
        done = Event(self, name="all_of")
        if not events:
            # Deferred trigger keeps "waiting on all_of([])" consistent
            # with the non-empty case (resume via the scheduling queue).
            self.call_soon(done.succeed, [])  # reprolint: disable=PERF401
            return done
        remaining = [len(events)]
        values: list[Any] = [None] * len(events)

        def make_cb(i: int) -> Callable[[Any], None]:
            def cb(value: Any) -> None:
                if done.triggered:
                    return                 # a sibling already failed it
                if type(value) is _Failure:
                    done.fail(value.exc)
                    return
                values[i] = value
                remaining[0] -= 1
                if remaining[0] == 0:
                    done.succeed(list(values))

            return cb

        for i, ev in enumerate(events):
            ev.add_callback(make_cb(i))
        return done

    def any_of(self, events: Iterable[Event]) -> Event:
        """An event that triggers with ``(index, value)`` of the first
        input to trigger (useful for racing a completion against a
        timeout).  If the first outcome is a failure, the aggregate fails
        with it; later outcomes are absorbed either way."""
        events = list(events)
        if not events:
            raise SimulationError("any_of needs at least one event")
        done = Event(self, name="any_of")

        def make_cb(i: int) -> Callable[[Any], None]:
            def cb(value: Any) -> None:
                if done.triggered:
                    return
                if type(value) is _Failure:
                    done.fail(value.exc)
                    return
                done.succeed((i, value))

            return cb

        for i, ev in enumerate(events):
            ev.add_callback(make_cb(i))
        return done
