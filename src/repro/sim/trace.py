"""Execution tracing for timed models.

A :class:`Tracer` records ``(start, end, component, label)`` spans from
inside process generators — the observability layer for debugging why a
path costs what it costs, and the data source for waterfall views of
pipelined flows (e.g. watching a cxl-zswap compression overlap its D2H
pull).

Tracing is strictly opt-in and zero-cost when absent: models call
``tracer.span(...)`` via the module-level :func:`maybe_span` helper or
wrap sub-generators with :meth:`Tracer.wrap`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, List

from repro.sim.engine import Simulator


@dataclass(frozen=True)
class Span:
    """One timed interval attributed to a component."""

    start_ns: float
    end_ns: float
    component: str
    label: str

    @property
    def duration_ns(self) -> float:
        return self.end_ns - self.start_ns


class Tracer:
    """Collects spans against one simulator's clock."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.spans: List[Span] = []

    def wrap(self, gen: Generator, component: str,
             label: str = "") -> Generator[Any, Any, Any]:
        """Run ``gen`` to completion, recording one span around it."""
        start = self.sim.now
        result = yield from gen
        self.spans.append(Span(start, self.sim.now, component,
                               label or getattr(gen, "__name__", "")))
        return result

    # -- queries -----------------------------------------------------------

    def by_component(self, component: str) -> List[Span]:
        return [s for s in self.spans if s.component == component]

    def total_ns(self, component: str) -> float:
        return sum(s.duration_ns for s in self.by_component(component))

    def overlap_ns(self, a: str, b: str) -> float:
        """Wall-clock time during which components ``a`` and ``b`` were
        simultaneously active (the pipelining evidence)."""
        total = 0.0
        for sa in self.by_component(a):
            for sb in self.by_component(b):
                lo = max(sa.start_ns, sb.start_ns)
                hi = min(sa.end_ns, sb.end_ns)
                if hi > lo:
                    total += hi - lo
        return total

    def waterfall(self, width: int = 60) -> str:
        """ASCII waterfall of every span, ordered by start time."""
        if not self.spans:
            return "(no spans recorded)"
        spans = sorted(self.spans, key=lambda s: s.start_ns)
        t0 = spans[0].start_ns
        t1 = max(s.end_ns for s in spans)
        scale = width / max(t1 - t0, 1e-9)
        name_w = max(len(f"{s.component}:{s.label}") for s in spans)
        lines = []
        for span in spans:
            lead = int((span.start_ns - t0) * scale)
            bar = max(1, int(span.duration_ns * scale))
            name = f"{span.component}:{span.label}".ljust(name_w)
            lines.append(f"{name} |{' ' * lead}{'#' * bar}"
                         f"  {span.duration_ns / 1000:.2f}us")
        return "\n".join(lines)
