"""Deterministic multiprocessing fan-out for embarrassingly parallel sweeps.

Most experiments are grids of *independent* simulator instances: fig6
builds one fresh :class:`~repro.core.platform.Platform` per transfer
mechanism, fig8 one per (feature, workload, backend) cell, the fault /
LSU / sleep sweeps one per point.  Each point is a pure function of its
arguments (including an explicit seed), so running points in worker
processes cannot change any result — it only changes wall-clock time.

The determinism contract (docs/PERFORMANCE.md):

* an experiment declares its points as a :class:`SweepSpec` — a named,
  ordered list of ``(key, fn, args, kwargs)`` tuples where ``fn`` is a
  module-level callable and every argument is picklable;
* every point carries its seed *in its arguments*, derived the same way
  the serial loop derives it (use :func:`derive_seed` for new sweeps) —
  workers never consult global RNG state;
* :func:`run_sweep` merges results **in submission order**, never in
  completion order, so the assembled mapping is byte-identical to the
  serial loop's for any worker count;
* ``jobs=1`` (the default) runs the points in-process with no
  multiprocessing import at all, and any pool-setup failure (missing
  semaphores in a sandbox, fork limits) degrades to the same serial
  path with a warning rather than an error.

``--jobs N`` on the CLI and the ``REPRO_JOBS`` environment variable
feed :func:`resolve_jobs`.
"""

from __future__ import annotations

import os
import sys
import warnings
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, Mapping, Sequence, Tuple

__all__ = [
    "ShardPool",
    "SweepPoint",
    "SweepSpec",
    "ForkSpec",
    "derive_seed",
    "resolve_jobs",
    "run_sweep",
    "run_forked_sweep",
]


@dataclass(frozen=True)
class SweepPoint:
    """One independent cell of a sweep.

    ``fn`` must be importable from the top level of its module (the
    multiprocessing pickle contract); args/kwargs must be picklable and
    must embed the point's seed explicitly.
    """

    key: Hashable
    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Mapping[str, Any] = field(default_factory=dict)

    def run(self) -> Any:
        return self.fn(*self.args, **dict(self.kwargs))


@dataclass(frozen=True)
class SweepSpec:
    """An ordered set of independent points, ready to fan out."""

    name: str
    points: Tuple[SweepPoint, ...]

    def __post_init__(self) -> None:
        keys = [p.key for p in self.points]
        if len(set(keys)) != len(keys):
            raise ValueError(f"sweep {self.name!r} has duplicate point keys")

    @classmethod
    def build(cls, name: str,
              points: Sequence[Tuple[Hashable, Callable[..., Any],
                                     Tuple[Any, ...], Mapping[str, Any]]]
              ) -> "SweepSpec":
        return cls(name, tuple(SweepPoint(k, f, tuple(a), dict(kw))
                               for k, f, a, kw in points))


def derive_seed(base_seed: int, key: Hashable) -> int:
    """A stable per-point seed: independent of process hash randomization
    (``hash(str)`` is salted; ``zlib.crc32`` is not), identical in every
    worker and on every platform."""
    return (base_seed * 1_000_003 + zlib.crc32(repr(key).encode())) % (1 << 31)


def resolve_jobs(jobs: Any = None) -> int:
    """Resolve a worker count: explicit value > ``REPRO_JOBS`` > 1.

    ``0`` (or ``"auto"``) means one worker per CPU.  An explicit positive
    count is honored as-is (like ``make -j``) — even above ``cpu_count``
    — so the multiprocessing path stays exercisable on small runners."""
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if not env:
            return 1
        jobs = env
    if isinstance(jobs, str):
        if jobs.lower() == "auto":
            jobs = 0
        else:
            try:
                jobs = int(jobs)
            except ValueError:
                warnings.warn(f"unparseable jobs value {jobs!r}; running "
                              "serial", RuntimeWarning, stacklevel=2)
                return 1
    if jobs <= 0:
        return os.cpu_count() or 1
    return int(jobs)


@dataclass(frozen=True)
class ForkSpec:
    """A sweep whose points share one warm-up.

    ``warmup(*warmup_args, **warmup_kwargs)`` builds and warms a root
    object graph (a Platform, or a tuple of platform + workload
    objects), leaving its simulator *quiescent*; each point's ``fn``
    then receives the root as its first argument, followed by the
    point's own args/kwargs.  :func:`run_forked_sweep` runs the warm-up
    **once**, snapshots it, and forks every point from the checkpoint —
    or, with checkpointing disabled (``REPRO_CHECKPOINT=0``), replays
    the warm-up per point.  Both paths produce byte-identical results;
    the contract mirrors :class:`SweepSpec`, plus: the warm-up must be
    a module-level callable with picklable arguments, and the root
    graph must be checkpointable (quiescent — see
    ``docs/CHECKPOINT.md``).
    """

    name: str
    warmup: Callable[..., Any]
    warmup_args: Tuple[Any, ...]
    warmup_kwargs: Mapping[str, Any]
    points: Tuple[SweepPoint, ...]

    def __post_init__(self) -> None:
        keys = [p.key for p in self.points]
        if len(set(keys)) != len(keys):
            raise ValueError(f"sweep {self.name!r} has duplicate point keys")

    @classmethod
    def build(cls, name: str, warmup: Callable[..., Any],
              points: Sequence[Tuple[Hashable, Callable[..., Any],
                                     Tuple[Any, ...], Mapping[str, Any]]],
              warmup_args: Tuple[Any, ...] = (),
              warmup_kwargs: Mapping[str, Any] = (),
              ) -> "ForkSpec":
        return cls(name, warmup, tuple(warmup_args),
                   dict(warmup_kwargs or {}),
                   tuple(SweepPoint(k, f, tuple(a), dict(kw))
                         for k, f, a, kw in points))

    def run_warmup(self) -> Any:
        return self.warmup(*self.warmup_args, **dict(self.warmup_kwargs))


def _run_point(point: SweepPoint) -> Any:
    return point.run()


def _run_forked_point(task: Tuple[Any, SweepPoint]) -> Any:
    """Pool worker for the checkpoint path: fork the shared snapshot,
    then run the point against the private copy."""
    cp, point = task
    root = cp.restore()
    return point.fn(root, *point.args, **dict(point.kwargs))


def _run_cold_point(
        task: Tuple[Callable[..., Any], Tuple, Mapping, SweepPoint]) -> Any:
    """Pool worker for the cold path: replay the warm-up, then run the
    point — the pre-checkpoint behavior, kept as the pinned reference."""
    from repro.sim.checkpoint import CHECKPOINT_STATS
    warmup, wargs, wkwargs, point = task
    CHECKPOINT_STATS.cold_warmups += 1
    root = warmup(*wargs, **dict(wkwargs))
    return point.fn(root, *point.args, **dict(point.kwargs))


def run_forked_sweep(spec: ForkSpec, jobs: Any = None) -> Dict[Hashable, Any]:
    """Run every point of ``spec`` against its shared warm-up; return
    ``{key: result}`` in submission order, byte-identical to
    :func:`run_sweep` over per-point cold runs.

    With checkpointing enabled (the default) the warm-up executes once
    and every point — including the first, so all points see the same
    restored-from-snapshot world — forks from the snapshot.  Each fork
    reinstalls the warm-up's ambient page-store/work-cache state, so
    per-point intern/release accounting balances exactly as a cold run's
    would.  ``REPRO_CHECKPOINT=0`` replays the warm-up per point
    instead; parallel jobs ship the checkpoint (or the warm-up thunk) to
    workers and merge in submission order like :func:`run_sweep`.
    """
    from repro.sim.checkpoint import checkpoint_enabled, snapshot
    jobs = resolve_jobs(jobs)
    if checkpoint_enabled():
        cp = snapshot(spec.run_warmup(), label=spec.name)
        tasks = [(cp, p) for p in spec.points]
        runner = _run_forked_point
    else:
        tasks = [(spec.warmup, spec.warmup_args, spec.warmup_kwargs, p)
                 for p in spec.points]
        runner = _run_cold_point
    if jobs > 1 and len(tasks) > 1:
        results = _map_parallel(spec.name, runner, tasks,
                                min(jobs, len(tasks)))
        if results is not None:
            return dict(zip((p.key for p in spec.points), results))
    return {p.key: runner(t) for p, t in zip(spec.points, tasks)}


def run_sweep(spec: SweepSpec, jobs: Any = None) -> Dict[Hashable, Any]:
    """Run every point of ``spec``; return ``{key: result}`` with keys in
    submission order (dict insertion order == ``spec.points`` order).

    With ``jobs > 1`` the points execute in a process pool; results are
    still collected in submission order, so the returned mapping — and
    anything formatted from it — is identical to the serial run.
    """
    jobs = resolve_jobs(jobs)
    if jobs > 1 and len(spec.points) > 1:
        results = _run_parallel(spec, min(jobs, len(spec.points)))
        if results is not None:
            return dict(zip((p.key for p in spec.points), results))
    return {p.key: p.run() for p in spec.points}


def _run_parallel(spec: SweepSpec, jobs: int) -> Any:
    """Fan the points out to ``jobs`` workers; None means "fall back to
    serial" (pool setup failed — sandboxed /dev/shm, missing fork, ...)."""
    return _map_parallel(spec.name, _run_point, spec.points, jobs)


def _pool_context():
    """The preferred multiprocessing context (fork where available)."""
    import multiprocessing
    if sys.platform != "win32" and \
            "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _shard_worker_main(conn: Any, boot: Callable[..., Any],
                       boot_args: Tuple[Any, ...],
                       sids: Tuple[Hashable, ...]) -> None:
    """Worker loop: boot this worker's shards once, then serve ``step``
    batches until told to stop.  Shard state lives here for the whole
    run — only per-epoch payloads and reports cross the pipe."""
    try:
        shards = {sid: boot(sid, *boot_args) for sid in sids}
        conn.send(("ready", len(shards)))
        while True:
            cmd, data = conn.recv()
            if cmd == "stop":
                break
            results = [(sid, shards[sid].step(payload))
                       for sid, payload in data]
            conn.send(("ok", results))
    except EOFError:  # pragma: no cover - coordinator died
        pass
    except BaseException:
        import traceback
        try:
            conn.send(("error", traceback.format_exc()))
        except (OSError, BrokenPipeError):  # pragma: no cover
            pass
    finally:
        conn.close()


class ShardPool:
    """Long-lived shard workers for epoch-stepped cluster simulations.

    :func:`run_sweep` fits one-shot points; a rack run instead steps
    ``n`` stateful shards through thousands of epochs, and shipping
    each shard's full state per epoch would drown the win.  ShardPool
    keeps the sweep layer's determinism contract with a different
    execution shape:

    * each shard boots **once** (``boot(sid, *boot_args)``) inside a
      sticky worker — shard ``i`` always runs in worker ``i % jobs``,
      so its state never moves between processes;
    * :meth:`step` delivers one payload per shard and returns the
      reports merged **in shard-id order** (the submission-order rule),
      so the coordinator observes the same sequence for any worker
      count — including ``jobs=1``, which runs the shards in-process
      with no multiprocessing at all;
    * shards must be pure functions of ``(sid, boot_args, payloads so
      far)`` — no shared mutable state — which is what makes worker
      *grouping* (which shards share a process) unobservable;
    * pool-setup failures degrade to the serial path with a warning,
      mirroring :func:`run_sweep`.

    Use as a context manager; :meth:`close` tears the workers down.
    """

    def __init__(self, name: str, shard_ids: Sequence[Hashable],
                 boot: Callable[..., Any], boot_args: Tuple[Any, ...] = (),
                 jobs: Any = None):
        self.name = name
        self._sids = sorted(shard_ids)
        if len(set(self._sids)) != len(self._sids):
            raise ValueError(f"pool {name!r} has duplicate shard ids")
        if not self._sids:
            raise ValueError(f"pool {name!r} has no shards")
        jobs = resolve_jobs(jobs)
        self._workers = max(1, min(jobs, len(self._sids)))
        self._shards: Any = None      # serial mode: {sid: shard}
        self._procs: list = []
        self._conns: list = []
        self._worker_of: Dict[Hashable, int] = {
            sid: i % self._workers for i, sid in enumerate(self._sids)}
        if self._workers == 1 or not self._spawn(boot, boot_args):
            self._shards = {sid: boot(sid, *boot_args)
                            for sid in self._sids}

    def _spawn(self, boot: Callable[..., Any],
               boot_args: Tuple[Any, ...]) -> bool:
        """Start the workers; False means "fall back to serial"."""
        per_worker: list = [[] for _ in range(self._workers)]
        for sid in self._sids:
            per_worker[self._worker_of[sid]].append(sid)
        try:
            import multiprocessing  # noqa: F401 - availability probe
            ctx = _pool_context()
            for sids in per_worker:
                parent, child = ctx.Pipe()
                proc = ctx.Process(
                    target=_shard_worker_main,
                    args=(child, boot, boot_args, tuple(sids)),
                    daemon=True)
                proc.start()
                child.close()
                self._procs.append(proc)
                self._conns.append(parent)
        except (ImportError, OSError, PermissionError,
                NotImplementedError) as exc:
            self.close()
            warnings.warn(
                f"pool {self.name!r}: shard workers unavailable ({exc}); "
                "running serial", RuntimeWarning, stacklevel=3)
            return False
        for conn in self._conns:
            tag, data = conn.recv()
            if tag != "ready":
                detail = data
                self.close()
                raise RuntimeError(
                    f"pool {self.name!r}: shard boot failed:\n{detail}")
        return True

    @property
    def jobs(self) -> int:
        """Effective worker count (1 when running serial)."""
        return 1 if self._shards is not None else self._workers

    def step(self, payloads: Mapping[Hashable, Any]) -> Dict[Hashable, Any]:
        """Deliver one payload per shard; return ``{sid: report}`` in
        shard-id order regardless of which worker finished first."""
        order = sorted(payloads)
        if self._shards is not None:
            return {sid: self._shards[sid].step(payloads[sid])
                    for sid in order}
        batches: list = [[] for _ in range(self._workers)]
        for sid in order:
            batches[self._worker_of[sid]].append((sid, payloads[sid]))
        for conn, batch in zip(self._conns, batches):
            conn.send(("step", batch))
        merged: Dict[Hashable, Any] = {}
        for conn in self._conns:
            try:
                tag, data = conn.recv()
            except EOFError:
                self.close()
                raise RuntimeError(
                    f"pool {self.name!r}: a shard worker died")
            if tag != "ok":
                detail = data
                self.close()
                raise RuntimeError(
                    f"pool {self.name!r}: shard step failed:\n{detail}")
            merged.update(data)
        return {sid: merged[sid] for sid in order}

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.send(("stop", None))
            except (OSError, BrokenPipeError):
                pass
        for proc in self._procs:
            proc.join(timeout=10.0)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join(timeout=5.0)
        for conn in self._conns:
            conn.close()
        self._procs = []
        self._conns = []

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def _map_parallel(name: str, fn: Callable[[Any], Any],
                  items: Sequence[Any], jobs: int) -> Any:
    """``list(map(fn, items))`` across ``jobs`` worker processes, results
    in submission order; None means "fall back to serial"."""
    try:
        from concurrent.futures import ProcessPoolExecutor

        # fork is measurably cheaper than spawn and inherits sys.path;
        # platforms without it (Windows) use their default start method.
        with ProcessPoolExecutor(max_workers=jobs,
                                 mp_context=_pool_context()) as pool:
            # map() yields results in submission order regardless of
            # which worker finishes first — the determinism keystone.
            return list(pool.map(fn, items))
    except (ImportError, OSError, PermissionError, NotImplementedError) as exc:
        warnings.warn(
            f"sweep {name!r}: process pool unavailable ({exc}); "
            "running serial", RuntimeWarning, stacklevel=3)
        return None
