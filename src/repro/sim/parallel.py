"""Deterministic multiprocessing fan-out for embarrassingly parallel sweeps.

Most experiments are grids of *independent* simulator instances: fig6
builds one fresh :class:`~repro.core.platform.Platform` per transfer
mechanism, fig8 one per (feature, workload, backend) cell, the fault /
LSU / sleep sweeps one per point.  Each point is a pure function of its
arguments (including an explicit seed), so running points in worker
processes cannot change any result — it only changes wall-clock time.

The determinism contract (docs/PERFORMANCE.md):

* an experiment declares its points as a :class:`SweepSpec` — a named,
  ordered list of ``(key, fn, args, kwargs)`` tuples where ``fn`` is a
  module-level callable and every argument is picklable;
* every point carries its seed *in its arguments*, derived the same way
  the serial loop derives it (use :func:`derive_seed` for new sweeps) —
  workers never consult global RNG state;
* :func:`run_sweep` merges results **in submission order**, never in
  completion order, so the assembled mapping is byte-identical to the
  serial loop's for any worker count;
* ``jobs=1`` (the default) runs the points in-process with no
  multiprocessing import at all, and any pool-setup failure (missing
  semaphores in a sandbox, fork limits) degrades to the same serial
  path with a warning rather than an error.

``--jobs N`` on the CLI and the ``REPRO_JOBS`` environment variable
feed :func:`resolve_jobs`.
"""

from __future__ import annotations

import os
import sys
import warnings
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, Mapping, Sequence, Tuple

__all__ = [
    "SweepPoint",
    "SweepSpec",
    "ForkSpec",
    "derive_seed",
    "resolve_jobs",
    "run_sweep",
    "run_forked_sweep",
]


@dataclass(frozen=True)
class SweepPoint:
    """One independent cell of a sweep.

    ``fn`` must be importable from the top level of its module (the
    multiprocessing pickle contract); args/kwargs must be picklable and
    must embed the point's seed explicitly.
    """

    key: Hashable
    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Mapping[str, Any] = field(default_factory=dict)

    def run(self) -> Any:
        return self.fn(*self.args, **dict(self.kwargs))


@dataclass(frozen=True)
class SweepSpec:
    """An ordered set of independent points, ready to fan out."""

    name: str
    points: Tuple[SweepPoint, ...]

    def __post_init__(self) -> None:
        keys = [p.key for p in self.points]
        if len(set(keys)) != len(keys):
            raise ValueError(f"sweep {self.name!r} has duplicate point keys")

    @classmethod
    def build(cls, name: str,
              points: Sequence[Tuple[Hashable, Callable[..., Any],
                                     Tuple[Any, ...], Mapping[str, Any]]]
              ) -> "SweepSpec":
        return cls(name, tuple(SweepPoint(k, f, tuple(a), dict(kw))
                               for k, f, a, kw in points))


def derive_seed(base_seed: int, key: Hashable) -> int:
    """A stable per-point seed: independent of process hash randomization
    (``hash(str)`` is salted; ``zlib.crc32`` is not), identical in every
    worker and on every platform."""
    return (base_seed * 1_000_003 + zlib.crc32(repr(key).encode())) % (1 << 31)


def resolve_jobs(jobs: Any = None) -> int:
    """Resolve a worker count: explicit value > ``REPRO_JOBS`` > 1.

    ``0`` (or ``"auto"``) means one worker per CPU.  An explicit positive
    count is honored as-is (like ``make -j``) — even above ``cpu_count``
    — so the multiprocessing path stays exercisable on small runners."""
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if not env:
            return 1
        jobs = env
    if isinstance(jobs, str):
        if jobs.lower() == "auto":
            jobs = 0
        else:
            try:
                jobs = int(jobs)
            except ValueError:
                warnings.warn(f"unparseable jobs value {jobs!r}; running "
                              "serial", RuntimeWarning, stacklevel=2)
                return 1
    if jobs <= 0:
        return os.cpu_count() or 1
    return int(jobs)


@dataclass(frozen=True)
class ForkSpec:
    """A sweep whose points share one warm-up.

    ``warmup(*warmup_args, **warmup_kwargs)`` builds and warms a root
    object graph (a Platform, or a tuple of platform + workload
    objects), leaving its simulator *quiescent*; each point's ``fn``
    then receives the root as its first argument, followed by the
    point's own args/kwargs.  :func:`run_forked_sweep` runs the warm-up
    **once**, snapshots it, and forks every point from the checkpoint —
    or, with checkpointing disabled (``REPRO_CHECKPOINT=0``), replays
    the warm-up per point.  Both paths produce byte-identical results;
    the contract mirrors :class:`SweepSpec`, plus: the warm-up must be
    a module-level callable with picklable arguments, and the root
    graph must be checkpointable (quiescent — see
    ``docs/CHECKPOINT.md``).
    """

    name: str
    warmup: Callable[..., Any]
    warmup_args: Tuple[Any, ...]
    warmup_kwargs: Mapping[str, Any]
    points: Tuple[SweepPoint, ...]

    def __post_init__(self) -> None:
        keys = [p.key for p in self.points]
        if len(set(keys)) != len(keys):
            raise ValueError(f"sweep {self.name!r} has duplicate point keys")

    @classmethod
    def build(cls, name: str, warmup: Callable[..., Any],
              points: Sequence[Tuple[Hashable, Callable[..., Any],
                                     Tuple[Any, ...], Mapping[str, Any]]],
              warmup_args: Tuple[Any, ...] = (),
              warmup_kwargs: Mapping[str, Any] = (),
              ) -> "ForkSpec":
        return cls(name, warmup, tuple(warmup_args),
                   dict(warmup_kwargs or {}),
                   tuple(SweepPoint(k, f, tuple(a), dict(kw))
                         for k, f, a, kw in points))

    def run_warmup(self) -> Any:
        return self.warmup(*self.warmup_args, **dict(self.warmup_kwargs))


def _run_point(point: SweepPoint) -> Any:
    return point.run()


def _run_forked_point(task: Tuple[Any, SweepPoint]) -> Any:
    """Pool worker for the checkpoint path: fork the shared snapshot,
    then run the point against the private copy."""
    cp, point = task
    root = cp.restore()
    return point.fn(root, *point.args, **dict(point.kwargs))


def _run_cold_point(
        task: Tuple[Callable[..., Any], Tuple, Mapping, SweepPoint]) -> Any:
    """Pool worker for the cold path: replay the warm-up, then run the
    point — the pre-checkpoint behavior, kept as the pinned reference."""
    from repro.sim.checkpoint import CHECKPOINT_STATS
    warmup, wargs, wkwargs, point = task
    CHECKPOINT_STATS.cold_warmups += 1
    root = warmup(*wargs, **dict(wkwargs))
    return point.fn(root, *point.args, **dict(point.kwargs))


def run_forked_sweep(spec: ForkSpec, jobs: Any = None) -> Dict[Hashable, Any]:
    """Run every point of ``spec`` against its shared warm-up; return
    ``{key: result}`` in submission order, byte-identical to
    :func:`run_sweep` over per-point cold runs.

    With checkpointing enabled (the default) the warm-up executes once
    and every point — including the first, so all points see the same
    restored-from-snapshot world — forks from the snapshot.  Each fork
    reinstalls the warm-up's ambient page-store/work-cache state, so
    per-point intern/release accounting balances exactly as a cold run's
    would.  ``REPRO_CHECKPOINT=0`` replays the warm-up per point
    instead; parallel jobs ship the checkpoint (or the warm-up thunk) to
    workers and merge in submission order like :func:`run_sweep`.
    """
    from repro.sim.checkpoint import checkpoint_enabled, snapshot
    jobs = resolve_jobs(jobs)
    if checkpoint_enabled():
        cp = snapshot(spec.run_warmup(), label=spec.name)
        tasks = [(cp, p) for p in spec.points]
        runner = _run_forked_point
    else:
        tasks = [(spec.warmup, spec.warmup_args, spec.warmup_kwargs, p)
                 for p in spec.points]
        runner = _run_cold_point
    if jobs > 1 and len(tasks) > 1:
        results = _map_parallel(spec.name, runner, tasks,
                                min(jobs, len(tasks)))
        if results is not None:
            return dict(zip((p.key for p in spec.points), results))
    return {p.key: runner(t) for p, t in zip(spec.points, tasks)}


def run_sweep(spec: SweepSpec, jobs: Any = None) -> Dict[Hashable, Any]:
    """Run every point of ``spec``; return ``{key: result}`` with keys in
    submission order (dict insertion order == ``spec.points`` order).

    With ``jobs > 1`` the points execute in a process pool; results are
    still collected in submission order, so the returned mapping — and
    anything formatted from it — is identical to the serial run.
    """
    jobs = resolve_jobs(jobs)
    if jobs > 1 and len(spec.points) > 1:
        results = _run_parallel(spec, min(jobs, len(spec.points)))
        if results is not None:
            return dict(zip((p.key for p in spec.points), results))
    return {p.key: p.run() for p in spec.points}


def _run_parallel(spec: SweepSpec, jobs: int) -> Any:
    """Fan the points out to ``jobs`` workers; None means "fall back to
    serial" (pool setup failed — sandboxed /dev/shm, missing fork, ...)."""
    return _map_parallel(spec.name, _run_point, spec.points, jobs)


def _map_parallel(name: str, fn: Callable[[Any], Any],
                  items: Sequence[Any], jobs: int) -> Any:
    """``list(map(fn, items))`` across ``jobs`` worker processes, results
    in submission order; None means "fall back to serial"."""
    try:
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        # fork is measurably cheaper than spawn and inherits sys.path;
        # platforms without it (Windows) use their default start method.
        context = (multiprocessing.get_context("fork")
                   if sys.platform != "win32" and
                   "fork" in multiprocessing.get_all_start_methods()
                   else multiprocessing.get_context())
        with ProcessPoolExecutor(max_workers=jobs,
                                 mp_context=context) as pool:
            # map() yields results in submission order regardless of
            # which worker finishes first — the determinism keystone.
            return list(pool.map(fn, items))
    except (ImportError, OSError, PermissionError, NotImplementedError) as exc:
        warnings.warn(
            f"sweep {name!r}: process pool unavailable ({exc}); "
            "running serial", RuntimeWarning, stacklevel=3)
        return None
