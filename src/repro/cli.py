"""Command-line entry point: regenerate any paper table or figure.

Usage::

    python -m repro <experiment> [options]
    python -m repro lint [paths ...] [--format json]

Experiments: ``fig3 fig4 fig5 fig6 fig8 table3 table4 sec7 all``; the
``lint`` subcommand runs reprolint (see ``docs/LINT.md``).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict

from repro.sim.parallel import SweepPoint, SweepSpec, resolve_jobs, run_sweep

from repro.experiments import (
    fig3_d2h,
    fig4_d2d,
    fig5_h2d,
    fig6_transfer,
    fig8_tail_latency,
    sec7_accounting,
    table3_coherence,
    table4_breakdown,
)
from repro.units import ms


def _run_fig3(args) -> str:
    return fig3_d2h.format_table(fig3_d2h.run(reps=args.reps))


def _run_fig4(args) -> str:
    return fig4_d2d.format_table(fig4_d2d.run(reps=args.reps))


def _run_fig5(args) -> str:
    return fig5_h2d.format_table(fig5_h2d.run(reps=args.reps))


def _run_fig6(args) -> str:
    return fig6_transfer.format_table(
        fig6_transfer.run(reps=max(2, args.reps // 4), jobs=args.jobs))


def _run_fig8(args) -> str:
    scenario = fig8_tail_latency.ScenarioConfig(
        duration_ns=ms(args.duration_ms))
    workloads = tuple(args.workloads)
    result = fig8_tail_latency.run(workloads=workloads, scenario=scenario,
                                   jobs=args.jobs)
    return fig8_tail_latency.format_table(result)


def _run_table3(args) -> str:
    return table3_coherence.format_table(table3_coherence.run())


def _run_table4(args) -> str:
    return table4_breakdown.format_table(table4_breakdown.run(reps=args.reps))


def _run_sec7(args) -> str:
    scenario = fig8_tail_latency.ScenarioConfig(
        duration_ns=ms(args.duration_ms))
    return sec7_accounting.format_table(
        sec7_accounting.run(scenario=scenario, jobs=args.jobs))


def _run_report(args) -> str:
    from repro.analysis.report import generate
    report = generate(fig8_duration_ms=args.duration_ms,
                      reps=args.reps, include_fig8=not args.quick)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(report)
        return f"report written to {args.output}"
    return report


def _run_calibration(args) -> str:
    from repro.analysis.calibration import render
    return render()


def _run_faults(args) -> str:
    from repro.experiments import ext_fault_resilience
    if args.fault_plan:
        cell = ext_fault_resilience.run_cell(
            f"cxl {args.fault_plan}", transport="cxl",
            fault_spec=args.fault_plan)
        result = ext_fault_resilience.FaultResilienceResult(
            {cell.scenario: cell}, ())
        return ext_fault_resilience.format_table(result)
    return ext_fault_resilience.format_table(
        ext_fault_resilience.run(jobs=args.jobs))


def _run_ext_degradation(args) -> str:
    from repro.experiments import ext_degradation
    # A fifth of the fig8 duration: the storm grid runs 5 cells whose
    # per-op cost is dominated by the (expensive) fault windows.
    result = ext_degradation.run(duration_ns=ms(args.duration_ms / 5.0),
                                 jobs=args.jobs)
    return ext_degradation.format_table(result)


def _run_speed(args) -> str:
    from repro.analysis.speed import measure, render, write_json
    payload = measure(rounds=args.rounds)
    if args.output:
        write_json(payload, args.output)
    return render(payload)


def _run_ext_scale(args) -> str:
    from repro.experiments import ext_scale
    # The tolerance check only makes sense with a streamed headline.
    mode = "stream" if args.compare_exact else None
    result = ext_scale.run(requests=args.requests, mode=mode,
                           compare_exact=args.compare_exact)
    # The RSS trace is wall-clock process state — operator feedback on
    # stderr, never part of the deterministic stdout record.
    print(ext_scale.format_rss_trace(result), file=sys.stderr)
    return ext_scale.format_table(result)


def _run_ext_rack(args) -> str:
    from repro.experiments import ext_rack
    result = ext_rack.run(hosts=args.hosts, users=args.users,
                          jobs=args.jobs)
    # The RSS trace is wall-clock process state — operator feedback on
    # stderr, never part of the deterministic stdout record.
    print(ext_rack.format_rss_trace(result), file=sys.stderr)
    return ext_rack.format_table(result)


RUNNERS: Dict[str, Callable] = {
    "report": _run_report,
    "speed": _run_speed,
    "ext_scale": _run_ext_scale,
    "ext_rack": _run_ext_rack,
    "calibration": _run_calibration,
    "faults": _run_faults,
    "ext_degradation": _run_ext_degradation,
    "fig3": _run_fig3,
    "fig4": _run_fig4,
    "fig5": _run_fig5,
    "fig6": _run_fig6,
    "fig8": _run_fig8,
    "table3": _run_table3,
    "table4": _run_table4,
    "sec7": _run_sec7,
}

#: Experiment -> module whose transitive ``repro.*`` import closure is
#: the experiment's code fingerprint (see repro.analysis.expcache).
#: ``speed`` (prints wall times) and ``report`` (writes files / composes
#: everything) are deliberately absent — they are never cached.
CACHEABLE: Dict[str, str] = {
    "ext_scale": "repro.experiments.ext_scale",
    "ext_rack": "repro.experiments.ext_rack",
    "calibration": "repro.analysis.calibration",
    "faults": "repro.experiments.ext_fault_resilience",
    "ext_degradation": "repro.experiments.ext_degradation",
    "fig3": "repro.experiments.fig3_d2h",
    "fig4": "repro.experiments.fig4_d2d",
    "fig5": "repro.experiments.fig5_h2d",
    "fig6": "repro.experiments.fig6_transfer",
    "fig8": "repro.experiments.fig8_tail_latency",
    "table3": "repro.experiments.table3_coherence",
    "table4": "repro.experiments.table4_breakdown",
    "sec7": "repro.experiments.sec7_accounting",
}


def _cache_key(name: str, args: argparse.Namespace) -> Dict:
    """The content address of one experiment run: code fingerprint plus
    every determinism-relevant argument and ambient mode.  ``--jobs``
    and the byte-identity-pinned toggles are excluded on purpose — see
    repro.analysis.expcache."""
    from repro.analysis.expcache import ambient_modes, module_fingerprint
    return {
        "experiment": name,
        "code": module_fingerprint(CACHEABLE[name]),
        "args": {
            "reps": args.reps,
            "duration_ms": args.duration_ms,
            "workloads": list(args.workloads),
            "fault_plan": args.fault_plan,
            "requests": args.requests,
            "compare_exact": args.compare_exact,
            "hosts": args.hosts,
            "users": args.users,
        },
        "modes": ambient_modes(),
    }


def _run_cached(name: str, args: argparse.Namespace) -> str:
    """Run one experiment through the content-addressed cache: an
    unchanged (code, args, modes) cell is served from disk, skipping
    the simulation entirely — sound because CI pins every experiment's
    stdout as a pure function of exactly that key."""
    from repro.analysis.expcache import ExperimentCache, expcache_enabled
    if (name not in CACHEABLE or not expcache_enabled()
            or getattr(args, "no_expcache", False)):
        return RUNNERS[name](args)
    cache = ExperimentCache()
    key = _cache_key(name, args)
    hit = cache.lookup(key)
    if hit is not None:
        print(f"[{name} served from expcache]", file=sys.stderr)
        return hit
    output = RUNNERS[name](args)
    cache.store(key, output)
    return output


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables/figures of 'Demystifying a CXL "
                    "Type-2 Device' (MICRO 2024) from the simulator.",
    )
    parser.add_argument("experiment",
                        choices=sorted(RUNNERS) + ["all"],
                        help="which table/figure to regenerate")
    parser.add_argument("--reps", type=int, default=20,
                        help="microbenchmark repetitions (default 20)")
    parser.add_argument("--duration-ms", type=float, default=300.0,
                        help="fig8/sec7 simulated duration per cell")
    parser.add_argument("--workloads", nargs="+", default=["a"],
                        choices=["a", "b", "c", "d"],
                        help="YCSB workloads for fig8")
    parser.add_argument("--fault-plan", default=None, metavar="SPEC",
                        help="faults: inject this plan on the cxl backend, "
                             "e.g. 'link_crc=1e-6,device_hang@t=50ms'")
    parser.add_argument("--quick", action="store_true",
                        help="report: skip the (slow) fig8/sec7 section")
    parser.add_argument("--output", default=None,
                        help="report: write markdown to this file; "
                             "speed: write BENCH_speed.json here")
    parser.add_argument("--rounds", type=int, default=3,
                        help="speed: benchmark repetitions (best-of)")
    parser.add_argument("--requests", type=int, default=5_000_000,
                        help="ext_scale: total requests to drive")
    parser.add_argument("--hosts", type=int, default=16,
                        help="ext_rack: simulated hosts in the rack")
    parser.add_argument("--users", type=int, default=10_000_000,
                        help="ext_rack: simulated users to shard")
    parser.add_argument("--compare-exact", action="store_true",
                        help="ext_scale: shadow-run with exact stats and "
                             "report the streamed percentiles' error")
    parser.add_argument("--jobs", "-j", default=None, metavar="N",
                        help="worker processes for parallel sweeps "
                             "(0 or 'auto' = one per CPU; default: "
                             "$REPRO_JOBS or 1).  Results are "
                             "byte-identical for every N.")
    parser.add_argument("--checkpoint", choices=["on", "off"], default=None,
                        help="fork sweep points from a shared warm-up "
                             "snapshot (on, the default) or replay the "
                             "warm-up per point (off).  Byte-identical "
                             "either way; also $REPRO_CHECKPOINT.")
    parser.add_argument("--no-expcache", action="store_true",
                        help="always re-simulate, even when the "
                             "content-addressed experiment cache has the "
                             "cell (also REPRO_EXPCACHE=0; the cache "
                             "directory defaults to .repro_expcache)")
    return parser


def _run_named(name: str, args: argparse.Namespace) -> str:
    """Experiment-level worker for ``repro all`` (module-level so it
    pickles into pool workers).  Routes through the experiment cache,
    so a warm ``repro all`` reads every unchanged cell from disk."""
    return _run_cached(name, args)


def _run_all(names, args, jobs: int):
    """Run several experiments, fanning out across processes when
    ``jobs > 1``.  Workers get ``jobs=1`` so cell-level sweeps inside an
    experiment never nest a second pool."""
    worker_args = argparse.Namespace(**{**vars(args), "jobs": 1})
    spec = SweepSpec("all", tuple(
        SweepPoint(name, _run_named, (name, worker_args))
        for name in names))
    return run_sweep(spec, jobs=jobs)


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv and argv[0] == "lint":
        # The lint subcommand has its own argument surface; dispatch
        # before the experiment parser sees (and rejects) it.
        from repro.lint.cli import main as lint_main
        return lint_main(argv[1:])
    args = build_parser().parse_args(argv)
    args.jobs = resolve_jobs(args.jobs)
    if args.checkpoint is not None:
        from repro.sim.checkpoint import set_checkpoint
        set_checkpoint(args.checkpoint == "on")
    if args.experiment == "all":
        # "report" re-runs everything; "speed" prints wall times, which
        # would make `all` output nondeterministic; "ext_scale" and
        # "ext_rack" are multi-minute scale runs.  All four stay opt-in.
        names = [name for name in sorted(RUNNERS)
                 if name not in ("report", "speed", "ext_scale",
                                 "ext_rack")]
        # Elapsed wall time is operator feedback on stderr, not simulated
        # time — the monotonic clock is the right tool for it.
        start = time.perf_counter()  # reprolint: disable=DET101
        outputs = _run_all(names, args, args.jobs)
        for name in names:
            print(outputs[name])
            print()
        print(f"[all ({len(names)} experiments, jobs={args.jobs}) "
              f"regenerated in {time.perf_counter() - start:.1f}s]",
              file=sys.stderr)
        return 0
    name = args.experiment
    start = time.perf_counter()  # reprolint: disable=DET101
    output = _run_cached(name, args)
    print(output)
    print(f"[{name} regenerated in {time.perf_counter() - start:.1f}s]",
          file=sys.stderr)
    print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
