"""Command-line entry point: regenerate any paper table or figure.

Usage::

    python -m repro <experiment> [options]
    python -m repro lint [paths ...] [--format json]

Experiments: ``fig3 fig4 fig5 fig6 fig8 table3 table4 sec7 all``; the
``lint`` subcommand runs reprolint (see ``docs/LINT.md``).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict

from repro.experiments import (
    fig3_d2h,
    fig4_d2d,
    fig5_h2d,
    fig6_transfer,
    fig8_tail_latency,
    sec7_accounting,
    table3_coherence,
    table4_breakdown,
)
from repro.units import ms


def _run_fig3(args) -> str:
    return fig3_d2h.format_table(fig3_d2h.run(reps=args.reps))


def _run_fig4(args) -> str:
    return fig4_d2d.format_table(fig4_d2d.run(reps=args.reps))


def _run_fig5(args) -> str:
    return fig5_h2d.format_table(fig5_h2d.run(reps=args.reps))


def _run_fig6(args) -> str:
    return fig6_transfer.format_table(fig6_transfer.run(reps=max(2, args.reps // 4)))


def _run_fig8(args) -> str:
    scenario = fig8_tail_latency.ScenarioConfig(
        duration_ns=ms(args.duration_ms))
    workloads = tuple(args.workloads)
    result = fig8_tail_latency.run(workloads=workloads, scenario=scenario)
    return fig8_tail_latency.format_table(result)


def _run_table3(args) -> str:
    return table3_coherence.format_table(table3_coherence.run())


def _run_table4(args) -> str:
    return table4_breakdown.format_table(table4_breakdown.run(reps=args.reps))


def _run_sec7(args) -> str:
    scenario = fig8_tail_latency.ScenarioConfig(
        duration_ns=ms(args.duration_ms))
    return sec7_accounting.format_table(
        sec7_accounting.run(scenario=scenario))


def _run_report(args) -> str:
    from repro.analysis.report import generate
    report = generate(fig8_duration_ms=args.duration_ms,
                      reps=args.reps, include_fig8=not args.quick)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(report)
        return f"report written to {args.output}"
    return report


def _run_calibration(args) -> str:
    from repro.analysis.calibration import render
    return render()


def _run_faults(args) -> str:
    from repro.experiments import ext_fault_resilience
    if args.fault_plan:
        cell = ext_fault_resilience.run_cell(
            f"cxl {args.fault_plan}", transport="cxl",
            fault_spec=args.fault_plan)
        result = ext_fault_resilience.FaultResilienceResult(
            {cell.scenario: cell}, ())
        return ext_fault_resilience.format_table(result)
    return ext_fault_resilience.format_table(ext_fault_resilience.run())


RUNNERS: Dict[str, Callable] = {
    "report": _run_report,
    "calibration": _run_calibration,
    "faults": _run_faults,
    "fig3": _run_fig3,
    "fig4": _run_fig4,
    "fig5": _run_fig5,
    "fig6": _run_fig6,
    "fig8": _run_fig8,
    "table3": _run_table3,
    "table4": _run_table4,
    "sec7": _run_sec7,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables/figures of 'Demystifying a CXL "
                    "Type-2 Device' (MICRO 2024) from the simulator.",
    )
    parser.add_argument("experiment",
                        choices=sorted(RUNNERS) + ["all"],
                        help="which table/figure to regenerate")
    parser.add_argument("--reps", type=int, default=20,
                        help="microbenchmark repetitions (default 20)")
    parser.add_argument("--duration-ms", type=float, default=300.0,
                        help="fig8/sec7 simulated duration per cell")
    parser.add_argument("--workloads", nargs="+", default=["a"],
                        choices=["a", "b", "c", "d"],
                        help="YCSB workloads for fig8")
    parser.add_argument("--fault-plan", default=None, metavar="SPEC",
                        help="faults: inject this plan on the cxl backend, "
                             "e.g. 'link_crc=1e-6,device_hang@t=50ms'")
    parser.add_argument("--quick", action="store_true",
                        help="report: skip the (slow) fig8/sec7 section")
    parser.add_argument("--output", default=None,
                        help="report: write markdown to this file")
    return parser


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv and argv[0] == "lint":
        # The lint subcommand has its own argument surface; dispatch
        # before the experiment parser sees (and rejects) it.
        from repro.lint.cli import main as lint_main
        return lint_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.experiment == "all":
        names = [name for name in sorted(RUNNERS) if name != "report"]
    else:
        names = [args.experiment]
    for name in names:
        start = time.time()
        output = RUNNERS[name](args)
        print(output)
        print(f"[{name} regenerated in {time.time() - start:.1f}s]",
              file=sys.stderr)
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
