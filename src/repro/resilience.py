"""repro.resilience: request-level graceful degradation for offload.

PR 1's per-command retry keeps a *single* offload alive through a
transient fault; this layer keeps the *service* alive through device
death and fault storms — the production bar the multi-tenant
cooperative-computing story needs.  Four cooperating mechanisms, all
deterministic (every decision reads only the simulated clock and seeded
state, so armed runs are byte-identical at any ``--jobs`` count):

:class:`CircuitBreaker`
    fronts the cxl transport per device.  CLOSED passes traffic
    through; ``failure_threshold`` consecutive offload failures trip it
    OPEN, after which operations go straight to the cpu path with zero
    waiting.  A deterministic probe timer (backed off per failed probe)
    admits one HALF_OPEN trial; its outcome re-closes or re-opens the
    breaker.  Scheduled ``device_repair``/``link_up`` events
    (:mod:`repro.faults`) pull the next probe forward so recovery is
    storm-driven, not just timer-driven.

hedged requests (:meth:`ResiliencePolicy.offload_op`)
    every policy-routed offload races the cxl attempt against a cpu
    backup fired after a hedge delay derived from the *observed* cxl
    completion P99 (streaming estimator; a floor covers the cold
    start).  First completion wins; the losing timer is cancelled
    through the timer wheel, and an abandoned primary still reports its
    outcome to the breaker when it eventually resolves.

:class:`AdmissionController`
    per-tenant QoS load shedding.  While the breaker is not CLOSED
    (brownout) or the doorbell backlog exceeds a watermark, priority-0
    (gold) tenants pass freely and lower priorities must win a token
    from a deterministic token bucket — shed requests cost zero
    simulated work.

:class:`SloAccounting`
    per-tenant streaming P50/P99/P99.9
    (:class:`~repro.sim.stats.StreamingLatencyStats`), SLO-violation
    counts against an error budget, and the shed/hedge/breaker-trip
    counters the ``ext_degradation`` experiment reports.

Disarmed cost is zero by the NO_FAULTS pattern: components default to
:data:`NO_RESILIENCE`, whose ``armed`` attribute is the only thing the
hot paths ever read, so a run without a policy is bit-identical to one
built before this module existed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Generator, Optional, Sequence

from repro.errors import ConfigError, FaultError
from repro.sim.stats import StreamingLatencyStats
from repro.units import us

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.offload import OffloadEngine, OffloadReport


# ---------------------------------------------------------------------------
# tenants and configuration
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Tenant:
    """One QoS class sharing the offload device.

    ``priority`` 0 is gold — never shed.  ``slo_p99_ns`` is the target
    the accounting judges each request against; ``error_budget`` is the
    tolerated fraction of violating requests (SRE-style).
    """

    name: str
    priority: int = 1
    slo_p99_ns: float = us(150.0)
    error_budget: float = 0.01

    def __post_init__(self) -> None:
        if self.priority < 0:
            raise ConfigError(f"tenant priority must be >= 0: {self}")
        if self.slo_p99_ns <= 0:
            raise ConfigError(f"tenant SLO must be positive: {self}")
        if not 0.0 < self.error_budget <= 1.0:
            raise ConfigError(f"error budget must be in (0, 1]: {self}")


#: The ambient tenant for callers that don't segment their traffic.
DEFAULT_TENANT = Tenant("default", priority=1)

#: The three-class split the degradation experiment uses.
DEFAULT_TENANTS = (
    Tenant("gold", priority=0, slo_p99_ns=us(150.0), error_budget=0.001),
    Tenant("silver", priority=1, slo_p99_ns=us(250.0), error_budget=0.01),
    Tenant("bronze", priority=2, slo_p99_ns=us(400.0), error_budget=0.05),
)


@dataclass(frozen=True)
class ResilienceConfig:
    """Every knob of the degradation layer (docs/RESILIENCE.md)."""

    #: consecutive cxl failures that trip the breaker OPEN
    breaker_threshold: int = 3
    #: delay from trip (or failed probe) to the next HALF_OPEN probe
    breaker_probe_interval_ns: float = us(200.0)
    #: multiplier applied to the probe interval per failed probe
    breaker_probe_backoff: float = 2.0
    #: completion quantile the hedge delay chases (0.99 = P99)
    hedge_quantile: float = 0.99
    #: observed cxl completions needed before the quantile is trusted
    hedge_min_samples: int = 24
    #: hedge delay = multiplier * observed quantile
    hedge_multiplier: float = 1.5
    #: hedge delay before enough samples exist (and the delay's floor)
    hedge_floor_ns: float = 30_000.0
    #: doorbell backlog (inflight commands) that triggers shedding
    shed_queue_watermark: int = 8
    #: brownout token refill rate for non-gold tenants (tokens per ns)
    brownout_rate_per_ns: float = 1.0 / us(50.0)
    #: token bucket burst capacity
    brownout_burst: float = 4.0

    def __post_init__(self) -> None:
        if self.breaker_threshold < 1:
            raise ConfigError(
                f"breaker_threshold must be >= 1: {self.breaker_threshold}")
        if self.breaker_probe_interval_ns <= 0:
            raise ConfigError("breaker_probe_interval_ns must be positive: "
                              f"{self.breaker_probe_interval_ns}")
        if self.breaker_probe_backoff < 1.0:
            raise ConfigError(
                f"breaker_probe_backoff must be >= 1: "
                f"{self.breaker_probe_backoff}")
        if not 0.0 < self.hedge_quantile < 1.0:
            raise ConfigError(
                f"hedge_quantile must be in (0, 1): {self.hedge_quantile}")
        if self.hedge_min_samples < 5:
            raise ConfigError(
                f"hedge_min_samples must be >= 5: {self.hedge_min_samples}")
        if self.hedge_multiplier <= 0 or self.hedge_floor_ns <= 0:
            raise ConfigError("hedge multiplier and floor must be positive")
        if self.shed_queue_watermark < 1:
            raise ConfigError(
                f"shed_queue_watermark must be >= 1: "
                f"{self.shed_queue_watermark}")
        if self.brownout_rate_per_ns <= 0 or self.brownout_burst < 1:
            raise ConfigError("brownout token bucket needs rate > 0 and "
                              "burst >= 1")


# ---------------------------------------------------------------------------
# the inert singleton (disarmed = zero cost)
# ---------------------------------------------------------------------------


class _NoResilience:
    """The disarmed policy: components test one attribute and proceed
    exactly as they did before this layer existed."""

    __slots__ = ()
    armed = False

    def admit(self, tenant: Optional[Tenant] = None) -> bool:
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NO_RESILIENCE"

    def __reduce__(self) -> str:
        # Restore to the module global so disarmed-policy checks that
        # compare identity survive a checkpoint round-trip.
        return "NO_RESILIENCE"


NO_RESILIENCE = _NoResilience()


# ---------------------------------------------------------------------------
# circuit breaker
# ---------------------------------------------------------------------------


class BreakerState(enum.Enum):
    """The classic three-state breaker (Nygard, *Release It!*)."""

    CLOSED = "closed"          # traffic flows; failures counted
    OPEN = "open"              # fail fast to the cpu path
    HALF_OPEN = "half-open"    # one probe in flight

    def __str__(self) -> str:  # pragma: no cover - display helper
        return self.value


class CircuitBreaker:
    """CLOSED -> OPEN -> HALF_OPEN breaker with deterministic probing.

    Pure poll-based state machine: no timers of its own — every
    decision happens inside :meth:`allow` / :meth:`record_failure` /
    :meth:`record_success` with the caller's clock, which keeps the
    armed event trajectory independent of how many breakers exist.
    """

    def __init__(self, threshold: int, probe_interval_ns: float,
                 probe_backoff: float = 2.0):
        self.threshold = threshold
        self.probe_interval_ns = probe_interval_ns
        self.probe_backoff = probe_backoff
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.trips = 0
        self.probes = 0
        self.opened_at_ns = 0.0
        self.next_probe_at_ns = float("inf")
        self._backoff_mult = 1.0
        self.transitions: list[tuple[float, BreakerState]] = []

    def _move(self, now: float, new: BreakerState) -> None:
        if new is not self.state:
            self.transitions.append((now, new))
            self.state = new

    def allow(self, now: float) -> bool:
        """May the next operation try the primary (cxl) path?

        OPEN admits exactly one probe once its deadline passes (moving
        to HALF_OPEN); concurrent operations during the probe — and all
        traffic before the deadline — go straight to the backup path.
        """
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN and now >= self.next_probe_at_ns:
            self.probes += 1
            self.next_probe_at_ns = float("inf")
            self._move(now, BreakerState.HALF_OPEN)
            return True
        return False

    def record_success(self, now: float) -> None:
        """A primary-path operation completed cleanly."""
        if self.state is not BreakerState.CLOSED:
            # Probe success — or a late success from an abandoned
            # primary while OPEN: either way the device answered.
            self._backoff_mult = 1.0
            self.next_probe_at_ns = float("inf")
            self._move(now, BreakerState.CLOSED)
        self.consecutive_failures = 0

    def record_failure(self, now: float) -> None:
        """A primary-path operation failed."""
        if self.state is BreakerState.HALF_OPEN:
            self._backoff_mult *= self.probe_backoff
            self._open(now)
        elif self.state is BreakerState.CLOSED:
            self.consecutive_failures += 1
            if self.consecutive_failures >= self.threshold:
                self._backoff_mult = 1.0
                self._open(now)
        # OPEN: late failures from abandoned primaries change nothing.

    def _open(self, now: float) -> None:
        self.trips += 1
        self.opened_at_ns = now
        self.next_probe_at_ns = (
            now + self.probe_interval_ns * self._backoff_mult)
        self._move(now, BreakerState.OPEN)

    def note_repair(self, now: float) -> None:
        """A scheduled repair landed: pull the next probe to *now*."""
        if self.state is BreakerState.OPEN:
            self._backoff_mult = 1.0
            self.next_probe_at_ns = now


# ---------------------------------------------------------------------------
# load shedding
# ---------------------------------------------------------------------------


class TokenBucket:
    """Deterministic token bucket with lazy refill from the sim clock."""

    __slots__ = ("rate_per_ns", "burst", "level", "last_ns",
                 "granted", "denied")

    def __init__(self, rate_per_ns: float, burst: float):
        self.rate_per_ns = rate_per_ns
        self.burst = burst
        self.level = burst
        self.last_ns = 0.0
        self.granted = 0
        self.denied = 0

    def try_take(self, now: float) -> bool:
        elapsed = now - self.last_ns
        if elapsed > 0:
            self.level = min(self.burst,
                             self.level + elapsed * self.rate_per_ns)
            self.last_ns = now
        if self.level >= 1.0:
            self.level -= 1.0
            self.granted += 1
            return True
        self.denied += 1
        return False


class AdmissionController:
    """Per-tenant admission: free in fair weather, token-gated for
    non-gold tenants during brownout or backlog."""

    def __init__(self, cfg: ResilienceConfig):
        self.cfg = cfg
        self._buckets: Dict[str, TokenBucket] = {}
        self.admitted = 0
        self.shed = 0

    def _bucket(self, tenant: Tenant) -> TokenBucket:
        bucket = self._buckets.get(tenant.name)
        if bucket is None:
            bucket = TokenBucket(self.cfg.brownout_rate_per_ns,
                                 self.cfg.brownout_burst)
            self._buckets[tenant.name] = bucket
        return bucket

    def admit(self, tenant: Tenant, now: float, queue_depth: int,
              brownout: bool) -> bool:
        if not brownout and queue_depth < self.cfg.shed_queue_watermark:
            self.admitted += 1
            return True
        if tenant.priority <= 0:
            self.admitted += 1          # gold is never shed
            return True
        if self._bucket(tenant).try_take(now):
            self.admitted += 1
            return True
        self.shed += 1
        return False


# ---------------------------------------------------------------------------
# SLO accounting
# ---------------------------------------------------------------------------


class TenantSlo:
    """Per-tenant request ledger: streaming tail points + budget."""

    __slots__ = ("tenant", "stats", "requests", "shed", "violations")

    def __init__(self, tenant: Tenant):
        self.tenant = tenant
        self.stats = StreamingLatencyStats()       # P50/P99/P99.9
        self.requests = 0
        self.shed = 0
        self.violations = 0

    @property
    def violation_rate(self) -> float:
        return self.violations / self.requests if self.requests else 0.0

    @property
    def budget_used(self) -> float:
        """Fraction of the error budget consumed (>1 = SLO blown)."""
        return self.violation_rate / self.tenant.error_budget

    def report(self) -> Dict[str, Any]:
        return {
            "tenant": self.tenant.name,
            "priority": self.tenant.priority,
            "requests": self.requests,
            "shed": self.shed,
            "p50_ns": self.stats.percentile_or(50.0),
            "p99_ns": self.stats.percentile_or(99.0),
            "p999_ns": self.stats.percentile_or(99.9),
            "slo_p99_ns": self.tenant.slo_p99_ns,
            "violations": self.violations,
            "violation_rate": self.violation_rate,
            "budget_used": self.budget_used,
        }


class SloAccounting:
    """The per-tenant ledgers, keyed by tenant name (auto-registering
    so ad-hoc tenants still get counted)."""

    def __init__(self, tenants: Sequence[Tenant] = ()):
        self._cells: Dict[str, TenantSlo] = {
            t.name: TenantSlo(t) for t in tenants}

    def cell(self, tenant: Tenant) -> TenantSlo:
        got = self._cells.get(tenant.name)
        if got is None:
            got = TenantSlo(tenant)
            self._cells[tenant.name] = got
        return got

    def record(self, tenant: Tenant, latency_ns: float) -> None:
        cell = self.cell(tenant)
        cell.requests += 1
        cell.stats.record(latency_ns)
        if latency_ns > tenant.slo_p99_ns:
            cell.violations += 1

    def record_shed(self, tenant: Tenant) -> None:
        self.cell(tenant).shed += 1

    def report(self) -> list[Dict[str, Any]]:
        return [self._cells[name].report()
                for name in sorted(self._cells)]


# ---------------------------------------------------------------------------
# the policy facade
# ---------------------------------------------------------------------------


class _OpFailed:
    """Sentinel return of a shielded attempt: carries the exception
    instead of failing the process, so hedge races never propagate a
    failure through ``any_of``."""

    __slots__ = ("exc",)

    def __init__(self, exc: BaseException):
        self.exc = exc


_OP_METHODS = {
    "compress": "compress_page",
    "decompress": "decompress_page",
    "hash": "hash_page",
    "compare": "compare_pages",
}


class ResiliencePolicy:
    """One armed degradation policy wrapping one :class:`OffloadEngine`.

    Construction arms the engine's health monitor for probing (so a
    FAILED device can recover) and registers a repair listener on the
    platform's fault plan (so ``device_repair``/``link_up`` pull the
    breaker's and the monitor's next probe forward).
    """

    armed = True

    def __init__(self, engine: "OffloadEngine",
                 cfg: Optional[ResilienceConfig] = None,
                 tenants: Sequence[Tenant] = DEFAULT_TENANTS):
        self.engine = engine
        self.cfg = cfg = cfg or ResilienceConfig()
        self.breaker = CircuitBreaker(cfg.breaker_threshold,
                                      cfg.breaker_probe_interval_ns,
                                      cfg.breaker_probe_backoff)
        self.admission = AdmissionController(cfg)
        self.slo = SloAccounting(tenants)
        # Observed cxl completion times feed the hedge delay.
        self._completion_stats = StreamingLatencyStats(
            quantiles=(0.50, cfg.hedge_quantile))
        self.hedges_fired = 0
        self.hedge_wins = 0          # backup finished first
        self.hedge_losses = 0        # primary finished first after all
        self.cpu_fallbacks = 0       # breaker open / failed primary
        self.repairs_seen = 0
        # Arm the health monitor's probe path so FAILED isn't terminal.
        engine.health.probe_interval_ns = cfg.breaker_probe_interval_ns
        engine.health.probe_backoff = cfg.breaker_probe_backoff
        faults = engine.p.faults
        listeners = getattr(faults, "repair_listeners", None)
        if listeners is not None:
            listeners.append(self._on_repair)

    # -- plumbing ----------------------------------------------------------

    @property
    def sim(self):
        return self.engine.p.sim

    def _on_repair(self, name: str, now: float) -> None:
        self.repairs_seen += 1
        self.breaker.note_repair(now)
        self.engine.health.note_repair(now)

    def snapshot(self) -> Dict[str, Any]:
        """The counter block experiments report."""
        return {
            "hedges_fired": self.hedges_fired,
            "hedge_wins": self.hedge_wins,
            "hedge_losses": self.hedge_losses,
            "cpu_fallbacks": self.cpu_fallbacks,
            "shed": self.admission.shed,
            "admitted": self.admission.admitted,
            "breaker_trips": self.breaker.trips,
            "breaker_probes": self.breaker.probes,
            "breaker_state": self.breaker.state.value,
            "repairs_seen": self.repairs_seen,
        }

    # -- admission (app-facing) --------------------------------------------

    def admit(self, tenant: Optional[Tenant] = None) -> bool:
        """Admission decision for one request; sheds are counted
        against the tenant's ledger.  Zero simulated time either way."""
        tenant = tenant or DEFAULT_TENANT
        brownout = self.breaker.state is not BreakerState.CLOSED
        ok = self.admission.admit(tenant, self.sim.now,
                                  self.engine.doorbell.queue_depth,
                                  brownout)
        if not ok:
            self.slo.record_shed(tenant)
        return ok

    def record_request(self, tenant: Optional[Tenant],
                       latency_ns: float) -> None:
        self.slo.record(tenant or DEFAULT_TENANT, latency_ns)

    # -- hedged offload (kernel-facing) ------------------------------------

    def hedge_delay_ns(self) -> float:
        """How long to trust the primary before firing the cpu backup."""
        stats = self._completion_stats
        if stats.count < self.cfg.hedge_min_samples:
            return self.cfg.hedge_floor_ns
        delay = (self.cfg.hedge_multiplier
                 * stats.percentile(self.cfg.hedge_quantile * 100.0))
        return max(self.cfg.hedge_floor_ns, delay)

    def offload_op(self, op: str, **kwargs: Any
                   ) -> Generator[Any, Any, "OffloadReport"]:
        """One policy-routed offload: breaker -> hedged race -> fallback.

        Timed process.  Never raises :class:`FaultError` — the cpu path
        is the backstop — so callers need no try/except of their own.
        """
        sim = self.sim
        method = getattr(self.engine, _OP_METHODS[op])
        if not self.breaker.allow(sim.now):
            self.cpu_fallbacks += 1
            return (yield from method("cpu", **kwargs))
        started = sim.now
        primary = sim.spawn(self._shielded_cxl(method, kwargs, started),
                            f"resilience.{op}")
        hedge = sim.timer(self.hedge_delay_ns())
        index, value = yield sim.any_of([primary.done, hedge.event])
        if index == 0:
            # Primary resolved inside the hedge window: cancel the
            # loser through the timer wheel (O(1) tombstone).
            hedge.cancel()
            if not isinstance(value, _OpFailed):
                return value
            self.cpu_fallbacks += 1
            return (yield from method("cpu", **kwargs))
        # Hedge delay elapsed with the primary still in flight.
        self.hedges_fired += 1
        backup = sim.spawn(self._shielded(method("cpu", **kwargs)),
                           f"resilience.{op}.hedge")
        index, value = yield sim.any_of([primary.done, backup.done])
        if index == 0:
            if not isinstance(value, _OpFailed):
                self.hedge_losses += 1   # primary won; backup finishes idle
                return value
            value = yield backup.done    # primary failed mid-hedge
        else:
            self.hedge_wins += 1
        if isinstance(value, _OpFailed):
            raise value.exc              # cpu backstop failed: re-raise
        return value

    def _shielded_cxl(self, method: Any, kwargs: Dict[str, Any],
                      started: float) -> Generator[Any, Any, Any]:
        """The primary attempt: runs the cxl path, reports its outcome
        to the breaker *at completion time* (abandoned primaries still
        count — essential for tripping during hang storms, where the
        backup always wins the race), and converts failure into an
        :class:`_OpFailed` sentinel so racing waiters never see it."""
        sim = self.sim
        try:
            report = yield from method("cxl", **kwargs)
        except FaultError as exc:
            self.breaker.record_failure(sim.now)
            return _OpFailed(exc)
        self.breaker.record_success(sim.now)
        self._completion_stats.record(sim.now - started)
        return report

    def _shielded(self, gen: Generator) -> Generator[Any, Any, Any]:
        """Failure-shielding wrapper for the backup attempt."""
        try:
            result = yield from gen
        except FaultError as exc:     # pragma: no cover - cpu can't fault
            return _OpFailed(exc)
        return result
