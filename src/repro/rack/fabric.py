"""Deterministic cross-shard message fabric.

Hosts exchange messages (cross-shard requests, replies, NACK bounces,
rebalance migrations) through a simulated switch.  Determinism rests on
three rules:

* **latency is simulated, not wall-clock** — a wire sent at
  ``send_ns`` arrives at ``send_ns + base_ns + nbytes * per_byte_ns``;
* **conservative lookahead** — ``base_ns >= epoch_ns`` (validated), so
  a message sent during epoch ``k`` can only arrive in epoch ``k+1`` or
  later: shards never need mid-epoch input from each other, which is
  what lets them run as parallel processes;
* **total delivery order** — each epoch's inbound wires are sorted by
  ``(arrival_ns, src, seq)``.  ``(src, seq)`` is unique per wire, so
  the order is total and independent of which worker produced which
  outbox first.  Any interleaving of shard execution yields the same
  delivery sequence, byte for byte.

Batching: :meth:`FabricPort.send_bulk` puts a whole per-destination
batch on one wire (one header, ``item_bytes`` per record).  Issuing one
wire per request inside the serving loop is the shape lint rule PERF405
flags — see docs/LINT.md.

Framing: with the packed codec (default; ``REPRO_WIRE_CODEC=0`` pins
the legacy tuple payloads) a wire carries one ``struct``-packed
columnar frame — fixed-width lanes per field, migration value blobs
deduplicated through the page-store content hash — instead of a tuple
of per-item Python objects.  Crossing a process boundary then pickles
one ``bytes`` object per wire rather than every record; decode is lazy
and reproduces the exact tuples the legacy payload would have carried,
so the codec is invisible to the trajectory (``nbytes``, the *modelled*
wire size, never depends on it).  docs/RACK.md#epoch-fast-forward--wire-framing
has the determinism contract.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.kernel.workcache import cached_xxhash32


class FabricStats:
    """Coordinator-side fabric counters (mirrors ``WHEEL_STATS``).

    Process-global and cumulative; :func:`repro.rack.cluster.run_rack`
    snapshots before/after to report per-run deltas.  Everything here
    is measured on the coordinator, so the numbers are identical at any
    ``--jobs``.
    """

    __slots__ = ("epochs_run", "epochs_skipped", "ff_jumps",
                 "demoted_inflight", "demoted_backlog",
                 "demoted_directives", "demoted_kill",
                 "wires", "frames", "framed_bytes", "bounces")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.epochs_run = 0        # epochs actually stepped
        self.epochs_skipped = 0    # epochs fast-forwarded over
        self.ff_jumps = 0          # distinct fast-forward jumps
        self.demoted_inflight = 0  # idle but wires still in flight
        self.demoted_backlog = 0   # idle but shard backlog pending
        self.demoted_directives = 0  # idle but directives queued
        self.demoted_kill = 0      # jump clamped by an armed kill plan
        self.wires = 0             # wires routed through Fabric.push
        self.frames = 0            # of which packed-codec frames
        self.framed_bytes = 0      # actual frame bytes routed
        self.bounces = 0           # NACK bounces off retired hosts

    def snapshot(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}


FABRIC_STATS = FabricStats()

_forced_codec: Optional[bool] = None


def set_wire_codec(enabled: Optional[bool]) -> None:
    """Force the packed wire codec on/off (None = env/default).  Takes
    effect for subsequently constructed :class:`FabricPort` instances —
    the speed harness toggles it between cells.  Forced values do not
    cross process boundaries; spawned shard workers read the
    environment, so cross-worker tests must set ``REPRO_WIRE_CODEC``."""
    global _forced_codec
    if enabled not in (None, True, False):
        raise ValueError(
            f"set_wire_codec expects True/False/None, got {enabled!r}")
    _forced_codec = enabled


def wire_codec_enabled() -> bool:
    """Packed columnar frames unless ``REPRO_WIRE_CODEC=0`` (or a forced
    override) pins the legacy per-item tuple payloads."""
    if _forced_codec is not None:
        return _forced_codec
    return os.environ.get("REPRO_WIRE_CODEC", "1").lower() \
        not in ("0", "false", "off")


@dataclass(frozen=True)
class FabricConfig:
    """Switch timing/framing parameters (all simulated)."""

    #: Epoch length; also the parallel-execution quantum.
    epoch_ns: float = 500_000.0
    #: Propagation + switch + serialization floor per wire.  Must be at
    #: least ``epoch_ns`` (conservative lookahead; see module docs).
    base_ns: float = 600_000.0
    #: Per-byte serialization cost (~40 GB/s links).
    per_byte_ns: float = 0.025
    #: Framing overhead per wire.
    header_bytes: int = 64
    #: Wire size of one request/reply/migration record.
    item_bytes: int = 96

    def __post_init__(self) -> None:
        if self.epoch_ns <= 0:
            raise ValueError(f"epoch_ns must be positive: {self.epoch_ns}")
        if self.base_ns < self.epoch_ns:
            raise ValueError(
                f"base_ns ({self.base_ns}) < epoch_ns ({self.epoch_ns}): "
                "fabric latency is the conservative lookahead; a message "
                "must never arrive inside its own send epoch")
        if self.per_byte_ns < 0:
            raise ValueError(f"negative per_byte_ns: {self.per_byte_ns}")

    def arrival_ns(self, send_ns: float, nbytes: int) -> float:
        return send_ns + self.base_ns + nbytes * self.per_byte_ns


@dataclass(frozen=True)
class Wire:
    """One message on the fabric."""

    src: int
    dst: int
    kind: str          # "req" | "rep" | "nack" | "migrate"
    send_ns: float
    seq: int           # per-source counter; (src, seq) is unique
    nbytes: int
    payload: Tuple

    @property
    def count(self) -> int:
        return len(self.payload)


def _encode_frame(kind: str, items: Sequence[Tuple]) -> bytes:
    """Pack a batch into one columnar frame.

    req/rep/nack items are flat ``(int, float, ...)`` tuples; the frame
    is self-describing — ``<I n`` · ``<B arity`` · one ``<{n}q`` id lane
    · ``arity - 1`` lanes of ``<{n}d`` — so req (user, issue), rep
    (user, issue, completion) and nack all share one format (which is
    what lets :meth:`Fabric.bounce` reuse a req frame verbatim).
    migrate carries bucket / cursor / record-count lanes, then one key +
    blob-index lane per record, then a deduplicated blob table
    (identical page images — the common case for replayed migrations —
    are stored once, looked up by the page-store content hash with an
    equality chain on collision).
    """
    n = len(items)
    if kind == "migrate":
        buckets: List[int] = []
        cursors: List[int] = []
        reccounts: List[int] = []
        keys: List[int] = []
        blob_idx: List[int] = []
        blobs: List[bytes] = []
        chains: Dict[int, List[int]] = {}
        for bucket, cursor, records in items:
            buckets.append(bucket)
            cursors.append(cursor)
            reccounts.append(len(records))
            for key, value in records:
                keys.append(key)
                chain = chains.setdefault(cached_xxhash32(value), [])
                for bi in chain:
                    if blobs[bi] == value:
                        break
                else:
                    bi = len(blobs)
                    blobs.append(value)
                    chain.append(bi)
                blob_idx.append(bi)
        m = len(keys)
        parts = [struct.pack(f"<II{n}q{n}q{n}I{m}q{m}II", n, m,
                             *buckets, *cursors, *reccounts,
                             *keys, *blob_idx, len(blobs))]
        for blob in blobs:
            parts.append(struct.pack("<I", len(blob)))
            parts.append(blob)
        return b"".join(parts)
    if not n:
        return struct.pack("<IB", 0, 0)
    lanes = tuple(zip(*items))
    arity = len(lanes)
    parts = [struct.pack(f"<IB{n}q", n, arity, *lanes[0])]
    for lane in lanes[1:]:
        parts.append(struct.pack(f"<{n}d", *lane))
    return b"".join(parts)


def _decode_frame(kind: str, frame: bytes) -> Tuple:
    """Inverse of :func:`_encode_frame`; reproduces the exact tuple
    payload the legacy codec would have carried (python ints/floats)."""
    if kind == "migrate":
        n, m = struct.unpack_from("<II", frame, 0)
        off = 8
        buckets = struct.unpack_from(f"<{n}q", frame, off)
        off += 8 * n
        cursors = struct.unpack_from(f"<{n}q", frame, off)
        off += 8 * n
        reccounts = struct.unpack_from(f"<{n}I", frame, off)
        off += 4 * n
        keys = struct.unpack_from(f"<{m}q", frame, off)
        off += 8 * m
        blob_idx = struct.unpack_from(f"<{m}I", frame, off)
        off += 4 * m
        (n_blobs,) = struct.unpack_from("<I", frame, off)
        off += 4
        blobs: List[bytes] = []
        for _ in range(n_blobs):
            (ln,) = struct.unpack_from("<I", frame, off)
            off += 4
            blobs.append(frame[off:off + ln])
            off += ln
        items = []
        r = 0
        for i in range(n):
            rc = reccounts[i]
            items.append((buckets[i], cursors[i],
                          tuple((keys[r + j], blobs[blob_idx[r + j]])
                                for j in range(rc))))
            r += rc
        return tuple(items)
    n, arity = struct.unpack_from("<IB", frame, 0)
    if not n:
        return ()
    off = 5
    lanes = [struct.unpack_from(f"<{n}q", frame, off)]
    off += 8 * n
    for _ in range(1, arity):
        lanes.append(struct.unpack_from(f"<{n}d", frame, off))
        off += 8 * n
    return tuple(zip(*lanes))


class PackedWire:
    """Codec counterpart of :class:`Wire`: identical routing header,
    payload held as one struct-packed frame.  Pickling ships only the
    frame (``__reduce__`` drops the decode cache); ``payload`` decodes
    lazily on first access, in-process and cross-process alike, so
    ``--jobs 1`` and ``--jobs N`` execute the same code path.  ``nbytes``
    remains the *modelled* wire size — the frame's actual length never
    feeds back into arrival times."""

    __slots__ = ("src", "dst", "kind", "send_ns", "seq", "nbytes",
                 "count", "frame", "_items")

    def __init__(self, src: int, dst: int, kind: str, send_ns: float,
                 seq: int, nbytes: int, count: int, frame: bytes):
        self.src = src
        self.dst = dst
        self.kind = kind
        self.send_ns = send_ns
        self.seq = seq
        self.nbytes = nbytes
        self.count = count
        self.frame = frame
        self._items: Optional[Tuple] = None

    @property
    def payload(self) -> Tuple:
        items = self._items
        if items is None:
            items = self._items = _decode_frame(self.kind, self.frame)
        return items

    def __reduce__(self):
        return (PackedWire, (self.src, self.dst, self.kind, self.send_ns,
                             self.seq, self.nbytes, self.count, self.frame))

    def __repr__(self) -> str:
        return (f"PackedWire(src={self.src}, dst={self.dst}, "
                f"kind={self.kind!r}, send_ns={self.send_ns}, "
                f"seq={self.seq}, nbytes={self.nbytes}, "
                f"count={self.count})")


class FabricPort:
    """A shard's transmit side: sequences and frames outbound wires."""

    def __init__(self, sid: int, cfg: FabricConfig):
        self.sid = sid
        self.cfg = cfg
        self._seq = 0
        self._out: List[Wire] = []
        self._packed = wire_codec_enabled()
        self.sent_wires = 0
        self.sent_items = 0
        self.sent_bytes = 0

    def send_bulk(self, dst: int, kind: str, items: Sequence[Tuple],
                  send_ns: float) -> Wire:
        """Frame a whole per-destination batch as one wire."""
        if dst == self.sid:
            raise ValueError(f"shard {self.sid} sending to itself")
        nbytes = self.cfg.header_bytes + len(items) * self.cfg.item_bytes
        if self._packed:
            wire = PackedWire(self.sid, dst, kind, send_ns, self._seq,
                              nbytes, len(items), _encode_frame(kind, items))
        else:
            wire = Wire(self.sid, dst, kind, send_ns, self._seq, nbytes,
                        tuple(items))
        self._seq += 1
        self._out.append(wire)
        self.sent_wires += 1
        self.sent_items += len(items)
        self.sent_bytes += nbytes
        return wire

    def drain(self) -> Tuple[Wire, ...]:
        """This epoch's outbox, in send order; clears the buffer."""
        out = tuple(self._out)
        self._out.clear()
        return out


class Fabric:
    """Coordinator side: routes outboxes into per-epoch deliveries."""

    def __init__(self, cfg: FabricConfig):
        self.cfg = cfg
        self._pending: List[Tuple[float, int, int, Wire]] = []
        self._bounce_seq = 1 << 40
        self.routed_wires = 0
        self.routed_bytes = 0
        self.bounced_wires = 0

    def push(self, wires: Iterable[Wire]) -> None:
        """Accept outbound wires (coordinator calls this in sid order)."""
        stats = FABRIC_STATS
        for wire in wires:
            arrival = self.cfg.arrival_ns(wire.send_ns, wire.nbytes)
            self._pending.append((arrival, wire.src, wire.seq, wire))
            self.routed_wires += 1
            self.routed_bytes += wire.nbytes
            stats.wires += 1
            frame = getattr(wire, "frame", None)
            if frame is not None:
                stats.frames += 1
                stats.framed_bytes += len(frame)

    def bounce(self, wire: Wire, now_ns: float) -> Wire:
        """NACK a wire whose destination is off the ring: the switch
        returns it to the sender with the same payload, paying another
        fabric traversal.  The nack carries the dead destination as its
        src (so requester breakers attribute the failure); bounce seqs
        come from a fabric-owned counter offset far above any port's own
        range, keeping ``(src, seq)`` unique."""
        nbytes = self.cfg.header_bytes + wire.count * self.cfg.item_bytes
        frame = getattr(wire, "frame", None)
        if frame is not None:
            # req and nack share a frame format: reuse the encoded
            # bytes, no decode/re-encode round-trip.
            nack: Wire = PackedWire(wire.dst, wire.src, "nack", now_ns,
                                    self._bounce_seq, nbytes, wire.count,
                                    frame)
        else:
            nack = Wire(wire.dst, wire.src, "nack", now_ns, self._bounce_seq,
                        nbytes, wire.payload)
        self._bounce_seq += 1
        self.bounced_wires += 1
        FABRIC_STATS.bounces += 1
        self.push((nack,))
        return nack

    def deliveries(self, t0: float, t1: float) -> Dict[int, Tuple[Wire, ...]]:
        """Wires arriving in ``[t0, t1)``, grouped by destination, each
        group sorted by ``(arrival_ns, src, seq)`` — the total order."""
        due: List[Tuple[float, int, int, Wire]] = []
        keep: List[Tuple[float, int, int, Wire]] = []
        for entry in self._pending:
            (due if t0 <= entry[0] < t1 else keep).append(entry)
        self._pending = keep
        due.sort(key=lambda e: (e[0], e[1], e[2]))
        grouped: Dict[int, List[Wire]] = {}
        for arrival, _src, _seq, wire in due:
            grouped.setdefault(wire.dst, []).append(wire)
        return {dst: tuple(ws) for dst, ws in grouped.items()}

    @property
    def in_flight(self) -> int:
        return len(self._pending)
