"""Deterministic cross-shard message fabric.

Hosts exchange messages (cross-shard requests, replies, NACK bounces,
rebalance migrations) through a simulated switch.  Determinism rests on
three rules:

* **latency is simulated, not wall-clock** — a wire sent at
  ``send_ns`` arrives at ``send_ns + base_ns + nbytes * per_byte_ns``;
* **conservative lookahead** — ``base_ns >= epoch_ns`` (validated), so
  a message sent during epoch ``k`` can only arrive in epoch ``k+1`` or
  later: shards never need mid-epoch input from each other, which is
  what lets them run as parallel processes;
* **total delivery order** — each epoch's inbound wires are sorted by
  ``(arrival_ns, src, seq)``.  ``(src, seq)`` is unique per wire, so
  the order is total and independent of which worker produced which
  outbox first.  Any interleaving of shard execution yields the same
  delivery sequence, byte for byte.

Batching: :meth:`FabricPort.send_bulk` puts a whole per-destination
batch on one wire (one header, ``item_bytes`` per record).  Issuing one
wire per request inside the serving loop is the shape lint rule PERF405
flags — see docs/LINT.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple


@dataclass(frozen=True)
class FabricConfig:
    """Switch timing/framing parameters (all simulated)."""

    #: Epoch length; also the parallel-execution quantum.
    epoch_ns: float = 500_000.0
    #: Propagation + switch + serialization floor per wire.  Must be at
    #: least ``epoch_ns`` (conservative lookahead; see module docs).
    base_ns: float = 600_000.0
    #: Per-byte serialization cost (~40 GB/s links).
    per_byte_ns: float = 0.025
    #: Framing overhead per wire.
    header_bytes: int = 64
    #: Wire size of one request/reply/migration record.
    item_bytes: int = 96

    def __post_init__(self) -> None:
        if self.epoch_ns <= 0:
            raise ValueError(f"epoch_ns must be positive: {self.epoch_ns}")
        if self.base_ns < self.epoch_ns:
            raise ValueError(
                f"base_ns ({self.base_ns}) < epoch_ns ({self.epoch_ns}): "
                "fabric latency is the conservative lookahead; a message "
                "must never arrive inside its own send epoch")
        if self.per_byte_ns < 0:
            raise ValueError(f"negative per_byte_ns: {self.per_byte_ns}")

    def arrival_ns(self, send_ns: float, nbytes: int) -> float:
        return send_ns + self.base_ns + nbytes * self.per_byte_ns


@dataclass(frozen=True)
class Wire:
    """One message on the fabric."""

    src: int
    dst: int
    kind: str          # "req" | "rep" | "nack" | "migrate"
    send_ns: float
    seq: int           # per-source counter; (src, seq) is unique
    nbytes: int
    payload: Tuple


class FabricPort:
    """A shard's transmit side: sequences and frames outbound wires."""

    def __init__(self, sid: int, cfg: FabricConfig):
        self.sid = sid
        self.cfg = cfg
        self._seq = 0
        self._out: List[Wire] = []
        self.sent_wires = 0
        self.sent_items = 0
        self.sent_bytes = 0

    def send_bulk(self, dst: int, kind: str, items: Sequence[Tuple],
                  send_ns: float) -> Wire:
        """Frame a whole per-destination batch as one wire."""
        if dst == self.sid:
            raise ValueError(f"shard {self.sid} sending to itself")
        nbytes = self.cfg.header_bytes + len(items) * self.cfg.item_bytes
        wire = Wire(self.sid, dst, kind, send_ns, self._seq, nbytes,
                    tuple(items))
        self._seq += 1
        self._out.append(wire)
        self.sent_wires += 1
        self.sent_items += len(items)
        self.sent_bytes += nbytes
        return wire

    def drain(self) -> Tuple[Wire, ...]:
        """This epoch's outbox, in send order; clears the buffer."""
        out = tuple(self._out)
        self._out.clear()
        return out


class Fabric:
    """Coordinator side: routes outboxes into per-epoch deliveries."""

    def __init__(self, cfg: FabricConfig):
        self.cfg = cfg
        self._pending: List[Tuple[float, int, int, Wire]] = []
        self._bounce_seq = 1 << 40
        self.routed_wires = 0
        self.routed_bytes = 0
        self.bounced_wires = 0

    def push(self, wires: Iterable[Wire]) -> None:
        """Accept outbound wires (coordinator calls this in sid order)."""
        for wire in wires:
            arrival = self.cfg.arrival_ns(wire.send_ns, wire.nbytes)
            self._pending.append((arrival, wire.src, wire.seq, wire))
            self.routed_wires += 1
            self.routed_bytes += wire.nbytes

    def bounce(self, wire: Wire, now_ns: float) -> Wire:
        """NACK a wire whose destination is off the ring: the switch
        returns it to the sender with the same payload, paying another
        fabric traversal.  The nack carries the dead destination as its
        src (so requester breakers attribute the failure); bounce seqs
        come from a fabric-owned counter offset far above any port's own
        range, keeping ``(src, seq)`` unique."""
        nbytes = self.cfg.header_bytes + len(wire.payload) * \
            self.cfg.item_bytes
        nack = Wire(wire.dst, wire.src, "nack", now_ns, self._bounce_seq,
                    nbytes, wire.payload)
        self._bounce_seq += 1
        self.bounced_wires += 1
        self.push((nack,))
        return nack

    def deliveries(self, t0: float, t1: float) -> Dict[int, Tuple[Wire, ...]]:
        """Wires arriving in ``[t0, t1)``, grouped by destination, each
        group sorted by ``(arrival_ns, src, seq)`` — the total order."""
        due: List[Tuple[float, int, int, Wire]] = []
        keep: List[Tuple[float, int, int, Wire]] = []
        for entry in self._pending:
            (due if t0 <= entry[0] < t1 else keep).append(entry)
        self._pending = keep
        due.sort(key=lambda e: (e[0], e[1], e[2]))
        grouped: Dict[int, List[Wire]] = {}
        for arrival, _src, _seq, wire in due:
            grouped.setdefault(wire.dst, []).append(wire)
        return {dst: tuple(ws) for dst, ws in grouped.items()}

    @property
    def in_flight(self) -> int:
        return len(self._pending)
