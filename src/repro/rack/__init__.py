"""Deterministic multi-host rack: sharded KVS over a CXL message fabric.

The paper studies one host/device pair; this package scales the same
platform out the way Cohet/CXL-DMSim treat CXL — as multi-host pooled
infrastructure.  ``N`` simulated hosts (each a full
:class:`~repro.core.platform.Platform` with its own CXL Type-2 device)
shard the KVS by a consistent-hash ring and exchange cross-shard
requests over a deterministic message fabric; shards execute as
long-lived worker processes (``repro.sim.parallel.ShardPool``), and the
whole rack is byte-identical for any ``--jobs``.  See docs/RACK.md.
"""

from repro.rack.cluster import RackConfig, RackResult, run_rack
from repro.rack.fabric import Fabric, FabricConfig, FabricPort, Wire
from repro.rack.ring import HashRing

__all__ = [
    "Fabric",
    "FabricConfig",
    "FabricPort",
    "HashRing",
    "RackConfig",
    "RackResult",
    "Wire",
    "run_rack",
]
