"""Rack coordinator: boot N shard hosts, step them epoch-BSP, rebalance.

:func:`run_rack` is the tentpole entry point.  It measures one shared
:class:`~repro.kernel.daemons.CostProfile` on a calibration platform
(snapshotted via :mod:`repro.sim.checkpoint`, so every shard restores
the identical warm state instead of re-measuring), boots one
:class:`~repro.rack.host.ShardHost` per host on a
:class:`~repro.sim.parallel.ShardPool`, and then runs the epoch loop:

1. collect the fabric's deliveries for ``[t0, t1)`` — wires to retired
   hosts bounce back as nacks;
2. step every shard with its wires + any pending cluster directives
   (reports come back merged in shard-id order, any worker count);
3. route the outboxes into the fabric, in shard-id order;
4. watch health: a shard reporting FAILED is scheduled for rebalance —
   next epoch it receives a ``handoff`` directive (drain its buckets to
   their new owners over the fabric) while everyone else receives the
   post-removal ``ring``.

Because the coordinator is single-threaded and the pool merges reports
in shard-id order, the entire trajectory — and therefore the result —
is a pure function of :class:`~repro.rack.host.RackConfig`, independent
of ``--jobs``.  ``tests/rack/test_cluster.py`` pins this byte-exactly.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.offload import OffloadEngine
from repro.core.platform import Platform
from repro.errors import SimulationError
from repro.faults import HealthState
from repro.kernel.daemons import CostProfile
from repro.rack.fabric import FABRIC_STATS, Fabric
from repro.rack.host import (AVAIL_BUCKETS, RackConfig, ShardHost,
                             FinalReport, rack_calibration_seed)
from repro.sim.checkpoint import Checkpoint, snapshot
from repro.sim.parallel import ShardPool
from repro.sim.stats import StreamingLatencyStats

#: Epochs the rack may keep running past the configured duration to
#: drain in-flight fabric traffic and rebalance backlogs.
DRAIN_EPOCH_LIMIT = 64

_forced_ff: Optional[bool] = None


def set_rack_ff(enabled: Optional[bool]) -> None:
    """Force quiescent-epoch fast-forward on/off (None = env/default).
    Coordinator-side only, so a forced value is honoured at any
    ``--jobs`` (the fast-forward decision never runs in a worker)."""
    global _forced_ff
    if enabled not in (None, True, False):
        raise ValueError(
            f"set_rack_ff expects True/False/None, got {enabled!r}")
    _forced_ff = enabled


def rack_ff_enabled() -> bool:
    """Fast-forward unless ``REPRO_RACK_FF=0`` (or a forced override)
    pins legacy per-epoch stepping."""
    if _forced_ff is not None:
        return _forced_ff
    return os.environ.get("REPRO_RACK_FF", "1").lower() \
        not in ("0", "false", "off")


@dataclass
class RackResult:
    """Everything a rack run produced, merged across shards."""

    cfg: RackConfig
    recorder: StreamingLatencyStats
    served: int
    dropped: int
    nacked: int
    distinct_users: int
    availability: Tuple[int, ...]      # completions per time slice
    epochs: int
    jobs: int
    killed: Optional[int]
    rebalances: int
    migrated_records: int
    remote_sent: int
    remote_served: int
    breaker_trips: int
    bounced_wires: int
    routed_wires: int
    routed_bytes: int
    store_evictions: int
    store_keys: int
    finals: Tuple[FinalReport, ...]
    #: Per-run :data:`~repro.rack.fabric.FABRIC_STATS` delta: epochs
    #: run/skipped, fast-forward jumps and demotions, wires, frames,
    #: framed bytes, bounces.  Telemetry only — never part of stdout.
    fabric_stats: Dict[str, int] = field(default_factory=dict)

    def stats(self) -> Dict[str, float]:
        """Deterministic scalar summary (what the CLI prints)."""
        out = {
            "hosts": self.cfg.hosts,
            "users": self.cfg.users,
            "requests": self.cfg.requests_effective,
            "served": self.served,
            "dropped": self.dropped,
            "nacked": self.nacked,
            "distinct_users": self.distinct_users,
            "epochs": self.epochs,
            "rebalances": self.rebalances,
            "migrated_records": self.migrated_records,
            "remote_sent": self.remote_sent,
            "remote_served": self.remote_served,
            "breaker_trips": self.breaker_trips,
            "routed_wires": self.routed_wires,
            "bounced_wires": self.bounced_wires,
            "store_evictions": self.store_evictions,
            "store_keys": self.store_keys,
            "p50_us": self.recorder.percentile(50) / 1e3,
            "p99_us": self.recorder.percentile(99) / 1e3,
            "mean_us": self.recorder.mean() / 1e3,
        }
        for i, n in enumerate(self.availability):
            out[f"avail_{i}"] = n
        return out


def _calibration_checkpoint(cfg: RackConfig) -> Checkpoint:
    """Measure the shared CostProfile once and snapshot it.

    The calibration platform's seed depends only on ``cfg.seed`` (not on
    any shard id), so warm restores and a from-scratch re-measure yield
    the identical profile — the warm-up is a pure accelerator.
    """
    platform = Platform(seed=rack_calibration_seed(cfg))
    engine = OffloadEngine(platform)
    profile = CostProfile.from_engine(platform, engine, "cxl")
    return snapshot((platform, profile), label="rack-calibration")


def _boot_shard(sid: int, cfg: RackConfig, ckpt: Checkpoint) -> ShardHost:
    """ShardPool boot hook: restore the calibration fork, build a host.

    ``install_ambient=False``: shard processes must not adopt the
    coordinator's snapshotted page-store accounting — each shard's
    platform owns its own.
    """
    _platform, profile = ckpt.restore(install_ambient=False)
    return ShardHost(sid, cfg, profile)


def run_rack(cfg: RackConfig, jobs=None, probe=None,
             probe_every: int = 0) -> RackResult:
    """Run one full rack trajectory; byte-identical for any ``jobs``.

    ``probe`` (with ``probe_every`` > 0) is called as ``probe(epoch)``
    every ``probe_every`` epochs — a coordinator-side hook for
    wall-clock telemetry like RSS sampling.  It must not touch
    simulated state; the trajectory is the same with or without it.
    """
    ckpt = _calibration_checkpoint(cfg)
    sids = list(range(cfg.hosts))
    epoch_ns = cfg.fabric.epoch_ns
    duration = cfg.duration_ns
    n_epochs = int(math.ceil(duration / epoch_ns))
    fabric = Fabric(cfg.fabric)
    ff = rack_ff_enabled()
    stats_before = FABRIC_STATS.snapshot()
    # Epoch containing the armed kill instant: fast-forward must never
    # jump past it while the fault can still fire.
    kill_epoch = (None if cfg.kill is None
                  else int(cfg.kill_at_ns // epoch_ns))

    alive = set(sids)
    retired: set = set()
    to_rebalance: List[int] = []     # FAILED, awaiting handoff directive
    directives: Dict[int, List[tuple]] = {sid: [] for sid in sids}
    availability = [0] * AVAIL_BUCKETS
    dropped_replies = 0
    rebalances = 0
    nacked = 0
    killed: Optional[int] = None

    with ShardPool("rack", sids, _boot_shard, (cfg, ckpt), jobs=jobs) as pool:
        effective_jobs = pool.jobs
        epoch = 0
        while True:
            t0 = epoch * epoch_ns
            t1 = t0 + epoch_ns
            delivered = fabric.deliveries(t0, t1)
            payloads: Dict[int, dict] = {}
            for sid in sids:
                wires = delivered.get(sid, ())
                if sid in retired:
                    # Off the ring: the switch bounces requests back to
                    # their senders; stale replies/nacks are dropped.
                    for wire in wires:
                        if wire.kind == "req":
                            fabric.bounce(wire, t1)
                        else:
                            dropped_replies += 1
                    wires = ()
                payloads[sid] = {"op": "epoch", "epoch": epoch,
                                 "t0": t0, "t1": t1, "wires": wires,
                                 "directives": directives[sid]}
                directives[sid] = []
            reports = pool.step(payloads)
            FABRIC_STATS.epochs_run += 1

            backlog = 0
            for sid in sids:
                rep = reports[sid]
                fabric.push(rep.outbox)
                backlog += rep.backlog
                nacked += rep.nacked
                if rep.retired and sid not in retired:
                    retired.add(sid)
                if (rep.health == HealthState.FAILED.value
                        and sid in alive):
                    alive.discard(sid)
                    to_rebalance.append(sid)
                    killed = sid
            if to_rebalance:
                if len(alive) == 0:
                    raise SimulationError("rack lost every host")
                new_hosts = tuple(sorted(alive))
                for dead in to_rebalance:
                    directives[dead].append(("handoff", new_hosts))
                for sid in sorted(alive):
                    directives[sid].append(("ring", new_hosts))
                rebalances += 1
                to_rebalance = []

            if probe is not None and probe_every > 0 \
                    and epoch % probe_every == 0:
                probe(epoch)
            epoch += 1
            done_load = epoch >= n_epochs
            drained = (fabric.in_flight == 0 and backlog == 0
                       and not any(directives[s] for s in sids))
            if done_load and drained:
                break
            if epoch >= n_epochs + DRAIN_EPOCH_LIMIT:
                raise SimulationError(
                    f"rack failed to drain within {DRAIN_EPOCH_LIMIT} "
                    f"epochs past the run ({fabric.in_flight} wires, "
                    f"backlog {backlog})")

            # Quiescent-epoch fast-forward (docs/RACK.md): every shard
            # reported its next work instant; if the earliest one lies
            # epochs away and nothing is queued on the coordinator, jump
            # the rack clock straight to its epoch.  Horizons are lower
            # bounds, so a pessimistic report only shortens the jump —
            # it never skips work.  The clock lands exactly on an epoch
            # boundary the legacy loop would have reached, so the
            # trajectory is unchanged.
            if ff and not done_load:
                idle_min = min(reports[sid].idle_ns for sid in sids)
                target = (n_epochs if idle_min == float("inf")
                          else min(int(idle_min // epoch_ns), n_epochs))
                uncapped_skip = target - epoch
                if kill_epoch is not None and killed is None:
                    target = min(target, kill_epoch)
                skip = target - epoch
                if skip > 0:
                    # Idle horizons alone don't make an epoch skippable:
                    # in-flight wires, shard backlogs, and queued
                    # directives all need per-epoch stepping.  Demote.
                    if fabric.in_flight:
                        FABRIC_STATS.demoted_inflight += 1
                    elif backlog:
                        FABRIC_STATS.demoted_backlog += 1
                    elif any(directives[s] for s in sids):
                        FABRIC_STATS.demoted_directives += 1
                    else:
                        epoch = target
                        FABRIC_STATS.epochs_skipped += skip
                        FABRIC_STATS.ff_jumps += 1
                        if epoch >= n_epochs:
                            # Eligibility implied drained; jumping to
                            # n_epochs ends the run with the same
                            # ``epochs`` stat the legacy loop reports.
                            break
                elif uncapped_skip > 0:
                    FABRIC_STATS.demoted_kill += 1

        finals = pool.step({sid: {"op": "finalize"} for sid in sids})

    merged = StreamingLatencyStats()
    served = dropped = distinct = migrated = 0
    remote_sent = remote_served = trips = evictions = keys = 0
    for sid in sids:
        fin = finals[sid]
        merged.merge(fin.recorder)
        served += fin.served
        dropped += fin.dropped
        distinct += fin.distinct_users
        for i, n in enumerate(fin.availability):
            availability[i] += n
        migrated += fin.migrated_in
        remote_sent += fin.remote_sent
        remote_served += fin.remote_served
        trips += fin.breaker_trips
        evictions += fin.store_evictions
        keys += fin.store_keys

    return RackResult(
        cfg=cfg, recorder=merged, served=served, dropped=dropped,
        nacked=nacked, distinct_users=distinct,
        availability=tuple(availability), epochs=epoch, jobs=effective_jobs,
        killed=killed, rebalances=rebalances, migrated_records=migrated,
        remote_sent=remote_sent, remote_served=remote_served,
        breaker_trips=trips, bounced_wires=fabric.bounced_wires,
        routed_wires=fabric.routed_wires, routed_bytes=fabric.routed_bytes,
        store_evictions=evictions, store_keys=keys,
        finals=tuple(finals[sid] for sid in sids),
        fabric_stats={name: after - stats_before[name]
                      for name, after in FABRIC_STATS.snapshot().items()},
    )
