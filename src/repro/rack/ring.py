"""Consistent-hash ring: which host owns which key bucket.

The ring places ``vnodes`` virtual points per host on a 32-bit circle
and assigns a key to the first point clockwise of its hash.  Properties
the rack (and the hypothesis suite in ``tests/rack/test_ring.py``)
relies on:

* **determinism** — points come from ``zlib.crc32`` over strings built
  from the ring seed (``hash(str)`` is salted per process; crc32 is
  not), so every shard worker derives the identical ring from the
  shared config, with no ring state on the wire;
* **stability** — a host's points depend only on ``(seed, host)``, so
  removing host ``d`` leaves every other point in place: the only keys
  that change owner are those ``d`` owned (they fall through to the
  next surviving point).  Likewise adding a host only steals keys for
  the points it introduces;
* **immutability** — :meth:`without_host` / :meth:`with_host` return a
  *new* ring equal to one built from scratch with the new host set, so
  "rebuild" and "incrementally update" cannot disagree.
"""

from __future__ import annotations

import bisect
import zlib
from typing import Iterable, Tuple

#: Virtual points per host.  64 keeps the owner histogram within ~20 %
#: of uniform at 16 hosts while the full ring stays ~1k entries.
DEFAULT_VNODES = 64


def _h32(text: str) -> int:
    return zlib.crc32(text.encode("ascii")) & 0xFFFFFFFF


class HashRing:
    """An immutable consistent-hash ring over integer host ids."""

    __slots__ = ("seed", "vnodes", "hosts", "_points", "_owners")

    def __init__(self, hosts: Iterable[int], seed: int,
                 vnodes: int = DEFAULT_VNODES):
        hosts_t: Tuple[int, ...] = tuple(sorted({int(h) for h in hosts}))
        if not hosts_t:
            raise ValueError("a ring needs at least one host")
        if vnodes <= 0:
            raise ValueError(f"vnodes must be positive: {vnodes}")
        self.seed = int(seed)
        self.vnodes = int(vnodes)
        self.hosts = hosts_t
        # Ties (two hosts hashing a point to the same value) order by
        # host id, giving a total order -- owner() is then well defined
        # and removal moves only the removed host's keys.
        pairs = sorted(
            (_h32(f"vnode:{self.seed}:{h}:{v}"), h)
            for h in hosts_t for v in range(self.vnodes))
        self._points = [p for p, _ in pairs]
        self._owners = [o for _, o in pairs]

    def key_point(self, key: int) -> int:
        """Where ``key`` lands on the circle."""
        return _h32(f"key:{self.seed}:{int(key)}")

    def owner(self, key: int) -> int:
        """The host owning ``key``: first point at or clockwise of it."""
        i = bisect.bisect_left(self._points, self.key_point(key))
        if i == len(self._points):
            i = 0
        return self._owners[i]

    def owned(self, host: int, n_keys: int) -> Tuple[int, ...]:
        """Keys in ``range(n_keys)`` this host owns, ascending."""
        return tuple(k for k in range(n_keys) if self.owner(k) == host)

    def without_host(self, host: int) -> "HashRing":
        if host not in self.hosts:
            raise ValueError(f"host {host} not on the ring")
        if len(self.hosts) == 1:
            raise ValueError("cannot remove the last host")
        return HashRing((h for h in self.hosts if h != host),
                        self.seed, self.vnodes)

    def with_host(self, host: int) -> "HashRing":
        if host in self.hosts:
            raise ValueError(f"host {host} already on the ring")
        return HashRing(self.hosts + (int(host),), self.seed, self.vnodes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HashRing):
            return NotImplemented
        return (self.seed == other.seed and self.vnodes == other.vnodes
                and self.hosts == other.hosts)

    def __hash__(self) -> int:
        return hash((self.seed, self.vnodes, self.hosts))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"HashRing(hosts={self.hosts}, seed={self.seed}, "
                f"vnodes={self.vnodes})")
