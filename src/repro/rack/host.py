"""One simulated rack host: a full Platform + CXL device serving a shard.

A :class:`ShardHost` owns a slice of the key space (buckets assigned by
the consistent-hash ring), a bounded hot-tier KVS, ``servers_per_host``
FIFO server lanes, and a real :class:`~repro.core.platform.Platform`
whose CXL link carries a per-epoch heartbeat offload — the RAS hook:
when the link dies (``link_dead`` in the armed
:class:`~repro.faults.FaultPlan`), the heartbeat's retries exhaust the
:class:`~repro.faults.DeviceHealthMonitor` budget and the host reports
FAILED, which is what triggers the cluster's rebalance.

Execution is epoch-BSP: :meth:`step` receives one
``{"op": "epoch", ...}`` payload per epoch — inbound fabric wires plus
cluster directives — and returns an :class:`EpochReport` whose outbox
the coordinator routes.  All serving math is vectorized per epoch
(numpy Lindley recursion per lane), so per-request Python work is one
recorder update and, for writes, one store insert.  Everything a shard
does is a pure function of ``(sid, config, payload sequence)`` — the
determinism contract that lets shards run in any worker process.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.apps.kvs import (BASE_SERVICE_NS, UPDATE_EXTRA_NS,
                            BoundedKeyValueStore)
from repro.core.offload import OffloadEngine
from repro.core.platform import Platform
from repro.errors import FaultError
from repro.faults import FaultPlan
from repro.rack.fabric import FabricConfig, FabricPort, Wire
from repro.rack.ring import HashRing
from repro.resilience import CircuitBreaker
from repro.sim.parallel import derive_seed
from repro.sim.rng import DeterministicRng
from repro.sim.stats import StreamingLatencyStats

#: Nominal mean service time used to size the run duration from the
#: request budget (the measured profile only shifts it by ~1 %).
NOMINAL_SERVICE_NS = BASE_SERVICE_NS + 0.5 * UPDATE_EXTRA_NS + 200.0

#: Time-sliced availability histogram resolution (fractions of the
#: run).  Completions are bucketed by their own completion time, so the
#: histogram is exact at any epoch count.
AVAIL_BUCKETS = 10


@dataclass(frozen=True)
class RackConfig:
    """Everything a rack run is a function of (plus ``--jobs``, which
    only changes wall-clock time)."""

    hosts: int = 16
    users: int = 10_000_000
    #: 0 = derive from ``users`` (1.1 requests per user, so every
    #: bucket's cycle covers all its users with margin).
    requests: int = 0
    seed: int = 42
    buckets: int = 1024
    vnodes: int = 64
    servers_per_host: int = 8
    update_frac: float = 0.5
    remote_frac: float = 0.05
    hot_capacity: int = 65_536
    #: Client updates amortized per CXL page flush (64 B values).
    updates_per_flush: int = 64
    #: Target per-lane utilization; with the nominal service time this
    #: fixes the run duration for a given request budget.
    target_utilization: float = 0.45
    #: ``(victim_sid, fraction_of_duration)`` — arm ``link_dead`` on the
    #: victim at that point of the run; None = no kill.
    kill: Optional[Tuple[int, float]] = None
    fabric: FabricConfig = field(default_factory=FabricConfig)

    def __post_init__(self) -> None:
        if self.hosts < 1:
            raise ValueError(f"need at least one host: {self.hosts}")
        if self.buckets < self.hosts:
            raise ValueError(
                f"buckets ({self.buckets}) < hosts ({self.hosts})")
        if self.users < self.buckets:
            raise ValueError(
                f"users ({self.users}) < buckets ({self.buckets})")
        if self.kill is not None:
            victim, frac = self.kill
            if not 0 <= victim < self.hosts:
                raise ValueError(f"kill victim {victim} out of range")
            if frac <= 0.0:
                raise ValueError(f"kill fraction must be positive: {frac}")
            # frac >= 1 is legal: the fault is armed but never fires
            # (the disarmed-identity contract in tests/rack).

    @property
    def requests_effective(self) -> int:
        if self.requests > 0:
            return self.requests
        return (self.users * 11 + 9) // 10

    @property
    def duration_ns(self) -> float:
        lanes = self.hosts * self.servers_per_host
        rate_per_lane = self.target_utilization / NOMINAL_SERVICE_NS
        return self.requests_effective / (lanes * rate_per_lane)

    @property
    def kill_at_ns(self) -> Optional[float]:
        if self.kill is None:
            return None
        return self.kill[1] * self.duration_ns

    def bucket_users(self, bucket: int) -> int:
        """How many user ids in ``range(users)`` map to ``bucket``
        (users are assigned ``user % buckets``)."""
        return self.users // self.buckets + \
            (1 if bucket < self.users % self.buckets else 0)


@dataclass
class EpochReport:
    """What one shard tells the coordinator after an epoch."""

    sid: int
    epoch: int
    health: str
    retired: bool
    outbox: Tuple[Wire, ...]
    served: int        # completions this epoch (local + remote-side)
    replies: int       # cross-shard replies absorbed (requester side)
    dropped: int       # local arrivals lost to a dead link
    nacked: int        # inbound requests bounced while dead
    backlog: int       # buffered remote items + buckets awaiting migrate
    #: Earliest ns at which this shard has local work: the next Poisson
    #: arrival or the next platform-simulator timer, whichever is
    #: sooner; ``inf`` when fully drained.  The coordinator's quiescent
    #: fast-forward may skip every epoch strictly before
    #: ``min(idle_ns)`` across shards (see docs/RACK.md).
    idle_ns: float = float("inf")


@dataclass
class FinalReport:
    """End-of-run state: the shard's recorder plus accounting."""

    sid: int
    health: str
    retired: bool
    recorder: StreamingLatencyStats
    served: int
    dropped: int
    availability: Tuple[int, ...]
    distinct_users: int
    bucket_cursors: Dict[int, int]
    store_keys: int
    store_sets: int
    store_gets: int
    store_evictions: int
    migrated_in: int
    migrated_out: int
    remote_sent: int
    remote_served: int
    breaker_trips: int
    engine_timeouts: int
    engine_retries: int
    engine_fault_errors: int


def _lindley(carry_wait: float, y: np.ndarray) -> np.ndarray:
    """Vectorized Lindley recursion: ``W[k] = max(0, W[k-1] + y[k])``
    with ``W[0-] = carry_wait``.  ``y[k] = s[k-1] - (a[k] - a[k-1])``
    gives each FIFO request's wait-before-service."""
    s = np.cumsum(y)
    prefix = np.minimum.accumulate(np.concatenate(([0.0], s[:-1])))
    return np.maximum(0.0, s - np.minimum(prefix, -carry_wait))


def rack_calibration_seed(cfg: RackConfig) -> int:
    """The (shard-independent) seed of the calibration platform, so the
    warm checkpoint path and the cold per-shard path measure the
    identical :class:`~repro.kernel.daemons.CostProfile`."""
    return derive_seed(cfg.seed, "rack-calibration")


class ShardHost:
    """One shard: platform, ring slice, lanes, stores, fabric port."""

    def __init__(self, sid: int, cfg: RackConfig, profile) -> None:
        self.sid = sid
        self.cfg = cfg
        seed = derive_seed(cfg.seed, ("shard", sid))
        self.platform = Platform(seed=seed)
        self.engine = OffloadEngine(self.platform)
        if cfg.kill is not None and cfg.kill[0] == sid:
            plan = FaultPlan.parse(f"link_dead@t={cfg.kill_at_ns:.1f}",
                                   seed=derive_seed(seed, "kill"))
            self.platform.arm_faults(plan)
        rng = DeterministicRng(seed)
        self._arr_rng = rng.fork(11)    # interarrival stream
        self._svc_rng = rng.fork(12)    # local service jitter
        self._mix_rng = rng.fork(13)    # op mix / remote choice / partner
        self._rsvc_rng = rng.fork(14)   # remote-lane service jitter

        self.port = FabricPort(sid, cfg.fabric)
        self.ring = HashRing(range(cfg.hosts), cfg.seed, cfg.vnodes)
        self.store = BoundedKeyValueStore(cfg.hot_capacity)
        self.recorder = StreamingLatencyStats()
        self.avail = np.zeros(AVAIL_BUCKETS, dtype=np.int64)

        # Per-update CXL cost: one measured compress+flush of a 4 KiB
        # page amortized over the updates that fill it.
        flush_ns = profile.compress.total_ns / cfg.updates_per_flush
        self._read_service_ns = BASE_SERVICE_NS
        self._update_service_ns = BASE_SERVICE_NS + UPDATE_EXTRA_NS + flush_ns

        # Server lanes 0..S-1 serve local arrivals round-robin; lane S
        # serves inbound cross-shard requests.  Carry state per lane:
        # last arrival / its wait / its service (Lindley continuity).
        lanes = cfg.servers_per_host + 1
        self._lane_arr = [0.0] * lanes
        self._lane_wait = [0.0] * lanes
        self._lane_svc = [0.0] * lanes
        self._lane_cursor = 0

        # Bucket ownership.  cursors count arrivals ever routed to each
        # bucket (they travel with the bucket on migration, so distinct-
        # user accounting is conserved across a rebalance).
        self._cursor = np.zeros(cfg.buckets, dtype=np.int64)
        self._owner_arr = np.empty(cfg.buckets, dtype=np.int64)
        for b in range(cfg.buckets):
            self._owner_arr[b] = self.ring.owner(b)
        self.owned: List[int] = [int(b) for b in
                                 np.nonzero(self._owner_arr == sid)[0]]
        self.pending_buckets: set = set()
        self._owned_arr = np.empty(0, dtype=np.int64)
        self._countb_arr = np.empty(0, dtype=np.int64)
        self._offset_arr = np.empty(0, dtype=np.int64)
        self._arrival_idx = 0
        self._mean_ia: Optional[float] = None
        self._rebuild_owned()
        self._next_arrival = (self._arr_rng.exponential(self._mean_ia)
                              if self._mean_ia is not None else float("inf"))

        # Cross-shard requests buffered per destination until the epoch
        # flush (one bulk wire per destination — the PERF405 shape), and
        # a per-destination breaker that stops hammering a dead peer
        # while the rack converges.
        self._pending_remote: Dict[int, List[Tuple[int, float]]] = \
            defaultdict(list)
        self._retry_items: List[Tuple[int, float]] = []
        self._breakers: Dict[int, CircuitBreaker] = {}

        self.dead = False
        self.retired = False
        self.served = 0
        self.dropped = 0
        self.replies = 0
        self.nacked = 0
        self.remote_sent = 0
        self.remote_served = 0
        self.migrated_in = 0
        self.migrated_out = 0

    # -- ownership ---------------------------------------------------------

    def _rebuild_owned(self) -> None:
        """Refresh the vectorized ownership tables after any change to
        ``self.owned`` (boot, migration absorb, handoff)."""
        cfg = self.cfg
        self.owned.sort()
        self._owned_arr = np.asarray(self.owned, dtype=np.int64)
        self._countb_arr = np.asarray(
            [cfg.bucket_users(b) for b in self.owned], dtype=np.int64)
        self._offset_arr = self._cursor[self._owned_arr].copy() \
            if self.owned else np.empty(0, dtype=np.int64)
        self._arrival_idx = 0
        owned_users = int(self._countb_arr.sum()) if self.owned else 0
        if owned_users == 0:
            self._mean_ia = None
            return
        # Global arrival rate split by owned share of the user base.
        rate = (cfg.requests_effective / cfg.duration_ns) * \
            (owned_users / cfg.users)
        self._mean_ia = 1.0 / rate

    def _breaker(self, dst: int) -> CircuitBreaker:
        br = self._breakers.get(dst)
        if br is None:
            br = CircuitBreaker(threshold=2,
                                probe_interval_ns=4 * self.cfg.fabric.epoch_ns)
            self._breakers[dst] = br
        return br

    # -- stepping ----------------------------------------------------------

    def step(self, msg: dict):
        if msg["op"] == "finalize":
            return self._finalize()
        return self._epoch(msg)

    def _epoch(self, msg: dict) -> EpochReport:
        t0, t1, epoch = msg["t0"], msg["t1"], msg["epoch"]
        served_before = self.served
        replies_before = self.replies
        dropped_before = self.dropped
        nacked_before = self.nacked
        # Advance the platform clock: scheduled faults (link_dead) fire.
        self.platform.sim.run(until=t0)
        for directive in msg["directives"]:
            if directive[0] == "ring":
                self._apply_ring(tuple(directive[1]), t0)
            elif directive[0] == "handoff":
                self._handoff(tuple(directive[1]), t0)
        if not self.retired:
            self._heartbeat(t1)
        for wire in msg["wires"]:
            arrival = self.cfg.fabric.arrival_ns(wire.send_ns, wire.nbytes)
            if wire.kind == "req":
                self._serve_remote(wire, arrival, t1)
            elif wire.kind == "rep":
                self._absorb_replies(wire, arrival)
            elif wire.kind == "nack":
                self._absorb_nack(wire, arrival)
            elif wire.kind == "migrate":
                self._absorb_migrate(wire)
        self._serve_local(t1)
        self._flush_remote(t1)
        self.platform.sim.run(until=t1)
        backlog = (len(self._retry_items) + len(self.pending_buckets)
                   + sum(len(v) for v in self._pending_remote.values()))
        # Quiescence horizon: next local arrival (inf once the offered
        # load is exhausted) vs the platform simulator's next pending
        # event (armed faults live in its queue, so a scheduled kill
        # always bounds the horizon).
        next_arrival = self._next_arrival
        if next_arrival >= self.cfg.duration_ns:
            next_arrival = float("inf")
        idle_ns = min(next_arrival, self.platform.sim.horizon())
        return EpochReport(
            sid=self.sid, epoch=epoch,
            health=self.engine.health.state.value,
            retired=self.retired,
            outbox=self.port.drain(),
            served=self.served - served_before,
            replies=self.replies - replies_before,
            dropped=self.dropped - dropped_before,
            nacked=self.nacked - nacked_before,
            backlog=backlog,
            idle_ns=idle_ns,
        )

    def _heartbeat(self, t1: float) -> None:
        """One real offload through the CXL link per epoch.  On a dead
        link the engine's bounded retries each record a failure, so one
        heartbeat is enough to exhaust the health budget (FAILED).

        The simulator runs only to the epoch boundary — never past it —
        so an armed-but-unfired fault schedule stays unfired until its
        own epoch (``run_process`` would drain the queue straight
        through it)."""
        proc = self.platform.sim.spawn(self.engine.compress_page("cxl"),
                                       "heartbeat")
        proc.done.defuse()
        self.platform.sim.run(until=t1)
        if not proc.finished:
            # Cannot happen with the stock timeouts (worst case ~220 us
            # of retries inside a 500 us epoch); dead is the safe read.
            self.dead = True
            return
        try:
            proc.result
        except FaultError:
            self.dead = True
        # The engine retains one OffloadReport per offload for the
        # paper-figure experiments; nothing in the rack reads them, and
        # one per epoch per shard is unbounded growth over a 10M-user
        # run.  Telemetry, not trajectory — draining cannot change the
        # simulated timeline.
        self.engine.reports.clear()

    def _note_avail(self, completion: np.ndarray) -> None:
        """Bucket completions into the availability histogram by their
        completion time (drain-phase completions clamp to the last
        slice)."""
        idx = np.minimum(
            (completion * (AVAIL_BUCKETS / self.cfg.duration_ns))
            .astype(np.int64), AVAIL_BUCKETS - 1)
        self.avail += np.bincount(idx, minlength=AVAIL_BUCKETS)

    # -- local serving -----------------------------------------------------

    def _draw_users(self, n: int) -> np.ndarray:
        """User ids for ``n`` arrivals: round-robin over owned buckets,
        cycling each bucket's user population via its cursor."""
        nb = len(self._owned_arr)
        idx = self._arrival_idx + np.arange(n, dtype=np.int64)
        pos = idx % nb
        buckets = self._owned_arr[pos]
        occurrence = self._offset_arr[pos] + idx // nb
        users = buckets + self.cfg.buckets * \
            (occurrence % self._countb_arr[pos])
        self._arrival_idx += n
        np.add.at(self._cursor, buckets, 1)
        return users

    def _serve_local(self, t1: float) -> None:
        cfg = self.cfg
        if self._mean_ia is None:
            return
        end = min(t1, cfg.duration_ns)
        arrivals: List[float] = []
        nxt = self._next_arrival
        mean = self._mean_ia
        draw = self._arr_rng.exponential
        while nxt < end:
            arrivals.append(nxt)
            nxt += draw(mean)
        self._next_arrival = nxt
        n = len(arrivals)
        if n == 0:
            return
        if self.dead:
            # Link down, server unreachable: the offered load is lost
            # (clients time out).  Cursors do not advance — these users
            # were not served.
            self.dropped += n
            return
        a = np.asarray(arrivals, dtype=float)
        users = self._draw_users(n)
        update = self._mix_rng.random_array(n) < cfg.update_frac
        partner = self._mix_rng.integers_array(0, cfg.buckets, n)
        remote = self._mix_rng.random_array(n) < cfg.remote_frac
        base = np.where(update, self._update_service_ns,
                        self._read_service_ns)
        svc = self._svc_rng.jitter_array(base, 0.12)
        lanes = cfg.servers_per_host
        lane_of = (self._lane_cursor + np.arange(n)) % lanes
        completion = np.empty(n, dtype=float)
        for lane in range(lanes):
            mask = lane_of == lane
            if not mask.any():
                continue
            al = a[mask]
            sl = svc[mask]
            y = np.empty(len(al))
            y[0] = self._lane_svc[lane] - (al[0] - self._lane_arr[lane])
            y[1:] = sl[:-1] - np.diff(al)
            waits = _lindley(self._lane_wait[lane], y)
            completion[mask] = al + waits + sl
            self._lane_arr[lane] = float(al[-1])
            self._lane_wait[lane] = float(waits[-1])
            self._lane_svc[lane] = float(sl[-1])
        self._lane_cursor = (self._lane_cursor + n) % lanes
        self.recorder.extend((completion - a).tolist())
        self._note_avail(completion)
        self.served += n
        # Functional half: writes land in the bounded hot tier; reads
        # are counted in bulk (the per-key dict walk is pure overhead
        # at 10M requests — migration integrity pins read-after-write).
        for user in users[update].tolist():
            self.store.set(user, user.to_bytes(8, "little"))
        self.store.gets += int(n - int(update.sum()))
        # Cross-shard pair-ops: a GET against a partner bucket's owner,
        # issued when the local phase completes.  Batched per
        # destination at the epoch flush — never one wire per request.
        dsts = self._owner_arr[partner]
        issue = np.nonzero(remote & (dsts != self.sid))[0]
        for i in issue.tolist():
            self._pending_remote[int(dsts[i])].append(
                (int(partner[i]), float(completion[i])))

    # -- fabric input ------------------------------------------------------

    def _serve_remote(self, wire: Wire, arrival: float, t1: float) -> None:
        """Serve one inbound cross-shard batch on the remote lane."""
        items = wire.payload
        if not items:
            return
        if self.dead:
            self.port.send_bulk(wire.src, "nack", items, send_ns=t1 - 1.0)
            self.nacked += len(items)
            return
        lane = self.cfg.servers_per_host   # the remote-serve lane
        n = len(items)
        base = np.full(n, self._read_service_ns)
        svc = self._rsvc_rng.jitter_array(base, 0.12)
        al = np.full(n, arrival)
        y = np.empty(n)
        y[0] = self._lane_svc[lane] - (al[0] - self._lane_arr[lane])
        y[1:] = svc[:-1] - np.diff(al)
        waits = _lindley(self._lane_wait[lane], y)
        completion = al + waits + svc
        self._lane_arr[lane] = float(al[-1])
        self._lane_wait[lane] = float(waits[-1])
        self._lane_svc[lane] = float(svc[-1])
        for user, _issue in items:
            self.store.get(user)
        self.remote_served += n
        self.served += n
        self._note_avail(completion)
        reply = tuple((user, issue, float(completion[i]))
                      for i, (user, issue) in enumerate(items))
        self.port.send_bulk(wire.src, "rep", reply, send_ns=t1 - 1.0)

    def _absorb_replies(self, wire: Wire, arrival: float) -> None:
        """Record cross-shard latencies: issue -> reply arrival (a reply
        cannot arrive before its op completed plus the return trip)."""
        base = self.cfg.fabric.base_ns
        latencies = [max(arrival, completion + base) - issue
                     for _user, issue, completion in wire.payload]
        self.recorder.extend(latencies)
        self.replies += len(latencies)
        self._breaker(wire.src).record_success(arrival)

    def _absorb_nack(self, wire: Wire, arrival: float) -> None:
        """A batch bounced off a dead host: trip that destination's
        breaker and requeue the items against the *current* ring."""
        self._breaker(wire.src).record_failure(arrival)
        self._retry_items.extend(
            (int(user), float(issue)) for user, issue in wire.payload)

    def _absorb_migrate(self, wire: Wire) -> None:
        """Install a migrated bucket: records, then the cursor — the
        bucket only starts serving once its state has arrived."""
        for bucket, cursor, records in wire.payload:
            self._cursor[bucket] = cursor
            for key, value in records:
                self.store.install(key, value)
            self.migrated_in += len(records)
            self.pending_buckets.discard(bucket)
            if bucket not in self.owned:
                self.owned.append(bucket)
        self._rebuild_owned()
        if self._next_arrival == float("inf") and self._mean_ia is not None:
            # First ownership after a quiet spell: restart arrivals.
            send_epoch_start = self.cfg.fabric.arrival_ns(
                wire.send_ns, wire.nbytes)
            self._next_arrival = send_epoch_start + \
                self._arr_rng.exponential(self._mean_ia)

    # -- rebalance ---------------------------------------------------------

    def _apply_ring(self, hosts: Tuple[int, ...], now: float) -> None:
        """Adopt the post-rebalance ring.  Gained buckets wait for their
        migration wire before serving; buffered requests to removed
        hosts are re-homed at the next flush."""
        self.ring = HashRing(hosts, self.cfg.seed, self.cfg.vnodes)
        for b in range(self.cfg.buckets):
            self._owner_arr[b] = self.ring.owner(b)
        mine = set(self.owned)
        for b in np.nonzero(self._owner_arr == self.sid)[0]:
            if int(b) not in mine:
                self.pending_buckets.add(int(b))
        gone = [dst for dst in self._pending_remote if dst not in hosts]
        for dst in sorted(gone):
            self._retry_items.extend(self._pending_remote.pop(dst))
        # Topology repaired: let any OPEN breaker probe immediately.
        for dst in sorted(self._breakers):
            self._breakers[dst].note_repair(now)

    def _handoff(self, hosts: Tuple[int, ...], t0: float) -> None:
        """Drain this (dead) host's shard.  The rack controller reads
        the node's CXL .mem through the switch — device memory survives
        the host — and ships each bucket (records + cursor) to its new
        owner as one migration wire per destination."""
        new_ring = HashRing(hosts, self.cfg.seed, self.cfg.vnodes)
        by_bucket: Dict[int, List[Tuple[int, bytes]]] = defaultdict(list)
        for key, value in self.store._data.items():
            by_bucket[key % self.cfg.buckets].append((key, value))
        per_dst: Dict[int, List[Tuple]] = defaultdict(list)
        for b in sorted(set(self.owned) | self.pending_buckets):
            records = tuple(sorted(by_bucket.get(b, ())))
            per_dst[new_ring.owner(b)].append(
                (b, int(self._cursor[b]), records))
            self.migrated_out += len(records)
            self._cursor[b] = 0
        for dst in sorted(per_dst):
            self.port.send_bulk(dst, "migrate", tuple(per_dst[dst]),
                                send_ns=t0)
        self.ring = new_ring
        self.owned = []
        self.pending_buckets.clear()
        self.store._data.clear()
        self._rebuild_owned()
        self._next_arrival = float("inf")
        self.retired = True

    # -- output ------------------------------------------------------------

    def _flush_remote(self, t1: float) -> None:
        """Send this epoch's buffered cross-shard batches: one bulk wire
        per destination, breaker permitting.  Requeued (nacked) items
        are re-homed first; any now owned locally serve on the remote
        lane."""
        if self._retry_items:
            retry = self._retry_items
            self._retry_items = []
            local: List[Tuple[int, float]] = []
            for user, issue in retry:
                dst = int(self._owner_arr[user % self.cfg.buckets])
                if dst == self.sid:
                    local.append((user, issue))
                else:
                    self._pending_remote[dst].append((user, issue))
            if local and not self.dead:
                fake = Wire(self.sid, self.sid, "req", t1 - 1.0, -1, 0,
                            tuple(local))
                # Rebalance made these local: serve them here, at the
                # epoch boundary (their fabric detour already paid).
                self._serve_retried_local(fake, t1)
            elif local:
                self._retry_items.extend(local)
        send_ns = t1 - 1.0
        for dst in sorted(self._pending_remote):
            items = self._pending_remote[dst]
            if not items:
                continue
            if not self._breaker(dst).allow(send_ns):
                continue
            self.port.send_bulk(dst, "req", tuple(items), send_ns)
            self.remote_sent += len(items)
            self._pending_remote[dst] = []

    def _serve_retried_local(self, wire: Wire, t1: float) -> None:
        """Serve re-homed items that now belong to this shard."""
        items = wire.payload
        lane = self.cfg.servers_per_host
        n = len(items)
        base = np.full(n, self._read_service_ns)
        svc = self._rsvc_rng.jitter_array(base, 0.12)
        al = np.full(n, t1 - 1.0)
        y = np.empty(n)
        y[0] = self._lane_svc[lane] - (al[0] - self._lane_arr[lane])
        y[1:] = svc[:-1] - np.diff(al)
        waits = _lindley(self._lane_wait[lane], y)
        completion = al + waits + svc
        self._lane_arr[lane] = float(al[-1])
        self._lane_wait[lane] = float(waits[-1])
        self._lane_svc[lane] = float(svc[-1])
        for user, _issue in items:
            self.store.get(user)
        latencies = [float(completion[i]) - issue
                     for i, (_user, issue) in enumerate(items)]
        self.recorder.extend(latencies)
        self._note_avail(completion)
        self.served += n
        self.replies += n

    def _finalize(self) -> FinalReport:
        cfg = self.cfg
        accounted = sorted(set(self.owned) | self.pending_buckets)
        distinct = sum(min(int(self._cursor[b]), cfg.bucket_users(b))
                       for b in accounted)
        return FinalReport(
            sid=self.sid,
            health=self.engine.health.state.value,
            retired=self.retired,
            recorder=self.recorder,
            served=self.served,
            dropped=self.dropped,
            availability=tuple(int(x) for x in self.avail),
            distinct_users=distinct,
            bucket_cursors={b: int(self._cursor[b]) for b in accounted},
            store_keys=len(self.store),
            store_sets=self.store.sets,
            store_gets=self.store.gets,
            store_evictions=self.store.evictions,
            migrated_in=self.migrated_in,
            migrated_out=self.migrated_out,
            remote_sent=self.remote_sent,
            remote_served=self.remote_served,
            breaker_trips=sum(br.trips for br in self._breakers.values()),
            engine_timeouts=self.engine.timeouts,
            engine_retries=self.engine.retries,
            engine_fault_errors=self.engine.fault_errors,
        )
