"""The paper's primary contribution: the CXL Type-2 cooperative-computing
framework.

* :mod:`repro.core.requests` — the D2H/D2D request taxonomy (NC-P, NC,
  CO, CS) and host operation types (SIV-A);
* :mod:`repro.core.platform` — wiring of host, links, and devices into the
  Table-II testbed;
* :mod:`repro.core.microbench` — the memo-style latency/bandwidth
  characterization harness (SV);
* :mod:`repro.core.doorbell` — the shared-memory command protocol that
  zswap/ksm offload rides on (SVI, Fig 7);
* :mod:`repro.core.offload` — the offload engine with cpu / cxl /
  pcie-dma / pcie-rdma transports;
* :mod:`repro.core.transfer` — bulk host<->device transfer paths for the
  Fig-6 efficiency comparison.
"""

from repro.core.requests import BiasMode, D2HOp, HostOp, MemLevel
from repro.core.platform import Platform

__all__ = ["BiasMode", "D2HOp", "HostOp", "MemLevel", "Platform"]
