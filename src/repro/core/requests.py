"""Request taxonomy of the CXL Type-2 device (SIV).

A device accelerator annotates each D2H/D2D request with a *desired DCOH
cache state* via an AXI user-signal hint; the DCOH then performs the
Table-III coherence actions.  Host cores issue four x86-level operations.
"""

from __future__ import annotations

import enum


class D2HOp(enum.Enum):
    """Device-originated request types (also used for D2D)."""

    NC_P = "nc-p"        # non-cacheable push: write straight into host LLC
    NC_READ = "nc-rd"    # non-cacheable read (RdCurr): no state change
    NC_WRITE = "nc-wr"   # non-cacheable write: invalidate copies, write DRAM
    CO_READ = "co-rd"    # cacheable-owned read (RdOwn): exclusive into HMC
    CO_WRITE = "co-wr"   # cacheable-owned write: modified into HMC
    CS_READ = "cs-rd"    # cacheable-shared read (RdShared): shared into HMC

    @property
    def is_read(self) -> bool:
        return self in (D2HOp.NC_READ, D2HOp.CO_READ, D2HOp.CS_READ)

    @property
    def is_write(self) -> bool:
        return not self.is_read

    @property
    def caches_in_device(self) -> bool:
        """Does the request leave a valid line in the device cache?"""
        return self in (D2HOp.CO_READ, D2HOp.CO_WRITE, D2HOp.CS_READ)


class HostOp(enum.Enum):
    """Host-core memory operations used throughout SV."""

    LOAD = "ld"
    STORE = "st"
    NT_LOAD = "nt-ld"
    NT_STORE = "nt-st"

    @property
    def is_read(self) -> bool:
        return self in (HostOp.LOAD, HostOp.NT_LOAD)

    @property
    def is_temporal(self) -> bool:
        return self in (HostOp.LOAD, HostOp.STORE)


# The paper's D2H <-> emulated-op correspondence (SV-A): each CXL request
# type is compared against the "equivalent" instruction a remote NUMA core
# would use.
EQUIVALENT_HOST_OP = {
    D2HOp.NC_READ: HostOp.NT_LOAD,
    D2HOp.CS_READ: HostOp.LOAD,
    D2HOp.NC_WRITE: HostOp.NT_STORE,
    D2HOp.CO_WRITE: HostOp.STORE,
    D2HOp.CO_READ: HostOp.LOAD,
    D2HOp.NC_P: HostOp.STORE,
}


class BiasMode(enum.Enum):
    """D2D coherence-management mode of a device-memory region (SIV-B)."""

    HOST = "host-bias"      # hardware checks host cache before every access
    DEVICE = "device-bias"  # host bypassed; software owns coherence


class MemLevel(enum.Enum):
    """Where a line was ultimately served from (for assertions/telemetry)."""

    L1 = "l1"
    L2 = "l2"
    HMC = "hmc"
    DMC = "dmc"
    LLC = "llc"
    HOST_DRAM = "host-dram"
    DEV_DRAM = "dev-dram"
