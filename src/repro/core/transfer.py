"""Bulk host<->device transfer paths for the Fig-6 efficiency comparison.

Six mechanisms move ``n`` bytes between host memory and device memory:

========================  =============================================
mechanism                 model
========================  =============================================
``pcie-mmio``             uncacheable ld/st beats over PCIe (ordered)
``pcie-dma``              descriptor DMA on the Agilex-7 PCIe IP
``pcie-rdma``             one-sided RDMA via BF-3 (x32 lanes)
``pcie-doca-dma``         the same engine behind the DOCA stack
``cxl-ldst``              the host core's ld/st (H2D) or the device
                          LSU's CS-rd/NC-P (D2H) at cache-line grain
``cxl-dsa``               DSA descriptor DMA into CXL memory
========================  =============================================

Latency is one whole transfer; bandwidth is the back-to-back streaming
rate.  The CXL ld/st paths reuse the exact per-line machinery of the
microbenchmark, so Fig 6's crossovers (CPU LD/ST queues beyond ~1 KB,
DMA setup amortization, RDMA's x32 edge) all emerge from shared models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator

from repro.core import fastpath
from repro.core.platform import Platform
from repro.core.requests import D2HOp, HostOp
from repro.errors import WorkloadError
from repro.sim.stats import Summary, bandwidth_gbps, summarize
from repro.units import CACHELINE

H2D_MECHANISMS = ("pcie-mmio", "pcie-dma", "pcie-rdma", "pcie-doca-dma",
                  "cxl-ldst", "cxl-dsa")
D2H_MECHANISMS = ("pcie-mmio", "pcie-rdma", "pcie-doca-dma", "cxl-ldst",
                  "cxl-dsa")


@dataclass(frozen=True)
class TransferResult:
    mechanism: str
    direction: str            # "h2d" | "d2h"
    size_bytes: int
    latency: Summary          # ns for one whole transfer
    bandwidth: Summary        # GB/s streaming


class TransferBench:
    """Fig-6 harness: sweep mechanisms x sizes on one platform."""

    def __init__(self, platform: Platform, reps: int = 15):
        if reps < 1:
            raise WorkloadError("reps must be positive")
        self.p = platform
        self.reps = reps

    # ------------------------------------------------------------------
    # whole-transfer generators
    # ------------------------------------------------------------------

    def _h2d_once(self, mechanism: str, nbytes: int) -> Generator[Any, Any, None]:
        p = self.p
        if mechanism == "pcie-mmio":
            yield from p.pcie.mmio_write(nbytes)
        elif mechanism == "pcie-dma":
            yield from p.pcie.dma_to_device(nbytes)
        elif mechanism == "pcie-rdma":
            yield from p.snic.rdma_transfer(nbytes, to_device=True)
        elif mechanism == "pcie-doca-dma":
            yield from p.snic.doca_dma(nbytes, to_device=True)
        elif mechanism == "cxl-ldst":
            # The host core streams nt-st at cache-line granularity.
            yield from self._cxl_lines(HostOp.NT_STORE, nbytes)
        elif mechanism == "cxl-dsa":
            yield from p.dsa.copy(nbytes, via=p.t2.port.link, to_device=True)
        else:
            raise WorkloadError(f"unknown H2D mechanism {mechanism!r}")

    def _d2h_once(self, mechanism: str, nbytes: int) -> Generator[Any, Any, None]:
        p = self.p
        if mechanism == "pcie-mmio":
            # BF-3 Arm core reads host memory through MMIO windows.
            yield from p.pcie.mmio_read(nbytes)
        elif mechanism == "pcie-rdma":
            yield from p.snic.rdma_transfer(nbytes, to_device=False)
        elif mechanism == "pcie-doca-dma":
            yield from p.snic.doca_dma(nbytes, to_device=False)
        elif mechanism == "cxl-ldst":
            # The device LSU pulls host lines with CS-rd (SV-D pairs
            # CXL-LD with CS-read and CXL-ST with NC-P).
            yield from self._lsu_lines(D2HOp.CS_READ, nbytes)
        elif mechanism == "cxl-dsa":
            yield from p.dsa.copy(nbytes, via=p.t2.port.link, to_device=False)
        else:
            raise WorkloadError(f"unknown D2H mechanism {mechanism!r}")

    def _cxl_lines(self, op: HostOp, nbytes: int) -> Generator[Any, Any, None]:
        """Host core moving nbytes line-by-line over CXL.mem, pipelined."""
        sim, core, t2 = self.p.sim, self.p.core, self.p.t2
        addrs = self.p.fresh_dev_lines(max(1, nbytes // CACHELINE))
        train = fastpath.try_h2d_train(self.p, core, op, t2, addrs)
        if train is not None:
            yield from train
            return
        procs = [sim.spawn(core.cxl_op(op, addr, t2)) for addr in addrs]
        done = sim.all_of([proc.done for proc in procs])
        yield done

    def _lsu_lines(self, op: D2HOp, nbytes: int) -> Generator[Any, Any, None]:
        """Device LSU moving nbytes line-by-line over CXL.cache, pipelined."""
        sim, lsu = self.p.sim, self.p.t2.lsu
        addrs = self.p.fresh_host_lines(max(1, nbytes // CACHELINE))
        train = fastpath.try_lsu_train(self.p, lsu, op, addrs)
        if train is not None:
            yield from train
            return
        procs = [sim.spawn(lsu.d2h(op, addr)) for addr in addrs]
        done = sim.all_of([proc.done for proc in procs])
        yield done

    # ------------------------------------------------------------------
    # measurement
    # ------------------------------------------------------------------

    def measure(self, mechanism: str, direction: str,
                nbytes: int) -> TransferResult:
        """Latency (one transfer) and streaming bandwidth (pipelined)."""
        if direction == "h2d":
            once: Callable[[], Generator] = lambda: self._h2d_once(mechanism, nbytes)
            if mechanism not in H2D_MECHANISMS:
                raise WorkloadError(f"{mechanism} is not an H2D mechanism")
        elif direction == "d2h":
            once = lambda: self._d2h_once(mechanism, nbytes)
            if mechanism not in D2H_MECHANISMS:
                raise WorkloadError(f"{mechanism} is not a D2H mechanism")
        else:
            raise WorkloadError(f"direction must be h2d|d2h, not {direction!r}")

        sim = self.p.sim
        latencies = []

        def timed_once() -> Generator[Any, Any, float]:
            t0 = sim.now
            yield from once()
            # Read the clock *inside* the process: posted paths spawn
            # background device work that run_process also drains.
            return sim.now - t0

        for __ in range(self.reps):
            raw = sim.run_process(timed_once())
            latencies.append(self.p.rng.jitter(raw, self.p.cfg.latency_noise))
        # Streaming bandwidth: several transfers in flight back-to-back.
        depth = 4
        start = sim.now
        done_at: list[float] = []

        def timed() -> Generator[Any, Any, None]:
            yield from once()
            done_at.append(sim.now)

        procs = [sim.spawn(timed()) for __ in range(depth)]
        sim.run()
        if not all(proc.finished for proc in procs):
            raise WorkloadError(f"{mechanism}/{direction}: deadlock")
        bw = bandwidth_gbps(depth * nbytes, max(done_at) - start)
        bws = [self.p.rng.jitter(bw, self.p.cfg.latency_noise)
               for __ in range(self.reps)]
        return TransferResult(mechanism, direction, nbytes,
                              summarize(latencies), summarize(bws))
