"""The offload engine: zswap/ksm data-plane functions on four transports.

Transports (SVI-SVII):

``cpu``
    the host core runs the function itself (the deployed-today baseline);
``cxl``
    the Fig-7 flow — doorbell submit (nt-st), device CS-read poll, D2H
    NC-read pull *pipelined* with the streaming IP, D2D NC-write into the
    device-memory zpool / D2H NC-P of results, completion via shared
    memory.  Host CPU cost: a few posted stores and one load;
``pcie-dma``
    descriptor DMA on the Agilex-7 PCIe IP; the same FPGA compute IPs,
    but transfer and compute cannot pipeline (data must land in device
    memory first) and the zpool stays in *host* memory, costing an extra
    return DMA;
``pcie-rdma``
    STYX-style BF-3 offload: host-side verbs, RDMA reads/writes, Arm-core
    software compute, MSI-X completion — every step charges host cycles.

Each operation returns an :class:`OffloadReport` carrying the Table-IV
step breakdown, the wall-clock total, and — crucially for Fig 8 — how
much *host CPU time* the operation consumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

from repro.core import fastpath
from repro.core.doorbell import Command, Completion, Doorbell
from repro.core.platform import Platform
from repro.core.requests import D2HOp
from repro.devices.accel_ip import (
    ByteCompareIp,
    CompressionIp,
    DecompressionIp,
    XxhashIp,
)
from repro.errors import FaultError, OffloadError
from repro.faults import DeviceHealthMonitor, HealthState
from repro.units import CACHELINE, PAGE_SIZE

TRANSPORTS = ("cpu", "cxl", "pcie-dma", "pcie-rdma")

# Robustness defaults: a CXL offload command completes in single-digit us
# (Table IV), so 50 us of silence means the device hung or the completion
# was lost.  Retries back off exponentially from 5 us.
COMMAND_TIMEOUT_NS = 50_000.0
RETRY_BACKOFF_NS = 5_000.0
MAX_RETRIES = 3

# Host-core software rates (bytes/ns).  The FPGA compression IP is
# 1.8-2.8x faster than the host CPU for a 4 KB page (SVI-A): the IP does
# ~1.55 B/ns, so the host does ~0.62.  Decompression is cheaper.
HOST_COMPRESS_RATE = 0.62
HOST_DECOMPRESS_RATE = 1.6
HOST_HASH_RATE = 2.2
HOST_MEMCMP_RATE = 2.6
# Kernel software-stack cost charged per host-side RDMA operation (verbs,
# page pinning, WQE bookkeeping) -- the ~1,300-LoC path of SVII.
RDMA_HOST_STACK_NS = 1400.0
# Host-side cost of fielding the device's completion on the PCIe paths
# (interrupt entry/exit or a polling slot).
PCIE_COMPLETION_HOST_NS = 900.0
# Host-side cost of programming one DMA descriptor (MMIO doorbell etc.).
# The PCIe-DMA software stack is less efficient than the RDMA verbs path
# (SVII), so its per-descriptor host cost is higher.
DMA_HOST_SETUP_NS = 800.0


@dataclass(frozen=True)
class OffloadReport:
    """Timing and accounting for one offloaded operation."""

    transport: str
    op: str
    input_bytes: int
    output_bytes: int
    transfer_ns: float      # step 2: moving input to the compute engine
    compute_ns: float       # step 4: the data-plane function itself
    writeback_ns: float     # step 5: moving results where they belong
    total_ns: float         # wall clock; < sum of steps when pipelined
    host_cpu_ns: float      # host core time consumed (the Fig-8 channel)
    result: Any = None

    @property
    def pipelined(self) -> bool:
        steps = self.transfer_ns + self.compute_ns + self.writeback_ns
        return self.total_ns < 0.98 * steps


class OffloadEngine:
    """Runs zswap/ksm data-plane functions over a chosen transport."""

    def __init__(self, platform: Platform, functional: bool = False):
        self.p = platform
        self.functional = functional
        self.doorbell = Doorbell(platform)
        sim = platform.sim
        self.compressor = CompressionIp(sim)
        self.decompressor = DecompressionIp(sim)
        self.hasher = XxhashIp(sim)
        self.comparator = ByteCompareIp(sim)
        self.reports: list[OffloadReport] = []
        # Robustness: per-device health, per-command timeout, bounded
        # retry with exponential backoff.  None of it is consulted while
        # the platform has no FaultPlan armed and the device is healthy.
        self.health = DeviceHealthMonitor()
        self.command_timeout_ns = COMMAND_TIMEOUT_NS
        self.retry_backoff_ns = RETRY_BACKOFF_NS
        self.max_retries = MAX_RETRIES
        self.timeouts = 0
        self.retries = 0
        self.fault_errors = 0

    @property
    def faults(self):
        return self.p.faults

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _check_transport(self, transport: str) -> None:
        if transport not in TRANSPORTS:
            raise OffloadError(
                f"unknown transport {transport!r}; expected one of {TRANSPORTS}"
            )

    def _offload_cxl(self, op_name: str, handler: Any,
                     *args: Any) -> Generator[Any, Any, OffloadReport]:
        """Dispatch one cxl-transport operation.

        The fast path — no fault plan armed, device healthy — calls the
        handler directly with zero added cost.  Otherwise the attempt
        runs under the timeout / bounded-retry / health machinery."""
        if not self.faults.active and self.health.state is HealthState.HEALTHY:
            return (yield from handler(*args))
        return (yield from self._with_retry(op_name, handler, args))

    def _with_retry(self, op_name: str, handler: Any,
                    args: tuple) -> Generator[Any, Any, OffloadReport]:
        """Bounded retry with exponential backoff around one cxl attempt.

        Every :class:`FaultError` (link down, poison, viral rejection,
        completion timeout) is recorded against device health; a FAILED
        device fast-fails so callers can fall back without waiting —
        unless a recovery probe is due, in which case this attempt *is*
        the probe (HALF_OPEN) and its outcome re-admits or re-fails the
        device."""
        now = self.p.sim.now
        if self.health.state is HealthState.FAILED:
            if not self.health.probe_due(now):
                raise FaultError(
                    f"device is FAILED: {op_name!r} offload not attempted")
            self.health.begin_probe(now)
        attempt = 0
        while True:
            try:
                report = yield from self._attempt(op_name, handler, args)
            except FaultError:
                self.fault_errors += 1
                self.health.record_failure(self.p.sim.now)
                if (self.health.state is HealthState.FAILED
                        or attempt >= self.max_retries):
                    raise
                attempt += 1
                self.retries += 1
                backoff = self.retry_backoff_ns * (2 ** (attempt - 1))
                yield self.p.sim.timeout_event(backoff)
            else:
                self.health.record_success(self.p.sim.now)
                return report

    def _attempt(self, op_name: str, handler: Any,
                 args: tuple) -> Generator[Any, Any, OffloadReport]:
        """One guarded attempt.  A hung device (``device_hang`` flag) or a
        dropped completion (``offload_drop`` rate) means the command goes
        out but no completion ever arrives: the host pays the submit,
        waits out the command timeout, and reaps the orphaned tag."""
        faults = self.faults
        if faults.active and (faults.flag("device_hang")
                              or faults.take("offload_drop")):
            tag = yield from self.doorbell.submit(Command(op_name))
            self.timeouts += 1
            yield from self.doorbell.await_completion(
                tag, self.command_timeout_ns)
            raise OffloadError(
                "unreachable: await_completion must have timed out")
        return (yield from handler(*args))

    def _compressed_size(self, data: Optional[bytes], nbytes: int) -> tuple[int, Any]:
        """Real compression in functional mode; a deterministic ratio
        model otherwise (timing must not depend on payload)."""
        if self.functional and data is not None:
            blob = CompressionIp.run(data)
            return len(blob), blob
        ratio = 0.30 + 0.4 * self.p.rng.random()   # 2.0x avg, like lz4 text
        return max(128, int(nbytes * ratio)), None

    def _lsu_burst(self, op: D2HOp, addrs: list[int],
                   d2d: bool) -> Generator[Any, Any, float]:
        """Pipelined burst of LSU requests; returns elapsed ns."""
        sim, lsu = self.p.sim, self.p.t2.lsu
        start = sim.now
        train = (fastpath.try_lsu_d2d_train(self.p, lsu, op, addrs) if d2d
                 else fastpath.try_lsu_train(self.p, lsu, op, addrs))
        if train is not None:
            yield from train
            return sim.now - start
        procs = [sim.spawn(lsu.d2d(op, a) if d2d else lsu.d2h(op, a))
                 for a in addrs]
        yield sim.all_of([proc.done for proc in procs])
        return sim.now - start

    def _lines(self, nbytes: int, host: bool) -> list[int]:
        count = max(1, (nbytes + CACHELINE - 1) // CACHELINE)
        return (self.p.fresh_host_lines(count) if host
                else self.p.fresh_dev_lines(count))

    def _record(self, report: OffloadReport) -> OffloadReport:
        self.reports.append(report)
        return report

    # Streaming-head estimates for the pipelined cxl flows: the IP starts
    # once the first line lands; lines then arrive at the LSU's pipelined
    # rate (initiation interval ~ latency / outstanding window).
    def _d2h_head_latency_ns(self) -> float:
        cfg = self.p.cfg
        return (cfg.cxl_t2.dcoh.engine_ns + 2 * cfg.cxl_t2.link.propagation_ns
                + cfg.cxl_t2.host_agent_ns + cfg.host.llc_ns
                + cfg.host.dram.read_ns + cfg.cxl_t2.host_agent_miss_extra_ns)

    def _d2h_pull_rate(self) -> float:
        cfg = self.p.cfg
        ii = max(cfg.cxl_t2.lsu_issue_ns,
                 self._d2h_head_latency_ns() / cfg.cxl_t2.lsu_outstanding)
        return CACHELINE / ii

    def _d2d_head_latency_ns(self) -> float:
        cfg = self.p.cfg
        return (cfg.cxl_t2.dcoh.engine_ns + cfg.cxl_t2.dram.read_ns
                + 2 * cfg.cxl_t2.dcoh.lookup_ns)

    def _d2d_pull_rate(self) -> float:
        cfg = self.p.cfg
        ii = max(cfg.cxl_t2.lsu_issue_ns,
                 self._d2d_head_latency_ns() / cfg.cxl_t2.lsu_outstanding)
        return CACHELINE / ii

    # ------------------------------------------------------------------
    # compression (zswap swap-out, Fig 7 left)
    # ------------------------------------------------------------------

    def compress_page(self, transport: str, data: Optional[bytes] = None,
                      nbytes: int = PAGE_SIZE) -> Generator[Any, Any, OffloadReport]:
        """Compress one page and park it in the zpool (timed process)."""
        self._check_transport(transport)
        out_bytes, blob = self._compressed_size(data, nbytes)
        if transport == "cxl":
            report = yield from self._offload_cxl(
                "compress", self._compress_cxl, nbytes, out_bytes, blob)
        else:
            handler = {
                "cpu": self._compress_cpu,
                "pcie-dma": self._compress_pcie_dma,
                "pcie-rdma": self._compress_pcie_rdma,
            }[transport]
            report = yield from handler(nbytes, out_bytes, blob)
        return self._record(report)

    def _compress_cpu(self, nbytes: int, out_bytes: int,
                      blob: Any) -> Generator[Any, Any, OffloadReport]:
        sim = self.p.sim
        start = sim.now
        compute = nbytes / HOST_COMPRESS_RATE
        yield self.p.sim.timeout_event(compute)
        # Store into the host-DRAM zpool (riding the cache hierarchy).
        wb = out_bytes / (self.p.cfg.host.dram.bytes_per_ns * 2)
        yield sim.timeout_event(wb)
        total = sim.now - start
        return OffloadReport("cpu", "compress", nbytes, out_bytes,
                             0.0, compute, wb, total, host_cpu_ns=total,
                             result=blob)

    def _compress_cxl(self, nbytes: int, out_bytes: int,
                      blob: Any) -> Generator[Any, Any, OffloadReport]:
        """Fig-7 flow: submit -> poll -> pull || compress || store -> done."""
        sim = self.p.sim
        start = sim.now
        host_cpu = 0.0

        # Step 1: host nt-sts the command (the only host work besides wake).
        t0 = sim.now
        yield from self.doorbell.submit(Command("compress", nbytes=nbytes))
        host_cpu += sim.now - t0

        # Device: one poll sweep notices the fresh command.
        cmd = yield from self.doorbell.device_poll()

        # Steps 2+4: D2H NC-read pull feeding the streaming compressor,
        # genuinely overlapped: the IP starts on the head of the stream
        # and runs at the slower of (IP rate, pull rate).  NC-read has the
        # lowest D2H latency for 4 KB (Fig 6) and leaves no HMC/host-cache
        # footprint.
        pull_addrs = self._lines(nbytes, host=True)
        t0 = sim.now
        xfer_proc = sim.spawn(
            self._lsu_burst(D2HOp.NC_READ, pull_addrs, d2d=False))
        head_ns = self._d2h_head_latency_ns()
        pull_rate = self._d2h_pull_rate()
        yield sim.timeout_event(head_ns)
        compute_done = sim.spawn(
            self.compressor.process_streamed(nbytes, pull_rate))
        transfer_ns = yield xfer_proc.done
        yield compute_done.done
        overlap_ns = sim.now - t0          # transfer and compute, overlapped
        compute_ns = self.compressor.duration_ns(nbytes)

        # Step 5: D2D NC-write of the compressed page into the zpool in
        # device memory (pipelined with compute; only the tail remains).
        store_addrs = self._lines(out_bytes, host=False)
        writeback_ns = yield from self._lsu_burst(
            D2HOp.NC_WRITE, store_addrs[:4], d2d=True)
        yield from self.doorbell.device_complete(
            Completion(cmd.tag, result=out_bytes), push_to_llc=False)

        # Host wake-up: read the completion (one H2D ld).
        t0 = sim.now
        yield from self.doorbell.read_completion()
        host_cpu += sim.now - t0

        total = sim.now - start
        return OffloadReport("cxl", "compress", nbytes, out_bytes,
                             overlap_ns - compute_ns
                             if overlap_ns > compute_ns else transfer_ns,
                             compute_ns, writeback_ns, total,
                             host_cpu_ns=host_cpu, result=blob)

    def _compress_pcie_dma(self, nbytes: int, out_bytes: int,
                           blob: Any) -> Generator[Any, Any, OffloadReport]:
        sim, pcie = self.p.sim, self.p.pcie
        start = sim.now
        host_cpu = DMA_HOST_SETUP_NS
        # Step 2: DMA the page into device memory (host programs it).
        yield sim.timeout_event(DMA_HOST_SETUP_NS)
        t0 = sim.now
        yield from pcie.dma_to_device(nbytes)
        transfer_ns = sim.now - t0
        # Step 4: the same FPGA IP, but the page sat in device DRAM first —
        # no pipelining with the transfer.
        t0 = sim.now
        yield from self.compressor.process(nbytes)
        compute_ns = sim.now - t0
        # Step 5: DMA the compressed page back to the host-DRAM zpool.
        yield sim.timeout_event(DMA_HOST_SETUP_NS)
        host_cpu += DMA_HOST_SETUP_NS
        t0 = sim.now
        yield from pcie.dma_to_host(out_bytes)
        writeback_ns = sim.now - t0
        # Completion: the host fields the DMA-done notification.
        yield sim.timeout_event(PCIE_COMPLETION_HOST_NS)
        host_cpu += PCIE_COMPLETION_HOST_NS
        total = sim.now - start
        return OffloadReport("pcie-dma", "compress", nbytes, out_bytes,
                             transfer_ns, compute_ns, writeback_ns, total,
                             host_cpu_ns=host_cpu, result=blob)

    def _compress_pcie_rdma(self, nbytes: int, out_bytes: int,
                            blob: Any) -> Generator[Any, Any, OffloadReport]:
        sim, snic = self.p.sim, self.p.snic
        start = sim.now
        host_cpu = RDMA_HOST_STACK_NS
        # Step 2: host posts a verbs WQE; BF-3 RDMA-reads the page.
        yield sim.timeout_event(RDMA_HOST_STACK_NS)
        t0 = sim.now
        yield from snic.rdma_transfer(nbytes, to_device=True)
        transfer_ns = sim.now - t0
        # Step 4: Arm-core software compression.
        t0 = sim.now
        yield from snic.arm_compress(nbytes)
        compute_ns = sim.now - t0
        # Step 5: RDMA-write the compressed page to the host-DRAM zpool
        # (DDIO lands it in LLC), then interrupt the host.
        t0 = sim.now
        yield from snic.rdma_transfer(out_bytes, to_device=False)
        writeback_ns = sim.now - t0
        yield from snic.interrupt_host()
        host_cpu += PCIE_COMPLETION_HOST_NS
        yield sim.timeout_event(PCIE_COMPLETION_HOST_NS)
        total = sim.now - start
        return OffloadReport("pcie-rdma", "compress", nbytes, out_bytes,
                             transfer_ns, compute_ns, writeback_ns, total,
                             host_cpu_ns=host_cpu, result=blob)

    # ------------------------------------------------------------------
    # decompression (zswap swap-in, Fig 7 right)
    # ------------------------------------------------------------------

    def decompress_page(self, transport: str, data: Optional[bytes] = None,
                        nbytes: int = PAGE_SIZE,
                        stored_bytes: Optional[int] = None,
                        ) -> Generator[Any, Any, OffloadReport]:
        """Restore one page from the zpool (timed process).  ``nbytes`` is
        the decompressed size; ``stored_bytes`` the zpool footprint."""
        self._check_transport(transport)
        in_bytes = stored_bytes or nbytes // 2
        out = DecompressionIp.run(data) if (self.functional and data) else None
        if transport == "cxl":
            report = yield from self._offload_cxl(
                "decompress", self._decompress_cxl, in_bytes, nbytes, out)
        else:
            handler = {
                "cpu": self._decompress_cpu,
                "pcie-dma": self._decompress_pcie_dma,
                "pcie-rdma": self._decompress_pcie_rdma,
            }[transport]
            report = yield from handler(in_bytes, nbytes, out)
        return self._record(report)

    def _decompress_cpu(self, in_bytes: int, out_bytes: int,
                        out: Any) -> Generator[Any, Any, OffloadReport]:
        sim = self.p.sim
        start = sim.now
        compute = out_bytes / HOST_DECOMPRESS_RATE
        yield sim.timeout_event(compute)
        total = sim.now - start
        return OffloadReport("cpu", "decompress", in_bytes, out_bytes,
                             0.0, compute, 0.0, total, host_cpu_ns=total,
                             result=out)

    def _decompress_cxl(self, in_bytes: int, out_bytes: int,
                        out: Any) -> Generator[Any, Any, OffloadReport]:
        """Pull compressed page from the device-memory zpool with D2D
        CS-read, decompress, NC-P the result straight into host LLC so the
        faulting thread's H2D loads hit locally (Insight 4)."""
        sim = self.p.sim
        start = sim.now
        host_cpu = 0.0
        t0 = sim.now
        yield from self.doorbell.submit(Command("decompress", nbytes=in_bytes))
        host_cpu += sim.now - t0
        cmd = yield from self.doorbell.device_poll()

        pull_addrs = self._lines(in_bytes, host=False)
        t0 = sim.now
        xfer_proc = sim.spawn(
            self._lsu_burst(D2HOp.CS_READ, pull_addrs, d2d=True))
        yield sim.timeout_event(self._d2d_head_latency_ns())
        compute_done = sim.spawn(self.decompressor.process_streamed(
            in_bytes, self._d2d_pull_rate()))
        transfer_ns = yield xfer_proc.done
        yield compute_done.done
        compute_ns = self.decompressor.duration_ns(in_bytes)

        # NC-P the decompressed page into host LLC, pipelined with the
        # decompressor's output; only the tail shows.
        push_addrs = self._lines(out_bytes, host=True)
        writeback_ns = yield from self._lsu_burst(
            D2HOp.NC_P, push_addrs[:8], d2d=False)
        yield from self.doorbell.device_complete(
            Completion(cmd.tag, result=out_bytes), push_to_llc=True)
        t0 = sim.now
        yield from self.doorbell.read_completion_from_llc()
        host_cpu += sim.now - t0
        total = sim.now - start
        return OffloadReport("cxl", "decompress", in_bytes, out_bytes,
                             transfer_ns, compute_ns, writeback_ns, total,
                             host_cpu_ns=host_cpu, result=out)

    def _decompress_pcie_dma(self, in_bytes: int, out_bytes: int,
                             out: Any) -> Generator[Any, Any, OffloadReport]:
        sim, pcie = self.p.sim, self.p.pcie
        start = sim.now
        host_cpu = 2 * DMA_HOST_SETUP_NS + PCIE_COMPLETION_HOST_NS
        yield sim.timeout_event(DMA_HOST_SETUP_NS)
        t0 = sim.now
        yield from pcie.dma_to_device(in_bytes)
        transfer_ns = sim.now - t0
        t0 = sim.now
        yield from self.decompressor.process(out_bytes)
        compute_ns = sim.now - t0
        yield sim.timeout_event(DMA_HOST_SETUP_NS)
        t0 = sim.now
        yield from pcie.dma_to_host(out_bytes)
        writeback_ns = sim.now - t0
        yield sim.timeout_event(PCIE_COMPLETION_HOST_NS)
        total = sim.now - start
        return OffloadReport("pcie-dma", "decompress", in_bytes, out_bytes,
                             transfer_ns, compute_ns, writeback_ns, total,
                             host_cpu_ns=host_cpu, result=out)

    def _decompress_pcie_rdma(self, in_bytes: int, out_bytes: int,
                              out: Any) -> Generator[Any, Any, OffloadReport]:
        sim, snic = self.p.sim, self.p.snic
        start = sim.now
        host_cpu = RDMA_HOST_STACK_NS + PCIE_COMPLETION_HOST_NS
        yield sim.timeout_event(RDMA_HOST_STACK_NS)
        t0 = sim.now
        yield from snic.rdma_transfer(in_bytes, to_device=True)
        transfer_ns = sim.now - t0
        t0 = sim.now
        yield from snic.arm_decompress(out_bytes)
        compute_ns = sim.now - t0
        t0 = sim.now
        yield from snic.rdma_transfer(out_bytes, to_device=False)
        writeback_ns = sim.now - t0
        yield from snic.interrupt_host()
        yield sim.timeout_event(PCIE_COMPLETION_HOST_NS)
        total = sim.now - start
        return OffloadReport("pcie-rdma", "decompress", in_bytes, out_bytes,
                             transfer_ns, compute_ns, writeback_ns, total,
                             host_cpu_ns=host_cpu, result=out)

    # ------------------------------------------------------------------
    # ksm data-plane functions (SVI-B)
    # ------------------------------------------------------------------

    def hash_page(self, transport: str, data: Optional[bytes] = None,
                  nbytes: int = PAGE_SIZE) -> Generator[Any, Any, OffloadReport]:
        """Compute the ksm change-hint checksum of one page.

        The checksum needs the whole page before it is valid, so transfer
        and compute do *not* pipeline (SVI-B).
        """
        self._check_transport(transport)
        value = XxhashIp.run(data) if (self.functional and data) else None
        sim = self.p.sim
        start = sim.now
        if transport == "cpu":
            compute = nbytes / HOST_HASH_RATE
            yield sim.timeout_event(compute)
            total = sim.now - start
            return self._record(OffloadReport(
                "cpu", "hash", nbytes, 4, 0.0, compute, 0.0, total,
                host_cpu_ns=total, result=value))
        if transport == "cxl":
            report = yield from self._offload_cxl(
                "hash", self._hash_cxl, nbytes, value)
            return self._record(report)
        # PCIe paths: transfer in, compute, tiny result back.
        report = yield from self._pcie_roundtrip(
            transport, "hash", nbytes, 4,
            self.hasher.process(nbytes) if transport == "pcie-dma"
            else self.p.snic.arm_hash(nbytes), value)
        return self._record(report)

    def _hash_cxl(self, nbytes: int,
                  value: Any) -> Generator[Any, Any, OffloadReport]:
        sim = self.p.sim
        start = sim.now
        host_cpu = 0.0
        t0 = sim.now
        yield from self.doorbell.submit(Command("hash", nbytes=nbytes))
        host_cpu += sim.now - t0
        cmd = yield from self.doorbell.device_poll()
        transfer_ns = yield from self._lsu_burst(
            D2HOp.NC_READ, self._lines(nbytes, host=True), d2d=False)
        t0 = sim.now
        yield from self.hasher.process(nbytes)
        compute_ns = sim.now - t0
        t0 = sim.now
        yield from self.doorbell.device_complete(
            Completion(cmd.tag, result=value), push_to_llc=True)
        writeback_ns = sim.now - t0
        t0 = sim.now
        yield from self.doorbell.read_completion_from_llc()
        host_cpu += sim.now - t0
        total = sim.now - start
        return OffloadReport(
            "cxl", "hash", nbytes, 4, transfer_ns, compute_ns,
            writeback_ns, total, host_cpu_ns=host_cpu, result=value)

    def compare_pages(self, transport: str,
                      a: Optional[bytes] = None, b: Optional[bytes] = None,
                      nbytes: int = PAGE_SIZE,
                      ) -> Generator[Any, Any, OffloadReport]:
        """Byte-by-byte compare of two pages (2x the transfer volume);
        cxl-ksm pipelines the compare with the transfer (SVI-B)."""
        self._check_transport(transport)
        value = (ByteCompareIp.run(a, b)
                 if (self.functional and a is not None and b is not None)
                 else None)
        sim = self.p.sim
        start = sim.now
        volume = 2 * nbytes
        if transport == "cpu":
            compute = volume / HOST_MEMCMP_RATE
            yield sim.timeout_event(compute)
            total = sim.now - start
            return self._record(OffloadReport(
                "cpu", "compare", volume, 4, 0.0, compute, 0.0, total,
                host_cpu_ns=total, result=value))
        if transport == "cxl":
            report = yield from self._offload_cxl(
                "compare", self._compare_cxl, volume, value)
            return self._record(report)
        report = yield from self._pcie_roundtrip(
            transport, "compare", volume, 4,
            self.comparator.process(volume) if transport == "pcie-dma"
            else self.p.snic.arm_memcmp(volume), value)
        return self._record(report)

    def _compare_cxl(self, volume: int,
                     value: Any) -> Generator[Any, Any, OffloadReport]:
        sim = self.p.sim
        start = sim.now
        host_cpu = 0.0
        t0 = sim.now
        yield from self.doorbell.submit(Command("compare", nbytes=volume))
        host_cpu += sim.now - t0
        cmd = yield from self.doorbell.device_poll()
        t0 = sim.now
        xfer_proc = sim.spawn(self._lsu_burst(
            D2HOp.NC_READ, self._lines(volume, host=True), d2d=False))
        yield sim.timeout_event(self._d2h_head_latency_ns())
        compute_done = sim.spawn(self.comparator.process_streamed(
            volume, self._d2h_pull_rate()))
        transfer_ns = yield xfer_proc.done
        yield compute_done.done
        compute_ns = self.comparator.duration_ns(volume)
        overlap_ns = sim.now - t0
        t0 = sim.now
        yield from self.doorbell.device_complete(
            Completion(cmd.tag, result=value), push_to_llc=True)
        writeback_ns = sim.now - t0
        t0 = sim.now
        yield from self.doorbell.read_completion_from_llc()
        host_cpu += sim.now - t0
        total = sim.now - start
        return OffloadReport(
            "cxl", "compare", volume, 4,
            max(0.0, overlap_ns - compute_ns), compute_ns, writeback_ns,
            total, host_cpu_ns=host_cpu, result=value)

    def _pcie_roundtrip(self, transport: str, op: str, in_bytes: int,
                        out_bytes: int, compute_gen: Generator,
                        value: Any) -> Generator[Any, Any, OffloadReport]:
        """Common PCIe shape: move input in, compute, tiny result back."""
        sim = self.p.sim
        start = sim.now
        if transport == "pcie-dma":
            host_cpu = DMA_HOST_SETUP_NS + PCIE_COMPLETION_HOST_NS
            yield sim.timeout_event(DMA_HOST_SETUP_NS)
            t0 = sim.now
            yield from self.p.pcie.dma_to_device(in_bytes)
            transfer_ns = sim.now - t0
        else:
            host_cpu = RDMA_HOST_STACK_NS + PCIE_COMPLETION_HOST_NS
            yield sim.timeout_event(RDMA_HOST_STACK_NS)
            t0 = sim.now
            yield from self.p.snic.rdma_transfer(in_bytes, to_device=True)
            transfer_ns = sim.now - t0
        t0 = sim.now
        yield from compute_gen
        compute_ns = sim.now - t0
        t0 = sim.now
        if transport == "pcie-dma":
            # The result DMA needs its own descriptor (host-side work).
            host_cpu += DMA_HOST_SETUP_NS
            yield sim.timeout_event(DMA_HOST_SETUP_NS)
            yield from self.p.pcie.dma_to_host(out_bytes)
        else:
            yield from self.p.snic.rdma_transfer(out_bytes, to_device=False)
            yield from self.p.snic.interrupt_host()
        writeback_ns = sim.now - t0
        yield sim.timeout_event(PCIE_COMPLETION_HOST_NS)
        total = sim.now - start
        return OffloadReport(transport, op, in_bytes, out_bytes,
                             transfer_ns, compute_ns, writeback_ns, total,
                             host_cpu_ns=host_cpu, result=value)
