"""The shared-memory doorbell protocol of Fig 7 (steps 1 and 5).

cxl-zswap/ksm communicate without interrupts or descriptor rings:

* **submit (step 1)**: the host writes the command (source/destination
  addresses) into a shared region *in device memory* using nt-st — posted
  writes that neither pollute host cache nor stall the core;
* **poll**: the device ACC spins on the shared region with D2D CS-read,
  which hits the DMC (fast) while the region is unchanged, because
  CS-read keeps the line cached in shared state;
* **complete (step 5)**: the device pushes the result line back — D2D
  NC-write into the shared region for zswap (the host wakes and reads
  it), or D2H NC-P straight into the host LLC for ksm.

The host's entire per-command CPU cost is a handful of nt-st and one
ld — the ~20-50 LoC / near-zero-cycle story of SVII.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, Set

from repro.core.platform import Platform
from repro.core.requests import D2HOp, HostOp
from repro.errors import OffloadError, OffloadTimeoutError
from repro.sim.engine import Event
from repro.sim.resources import Pipe
from repro.units import CACHELINE, kib

COMMAND_LINES = 2   # src addr, dst addr, sizes, opcode: fits in 2 lines


@dataclass
class Command:
    """One offload command carried through the shared region."""

    opcode: str
    src_addr: int = 0
    dst_addr: int = 0
    nbytes: int = 0
    payload: Any = None         # functional payload (page bytes, ...)
    tag: int = 0


@dataclass
class Completion:
    """The device's result line."""

    tag: int
    status: str = "ok"
    result: Any = None
    out_bytes: int = 0


class Doorbell:
    """One shared-memory command/completion channel."""

    def __init__(self, platform: Platform, name: str = "doorbell"):
        self.p = platform
        self.name = name
        region = platform.t2.carve_region(f"{name}-region", kib(4))
        self._cmd_lines = [region.base + i * CACHELINE
                           for i in range(COMMAND_LINES)]
        self._result_line = region.base + COMMAND_LINES * CACHELINE
        # Functional mailboxes (the timed protocol gates their visibility).
        self._commands: Pipe = Pipe(platform.sim, f"{name}.cmd")
        self._completions: Pipe = Pipe(platform.sim, f"{name}.cpl")
        self._next_tag = 1
        self.submitted = 0
        self.completed = 0
        # Robustness bookkeeping: every live tag, its submit time, and a
        # per-tag event the robust host path can race against a timeout.
        self.inflight: Dict[int, float] = {}
        self._cpl_events: Dict[int, Event] = {}
        self._orphans: Set[int] = set()
        self.orphaned = 0
        self.late_completions = 0

    @property
    def queue_depth(self) -> int:
        """Commands submitted but not yet completed or reaped — the
        backlog signal the resilience layer's admission control reads."""
        return len(self.inflight)

    # -- host side -------------------------------------------------------------

    def submit(self, command: Command) -> Generator[Any, Any, int]:
        """Timed host-side submit: nt-st the command lines (step 1).

        Returns the command's tag.  Host cost is only the posted stores.
        """
        command.tag = self._next_tag
        self._next_tag += 1
        core, t2 = self.p.core, self.p.t2
        for addr in self._cmd_lines:
            yield from core.cxl_op(HostOp.NT_STORE, addr, t2)
        self._commands.put(command)
        self.submitted += 1
        self.inflight[command.tag] = self.p.sim.now
        self._cpl_events[command.tag] = Event(
            self.p.sim, name=f"{self.name}.cpl[{command.tag}]")
        return command.tag

    def read_completion(self) -> Generator[Any, Any, Completion]:
        """Timed host-side completion read: one ld of the result line.

        For zswap the result line lives in device memory; kswapd has slept
        through the device work, so the wake-up read is a single H2D ld.
        """
        core, t2 = self.p.core, self.p.t2
        yield from core.cxl_op(HostOp.LOAD, self._result_line, t2)
        got, completion = self._completions.try_get()
        if not got:
            raise OffloadError("completion read before device finished")
        self._retire(completion)
        return completion

    def read_completion_from_llc(self) -> Generator[Any, Any, Completion]:
        """Timed host-side completion read when the device NC-P'd the
        result into host LLC (the ksm flow): a local LLC load."""
        yield from self.p.core.llc_load(self._result_line, self.p.home)
        got, completion = self._completions.try_get()
        if not got:
            raise OffloadError("completion read before device finished")
        self._retire(completion)
        return completion

    def _retire(self, completion: Completion) -> None:
        """Host observed this completion: close out its tag."""
        self.inflight.pop(completion.tag, None)
        ev = self._cpl_events.pop(completion.tag, None)
        if ev is not None and not ev.triggered:
            ev.succeed(completion)
        self.completed += 1

    def await_completion(self, tag: int,
                         timeout_ns: float) -> Generator[Any, Any, Completion]:
        """Robust host-side completion wait: race the tag's completion
        against ``timeout_ns``.

        On completion, pays the same single result-line load as
        :meth:`read_completion` and returns the completion.  On timeout,
        reaps the tag (any completion that later arrives for it is
        counted and dropped) and raises :class:`OffloadTimeoutError`.

        The watchdog is a cancellable :meth:`Simulator.timer`: in the
        common case — the device answers — the timer is tombstoned in
        O(1) and its dead trigger never runs, instead of every completed
        command leaving a live timeout to fire into a stale ``any_of``.
        """
        ev = self._cpl_events.get(tag)
        if ev is None:
            raise OffloadError(f"await_completion on unknown tag {tag}")
        sim = self.p.sim
        watchdog = sim.timer(timeout_ns)
        index, value = yield sim.any_of([ev, watchdog.event])
        if index == 1:      # the timer won: the device hung or dropped it
            waited = sim.now - self.inflight.get(tag, sim.now)
            self.reap_tag(tag)
            raise OffloadTimeoutError(
                f"{self.name}: tag {tag} timed out after {timeout_ns:g} ns"
                f" (waited {waited:g} ns)")
        watchdog.cancel()
        completion: Completion = value
        core, t2 = self.p.core, self.p.t2
        yield from core.cxl_op(HostOp.LOAD, self._result_line, t2)
        self._completions.remove_where(lambda c: c.tag == tag)
        self.inflight.pop(tag, None)
        self._cpl_events.pop(tag, None)
        self.completed += 1
        return completion

    def reap_tag(self, tag: int) -> None:
        """Abandon an in-flight tag: forget its bookkeeping, drop its
        command if the device never consumed it, and mark it orphaned so
        a late completion is discarded instead of being mis-delivered."""
        self.inflight.pop(tag, None)
        self._cpl_events.pop(tag, None)
        self._commands.remove_where(lambda c: c.tag == tag)
        self._orphans.add(tag)
        self.orphaned += 1

    # -- device side -------------------------------------------------------------

    def device_poll(self) -> Generator[Any, Any, Command]:
        """Timed device-side poll: CS-read the command lines until a
        command is visible, then return it.

        CS-read keeps the lines in DMC, so an idle poll iteration costs
        only a DMC hit (SVI-A explains choosing CS-read over NC-read).
        """
        lsu = self.p.t2.lsu
        while True:
            for addr in self._cmd_lines:
                yield from lsu.d2d(D2HOp.CS_READ, addr)
            got, command = self._commands.try_get()
            if got:
                return command
            # Nothing yet: block until a submit lands (the timed CS-read
            # of the refreshed lines happens on the next loop turn).
            ev = self._commands.get()
            yield ev
            self._commands.put(ev.value)

    def device_complete(self, completion: Completion,
                        push_to_llc: bool) -> Generator[Any, Any, None]:
        """Timed device-side completion (step 5): NC-write the result line
        to device memory, or NC-P it into the host LLC."""
        lsu = self.p.t2.lsu
        if push_to_llc:
            yield from lsu.d2h(D2HOp.NC_P, self._result_line)
        else:
            yield from lsu.d2d(D2HOp.NC_WRITE, self._result_line)
        if completion.tag in self._orphans:
            # The host gave up on this tag: the write happened (paid for
            # above) but nobody will ever read it — drop it so a later
            # command cannot be handed a stale result.
            self._orphans.discard(completion.tag)
            self.late_completions += 1
            return
        self._completions.put(completion)
        ev = self._cpl_events.get(completion.tag)
        if ev is not None and not ev.triggered:
            ev.succeed(completion)
