"""Exact-replay bulk fast-forward for homogeneous line streams.

The streaming paths of Fig 3/5/6 — an LSU pulling K host lines, a host
core nt-storing K device lines — walk ~20 engine events *per 64 B line*.
For a provably homogeneous train those event chains are pure arithmetic:
every FIFO stage grants either at the arrival float or at the previous
holder's release float (an unmodified hand-off), and every ``Timeout``
is exactly one ``now + delta`` addition.  This module replays that
arithmetic eagerly at train-start time, performs the real side effects
(cache lookups/fills/state changes, counters, link/channel statistics,
latency-noise draws) in the per-line commit order, and lands the caller
on the final timestamp with a single :class:`~repro.sim.engine.WakeAt`.

Bit-exactness rests on three pillars:

* **identical float chains** — the replay performs the same additions in
  the same association order the per-line generators would, so every
  timestamp (and therefore every downstream jitter draw) is the same
  IEEE double;
* **eligibility, not hope** — a train engages only when the pre-scan
  *proves* homogeneity: bulk enabled, no armed faults or sanitizers, no
  poison in flight, all shared resources idle (or already owned by a
  same-timestamp train group), distinct addresses, and one uniform
  branch through the coherence machinery for every line.  Anything else
  falls back to the per-line path and is counted in
  :data:`~repro.sim.bulk.BULK_STATS`;
* **deferred noise draws** — per-line latency jitter is drawn at each
  line's completion.  Trains sharing a start timestamp (the pipelined
  ``depth`` transfers of Fig 6) register draws into a shared group; the
  first train to resume performs them all in global completion order,
  preserving the RNG stream exactly.

Background work (posted-write drains, dirty-victim writebacks) is
charged into per-channel write-queue ledgers and covered by ghost
processes so the simulation clock ends on the same final timestamp as
the per-line run.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.core.requests import BiasMode, D2HOp, HostOp
from repro.devices.dcoh import HOST_BIAS_WRITE_GAP_EXTRA_NS, DcohSlice
from repro.errors import DeviceError, SimulationError
from repro.faults import NO_FAULTS
from repro.interconnect.cxl import ACK_BYTES, DATA_BYTES, REQ_BYTES
from repro.interconnect.link import Direction
from repro.mem.coherence import LineState
from repro.sim.bulk import BULK_STATS, bulk_enabled
from repro.sim.engine import WakeAt
from repro.units import CACHELINE

# Below this, per-line cost is negligible and a train buys nothing.
MIN_TRAIN_LINES = 2

_D2H_OPS = (D2HOp.NC_READ, D2HOp.CS_READ, D2HOp.NC_WRITE, D2HOp.NC_P)

_D2D_READS = (D2HOp.NC_READ, D2HOp.CS_READ, D2HOp.CO_READ)
_D2D_OPS = _D2D_READS + (D2HOp.NC_WRITE, D2HOp.CO_WRITE)


class _ChannelLedger:
    """Per-channel posted-write queue replayed as arithmetic.

    Mirrors :meth:`repro.mem.memctrl.MemoryChannel.write_line` exactly:
    an enqueue is granted at its arrival while the queue has room
    (slots freed by drains that completed at or before the arrival),
    otherwise at the earliest outstanding drain-completion float (FIFO
    slot hand-off, no arithmetic); each drain ends at
    ``max(enqueue_end, prev_drain_end) + drain_ns`` where the max picks
    an unmodified float.
    """

    __slots__ = ("cap", "enq", "drain", "pending", "d_prev")

    def __init__(self, channel: Any):
        cfg = channel.cfg
        self.cap = cfg.write_queue_entries
        self.enq = cfg.write_enqueue_ns
        self.drain = cfg.drain_ns_per_line()
        self.pending: deque = deque()   # drain-end floats, oldest first
        self.d_prev = 0.0

    def write(self, arrival: float) -> Tuple[float, float]:
        """Post one line at ``arrival``; return (enqueue_end, drain_end)."""
        pending = self.pending
        while pending and pending[0] <= arrival:
            pending.popleft()           # that slot freed before we arrived
        if len(pending) < self.cap:
            grant = arrival
        else:
            grant = pending.popleft()   # direct hand-off at the drain end
        e = grant + self.enq
        d = (e if self.d_prev <= e else self.d_prev) + self.drain
        self.d_prev = d
        pending.append(d)
        return e, d


class _TrainGroup:
    """Ledger shared by all trains departing at one timestamp.

    Fig 6's bandwidth phase spawns ``depth`` whole-transfer processes at
    a single timestamp; per-line, their children interleave only through
    FIFO resources, so later trains simply *extend* the first train's
    pipeline state.  The group carries that state — window release
    stream, per-stage free floats, per-channel write-queue ledgers — and
    the deferred jitter draws of every member train.
    """

    __slots__ = ("key", "t0", "horizon", "count", "drawn", "pending",
                 "claimed", "win_free", "win_heap", "issue_free", "wp_free",
                 "up_free", "down_free", "rd_free", "wq")

    def __init__(self, key: tuple, t0: float, window: int):
        self.key = key
        self.t0 = t0
        self.horizon = t0
        self.count = 0                # global child index across trains
        self.drawn = False
        self.pending: List[tuple] = []
        self.claimed: set = set()
        self.win_free = window
        self.win_heap: List[Tuple[float, int]] = []
        self.issue_free = 0.0
        self.wp_free = 0.0
        self.up_free = 0.0
        self.down_free = 0.0
        self.rd_free: Dict[Any, float] = {}
        self.wq: Dict[Any, _ChannelLedger] = {}

    def grant(self, t0: float) -> float:
        """Window admission: free slot now, else FIFO release hand-off."""
        if self.win_free > 0:
            self.win_free -= 1
            return t0
        return heapq.heappop(self.win_heap)[0]

    def wq_for(self, channel: Any) -> _ChannelLedger:
        ledger = self.wq.get(channel)
        if ledger is None:
            ledger = self.wq[channel] = _ChannelLedger(channel)
        return ledger


def _live_group(platform: Any) -> Optional[_TrainGroup]:
    group = getattr(platform, "_bulk_group", None)
    if group is not None and platform.sim.now >= group.horizon:
        platform._bulk_group = None
        group = None
    return group


def _static_block_reason(p: Any) -> Optional[str]:
    """Platform-wide conditions under which no train may ever run."""
    if not bulk_enabled():
        return "disabled"
    if p.coherence_sanitizer is not None or p.race_detector is not None:
        return "sanitizers"
    if getattr(p.sim, "race_detector", None) is not None:
        return "sanitizers"
    dcoh = p.t2.dcoh
    if type(dcoh) is not DcohSlice:        # DcohArray facade: per-line only
        return "dcoh-array"
    if dcoh.viral:
        return "viral"
    link = p.t2.port.link
    if link.dead or link.faults is not NO_FAULTS or link._retrain_until:
        return "link-ras"
    if (p.faults is not NO_FAULTS
            or p.home.mem.faults is not NO_FAULTS
            or p.t2.dev_mem.faults is not NO_FAULTS
            or p.home.mem.poisoned or p.t2.dev_mem.poisoned
            or dcoh._poisoned_writebacks):
        return "faults"
    return None


def _all_idle(resources: List[Any]) -> bool:
    return all(r.in_use == 0 and not r._waiters for r in resources)


def _unexpected_writeback(addr: int) -> None:
    raise SimulationError(
        f"bulk train evicted a dirty line ({hex(addr)}) the eligibility "
        "pre-scan promised could not exist")


def _ghost(until: float) -> Generator[Any, Any, None]:
    """Hold the clock open until batched background work would finish."""
    yield WakeAt(until)


def _train(sim: Any, group: _TrainGroup, fore_end: float,
           completions: List[float]) -> Generator[Any, Any, List[float]]:
    """The generator handed back to the per-line call site.

    Lands on the train's foreground end; the first member of the group
    to resume performs every deferred jitter draw in global completion
    order (nothing else consumes those RNG streams inside the group's
    window, so the stream order matches the per-line run exactly).
    """
    yield WakeAt(fore_end)
    if not group.drawn:
        group.drawn = True
        for __, __, fn, raw, out, i in sorted(
                group.pending, key=lambda e: (e[0], e[1])):
            out[i] = fn(raw)
    return completions


# ----------------------------------------------------------------------
# D2H trains (LSU -> DCOH -> CXL.cache -> home agent)
# ----------------------------------------------------------------------

def try_lsu_train(p: Any, lsu: Any, op: D2HOp,
                  addrs: List[int]) -> Optional[Generator[Any, Any,
                                                          List[float]]]:
    """Attempt to batch ``lsu.d2h(op, addr) for addr in addrs`` into one
    train.  Returns a generator bit-exact to running the per-line
    processes pipelined from the current timestamp, or ``None`` when the
    stream is not provably homogeneous (caller falls back per-line)."""
    if op not in _D2H_OPS or len(addrs) < MIN_TRAIN_LINES:
        return None
    reason = _static_block_reason(p)
    if reason is not None:
        if reason != "disabled":
            BULK_STATS.fallback(reason)
        return None
    t2 = p.t2
    if lsu is not t2.lsu or lsu.dcoh is not t2.dcoh:
        BULK_STATS.fallback("foreign-lsu")
        return None
    if len(set(addrs)) != len(addrs):
        BULK_STATS.fallback("dup-addrs")
        return None

    sim = p.sim
    t0 = sim.now
    dcoh, home = t2.dcoh, p.home
    hmc, llc, mem = dcoh.hmc, home.llc, home.mem
    key = ("d2h", op)

    group = _live_group(p)
    if group is not None:
        if group.t0 != t0 or group.key != key:
            BULK_STATS.fallback("group-overlap")
            return None
        if any(a in group.claimed for a in addrs):
            BULK_STATS.fallback("addr-overlap")
            return None
    else:
        resources = [lsu._window, lsu._issue, dcoh._write_pipe]
        resources += [extra._window for extra in t2._extra_lsus]
        resources += list(t2.port.link._wires.values())
        for ch in mem.channels:
            resources += [ch._wq, ch._drain, ch._read_bw]
        if not _all_idle(resources):
            BULK_STATS.fallback("busy")
            return None

    # -- branch pre-scan: every line must take one uniform path ---------
    hmc_lines = [hmc.peek(a) for a in addrs]
    if any(line is not None and line.poisoned for line in hmc_lines):
        BULK_STATS.fallback("poison")
        return None
    hmc_hit = all(line is not None for line in hmc_lines)
    hmc_miss = all(line is None for line in hmc_lines)
    llc_present = [llc.peek(a) is not None for a in addrs]
    llc_hit = all(llc_present)
    llc_miss = not any(llc_present)

    is_read = op in (D2HOp.NC_READ, D2HOp.CS_READ)
    if is_read:
        if hmc_hit:
            branch = "hmc"
        elif hmc_miss and llc_hit:
            branch = "llc"
        elif hmc_miss and llc_miss:
            branch = "mem"
        else:
            BULK_STATS.fallback("mixed-branch")
            return None
        if op is D2HOp.CS_READ and branch != "hmc":
            # Fills can evict resident lines mid-train; a dirty (or
            # poisoned) victim would spawn a wire-using writeback the
            # replay does not model.
            if any(line.state.is_dirty or line.poisoned
                   for line in hmc.lines()):
                BULK_STATS.fallback("dirty-hmc")
                return None
    elif op is D2HOp.NC_WRITE:
        if not (llc_hit or llc_miss):
            BULK_STATS.fallback("mixed-branch")
            return None
        branch = "llc" if llc_hit else "mem"
        # Keep every channel's queue below capacity so enqueue-complete
        # times stay monotone across channels (no cross-channel
        # reordering at the shared ack wire).
        if len(addrs) > mem.channels[0].cfg.write_queue_entries:
            BULK_STATS.fallback("wq-depth")
            return None
    else:                                   # NC_P
        branch = "push"

    # -- eligibility proven: build the train ----------------------------
    if group is None:
        group = _TrainGroup(key, t0, lsu.cfg.lsu_outstanding)

    lcfg = t2.port.link.cfg
    ser_req = lcfg.serialization_ns(REQ_BYTES)
    ser_data_up = lcfg.serialization_ns(REQ_BYTES + DATA_BYTES)
    ser_data_down = lcfg.serialization_ns(DATA_BYTES)
    ser_ack = lcfg.serialization_ns(ACK_BYTES)
    prop = lcfg.propagation_ns
    issue_ns = lsu.cfg.lsu_issue_ns
    engine_ns = lsu.cfg.dcoh.engine_ns
    lookup_ns = lsu.cfg.dcoh.lookup_ns
    gap_ns = lsu.cfg.dcoh.write_issue_gap_ns
    costs = dcoh.costs
    llc_ns = home.cfg.llc_ns
    bw_ns = CACHELINE / mem.channels[0].cfg.bytes_per_ns
    read_ns = mem.channels[0].cfg.read_ns
    cs_fill = op is D2HOp.CS_READ
    victims: List[int] = []

    K = len(addrs)
    completions = [0.0] * K
    results = [0.0] * K
    bg_end = 0.0
    up_msgs = up_bytes = down_msgs = down_bytes = 0

    for k, addr in enumerate(addrs):
        g = group.grant(t0)
        gi = group.count
        group.count += 1
        # lsu.issue (FIFO, one slot per fabric cycle) + DCOH front end
        t = (g if group.issue_free <= g else group.issue_free) + issue_ns
        group.issue_free = t
        t += engine_ns
        t += lookup_ns
        if is_read:
            line = hmc.lookup(addr)
            if branch == "hmc":
                t += lookup_ns                       # HMC data array
                c = t
                if cs_fill:                          # Table III: ends Shared
                    line.state = LineState.SHARED
            else:
                u = t if group.up_free <= t else group.up_free
                t = u + ser_req
                group.up_free = t
                t += prop
                up_msgs += 1
                up_bytes += REQ_BYTES
                t += costs.read_ns
                line = llc.lookup(addr)
                t += llc_ns
                if branch == "llc":
                    if cs_fill and line.state.needs_downgrade_for_share:
                        line.state = LineState.SHARED
                else:
                    t += costs.miss_extra_ns
                    ch = mem.channel_for(addr)
                    ch.reads += 1
                    free = group.rd_free.get(ch, 0.0)
                    t = (t if free <= t else free) + bw_ns
                    group.rd_free[ch] = t
                    t += read_ns
                d = t if group.down_free <= t else group.down_free
                t = d + ser_data_down
                group.down_free = t
                t += prop
                down_msgs += 1
                down_bytes += DATA_BYTES
                c = t
                if cs_fill:
                    hmc.insert(addr, LineState.SHARED,
                               writeback=_unexpected_writeback)
        else:
            wp = t if group.wp_free <= t else group.wp_free
            t = wp + gap_ns
            group.wp_free = t
            hmc.invalidate(addr)                     # Table III: -> Invalid
            u = t if group.up_free <= t else group.up_free
            t = u + ser_data_up
            group.up_free = t
            t += prop
            up_msgs += 1
            up_bytes += REQ_BYTES + DATA_BYTES
            t += costs.write_ns
            if op is D2HOp.NC_WRITE:
                if branch == "llc":
                    t += llc_ns
                    llc.set_state(addr, LineState.INVALID)
                ch = mem.channel_for(addr)
                ch.writes += 1
                t, d_end = group.wq_for(ch).write(t)
                if d_end > bg_end:
                    bg_end = d_end
            else:                                    # NC_P -> host LLC
                t += llc_ns
                del victims[:]
                llc.insert(addr, LineState.MODIFIED,
                           writeback=victims.append)
                for victim in victims:               # dirty victim -> DRAM
                    vch = mem.channel_for(victim)
                    vch.writes += 1
                    __, d_end = group.wq_for(vch).write(t)
                    if d_end > bg_end:
                        bg_end = d_end
            d = t if group.down_free <= t else group.down_free
            t = d + ser_ack
            group.down_free = t
            t += prop
            down_msgs += 1
            down_bytes += ACK_BYTES
            c = t
        completions[k] = c
        heapq.heappush(group.win_heap, (c, gi))
        group.pending.append((c, gi, lsu._jittered, c - t0, results, k))

    dcoh.d2h_count += K
    link = t2.port.link
    link.messages += up_msgs + down_msgs
    link.bytes_moved += up_bytes + down_bytes
    group.claimed.update(addrs)
    fore_end = max(completions)
    if bg_end > group.horizon or fore_end > group.horizon:
        group.horizon = max(group.horizon, fore_end, bg_end)
    p._bulk_group = group
    if bg_end > fore_end:
        sim.spawn(_ghost(bg_end), "bulk.d2h.bg")
    BULK_STATS.batch(f"d2h/{op.value}", K)
    return _train(sim, group, fore_end, completions)


# ----------------------------------------------------------------------
# D2D trains (LSU -> DCOH -> DMC / device memory, bias-mode aware)
# ----------------------------------------------------------------------

def try_lsu_d2d_train(p: Any, lsu: Any, op: D2HOp,
                      addrs: List[int]) -> Optional[Generator[Any, Any,
                                                              List[float]]]:
    """Attempt to batch ``lsu.d2d(op, addr) for addr in addrs``.

    D2D streams are homogeneous when every line resolves to one bias
    mode, one DMC branch (all-hit or all-miss), and — under host bias —
    a clean host LLC (a dirty host copy takes the data-pull branch).
    Dirty DMC victims evicted by fills are replayed into the device
    channels' write-queue ledgers, exactly like the per-line writeback
    processes they stand in for."""
    if op not in _D2D_OPS or len(addrs) < MIN_TRAIN_LINES:
        return None
    reason = _static_block_reason(p)
    if reason is not None:
        if reason != "disabled":
            BULK_STATS.fallback(reason)
        return None
    t2 = p.t2
    if lsu is not t2.lsu or lsu.dcoh is not t2.dcoh:
        BULK_STATS.fallback("foreign-lsu")
        return None
    if len(set(addrs)) != len(addrs):
        BULK_STATS.fallback("dup-addrs")
        return None

    sim = p.sim
    t0 = sim.now
    dcoh = t2.dcoh
    dmc, llc, dev = dcoh.dmc, p.home.llc, t2.dev_mem
    try:
        biases = {dcoh._bias_of(a) for a in addrs}
    except DeviceError:
        BULK_STATS.fallback("bias-error")
        return None
    if len(biases) != 1:
        BULK_STATS.fallback("mixed-bias")
        return None
    host_bias = biases.pop() is BiasMode.HOST
    key = ("d2d", op, host_bias)

    group = _live_group(p)
    if group is not None:
        if group.t0 != t0 or group.key != key:
            BULK_STATS.fallback("group-overlap")
            return None
        if any(a in group.claimed for a in addrs):
            BULK_STATS.fallback("addr-overlap")
            return None
    else:
        resources = [lsu._window, lsu._issue, dcoh._write_pipe]
        resources += [extra._window for extra in t2._extra_lsus]
        resources += list(t2.port.link._wires.values())
        for ch in dev.channels:
            resources += [ch._wq, ch._drain, ch._read_bw]
        if not _all_idle(resources):
            BULK_STATS.fallback("busy")
            return None

    # -- branch pre-scan: one uniform path for every line ---------------
    dmc_lines = [dmc.peek(a) for a in addrs]
    if any(line is not None and line.poisoned for line in dmc_lines):
        BULK_STATS.fallback("poison")
        return None
    dmc_hit = all(line is not None for line in dmc_lines)
    dmc_miss = all(line is None for line in dmc_lines)
    # NC-wr invalidates the DMC line regardless of residency — the only
    # op whose path does not branch on hit/miss.
    if not (dmc_hit or dmc_miss) and op is not D2HOp.NC_WRITE:
        BULK_STATS.fallback("mixed-branch")
        return None
    branch = "dmc" if dmc_hit else "mem"

    is_read = op in _D2D_READS
    # Host-bias snoop runs for every write, and for reads only on a DMC
    # miss; a dirty host copy takes the data-pull branch per line.
    snoops = host_bias and (not is_read or branch == "mem")
    if snoops and any(llc.state_of(a).is_dirty for a in addrs):
        BULK_STATS.fallback("llc-dirty")
        return None
    fills = branch == "mem" and op in (D2HOp.CS_READ, D2HOp.CO_READ,
                                       D2HOp.CO_WRITE)
    if fills and any(line.poisoned for line in dmc.lines()):
        # A poisoned victim would defer device-memory poison through
        # ``_poisoned_writebacks`` — per-line machinery only.
        BULK_STATS.fallback("poison")
        return None

    # -- eligibility proven: build the train ----------------------------
    if group is None:
        group = _TrainGroup(key, t0, lsu.cfg.lsu_outstanding)

    lcfg = t2.port.link.cfg
    ser_req = lcfg.serialization_ns(REQ_BYTES)
    ser_ack = lcfg.serialization_ns(ACK_BYTES)
    prop = lcfg.propagation_ns
    issue_ns = lsu.cfg.lsu_issue_ns
    engine_ns = lsu.cfg.dcoh.engine_ns
    lookup_ns = lsu.cfg.dcoh.lookup_ns
    gap_ns = lsu.cfg.dcoh.write_issue_gap_ns
    if host_bias:
        gap_ns = gap_ns + HOST_BIAS_WRITE_GAP_EXTRA_NS
    write_ns = dcoh.costs.write_ns
    bw_ns = CACHELINE / dev.channels[0].cfg.bytes_per_ns
    read_ns = dev.channels[0].cfg.read_ns
    fill_state = (LineState.SHARED if op is D2HOp.CS_READ
                  else LineState.EXCLUSIVE if op is D2HOp.CO_READ
                  else LineState.MODIFIED)
    victims: List[int] = []

    K = len(addrs)
    completions = [0.0] * K
    results = [0.0] * K
    bg_end = 0.0
    up_msgs = up_bytes = down_msgs = down_bytes = 0

    for k, addr in enumerate(addrs):
        g = group.grant(t0)
        gi = group.count
        group.count += 1
        t = (g if group.issue_free <= g else group.issue_free) + issue_ns
        group.issue_free = t
        t += engine_ns
        t += lookup_ns
        if is_read:
            dmc.lookup(addr)                     # hit/miss + LRU effects
            if branch == "dmc":
                t += lookup_ns                   # DMC data array
                c = t
            else:
                if host_bias:                    # snoop: clean, ack back
                    u = t if group.up_free <= t else group.up_free
                    t = u + ser_req
                    group.up_free = t
                    t += prop
                    up_msgs += 1
                    up_bytes += REQ_BYTES
                    t += write_ns
                    d = t if group.down_free <= t else group.down_free
                    t = d + ser_ack
                    group.down_free = t
                    t += prop
                    down_msgs += 1
                    down_bytes += ACK_BYTES
                ch = dev.channel_for(addr)
                ch.reads += 1
                free = group.rd_free.get(ch, 0.0)
                t = (t if free <= t else free) + bw_ns
                group.rd_free[ch] = t
                t += read_ns
                c = t
                if op is not D2HOp.NC_READ:
                    del victims[:]
                    dmc.insert(addr, fill_state, writeback=victims.append)
                    for victim in victims:       # dirty victim -> dev DRAM
                        vch = dev.channel_for(victim)
                        vch.writes += 1
                        __, d_end = group.wq_for(vch).write(c)
                        if d_end > bg_end:
                            bg_end = d_end
        else:
            wp = t if group.wp_free <= t else group.wp_free
            t = wp + gap_ns
            group.wp_free = t
            if host_bias:                        # snoop: clean, invalidate
                u = t if group.up_free <= t else group.up_free
                t = u + ser_req
                group.up_free = t
                t += prop
                up_msgs += 1
                up_bytes += REQ_BYTES
                t += write_ns
                if llc.state_of(addr).is_valid:
                    llc.set_state(addr, LineState.INVALID)
                d = t if group.down_free <= t else group.down_free
                t = d + ser_ack
                group.down_free = t
                t += prop
                down_msgs += 1
                down_bytes += ACK_BYTES
            if op is D2HOp.CO_WRITE:
                if branch == "dmc":
                    line = dmc.peek(addr)
                    t += lookup_ns
                    line.state = LineState.MODIFIED
                    line.scrub_poison()
                else:
                    del victims[:]
                    dmc.insert(addr, LineState.MODIFIED,
                               writeback=victims.append)
                    for victim in victims:       # dirty victim -> dev DRAM
                        vch = dev.channel_for(victim)
                        vch.writes += 1
                        __, d_end = group.wq_for(vch).write(t)
                        if d_end > bg_end:
                            bg_end = d_end
                    t += lookup_ns
                c = t
            else:                                # NC_WRITE: posted to DRAM
                dmc.invalidate(addr)
                ch = dev.channel_for(addr)
                ch.writes += 1
                t, d_end = group.wq_for(ch).write(t)
                if d_end > bg_end:
                    bg_end = d_end
                c = t
        completions[k] = c
        heapq.heappush(group.win_heap, (c, gi))
        group.pending.append((c, gi, lsu._jittered, c - t0, results, k))

    dcoh.d2d_count += K
    link = t2.port.link
    link.messages += up_msgs + down_msgs
    link.bytes_moved += up_bytes + down_bytes
    group.claimed.update(addrs)
    fore_end = max(completions)
    if bg_end > group.horizon or fore_end > group.horizon:
        group.horizon = max(group.horizon, fore_end, bg_end)
    p._bulk_group = group
    if bg_end > fore_end:
        sim.spawn(_ghost(bg_end), "bulk.d2d.bg")
    BULK_STATS.batch(f"d2d/{op.value}", K)
    return _train(sim, group, fore_end, completions)


# ----------------------------------------------------------------------
# H2D nt-store trains (host core -> CXL.mem -> Type-2 device)
# ----------------------------------------------------------------------

def try_h2d_train(p: Any, core: Any, op: HostOp, device: Any,
                  addrs: List[int]) -> Optional[Generator[Any, Any,
                                                          List[float]]]:
    """Attempt to batch ``core.cxl_op(NT_STORE, addr, device)`` streams.

    Only the posted nt-store path batches: its foreground is pure
    window/wire arithmetic (the store retires at the CXL controller) and
    the device-side work — bias touch, DMC check, posted DRAM write — is
    replayed into background ledgers.  Loads and ordered stores return
    ``None`` (per-line)."""
    if op is not HostOp.NT_STORE or len(addrs) < MIN_TRAIN_LINES:
        return None
    reason = _static_block_reason(p)
    if reason is not None:
        if reason != "disabled":
            BULK_STATS.fallback(reason)
        return None
    t2 = p.t2
    if device is not t2:
        BULK_STATS.fallback("h2d-target")
        return None
    if len(set(addrs)) != len(addrs):
        BULK_STATS.fallback("dup-addrs")
        return None

    sim = p.sim
    t0 = sim.now
    dcoh = t2.dcoh
    dev_mem = t2.dev_mem
    key = ("h2d", op)
    window = core._win[("cxl", op)]

    group = _live_group(p)
    if group is not None:
        if group.t0 != t0 or group.key != key:
            BULK_STATS.fallback("group-overlap")
            return None
        if any(a in group.claimed for a in addrs):
            BULK_STATS.fallback("addr-overlap")
            return None
    else:
        resources = [window, t2.port.link._wires[Direction.TO_DEVICE]]
        for ch in dev_mem.channels:
            resources += [ch._wq, ch._drain]
        if not _all_idle(resources):
            BULK_STATS.fallback("busy")
            return None

    # Any resident DMC line takes a coherence-state branch per line.
    if any(dcoh.dmc.peek(a) is not None for a in addrs):
        BULK_STATS.fallback("dmc-state")
        return None

    if group is None:
        group = _TrainGroup(key, t0, window.capacity)

    lcfg = t2.port.link.cfg
    ser_data = lcfg.serialization_ns(REQ_BYTES + DATA_BYTES)
    prop = lcfg.propagation_ns
    issue_ns = core.cfg.issue_ns
    post_ns = core.cfg.nt_store_post_ns
    fabric_ns = t2.cfg.h2d_fabric_ns
    check_ns = t2.cfg.h2d_dmc_check_ns

    K = len(addrs)
    completions = [0.0] * K
    results = [0.0] * K
    bg_end = 0.0

    for k, addr in enumerate(addrs):
        g = group.grant(t0)
        gi = group.count
        group.count += 1
        t = g + issue_ns
        t += post_ns
        w = t if group.down_free <= t else group.down_free
        t = w + ser_data
        group.down_free = t
        c = t + prop                        # retires at the controller
        completions[k] = c
        heapq.heappush(group.win_heap, (c, gi))
        group.pending.append((c, gi, core._jittered, c - t0, results, k))
        # Background: the posted device-side write spawned at c.
        t2.bias.h2d_touch(addr)
        b = c + fabric_ns
        b += check_ns                       # DMC check: miss, no action
        ch = dev_mem.channel_for(addr)
        ch.writes += 1
        __, d_end = group.wq_for(ch).write(b)
        if d_end > bg_end:
            bg_end = d_end

    t2.h2d_writes += K
    link = t2.port.link
    link.messages += K
    link.bytes_moved += (REQ_BYTES + DATA_BYTES) * K
    group.claimed.update(addrs)
    fore_end = max(completions)
    if bg_end > group.horizon or fore_end > group.horizon:
        group.horizon = max(group.horizon, fore_end, bg_end)
    p._bulk_group = group
    if bg_end > fore_end:
        sim.spawn(_ghost(bg_end), "bulk.h2d.bg")
    BULK_STATS.batch("h2d/nt-st", K)
    return _train(sim, group, fore_end, completions)
