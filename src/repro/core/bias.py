"""Bias-mode management for device-memory regions (SIV-B).

A CXL Type-2 device may carve its memory into regions and run each in
host- or device-bias mode.  Switching host->device bias requires software
preparation: flush the region's lines from host cache, then grant the
device exclusive access.  The reverse switch is automatic — the moment an
H2D request touches a device-bias region, that region falls back to
host-bias.
"""

from __future__ import annotations

from typing import Any, Dict, Generator

from repro.core.requests import BiasMode
from repro.errors import DeviceError
from repro.host.cpu import Core
from repro.host.home_agent import HomeAgent
from repro.mem.address import AddressMap


class BiasController:
    """Tracks and switches the bias mode of each device-memory region."""

    def __init__(self, regions: AddressMap):
        self.regions = regions
        self._mode: Dict[str, BiasMode] = {
            region.name: BiasMode.HOST for region in regions
        }
        self.switches_to_device = 0
        self.switches_to_host = 0

    def mode_of_region(self, name: str) -> BiasMode:
        try:
            return self._mode[name]
        except KeyError:
            raise DeviceError(f"unknown device-memory region {name!r}")

    def mode_of_addr(self, addr: int) -> BiasMode:
        region = self.regions.try_find(addr)
        if region is None:
            raise DeviceError(f"address {hex(addr)} not in device memory")
        return self._mode[region.name]

    # -- switching -----------------------------------------------------------

    def enter_device_bias(self, name: str, core: Core,
                          home: HomeAgent) -> Generator[Any, Any, None]:
        """Timed process: the host-side preparation for device bias.

        Software flushes every line of the region from host cache (paying
        CLFLUSH cost per line) before granting exclusive access (SIV-B).
        """
        region = self.regions.get(name)
        for line_addr in region.lines():
            yield from core.clflush(line_addr, home)
        self._mode[name] = BiasMode.DEVICE
        self.switches_to_device += 1

    def force_device_bias(self, name: str) -> None:
        """Untimed variant for tests/benchmark setup (the flush cost is
        not part of the measured access path)."""
        self.mode_of_region(name)  # validates the name
        self._mode[name] = BiasMode.DEVICE
        self.switches_to_device += 1

    def h2d_touch(self, addr: int) -> None:
        """An H2D request to a device-bias region flips it to host bias
        immediately (SIV-B)."""
        region = self.regions.try_find(addr)
        if region is None:
            return
        if self._mode[region.name] is BiasMode.DEVICE:
            self._mode[region.name] = BiasMode.HOST
            self.switches_to_host += 1
