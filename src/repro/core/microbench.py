"""The memo-style characterization microbenchmark (SV).

For every access path the paper measures, this harness

1. prepares the caches into the scenario's state (LLC hit/miss, DMC
   hit/miss + coherence state, bias mode) on *fresh* addresses,
2. measures **latency** by running each access to completion back-to-back
   (dependent accesses, no overlap), and
3. measures **bandwidth** by issuing the scenario's N accesses pipelined
   and timing first-issue to last-completion,

then reduces repetitions to median +- std exactly as the paper does.
The paper uses N = 16 64 B accesses ("frequent host-device transfers of
small amounts of data") and >=1 K repetitions; repetitions here default
lower for CI speed but are configurable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Iterable, Optional

from repro.core import fastpath
from repro.core.platform import Platform
from repro.core.requests import BiasMode, D2HOp, HostOp
from repro.errors import WorkloadError
from repro.mem.coherence import LineState
from repro.sim.stats import Summary, bandwidth_gbps, summarize

DEFAULT_ACCESSES = 16
DEFAULT_REPS = 40


@dataclass(frozen=True)
class Measurement:
    """One scenario's reduced result."""

    label: str
    latency: Summary          # per-access latency (ns)
    bandwidth: Summary        # achieved bandwidth (GB/s)


OpFactory = Callable[[int], Generator[Any, Any, float]]
PrepareFn = Callable[[list[int]], None]
# Optional bulk fast-forward: given the pipelined phase's addresses,
# return a bit-exact batched train or None (per-line fallback).
BulkFn = Callable[[list[int]], Optional[Generator[Any, Any, list[float]]]]


class Microbench:
    """Latency/bandwidth characterization against one platform.

    ``pattern`` selects the address stream: the paper measures random
    accesses but notes sequential and random "present similar latency
    and bandwidth trends" (SV, Methodology) — both are supported so the
    claim itself is testable.
    """

    def __init__(self, platform: Platform, reps: int = DEFAULT_REPS,
                 accesses: int = DEFAULT_ACCESSES, pattern: str = "random"):
        if reps < 1 or accesses < 1:
            raise WorkloadError("reps and accesses must be positive")
        if pattern not in ("random", "sequential"):
            raise WorkloadError(f"unknown access pattern {pattern!r}")
        self.p = platform
        self.reps = reps
        self.accesses = accesses
        self.pattern = pattern

    def _ordered(self, addrs: list[int]) -> list[int]:
        """Apply the configured access pattern to fresh line addresses
        (allocators hand them out sequentially)."""
        if self.pattern == "random":
            addrs = list(addrs)
            self.p.rng.shuffle(addrs)
        return addrs

    # ------------------------------------------------------------------
    # generic measurement core
    # ------------------------------------------------------------------

    def _measure(self, label: str, make_op: OpFactory, prepare: PrepareFn,
                 fresh: Callable[[int], list[int]],
                 accesses: Optional[int] = None,
                 bulk: Optional[BulkFn] = None) -> Measurement:
        n = accesses or self.accesses
        sim = self.p.sim
        latencies: list[float] = []
        bandwidths: list[float] = []
        for __ in range(self.reps):
            # Latency: dependent accesses, one at a time.
            addrs = self._ordered(fresh(n))
            prepare(addrs)
            for addr in addrs:
                latencies.append(sim.run_process(make_op(addr)))
            # Bandwidth: the same scenario, pipelined.  Elapsed time is
            # first-issue to last *completion of the measured accesses* --
            # background work (write-queue drains, victim writebacks)
            # continues after the clock stops, as on real hardware.
            addrs = self._ordered(fresh(n))
            prepare(addrs)
            start = sim.now
            done_at: list[float] = []

            def timed(addr: int) -> Generator[Any, Any, None]:
                yield from make_op(addr)
                done_at.append(sim.now)

            train = bulk(addrs) if bulk is not None else None
            if train is not None:
                done_at = sim.run_process(train)
            else:
                procs = [sim.spawn(timed(addr)) for addr in addrs]
                sim.run()
                if not all(proc.finished for proc in procs):
                    raise WorkloadError(f"{label}: pipelined run deadlocked")
            bandwidths.append(bandwidth_gbps(n * 64, max(done_at) - start))
        return Measurement(label, summarize(latencies), summarize(bandwidths))

    # ------------------------------------------------------------------
    # D2H: true (CXL Type-2 LSU) vs emulated (remote core over UPI)
    # ------------------------------------------------------------------

    def d2h(self, op: D2HOp, llc_hit: bool) -> Measurement:
        """True D2H accesses from the device LSU (Fig 3, solid bars)."""
        lsu = self.p.t2.lsu

        def prepare(addrs: list[int]) -> None:
            self._prime_llc(addrs, llc_hit)

        return self._measure(
            f"d2h/{op.value}/llc-{int(llc_hit)}",
            lambda addr: lsu.d2h(op, addr),
            prepare, self.p.fresh_host_lines,
            bulk=lambda addrs: fastpath.try_lsu_train(self.p, lsu, op, addrs),
        )

    def emulated_d2h(self, op: HostOp, llc_hit: bool) -> Measurement:
        """Emulated D2H: remote-socket core over UPI (Fig 3, hatched)."""
        core, home, upi = self.p.core, self.p.home, self.p.upi

        def prepare(addrs: list[int]) -> None:
            self._prime_llc(addrs, llc_hit)

        return self._measure(
            f"emul/{op.value}/llc-{int(llc_hit)}",
            lambda addr: core.remote_op(op, addr, home, upi),
            prepare, self.p.fresh_host_lines,
        )

    def _prime_llc(self, addrs: Iterable[int], llc_hit: bool) -> None:
        """The paper's CLDEMOTE methodology: for hits, confine the lines
        to the LLC in SHARED; for misses fresh lines are already absent."""
        if llc_hit:
            for addr in addrs:
                self.p.home.preload_llc(addr, LineState.SHARED)

    # ------------------------------------------------------------------
    # D2D: host-bias vs device-bias (Fig 4)
    # ------------------------------------------------------------------

    def d2d(self, op: D2HOp, bias: BiasMode, dmc_hit: bool,
            accesses: Optional[int] = None) -> Measurement:
        """D2D accesses from the LSU under a bias mode (Fig 4)."""
        t2 = self.p.t2
        if bias is BiasMode.DEVICE:
            t2.bias._mode["devmem"] = BiasMode.DEVICE
        else:
            t2.bias._mode["devmem"] = BiasMode.HOST

        def prepare(addrs: list[int]) -> None:
            if dmc_hit:
                for addr in addrs:
                    t2.dcoh._fill_dmc(addr, LineState.SHARED)

        return self._measure(
            f"d2d/{op.value}/{bias.value}/dmc-{int(dmc_hit)}",
            lambda addr: t2.lsu.d2d(op, addr),
            prepare, self.p.fresh_dev_lines, accesses=accesses,
            bulk=lambda addrs: fastpath.try_lsu_d2d_train(
                self.p, t2.lsu, op, addrs),
        )

    # ------------------------------------------------------------------
    # H2D: host core to Type-2 / Type-3 device memory (Fig 5)
    # ------------------------------------------------------------------

    def h2d(self, op: HostOp, device: str = "t2",
            dmc_state: Optional[LineState] = None) -> Measurement:
        """H2D accesses; ``dmc_state`` primes DMC lines for the Type-2
        hit scenarios (None = DMC miss; Type-3 has no DMC)."""
        if device == "t2":
            target = self.p.t2
        elif device == "t3":
            target = self.p.t3
        else:
            raise WorkloadError(f"unknown H2D device {device!r}")
        if device == "t3" and dmc_state is not None:
            raise WorkloadError("Type-3 device has no DMC to hit")
        core = self.p.core

        def prepare(addrs: list[int]) -> None:
            if dmc_state is not None:
                for addr in addrs:
                    self.p.t2.dcoh._fill_dmc(addr, dmc_state)

        state = dmc_state.value if dmc_state else "miss"
        return self._measure(
            f"h2d/{device}/{op.value}/dmc-{state}",
            lambda addr: core.cxl_op(op, addr, target),
            prepare, self.p.fresh_dev_lines,
            bulk=lambda addrs: fastpath.try_h2d_train(
                self.p, core, op, target, addrs),
        )

    def h2d_after_ncp(self, op: HostOp) -> Measurement:
        """H2D accesses to words the device pre-pushed into host LLC with
        NC-P (Fig 5, lighter DMC-0 bars; Insight 4)."""
        core, home = self.p.core, self.p.home

        def prepare(addrs: list[int]) -> None:
            # The NC-P itself leaves the line MODIFIED in the LLC.
            for addr in addrs:
                home.preload_llc(addr, LineState.MODIFIED)

        if op.is_read:
            make = lambda addr: core.llc_load(addr, home)
        else:
            make = lambda addr: core.llc_store(addr, home)
        return self._measure(
            f"h2d/ncp/{op.value}", make, prepare, self.p.fresh_host_lines,
        )
