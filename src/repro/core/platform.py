"""Platform wiring: the Table-II testbed as one object graph.

A :class:`Platform` owns the simulator and instantiates the host (home
agent, cores, DSA), the interconnects, and all four devices so that
experiments can mix and match initiators and targets.  Device memory is
mapped high in the physical address space, mirroring how CXL.mem exposes
it as a remote NUMA node.
"""

from __future__ import annotations

from typing import Optional

from repro.config import SystemConfig, default_system
from repro.devices.cxl_type2 import CxlType2Device
from repro.faults import NO_FAULTS, FaultPlan
from repro.devices.cxl_type3 import CxlType3Device
from repro.devices.pcie_fpga import PcieFpgaDevice
from repro.devices.snic import SmartNic
from repro.host.cpu import Core
from repro.host.dsa import DsaEngine
from repro.host.hierarchy import CacheHierarchy
from repro.host.home_agent import HomeAgent
from repro.interconnect.upi import UpiPort
from repro.lint.races import RaceDetector
from repro.lint.sanitizer import CoherenceSanitizer
from repro.mem.address import AddressMap, Region
from repro.mem.backing import SparseMemory
from repro.sim.engine import Simulator
from repro.sim.rng import DeterministicRng
from repro.units import gib

HOST_DRAM_BYTES = gib(64)
DEVMEM_BASE = 1 << 40      # CXL.mem window, far above host DRAM


class Platform:
    """The dual-socket testbed with all four devices attached."""

    def __init__(self, cfg: Optional[SystemConfig] = None,
                 seed: Optional[int] = None):
        self.cfg = cfg or default_system()
        self.sim = Simulator()
        self.rng = DeterministicRng(seed if seed is not None else self.cfg.seed)
        noise = self.cfg.latency_noise

        # Host side
        self.home = HomeAgent(self.sim, self.cfg.host)
        self.upi = UpiPort(self.sim, self.cfg.upi)
        self.core = Core(self.sim, self.cfg.host, rng=self.rng.fork(1),
                         noise=noise)
        self.hierarchy = CacheHierarchy(self.sim, self.cfg.host, self.home)
        self.dsa = DsaEngine(self.sim)
        self.host_memory = SparseMemory("hostmem")

        # Address layout
        self.address_map = AddressMap()
        self.address_map.add(Region("host-dram", 0, HOST_DRAM_BYTES))

        # Devices
        self.t2 = CxlType2Device(
            self.sim, self.cfg.cxl_t2, self.home, mem_base=DEVMEM_BASE,
            rng=self.rng.fork(2), noise=noise,
        )
        self.t3 = CxlType3Device(self.sim, self.cfg.cxl_t3,
                                 mem_base=DEVMEM_BASE)
        self.pcie = PcieFpgaDevice(self.sim, self.cfg.pcie_dev)
        self.snic = SmartNic(self.sim, self.cfg.snic)

        self.address_map.add(
            Region("cxl-devmem", DEVMEM_BASE, self.t2.regions.get("devmem").size,
                   kind="cxl"))

        # Monotone line allocators so repeated measurements always touch
        # cold addresses (the paper's per-repetition fresh buffers).
        self._host_cursor = gib(1)
        self._dev_cursor = DEVMEM_BASE

        # RAS: inert until arm_faults() installs a real plan.
        self.faults = NO_FAULTS

        # Runtime sanitizers (repro.lint): inert unless the config (or an
        # explicit arm_sanitizers() call) arms them.
        self.coherence_sanitizer: Optional[CoherenceSanitizer] = None
        self.race_detector: Optional[RaceDetector] = None
        san = self.cfg.sanitizers
        if san.any_armed:
            self.arm_sanitizers(coherence=san.coherence, races=san.races,
                                strict=san.strict)

    # -- runtime sanitizers ----------------------------------------------------

    def arm_sanitizers(self, coherence: bool = True, races: bool = True,
                       strict: bool = True) -> None:
        """Arm the coherence sanitizer and/or the sim-time race detector
        across the platform: the host LLC and every DCOH slice's HMC and
        DMC.  Idempotent; see :mod:`repro.lint` for the invariants."""
        dcoh = self.t2.dcoh
        slices = getattr(dcoh, "slices", None) or [dcoh]
        if coherence and self.coherence_sanitizer is None:
            sanitizer = CoherenceSanitizer(self.sim, strict=strict)
            sanitizer.watch(self.home.llc)
            for slice_ in slices:
                sanitizer.watch(slice_.hmc)
                sanitizer.watch(slice_.dmc)
            self.coherence_sanitizer = sanitizer
        if races and self.race_detector is None:
            detector = RaceDetector(self.sim, strict=strict).arm()
            for cache in [self.home.llc] + [
                    c for s in slices for c in (s.hmc, s.dmc)]:
                cache.race_detector = detector
            self.race_detector = detector

    def assert_sanitizers_clean(self) -> None:
        """Raise if any armed sanitizer recorded a violation."""
        if self.coherence_sanitizer is not None:
            self.coherence_sanitizer.assert_clean()
        if self.race_detector is not None:
            self.race_detector.assert_clean()

    # -- fault injection -------------------------------------------------------

    def arm_faults(self, plan) -> FaultPlan:
        """Install a :class:`~repro.faults.FaultPlan` (or a spec string
        like ``"link_crc=1e-6,device_hang@t=50ms"``) across the platform:
        the CXL link, the device memory system, and every consumer that
        reads ``platform.faults``.  Scheduled faults are bound to this
        platform's clock.  Returns the installed plan."""
        if isinstance(plan, str):
            plan = FaultPlan.parse(plan, seed=self.cfg.seed)
        self.faults = plan
        self.t2.port.link.faults = plan
        self.t2.dev_mem.faults = plan
        plan.bind(self)
        return plan

    # -- scratch-address allocation -------------------------------------------

    def fresh_host_lines(self, count: int) -> list[int]:
        """``count`` never-before-touched host cache-line addresses."""
        base = self._host_cursor
        self._host_cursor += count * 64
        if self._host_cursor > HOST_DRAM_BYTES:
            raise MemoryError("host scratch region exhausted")
        return [base + i * 64 for i in range(count)]

    def fresh_dev_lines(self, count: int) -> list[int]:
        """``count`` fresh device-memory line addresses."""
        base = self._dev_cursor
        self._dev_cursor += count * 64
        region = self.t2.regions.get("devmem")
        if self._dev_cursor > region.end:
            raise MemoryError("device scratch region exhausted")
        return [base + i * 64 for i in range(count)]
