"""Interconnect models: generic flit links, PCIe, CXL, and UPI.

All three concrete interconnects share the :class:`repro.interconnect.link.Link`
timing skeleton (per-direction serialization + propagation) and differ in
parameters and protocol rules: PCIe adds TLP overheads and the strict
uncacheable-write ordering that throttles MMIO; CXL carries .cache/.mem
messages with low per-message cost; UPI is the mature NUMA fabric used for
the emulated-CXL baseline.
"""

from repro.interconnect.link import Direction, Link
from repro.interconnect.cxl import CxlPort
from repro.interconnect.pcie import PciePort
from repro.interconnect.upi import UpiPort

__all__ = ["Direction", "Link", "CxlPort", "PciePort", "UpiPort"]
