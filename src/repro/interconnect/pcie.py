"""PCIe port: MMIO semantics and bulk TLP streaming.

Two properties make PCIe expensive for fine-grained transfers (SII-A):

* an uncacheable MMIO read is a full ~1 us round trip and a core keeps
  only one outstanding;
* MMIO writes post in one direction but PCIe's strict ordering permits a
  single in-flight write — modelled by holding the ordering slot for the
  entire one-way flight, not just serialization.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.config import PcieDeviceConfig
from repro.interconnect.link import Direction, Link
from repro.sim.bulk import BULK_STATS, bulk_enabled
from repro.sim.engine import Simulator, Timeout, WakeAt
from repro.sim.resources import Resource
from repro.units import CACHELINE


class PciePort:
    """A PCIe endpoint (FPGA BARs + DMA engine)."""

    def __init__(self, sim: Simulator, cfg: PcieDeviceConfig):
        self.sim = sim
        self.cfg = cfg
        self.link = Link(sim, cfg.link)
        # Strict write ordering: one MMIO/WC write in flight at a time.
        self._write_order = Resource(sim, 1, "pcie.wr-order")
        # The DMA engine moves one transfer at a time.
        self._dma_engine = Resource(sim, 1, "pcie.dma")

    # -- MMIO ---------------------------------------------------------------

    def mmio_read(self, nbytes: int = CACHELINE) -> Generator[Any, Any, None]:
        """Uncacheable read: full round trip per <=64 B beat, serialized.

        A 256 B read is four dependent round trips -> the >4 us the paper
        reports.
        """
        beats = max(1, (nbytes + CACHELINE - 1) // CACHELINE)
        if beats >= 2 and bulk_enabled():
            # The beats are process-local dependent Timeouts, so the
            # chain is one repeated addition regardless of concurrency.
            end = self.sim.now
            for __ in range(beats):
                end += self.cfg.mmio_read_rt_ns
            BULK_STATS.batch("pcie/mmio-rd", beats)
            yield WakeAt(end)
            return
        for __ in range(beats):
            yield Timeout(self.cfg.mmio_read_rt_ns)

    def mmio_write(self, nbytes: int = CACHELINE) -> Generator[Any, Any, None]:
        """Write-combining write: 64 B beats, one in flight (ordering).

        Deliberately *not* bulk fast-forwarded: the ordering slot is a
        contended FIFO, and concurrent writers must interleave per beat.
        """
        beats = max(1, (nbytes + CACHELINE - 1) // CACHELINE)
        for __ in range(beats):  # reprolint: disable=PERF402 ordering FIFO
            yield from self._write_order.using(self.cfg.mmio_write_oneway_ns)

    # -- DMA ------------------------------------------------------------------

    def dma(self, nbytes: int,
            to_device: bool = True) -> Generator[Any, Any, None]:
        """One DMA transfer: setup + streaming + completion notice.

        Setup cost is paid per transfer regardless of size — the reason
        DMA loses to MMIO/CXL for small messages.
        """
        yield Timeout(self.cfg.dma_setup_ns)
        yield self._dma_engine.acquire()
        try:
            direction = Direction.TO_DEVICE if to_device else Direction.TO_HOST
            rate = min(self.cfg.dma_bytes_per_ns, self.cfg.link.bytes_per_ns)
            yield from self.link.send(direction, 0)  # descriptor fetch beat
            yield Timeout(nbytes / rate)
            yield from self.link.send(
                Direction.TO_HOST if to_device else Direction.TO_DEVICE, 0)
        finally:
            self._dma_engine.release()
        yield Timeout(self.cfg.dma_completion_ns)
