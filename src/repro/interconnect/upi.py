"""UPI port: the cross-socket fabric used for the emulated-CXL baseline.

The paper emulates a CXL Type-2 device with a remote NUMA node: a core on
socket 1 touching socket 0's memory exercises the same logical D2H path
(remote agent -> home LLC/DRAM) over UPI instead of CXL.  ``TO_HOST`` is
the direction toward the home socket.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.config import LinkConfig
from repro.interconnect.link import Direction, Link
from repro.sim.engine import Simulator
from repro.units import CACHELINE

REQ_BYTES = 12    # UPI request flit payload
ACK_BYTES = 8


class UpiPort:
    """One socket pair's view of the UPI link."""

    def __init__(self, sim: Simulator, cfg: LinkConfig):
        self.sim = sim
        self.link = Link(sim, cfg)

    def req_to_home(self) -> Generator[Any, Any, None]:
        """Remote core -> home CHA request (no data)."""
        yield from self.link.send(Direction.TO_HOST, REQ_BYTES)

    def data_to_home(self) -> Generator[Any, Any, None]:
        """Remote core -> home write carrying a 64 B line."""
        yield from self.link.send(Direction.TO_HOST, REQ_BYTES + CACHELINE)

    def data_to_remote(self) -> Generator[Any, Any, None]:
        """Home -> remote 64 B data return."""
        yield from self.link.send(Direction.TO_DEVICE, CACHELINE)

    def ack_to_remote(self) -> Generator[Any, Any, None]:
        """Home -> remote completion/ownership grant without data."""
        yield from self.link.send(Direction.TO_DEVICE, ACK_BYTES)
