"""CXL port: .cache and .mem message legs over the shared flit link.

CXL.cache carries the device's D2H requests (RdCurr / RdShared / RdOwn /
ItoMWr / WrPush, per the CXL 1.1 opcodes the paper references in Fig 2);
CXL.mem carries the host's H2D requests (M2S Req / RwD).  Both ride the
same physical x16 link, so they share the :class:`Link` wires — a detail
that matters when zswap offload traffic and Redis H2D accesses coexist.

Methods are individual *legs* (one direction each) so callers can
interleave them with home-agent / DCOH processing in the right order.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.config import LinkConfig
from repro.interconnect.link import Direction, Link
from repro.sim.engine import Simulator
from repro.units import CACHELINE

# CXL.cache / CXL.mem message sizes (bytes on the wire, excl. link header)
REQ_BYTES = 16        # address + opcode + tags
DATA_BYTES = CACHELINE
ACK_BYTES = 8         # completion without data (GO / Cmp)


class CxlPort:
    """One CXL endpoint pair's view of the link."""

    def __init__(self, sim: Simulator, cfg: LinkConfig):
        self.sim = sim
        self.link = Link(sim, cfg)

    # -- D2H legs (device-initiated, CXL.cache) ------------------------------

    def d2h_req_up(self) -> Generator[Any, Any, None]:
        """Device -> host request without data (RdCurr/RdShared/RdOwn)."""
        yield from self.link.send(Direction.TO_HOST, REQ_BYTES)

    def d2h_data_up(self) -> Generator[Any, Any, None]:
        """Device -> host request carrying a 64 B line (writes, NC-P)."""
        yield from self.link.send(Direction.TO_HOST, REQ_BYTES + DATA_BYTES)

    def data_down(self) -> Generator[Any, Any, None]:
        """Host -> device 64 B data return."""
        yield from self.link.send(Direction.TO_DEVICE, DATA_BYTES)

    def ack_down(self) -> Generator[Any, Any, None]:
        """Host -> device completion without data (GO)."""
        yield from self.link.send(Direction.TO_DEVICE, ACK_BYTES)

    # -- H2D legs (host-initiated, CXL.mem) -----------------------------------

    def h2d_req_down(self) -> Generator[Any, Any, None]:
        """Host -> device M2S read request."""
        yield from self.link.send(Direction.TO_DEVICE, REQ_BYTES)

    def h2d_data_down(self) -> Generator[Any, Any, None]:
        """Host -> device M2S RwD (write with 64 B data)."""
        yield from self.link.send(Direction.TO_DEVICE, REQ_BYTES + DATA_BYTES)

    def data_up(self) -> Generator[Any, Any, None]:
        """Device -> host 64 B data return."""
        yield from self.link.send(Direction.TO_HOST, DATA_BYTES)

    def ack_up(self) -> Generator[Any, Any, None]:
        """Device -> host completion (S2M NDR Cmp)."""
        yield from self.link.send(Direction.TO_HOST, ACK_BYTES)
