"""Generic point-to-point link with serialization and propagation."""

from __future__ import annotations

import enum
from typing import Any, Generator

from repro.config import LinkConfig
from repro.sim.engine import Simulator, Timeout
from repro.sim.resources import Resource


class Direction(enum.Enum):
    """Transfer direction relative to the host."""

    TO_DEVICE = "down"    # host -> device (downstream)
    TO_HOST = "up"        # device -> host (upstream)


class Link:
    """Full-duplex link: each direction serializes independently.

    A message occupies its direction's wire for
    ``(payload + header) / rate`` and then takes ``propagation_ns`` to
    arrive; back-to-back messages pipeline (the wire frees as soon as the
    bits are pushed, before the flight completes).
    """

    def __init__(self, sim: Simulator, cfg: LinkConfig):
        self.sim = sim
        self.cfg = cfg
        self._wires = {
            Direction.TO_DEVICE: Resource(sim, 1, f"{cfg.name}.down"),
            Direction.TO_HOST: Resource(sim, 1, f"{cfg.name}.up"),
        }
        self.messages = 0
        self.bytes_moved = 0

    def send(self, direction: Direction,
             payload_bytes: int) -> Generator[Any, Any, None]:
        """Timed process: deliver one message in ``direction``."""
        self.messages += 1
        self.bytes_moved += payload_bytes
        ser = self.cfg.serialization_ns(payload_bytes)
        yield from self._wires[direction].using(ser)
        yield Timeout(self.cfg.propagation_ns)

    def round_trip(self, request_bytes: int,
                   response_bytes: int) -> Generator[Any, Any, None]:
        """Request one way, response the other (no target think time)."""
        yield from self.send(Direction.TO_DEVICE, request_bytes)
        yield from self.send(Direction.TO_HOST, response_bytes)

    @property
    def min_round_trip_ns(self) -> float:
        """Analytic floor: two propagations + two minimal serializations."""
        return 2 * self.cfg.propagation_ns + 2 * self.cfg.serialization_ns(0)
