"""Generic point-to-point link with serialization and propagation."""

from __future__ import annotations

import enum
from typing import Any, Generator

from repro.config import LinkConfig
from repro.errors import LinkError
from repro.faults import NO_FAULTS
from repro.sim.engine import Simulator, Timeout, WakeAt
from repro.sim.resources import Resource

# RAS timing (CXL 3.0 §6.2: link-layer retry is a NAK + replay from the
# sender's retry buffer; a hot reset retrains the physical layer).
CRC_REPLAY_LOGIC_NS = 10.0       # NAK decode + retry-buffer readout
LINK_HOT_RESET_NS = 20_000.0     # retrain window after a hot reset


class Direction(enum.Enum):
    """Transfer direction relative to the host."""

    TO_DEVICE = "down"    # host -> device (downstream)
    TO_HOST = "up"        # device -> host (upstream)


class Link:
    """Full-duplex link: each direction serializes independently.

    A message occupies its direction's wire for
    ``(payload + header) / rate`` and then takes ``propagation_ns`` to
    arrive; back-to-back messages pipeline (the wire frees as soon as the
    bits are pushed, before the flight completes).

    RAS behavior (inert unless a :class:`~repro.faults.FaultPlan` is
    armed or the link is explicitly failed): a ``link_crc`` fault makes
    the corrupted flit occupy the wire, pays a NAK round trip plus retry
    -buffer readout, and is then replayed — the message still arrives,
    late.  A dead link (:meth:`fail`) raises :class:`LinkError` at the
    sender; :meth:`hot_reset` revives it after a retrain window during
    which senders stall.
    """

    def __init__(self, sim: Simulator, cfg: LinkConfig):
        self.sim = sim
        self.cfg = cfg
        self._wires = {
            Direction.TO_DEVICE: Resource(sim, 1, f"{cfg.name}.down"),
            Direction.TO_HOST: Resource(sim, 1, f"{cfg.name}.up"),
        }
        self.messages = 0
        self.bytes_moved = 0
        self.faults = NO_FAULTS
        self.dead = False
        self._retrain_until = 0.0
        self.crc_replays = 0
        self.resets = 0
        self.stalled_messages = 0

    def send(self, direction: Direction,
             payload_bytes: int) -> Generator[Any, Any, None]:
        """Timed process: deliver one message in ``direction``."""
        self.messages += 1
        self.bytes_moved += payload_bytes
        ser = self.cfg.serialization_ns(payload_bytes)
        if self.dead or self.faults.active or self._retrain_until:
            yield from self._ras_gate(direction, ser)
        yield from self._wires[direction].using(ser)
        yield Timeout(self.cfg.propagation_ns)

    def send_bulk(self, direction: Direction, payload_bytes: int,
                  count: int) -> Generator[Any, Any, None]:
        """Deliver ``count`` equal messages back-to-back from one sender.

        Bit-exact to a sequential per-line loop of :meth:`send` when the
        caller is the *sole user* of this direction's wire for the whole
        batch: each per-line iteration advances the clock by
        ``t += ser; t += propagation`` (idle wire, immediate grant), and
        this method performs the identical addition chain before one
        :class:`~repro.sim.engine.WakeAt`.  RAS state (dead link, armed
        faults, retrain window) automatically degrades to the per-line
        path so fault semantics are never batched away.
        """
        if count <= 0:
            return
        if self.dead or self.faults.active or self._retrain_until:
            for _ in range(count):  # reprolint: disable=PERF402 ras fallback
                yield from self.send(direction, payload_bytes)
            return
        self.messages += count
        self.bytes_moved += payload_bytes * count
        ser = self.cfg.serialization_ns(payload_bytes)
        prop = self.cfg.propagation_ns
        wire = self._wires[direction]
        yield wire.acquire()
        try:
            end = self.sim.now
            for _ in range(count):
                end += ser
                end += prop
            yield WakeAt(end)
        finally:
            wire.release()

    def _ras_gate(self, direction: Direction,
                  ser: float) -> Generator[Any, Any, None]:
        """Fault path of :meth:`send` (never entered when the link is
        healthy and no plan is armed)."""
        if self.dead:
            raise LinkError(f"link {self.cfg.name!r} is down")
        if self._retrain_until > self.sim.now:
            self.stalled_messages += 1
            yield Timeout(self._retrain_until - self.sim.now)
            if self.dead:     # died again while we were stalled
                raise LinkError(f"link {self.cfg.name!r} is down")
        if self.faults.check("link_crc"):
            # The corrupted attempt pushes its bits, then the receiver
            # NAKs and the sender replays from the retry buffer; send()
            # falls through to the (successful) replay.
            self.crc_replays += 1
            yield from self._wires[direction].using(ser)
            yield Timeout(2 * self.cfg.propagation_ns + CRC_REPLAY_LOGIC_NS)

    def fail(self) -> None:
        """Take the link down: every subsequent send raises
        :class:`LinkError` until :meth:`hot_reset`."""
        self.dead = True

    def hot_reset(self, retrain_ns: float = LINK_HOT_RESET_NS) -> None:
        """Revive (or bounce) the link; senders stall until the physical
        layer finishes retraining ``retrain_ns`` from now."""
        self.dead = False
        self.resets += 1
        self._retrain_until = max(self._retrain_until,
                                  self.sim.now + retrain_ns)

    def round_trip(self, request_bytes: int,
                   response_bytes: int) -> Generator[Any, Any, None]:
        """Request one way, response the other (no target think time)."""
        yield from self.send(Direction.TO_DEVICE, request_bytes)
        yield from self.send(Direction.TO_HOST, response_bytes)

    @property
    def min_round_trip_ns(self) -> float:
        """Analytic floor: two propagations + two minimal serializations."""
        return 2 * self.cfg.propagation_ns + 2 * self.cfg.serialization_ns(0)
