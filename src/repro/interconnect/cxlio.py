"""CXL.io: configuration, enumeration, and HDM decoder programming.

CXL.io "uses the protocol features of PCIe ... to initialize the
interface between the host and a device" (SII-B).  This module models
that control plane: a PCIe-style configuration space with the CXL DVSEC
capability advertising which protocols the device speaks, and the HDM
(Host-managed Device Memory) decoders through which a Type-2/-3
device's memory is published into the host physical address space — the
mechanism behind "CXL.mem exposes device memory to the host CPU as
memory in a remote [NUMA] node".

Enumeration is a *timed* process (config reads are uncached PCIe round
trips), and its output — a :class:`DeviceDescriptor` plus an installed
address-map region — is exactly what :class:`repro.core.platform.Platform`
wires statically, so the two paths are cross-checked in tests.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, Generator, Optional

from repro.errors import DeviceError
from repro.mem.address import AddressMap, Region
from repro.sim.engine import Simulator, Timeout
from repro.units import us

# One configuration read/write is an uncached PCIe round trip.
CONFIG_ACCESS_NS = us(1.0)
# Programming and locking one HDM decoder (a few config writes + commit).
HDM_PROGRAM_NS = us(3.0)

# Register offsets in the modeled config space.
REG_VENDOR_ID = 0x00
REG_DEVICE_ID = 0x02
REG_CLASS = 0x0A
REG_DVSEC_CXL = 0x100       # CXL DVSEC capability header
REG_CXL_CAPS = 0x10A        # cache/mem capability bits
REG_HDM_BASE = 0x110
REG_HDM_SIZE = 0x118

CAP_CACHE = 0x1             # device speaks CXL.cache
CAP_MEM = 0x2               # device speaks CXL.mem

INTEL_VENDOR_ID = 0x8086


class CxlDeviceType(enum.Enum):
    """Table I: the protocol composition determines the device type."""

    TYPE1 = "type-1"        # io + cache
    TYPE2 = "type-2"        # io + cache + mem
    TYPE3 = "type-3"        # io + mem
    PCIE = "pcie"           # plain PCIe function (no CXL DVSEC)

    @classmethod
    def from_caps(cls, caps: int) -> "CxlDeviceType":
        has_cache = bool(caps & CAP_CACHE)
        has_mem = bool(caps & CAP_MEM)
        if has_cache and has_mem:
            return cls.TYPE2
        if has_cache:
            return cls.TYPE1
        if has_mem:
            return cls.TYPE3
        return cls.PCIE


class ConfigSpace:
    """A device's configuration registers (sparse, 16-bit granules)."""

    def __init__(self, vendor_id: int, device_id: int,
                 caps: int = 0, hdm_base: int = 0, hdm_size: int = 0):
        self._regs: Dict[int, int] = {
            REG_VENDOR_ID: vendor_id,
            REG_DEVICE_ID: device_id,
            REG_CLASS: 0x0502,          # CXL memory device class
        }
        if caps:
            self._regs[REG_DVSEC_CXL] = 0x1E98   # CXL DVSEC vendor id
            self._regs[REG_CXL_CAPS] = caps
        if hdm_size:
            self._regs[REG_HDM_BASE] = hdm_base
            self._regs[REG_HDM_SIZE] = hdm_size
        self.reads = 0
        self.writes = 0

    def read(self, offset: int) -> int:
        self.reads += 1
        return self._regs.get(offset, 0xFFFF)   # unimplemented -> all-ones

    def write(self, offset: int, value: int) -> None:
        self.writes += 1
        self._regs[offset] = value


@dataclass(frozen=True)
class DeviceDescriptor:
    """What enumeration learned about one endpoint."""

    vendor_id: int
    device_id: int
    device_type: CxlDeviceType
    hdm_region: Optional[Region] = None

    @property
    def coherent_d2h(self) -> bool:
        return self.device_type in (CxlDeviceType.TYPE1, CxlDeviceType.TYPE2)

    @property
    def host_addressable_memory(self) -> bool:
        return self.device_type in (CxlDeviceType.TYPE2, CxlDeviceType.TYPE3)


def config_space_for(device: Any) -> ConfigSpace:
    """Build the config space a platform device would expose."""
    # Local import keeps interconnect free of a hard devices dependency.
    from repro.devices.cxl_type1 import CxlType1Device
    from repro.devices.cxl_type2 import CxlType2Device
    from repro.devices.cxl_type3 import CxlType3Device
    from repro.devices.pcie_fpga import PcieFpgaDevice

    if isinstance(device, CxlType2Device):
        region = device.regions.get("devmem")
        return ConfigSpace(INTEL_VENDOR_ID, 0x0D93, CAP_CACHE | CAP_MEM,
                           hdm_base=region.base, hdm_size=region.size)
    if isinstance(device, CxlType3Device):
        region = device.regions.get("devmem")
        return ConfigSpace(INTEL_VENDOR_ID, 0x0D94, CAP_MEM,
                           hdm_base=region.base, hdm_size=region.size)
    if isinstance(device, CxlType1Device):
        return ConfigSpace(INTEL_VENDOR_ID, 0x0D92, CAP_CACHE)
    if isinstance(device, PcieFpgaDevice):
        return ConfigSpace(INTEL_VENDOR_ID, 0x0D95)
    raise DeviceError(f"cannot enumerate {type(device).__name__}")


def enumerate_device(sim: Simulator, config: ConfigSpace,
                     address_map: Optional[AddressMap] = None,
                     region_name: str = "cxl-devmem",
                     ) -> Generator[Any, Any, DeviceDescriptor]:
    """Timed enumeration: walk config space, classify the device, and
    program its HDM decoder into ``address_map`` if it has CXL.mem."""
    yield Timeout(CONFIG_ACCESS_NS)
    vendor = config.read(REG_VENDOR_ID)
    if vendor == 0xFFFF:
        raise DeviceError("no device present at this config address")
    yield Timeout(CONFIG_ACCESS_NS)
    device_id = config.read(REG_DEVICE_ID)
    yield Timeout(CONFIG_ACCESS_NS)
    dvsec = config.read(REG_DVSEC_CXL)
    caps = 0
    if dvsec == 0x1E98:
        yield Timeout(CONFIG_ACCESS_NS)
        caps = config.read(REG_CXL_CAPS)
    device_type = CxlDeviceType.from_caps(caps)

    hdm_region: Optional[Region] = None
    if device_type in (CxlDeviceType.TYPE2, CxlDeviceType.TYPE3):
        yield Timeout(2 * CONFIG_ACCESS_NS)
        base = config.read(REG_HDM_BASE)
        size = config.read(REG_HDM_SIZE)
        if size in (0, 0xFFFF):
            raise DeviceError("CXL.mem device advertises no HDM range")
        yield Timeout(HDM_PROGRAM_NS)
        hdm_region = Region(region_name, base, size, kind="cxl")
        if address_map is not None:
            address_map.add(hdm_region)
    return DeviceDescriptor(vendor, device_id, device_type, hdm_region)
