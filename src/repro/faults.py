"""repro.faults: seeded, deterministic fault injection and RAS modeling.

Production offload stacks live or die on the error path, and the CXL
spec itself defines the machinery — data poison, viral containment, link
CRC retry — that this layer exercises.  Three pieces:

:class:`FaultPlan`
    the one injection subsystem every component queries.  A plan holds
    *rate-based* faults (a seeded per-point probability drawn on every
    query), *counted* faults ("the next N queries fire", the
    deterministic style :meth:`SwapDevice.inject_read_errors` uses), and
    *scheduled* faults ("at t=50ms the device hangs").  Each fault point
    draws from its own forked :class:`~repro.sim.rng.DeterministicRng`
    stream, so identical seeds + identical plans produce identical
    timelines regardless of which other points exist.

:data:`NO_FAULTS`
    the inert singleton every component carries by default.  Its checks
    are single attribute/dict operations that never touch an RNG, so an
    un-armed simulation is *bit-identical* to one built before this
    layer existed (asserted by ``tests/test_faults.py``).

:class:`DeviceHealthMonitor`
    the offload framework's health-state machine
    (HEALTHY → DEGRADED → FAILED).  One failed command degrades the
    device; ``fail_threshold`` consecutive failures mark it FAILED, after
    which the offload engine fast-fails and zswap/ksm fall back to the
    cpu path until :meth:`DeviceHealthMonitor.reset`.

Fault points currently queried by the models:

==================  =====================  ================================
point               kind                   queried by
==================  =====================  ================================
``link_crc``        rate (per flit)        :class:`repro.interconnect.link.Link`
``mem_poison``      rate (per DRAM read)   :class:`repro.mem.memctrl.MemorySystem`
``offload_drop``    rate (per command)     :class:`repro.core.offload.OffloadEngine`
``swap_read_error`` rate + counted         :class:`repro.kernel.swapdev.SwapDevice`
``link_down``       scheduled              hot-resets the CXL link
``link_dead``       scheduled              fails the CXL link permanently
``device_hang``     scheduled (flag)       doorbell completions stop arriving
``device_viral``    scheduled              DCOH enters viral containment
``link_up``         scheduled (repair)     revives a dead link (retrain stall)
``device_repair``   scheduled (repair)     clears ``device_hang``, notifies
                                           repair listeners (health probes)
==================  =====================  ================================

Spec strings (the CLI's ``--fault-plan``) combine all styles::

    link_crc=1e-6,device_hang@t=50ms
    link_crc=1e-4@[2ms,5ms]                  # a windowed fault storm
    link_dead@t=3ms,link_up@t=8ms            # kill, then repair

Repair events close the loop from fault to *recovery*: components that
registered a callback in :attr:`FaultPlan.repair_listeners` (the
resilience layer's circuit breaker, the device health monitor) are told
the moment a repair lands so probing can re-admit the device.
"""

from __future__ import annotations

import enum
import math
import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.errors import ConfigError
from repro.sim.rng import DeterministicRng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.platform import Platform

# Scheduled fault names the plan knows how to deliver to a platform.
SCHEDULED_TARGETS = ("link_down", "link_dead", "device_hang", "device_viral")
# Scheduled *repair* names: the inverse events that bring hardware back.
REPAIR_TARGETS = ("link_up", "device_repair")
# Rate-based fault points a spec string may arm (the table above).
RATE_POINTS = ("link_crc", "mem_poison", "offload_drop", "swap_read_error")

_TIME_SUFFIXES = (("ns", 1.0), ("us", 1e3), ("ms", 1e6), ("s", 1e9))


def parse_time_ns(text: str) -> float:
    """``"50ms"`` / ``"75us"`` / ``"1200"`` (bare = ns) -> nanoseconds."""
    text = text.strip()
    value = None
    for suffix, scale in _TIME_SUFFIXES:
        if text.endswith(suffix) and text != suffix:
            head = text[: -len(suffix)]
            # "s" would otherwise swallow the "ns"/"us"/"ms" suffixes.
            if head[-1:].isdigit() or head[-1:] == ".":
                value = float(head) * scale
                break
    if value is None:
        try:
            value = float(text)
        except ValueError:
            raise ConfigError(f"unparseable time {text!r}") from None
    if value < 0:
        raise ConfigError(f"negative time {text!r}")
    return value


@dataclass(frozen=True)
class ScheduledFault:
    """One fault that fires once at an absolute simulated time."""

    name: str
    at_ns: float

    def __post_init__(self) -> None:
        if self.at_ns < 0:
            raise ConfigError(f"scheduled fault in the past: {self}")


@dataclass(frozen=True)
class WindowedFault:
    """A rate fault armed only inside ``[start_ns, end_ns)`` — one burst
    of a fault *storm*.  Outside the window the point draws nothing, so
    a plan whose storms have all passed is as cheap as an idle one."""

    name: str
    rate: float
    start_ns: float
    end_ns: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigError(
                f"storm rate for {self.name!r} out of [0, 1]: {self.rate}")
        if self.start_ns < 0 or self.end_ns <= self.start_ns:
            raise ConfigError(
                f"storm window must satisfy 0 <= start < end: {self}")


class _NoFaults:
    """The inert plan: every query answers "no fault", costing one
    attribute read.  Shared singleton; never holds state."""

    __slots__ = ()
    active = False

    def check(self, point: str) -> bool:
        return False

    def take(self, point: str) -> bool:
        return False

    def flag(self, name: str) -> bool:
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NO_FAULTS"

    def __reduce__(self) -> str:
        # Pickle as the module global: fast paths gate on *identity*
        # (``faults is not NO_FAULTS``), so a checkpoint restore must
        # yield this exact singleton, not a behaviorally equal copy that
        # silently demotes every disarmed platform off the fast path.
        return "NO_FAULTS"


NO_FAULTS = _NoFaults()


class FaultPlan:
    """A seeded, deterministic set of armed faults.

    ``rates`` maps fault-point name -> probability per query; ``schedule``
    lists :class:`ScheduledFault` entries; counted budgets are armed via
    :meth:`arm_counted`.  The plan is inert until components hold a
    reference to it (see :meth:`Platform.arm_faults`), and each rate
    point draws from its own forked RNG stream.
    """

    active = True

    def __init__(self, seed: int = 0,
                 rates: Optional[Dict[str, float]] = None,
                 schedule: Optional[List[ScheduledFault]] = None,
                 windows: Optional[List[WindowedFault]] = None):
        self.seed = int(seed)
        self.rates: Dict[str, float] = dict(rates or {})
        for point, rate in self.rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(
                    f"fault rate for {point!r} out of [0, 1]: {rate}")
        self.schedule: List[ScheduledFault] = sorted(
            schedule or [], key=lambda f: f.at_ns)
        self.windows: List[WindowedFault] = sorted(
            windows or [], key=lambda w: (w.start_ns, w.end_ns, w.name))
        for a, b in zip(self.windows, self.windows[1:]):
            if a.name == b.name and b.start_ns < a.end_ns:
                raise ConfigError(
                    f"overlapping storm windows for {a.name!r}: {a} / {b}")
        root = DeterministicRng(self.seed)
        # Every point that can ever be armed — base rates and windowed
        # storms — forks its stream up front, keyed by name: the draw
        # sequence of one point never depends on which others exist.
        points = set(self.rates) | {w.name for w in self.windows}
        self._streams: Dict[str, DeterministicRng] = {
            point: root.fork(zlib.crc32(point.encode()))
            for point in sorted(points)
        }
        self._counted: Dict[str, int] = {}
        self._flags: set[str] = set()
        self._window_saved: Dict[str, float] = {}   # base rate to restore
        self.fired: Dict[str, int] = {}      # point -> times it fired
        self.fired_log: List[tuple[float, str]] = []   # scheduled firings
        # Called as listener(name, now_ns) when a repair event lands;
        # the resilience layer hooks its breaker/health probes in here.
        self.repair_listeners: List[Callable[[str, float], None]] = []

    # -- parsing -----------------------------------------------------------

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Build a plan from a spec like ``link_crc=1e-6,device_hang@t=50ms``.

        Grammar (entries comma-separated; full reference docs/RESILIENCE.md):

        * ``name=rate`` arms a rate fault (``name`` from :data:`RATE_POINTS`);
        * ``name=rate@[t0,t1]`` arms a windowed fault *storm*;
        * ``name@t=<time>`` schedules a fault (:data:`SCHEDULED_TARGETS`)
          or a repair (:data:`REPAIR_TARGETS`).

        Times take ``ns``/``us``/``ms``/``s`` suffixes, bare = ns.
        Malformed entries raise :class:`ConfigError` naming the token.
        """
        # The storm window comes *after* the spec's outer comma-split, so
        # windows are re-joined here: "a=1e-4@[1ms" + "5ms]" is one entry.
        parts: List[str] = []
        for raw in (p.strip() for p in spec.split(",")):
            if not raw:
                continue
            if parts and "@[" in parts[-1] and "]" not in parts[-1]:
                parts[-1] += "," + raw
            else:
                parts.append(raw)
        rates: Dict[str, float] = {}
        schedule: List[ScheduledFault] = []
        windows: List[WindowedFault] = []
        for part in parts:
            if "@t=" in part:
                name, __, when = part.partition("@t=")
                name = name.strip()
                if name not in SCHEDULED_TARGETS + REPAIR_TARGETS:
                    raise ConfigError(
                        f"unknown scheduled fault {name!r} in {part!r} "
                        f"(known: {', '.join(SCHEDULED_TARGETS + REPAIR_TARGETS)})")
                try:
                    at_ns = parse_time_ns(when)
                except ConfigError as exc:
                    raise ConfigError(f"bad time in {part!r}: {exc}") from None
                schedule.append(ScheduledFault(name, at_ns))
            elif "=" in part:
                name, __, value = part.partition("=")
                name, value = name.strip(), value.strip()
                if name not in RATE_POINTS:
                    raise ConfigError(
                        f"unknown fault point {name!r} in {part!r} "
                        f"(known rate points: {', '.join(RATE_POINTS)})")
                window_txt = None
                if "@[" in value:
                    value, __, window_txt = value.partition("@[")
                    value = value.strip()
                if not value:
                    raise ConfigError(
                        f"missing rate in {part!r} "
                        f"(want {name}=<probability>)")
                try:
                    rate = float(value)
                except ValueError:
                    raise ConfigError(
                        f"unparseable fault rate {value!r} in {part!r}") \
                        from None
                if not 0.0 <= rate <= 1.0:
                    raise ConfigError(
                        f"fault rate {rate:g} out of [0, 1] in {part!r}")
                if window_txt is None:
                    rates[name] = rate
                    continue
                if not window_txt.endswith("]"):
                    raise ConfigError(
                        f"unterminated storm window in {part!r} "
                        f"(want {name}=rate@[t0,t1])")
                t0_txt, comma, t1_txt = window_txt[:-1].partition(",")
                if not comma:
                    raise ConfigError(
                        f"storm window needs two times in {part!r} "
                        f"(want {name}=rate@[t0,t1])")
                try:
                    t0, t1 = parse_time_ns(t0_txt), parse_time_ns(t1_txt)
                except ConfigError as exc:
                    raise ConfigError(f"bad time in {part!r}: {exc}") from None
                windows.append(WindowedFault(name, rate, t0, t1))
            else:
                raise ConfigError(
                    f"unparseable fault spec entry {part!r} "
                    "(want name=rate, name=rate@[t0,t1], or name@t=time)")
        return cls(seed=seed, rates=rates, schedule=schedule,
                   windows=windows)

    def describe(self) -> str:
        parts = [f"{p}={r:g}" for p, r in sorted(self.rates.items())]
        parts += [f"{w.name}={w.rate:g}@[{w.start_ns:g},{w.end_ns:g}]"
                  for w in self.windows]
        parts += [f"{f.name}@t={f.at_ns:g}ns" for f in self.schedule]
        return ",".join(parts) or "(empty)"

    # -- queries (the component-facing fault points) -----------------------

    def check(self, point: str) -> bool:
        """Rate-based query: does the fault fire on this occasion?

        Points without an armed rate never touch an RNG stream."""
        rate = self.rates.get(point)
        if not rate:
            return False
        if self._streams[point].random() < rate:
            self.fired[point] = self.fired.get(point, 0) + 1
            return True
        return False

    def take(self, point: str) -> bool:
        """Counted-then-rate query: consume one armed deterministic
        failure if any remain, else fall through to the rate check."""
        budget = self._counted.get(point, 0)
        if budget > 0:
            self._counted[point] = budget - 1
            self.fired[point] = self.fired.get(point, 0) + 1
            return True
        return self.check(point)

    def flag(self, name: str) -> bool:
        """Has the scheduled fault ``name`` fired (and not been cleared)?"""
        return name in self._flags

    # -- arming ------------------------------------------------------------

    def arm_counted(self, point: str, count: int) -> None:
        """Arm ``count`` deterministic firings of ``point`` (they are
        consumed by :meth:`take` before any rate draw)."""
        if count < 0:
            raise ConfigError(f"cannot arm a negative count for {point!r}")
        self._counted[point] = self._counted.get(point, 0) + count

    def pending_counted(self, point: str) -> int:
        return self._counted.get(point, 0)

    def set_flag(self, name: str) -> None:
        self._flags.add(name)

    def clear_flag(self, name: str) -> None:
        self._flags.discard(name)

    # -- scheduled-fault delivery ------------------------------------------

    def bind(self, platform: "Platform") -> None:
        """Schedule this plan's timed faults, repairs, and storm windows
        against ``platform``'s clock (called by
        :meth:`Platform.arm_faults`)."""
        for fault in self.schedule:
            platform.sim.schedule(fault.at_ns, self._fire, fault.name,
                                  platform)
        for window in self.windows:
            platform.sim.schedule(window.start_ns, self._storm_start,
                                  window, platform)
            platform.sim.schedule(window.end_ns, self._storm_end,
                                  window, platform)

    def _fire(self, name: str, platform: "Platform") -> None:
        self.fired_log.append((platform.sim.now, name))
        self.fired[name] = self.fired.get(name, 0) + 1
        if name == "link_down":
            platform.t2.port.link.hot_reset()
        elif name == "link_dead":
            platform.t2.port.link.fail()
        elif name == "device_viral":
            platform.t2.enter_viral()
        elif name == "link_up":
            # Repair: revive the (dead) link; senders stall through the
            # retrain window, then traffic flows again.
            platform.t2.port.link.hot_reset()
        elif name == "device_repair":
            # Repair: the hung device came back (firmware restart).
            self.clear_flag("device_hang")
        else:
            # device_hang and any custom names become sticky flags that
            # components poll (the offload engine checks device_hang).
            self.set_flag(name)
        if name in REPAIR_TARGETS:
            for listener in list(self.repair_listeners):
                listener(name, platform.sim.now)

    def _storm_start(self, window: WindowedFault,
                     platform: "Platform") -> None:
        self.fired_log.append((platform.sim.now, f"{window.name}@storm-on"))
        self._window_saved[window.name] = self.rates.get(window.name, 0.0)
        self.rates[window.name] = window.rate

    def _storm_end(self, window: WindowedFault,
                   platform: "Platform") -> None:
        self.fired_log.append((platform.sim.now, f"{window.name}@storm-off"))
        base = self._window_saved.pop(window.name, 0.0)
        if base:
            self.rates[window.name] = base
        else:
            self.rates.pop(window.name, None)


class HealthState(enum.Enum):
    """Operational state of an offload device."""

    HEALTHY = "healthy"
    DEGRADED = "degraded"      # at least one recent command failed
    FAILED = "failed"          # fault budget exhausted; fast-fail until reset
    HALF_OPEN = "half-open"    # a recovery probe is in flight


@dataclass
class DeviceHealthMonitor:
    """The offload framework's device health-state machine.

    One recorded failure moves HEALTHY -> DEGRADED; ``fail_threshold``
    *consecutive* failures mark the device FAILED.  A success from
    DEGRADED returns to HEALTHY and clears the streak.

    Recovery is symmetric when probing is enabled
    (``probe_interval_ns > 0``): a FAILED device accepts one *probe*
    attempt every backed-off interval — :meth:`probe_due` gates it,
    :meth:`begin_probe` moves to HALF_OPEN — and the probe's outcome
    either re-admits the device (HEALTHY) or re-fails it with the next
    probe pushed out by ``probe_backoff``.  With probing disabled (the
    default) FAILED stays sticky until a manual :meth:`reset`, exactly
    the pre-probe contract.  All timing comes from the caller's
    simulated clock, so recovery is as deterministic as failure.
    """

    fail_threshold: int = 4
    state: HealthState = HealthState.HEALTHY
    consecutive_failures: int = 0
    failures: int = 0
    successes: int = 0
    probe_interval_ns: float = 0.0     # 0 = probing disabled (sticky FAILED)
    probe_backoff: float = 2.0
    next_probe_at_ns: float = math.inf
    probes: int = 0
    probe_successes: int = 0
    transitions: List[tuple[HealthState, HealthState]] = field(
        default_factory=list)

    def __post_init__(self) -> None:
        if self.fail_threshold < 1:
            raise ConfigError(
                f"fail_threshold must be >= 1: {self.fail_threshold}")
        if self.probe_interval_ns < 0:
            raise ConfigError(
                f"probe_interval_ns must be >= 0: {self.probe_interval_ns}")
        if self.probe_backoff < 1.0:
            raise ConfigError(
                f"probe_backoff must be >= 1: {self.probe_backoff}")
        self._backoff_mult = 1.0

    def _move(self, new: HealthState) -> None:
        if new is not self.state:
            self.transitions.append((self.state, new))
            self.state = new

    def record_failure(self, now: Optional[float] = None) -> None:
        self.failures += 1
        if self.state is HealthState.FAILED:
            return                      # already dead; streak stays frozen
        if self.state is HealthState.HALF_OPEN:
            # The probe failed: back off the next one and fail again.
            self._backoff_mult *= self.probe_backoff
            self._move(HealthState.FAILED)
            self._arm_probe(now)
            return
        self.consecutive_failures += 1
        if self.consecutive_failures >= self.fail_threshold:
            self._move(HealthState.FAILED)
            self._arm_probe(now)
        else:
            self._move(HealthState.DEGRADED)

    def record_success(self, now: Optional[float] = None) -> None:
        self.successes += 1
        if self.state is HealthState.FAILED:
            return                      # revive via probe_due/begin_probe
        if self.state is HealthState.HALF_OPEN:
            self.probe_successes += 1
            self._backoff_mult = 1.0
            self.next_probe_at_ns = math.inf
        self.consecutive_failures = 0
        self._move(HealthState.HEALTHY)

    # -- recovery probes ---------------------------------------------------

    def _arm_probe(self, now: Optional[float]) -> None:
        if self.probe_interval_ns > 0 and now is not None:
            self.next_probe_at_ns = (
                now + self.probe_interval_ns * self._backoff_mult)
        else:
            self.next_probe_at_ns = math.inf

    def probe_due(self, now: float) -> bool:
        """May a FAILED device accept one recovery-probe attempt now?"""
        return (self.state is HealthState.FAILED
                and now >= self.next_probe_at_ns)

    def begin_probe(self, now: float) -> None:
        """Move FAILED -> HALF_OPEN for one probe attempt; the next
        :meth:`record_failure`/:meth:`record_success` is its verdict."""
        if self.state is not HealthState.FAILED:
            return
        self.probes += 1
        self.next_probe_at_ns = math.inf   # one probe at a time
        self._move(HealthState.HALF_OPEN)

    def note_repair(self, now: float) -> None:
        """A scheduled repair landed: probe immediately (fresh backoff)."""
        if self.state is HealthState.FAILED and self.probe_interval_ns > 0:
            self._backoff_mult = 1.0
            self.next_probe_at_ns = now

    def reset(self) -> None:
        """Device reset: forgive everything (viral/hot-reset recovery)."""
        self.consecutive_failures = 0
        self._backoff_mult = 1.0
        self.next_probe_at_ns = math.inf
        self._move(HealthState.HEALTHY)
