"""repro.faults: seeded, deterministic fault injection and RAS modeling.

Production offload stacks live or die on the error path, and the CXL
spec itself defines the machinery — data poison, viral containment, link
CRC retry — that this layer exercises.  Three pieces:

:class:`FaultPlan`
    the one injection subsystem every component queries.  A plan holds
    *rate-based* faults (a seeded per-point probability drawn on every
    query), *counted* faults ("the next N queries fire", the
    deterministic style :meth:`SwapDevice.inject_read_errors` uses), and
    *scheduled* faults ("at t=50ms the device hangs").  Each fault point
    draws from its own forked :class:`~repro.sim.rng.DeterministicRng`
    stream, so identical seeds + identical plans produce identical
    timelines regardless of which other points exist.

:data:`NO_FAULTS`
    the inert singleton every component carries by default.  Its checks
    are single attribute/dict operations that never touch an RNG, so an
    un-armed simulation is *bit-identical* to one built before this
    layer existed (asserted by ``tests/test_faults.py``).

:class:`DeviceHealthMonitor`
    the offload framework's health-state machine
    (HEALTHY → DEGRADED → FAILED).  One failed command degrades the
    device; ``fail_threshold`` consecutive failures mark it FAILED, after
    which the offload engine fast-fails and zswap/ksm fall back to the
    cpu path until :meth:`DeviceHealthMonitor.reset`.

Fault points currently queried by the models:

==================  =====================  ================================
point               kind                   queried by
==================  =====================  ================================
``link_crc``        rate (per flit)        :class:`repro.interconnect.link.Link`
``mem_poison``      rate (per DRAM read)   :class:`repro.mem.memctrl.MemorySystem`
``offload_drop``    rate (per command)     :class:`repro.core.offload.OffloadEngine`
``swap_read_error`` rate + counted         :class:`repro.kernel.swapdev.SwapDevice`
``link_down``       scheduled              hot-resets the CXL link
``link_dead``       scheduled              fails the CXL link permanently
``device_hang``     scheduled (flag)       doorbell completions stop arriving
``device_viral``    scheduled              DCOH enters viral containment
==================  =====================  ================================

Spec strings (the CLI's ``--fault-plan``) combine both styles::

    link_crc=1e-6,device_hang@t=50ms
"""

from __future__ import annotations

import enum
import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.errors import ConfigError
from repro.sim.rng import DeterministicRng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.platform import Platform

# Scheduled fault names the plan knows how to deliver to a platform.
SCHEDULED_TARGETS = ("link_down", "link_dead", "device_hang", "device_viral")

_TIME_SUFFIXES = (("ns", 1.0), ("us", 1e3), ("ms", 1e6), ("s", 1e9))


def parse_time_ns(text: str) -> float:
    """``"50ms"`` / ``"75us"`` / ``"1200"`` (bare = ns) -> nanoseconds."""
    text = text.strip()
    value = None
    for suffix, scale in _TIME_SUFFIXES:
        if text.endswith(suffix) and text != suffix:
            head = text[: -len(suffix)]
            # "s" would otherwise swallow the "ns"/"us"/"ms" suffixes.
            if head[-1:].isdigit() or head[-1:] == ".":
                value = float(head) * scale
                break
    if value is None:
        try:
            value = float(text)
        except ValueError:
            raise ConfigError(f"unparseable time {text!r}") from None
    if value < 0:
        raise ConfigError(f"negative time {text!r}")
    return value


@dataclass(frozen=True)
class ScheduledFault:
    """One fault that fires once at an absolute simulated time."""

    name: str
    at_ns: float

    def __post_init__(self) -> None:
        if self.at_ns < 0:
            raise ConfigError(f"scheduled fault in the past: {self}")


class _NoFaults:
    """The inert plan: every query answers "no fault", costing one
    attribute read.  Shared singleton; never holds state."""

    __slots__ = ()
    active = False

    def check(self, point: str) -> bool:
        return False

    def take(self, point: str) -> bool:
        return False

    def flag(self, name: str) -> bool:
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NO_FAULTS"


NO_FAULTS = _NoFaults()


class FaultPlan:
    """A seeded, deterministic set of armed faults.

    ``rates`` maps fault-point name -> probability per query; ``schedule``
    lists :class:`ScheduledFault` entries; counted budgets are armed via
    :meth:`arm_counted`.  The plan is inert until components hold a
    reference to it (see :meth:`Platform.arm_faults`), and each rate
    point draws from its own forked RNG stream.
    """

    active = True

    def __init__(self, seed: int = 0,
                 rates: Optional[Dict[str, float]] = None,
                 schedule: Optional[List[ScheduledFault]] = None):
        self.seed = int(seed)
        self.rates: Dict[str, float] = dict(rates or {})
        for point, rate in self.rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(
                    f"fault rate for {point!r} out of [0, 1]: {rate}")
        self.schedule: List[ScheduledFault] = sorted(
            schedule or [], key=lambda f: f.at_ns)
        root = DeterministicRng(self.seed)
        self._streams: Dict[str, DeterministicRng] = {
            point: root.fork(zlib.crc32(point.encode()))
            for point in self.rates
        }
        self._counted: Dict[str, int] = {}
        self._flags: set[str] = set()
        self.fired: Dict[str, int] = {}      # point -> times it fired
        self.fired_log: List[tuple[float, str]] = []   # scheduled firings

    # -- parsing -----------------------------------------------------------

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Build a plan from a spec like ``link_crc=1e-6,device_hang@t=50ms``.

        ``name=rate`` arms a rate fault; ``name@t=<time>`` schedules one
        (times take ``ns``/``us``/``ms``/``s`` suffixes, bare = ns).
        """
        rates: Dict[str, float] = {}
        schedule: List[ScheduledFault] = []
        for part in filter(None, (p.strip() for p in spec.split(","))):
            if "@t=" in part:
                name, __, when = part.partition("@t=")
                schedule.append(ScheduledFault(name.strip(),
                                               parse_time_ns(when)))
            elif "=" in part:
                name, __, rate = part.partition("=")
                try:
                    rates[name.strip()] = float(rate)
                except ValueError:
                    raise ConfigError(
                        f"unparseable fault rate {part!r}") from None
            else:
                raise ConfigError(
                    f"unparseable fault spec entry {part!r} "
                    "(want name=rate or name@t=time)")
        return cls(seed=seed, rates=rates, schedule=schedule)

    def describe(self) -> str:
        parts = [f"{p}={r:g}" for p, r in sorted(self.rates.items())]
        parts += [f"{f.name}@t={f.at_ns:g}ns" for f in self.schedule]
        return ",".join(parts) or "(empty)"

    # -- queries (the component-facing fault points) -----------------------

    def check(self, point: str) -> bool:
        """Rate-based query: does the fault fire on this occasion?

        Points without an armed rate never touch an RNG stream."""
        rate = self.rates.get(point)
        if not rate:
            return False
        if self._streams[point].random() < rate:
            self.fired[point] = self.fired.get(point, 0) + 1
            return True
        return False

    def take(self, point: str) -> bool:
        """Counted-then-rate query: consume one armed deterministic
        failure if any remain, else fall through to the rate check."""
        budget = self._counted.get(point, 0)
        if budget > 0:
            self._counted[point] = budget - 1
            self.fired[point] = self.fired.get(point, 0) + 1
            return True
        return self.check(point)

    def flag(self, name: str) -> bool:
        """Has the scheduled fault ``name`` fired (and not been cleared)?"""
        return name in self._flags

    # -- arming ------------------------------------------------------------

    def arm_counted(self, point: str, count: int) -> None:
        """Arm ``count`` deterministic firings of ``point`` (they are
        consumed by :meth:`take` before any rate draw)."""
        if count < 0:
            raise ConfigError(f"cannot arm a negative count for {point!r}")
        self._counted[point] = self._counted.get(point, 0) + count

    def pending_counted(self, point: str) -> int:
        return self._counted.get(point, 0)

    def set_flag(self, name: str) -> None:
        self._flags.add(name)

    def clear_flag(self, name: str) -> None:
        self._flags.discard(name)

    # -- scheduled-fault delivery ------------------------------------------

    def bind(self, platform: "Platform") -> None:
        """Schedule this plan's timed faults against ``platform``'s clock
        (called by :meth:`Platform.arm_faults`)."""
        for fault in self.schedule:
            platform.sim.schedule(fault.at_ns, self._fire, fault.name,
                                  platform)

    def _fire(self, name: str, platform: "Platform") -> None:
        self.fired_log.append((platform.sim.now, name))
        self.fired[name] = self.fired.get(name, 0) + 1
        if name == "link_down":
            platform.t2.port.link.hot_reset()
        elif name == "link_dead":
            platform.t2.port.link.fail()
        elif name == "device_viral":
            platform.t2.enter_viral()
        else:
            # device_hang and any custom names become sticky flags that
            # components poll (the offload engine checks device_hang).
            self.set_flag(name)


class HealthState(enum.Enum):
    """Operational state of an offload device."""

    HEALTHY = "healthy"
    DEGRADED = "degraded"      # at least one recent command failed
    FAILED = "failed"          # fault budget exhausted; fast-fail until reset


@dataclass
class DeviceHealthMonitor:
    """The offload framework's device health-state machine.

    One recorded failure moves HEALTHY -> DEGRADED; ``fail_threshold``
    *consecutive* failures mark the device FAILED (sticky until
    :meth:`reset`).  A success from DEGRADED returns to HEALTHY.
    """

    fail_threshold: int = 4
    state: HealthState = HealthState.HEALTHY
    consecutive_failures: int = 0
    failures: int = 0
    successes: int = 0
    transitions: List[tuple[HealthState, HealthState]] = field(
        default_factory=list)

    def __post_init__(self) -> None:
        if self.fail_threshold < 1:
            raise ConfigError(
                f"fail_threshold must be >= 1: {self.fail_threshold}")

    def _move(self, new: HealthState) -> None:
        if new is not self.state:
            self.transitions.append((self.state, new))
            self.state = new

    def record_failure(self) -> None:
        self.failures += 1
        self.consecutive_failures += 1
        if self.state is HealthState.FAILED:
            return
        if self.consecutive_failures >= self.fail_threshold:
            self._move(HealthState.FAILED)
        else:
            self._move(HealthState.DEGRADED)

    def record_success(self) -> None:
        self.successes += 1
        if self.state is HealthState.FAILED:
            return                      # only reset() revives a dead device
        self.consecutive_failures = 0
        self._move(HealthState.HEALTHY)

    def reset(self) -> None:
        """Device reset: forgive everything (viral/hot-reset recovery)."""
        self.consecutive_failures = 0
        self._move(HealthState.HEALTHY)
