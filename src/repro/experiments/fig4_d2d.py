"""Fig 4: latency and bandwidth of D2D accesses, host- vs device-bias.

The four request types against device memory, hitting and missing the
DMC.  Latency uses the paper's N=16; bandwidth uses a deeper burst
(N=256) so the steady-state initiation interval — where the 8-13 %
device-bias advantage lives — dominates the latency transient.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.config import SystemConfig
from repro.core.microbench import Measurement, Microbench
from repro.core.platform import Platform
from repro.core.requests import BiasMode, D2HOp

OPS = [D2HOp.NC_READ, D2HOp.CS_READ, D2HOp.NC_WRITE, D2HOp.CO_WRITE]
BW_ACCESSES = 256


@dataclass(frozen=True)
class Fig4Result:
    points: Dict[str, Measurement]     # "<op>/<bias>/dmc-<0|1>"

    def get(self, op: D2HOp, bias: BiasMode, dmc_hit: bool) -> Measurement:
        return self.points[f"{op.value}/{bias.value}/dmc-{int(dmc_hit)}"]

    def device_bias_latency_gain(self, op: D2HOp, dmc_hit: bool) -> float:
        """1 - (device-bias latency / host-bias latency)."""
        host = self.get(op, BiasMode.HOST, dmc_hit).latency.median
        dev = self.get(op, BiasMode.DEVICE, dmc_hit).latency.median
        return 1.0 - dev / host

    def device_bias_bw_gain(self, op: D2HOp, dmc_hit: bool) -> float:
        host = self.get(op, BiasMode.HOST, dmc_hit).bandwidth.median
        dev = self.get(op, BiasMode.DEVICE, dmc_hit).bandwidth.median
        return dev / host - 1.0


def run(cfg: Optional[SystemConfig] = None, reps: int = 20,
        seed: int = 11) -> Fig4Result:
    platform = Platform(cfg, seed=seed)
    mb = Microbench(platform, reps=reps)
    points: Dict[str, Measurement] = {}
    for op in OPS:
        for bias in (BiasMode.HOST, BiasMode.DEVICE):
            for hit in (True, False):
                m = mb.d2d(op, bias, hit, accesses=BW_ACCESSES)
                points[f"{op.value}/{bias.value}/dmc-{int(hit)}"] = m
    return Fig4Result(points)


def format_table(result: Fig4Result) -> str:
    lines = [
        "Fig 4: D2D latency (ns) / bandwidth (GB/s), host- vs device-bias",
        f"{'op':8s} {'dmc':4s} {'lat.host':>9s} {'lat.dev':>8s} "
        f"{'gain':>6s} {'bw.host':>8s} {'bw.dev':>7s} {'gain':>6s}",
    ]
    for op in OPS:
        for hit in (True, False):
            h = result.get(op, BiasMode.HOST, hit)
            d = result.get(op, BiasMode.DEVICE, hit)
            lines.append(
                f"{op.value:8s} {int(hit):<4d} "
                f"{h.latency.median:9.0f} {d.latency.median:8.0f} "
                f"{result.device_bias_latency_gain(op, hit):+6.0%} "
                f"{h.bandwidth.median:8.2f} {d.bandwidth.median:7.2f} "
                f"{result.device_bias_bw_gain(op, hit):+6.0%}"
            )
    return "\n".join(lines)
