"""One experiment module per table/figure of the paper's evaluation.

Each module exposes ``run(...)`` returning a plain result structure plus
``format_table(result)`` producing the rows the paper reports; the
``benchmarks/`` suite calls these and checks shapes against
:mod:`repro.analysis.expected`.
"""
