"""Extension experiment: Redis latency-vs-load under zswap backends.

Fig 8 fixes the offered load and compares backends at one point; this
sweep traces the whole latency-throughput curve.  The classic shapes
appear: every backend tracks the baseline at low load, and the knee —
the load where p99 departs — moves left the more host CPU the zswap
backend burns.  The cpu backend's curve collapses first; cxl's hugs the
no-feature baseline almost to saturation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.experiments.fig8_tail_latency import ScenarioConfig, run_zswap_cell
from repro.units import ms

DEFAULT_RATES = (15_000.0, 30_000.0, 50_000.0, 70_000.0)
DEFAULT_BACKENDS = ("none", "cpu", "cxl")


@dataclass(frozen=True)
class LoadPoint:
    backend: str
    rate_per_s: float
    p50_ns: float
    p99_ns: float


@dataclass(frozen=True)
class LoadLatencyResult:
    points: Dict[str, LoadPoint]       # "<backend>/<rate>"
    rates: Sequence[float]
    backends: Sequence[str]

    def get(self, backend: str, rate: float) -> LoadPoint:
        return self.points[f"{backend}/{rate:g}"]

    def slowdown(self, backend: str, rate: float) -> float:
        """p99 relative to the no-feature baseline at the same load."""
        return (self.get(backend, rate).p99_ns
                / self.get("none", rate).p99_ns)

    def knee_rate(self, backend: str, threshold: float = 3.0) -> float:
        """The lowest swept rate whose p99 exceeds ``threshold`` x the
        same backend's p99 at the lowest rate (inf if it never does)."""
        base = self.get(backend, self.rates[0]).p99_ns
        for rate in self.rates:
            if self.get(backend, rate).p99_ns > threshold * base:
                return rate
        return float("inf")


def run(rates: Sequence[float] = DEFAULT_RATES,
        backends: Sequence[str] = DEFAULT_BACKENDS,
        duration_ns: float = ms(300.0), workload: str = "a",
        seed: int = 149) -> LoadLatencyResult:
    points: Dict[str, LoadPoint] = {}
    for backend in backends:
        for rate in rates:
            scenario = ScenarioConfig(duration_ns=duration_ns,
                                      rate_per_s=rate)
            cell = run_zswap_cell(workload, backend, scenario, seed=seed)
            points[f"{backend}/{rate:g}"] = LoadPoint(
                backend, rate, cell.p50_ns, cell.p99_ns)
    return LoadLatencyResult(points, tuple(rates), tuple(backends))


def format_table(result: LoadLatencyResult) -> str:
    lines = [
        "Extension: Redis p99 (us) vs offered load per server, by zswap "
        "backend",
        f"{'rate(kreq/s)':>13s} " + " ".join(
            f"{b:>10s}" for b in result.backends),
    ]
    for rate in result.rates:
        row = " ".join(
            f"{result.get(b, rate).p99_ns / 1000:10.1f}"
            for b in result.backends)
        lines.append(f"{rate / 1000:13.0f} {row}")
    return "\n".join(lines)
