"""Fig 8: p99 latency of Redis under YCSB with zswap/ksm backends.

Methodology mirrors SVII on the sub-NUMA half system:

* **zswap scenario** — 2 Redis servers (+ their clients) on 8 app cores,
  an antagonist allocating/freeing on the other 8, kswapd floating over
  the app cores; requests that allocate below the *min* watermark enter
  direct reclaim themselves;
* **ksm scenario** — 16 VM vCPUs pinned one per core, 4 of them Redis
  servers; ksmd scans continuously, hopping cores.

Each (feature, workload, backend) cell reports p99 latency normalized to
the same workload with the feature disabled (``none``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.apps.antagonist import Antagonist
from repro.apps.kvs import RedisServer
from repro.apps.latency import OpenLoopClient
from repro.apps.node import MemoryPressure, ServerNode
from repro.apps.ycsb import YcsbWorkload
from repro.config import sub_numa_half_system
from repro.core.offload import OffloadEngine
from repro.core.platform import Platform
from repro.errors import WorkloadError
from repro.kernel.daemons import CostProfile, ReclaimDaemon, ScanDaemon
from repro.sim.parallel import ForkSpec, run_forked_sweep
from repro.units import ms

BACKENDS = ("none", "cpu", "pcie-rdma", "pcie-dma", "cxl")
WORKLOAD_NAMES = ("a", "b", "c", "d")


@dataclass(frozen=True)
class ScenarioConfig:
    """Knobs for one Fig-8 run (defaults sized for CI speed; scale
    ``duration_ns`` and ``rate_per_s`` up for tighter percentiles)."""

    duration_ns: float = ms(400.0)
    rate_per_s: float = 32_000.0        # per Redis server (open loop)
    zswap_servers: int = 2
    zswap_app_cores: int = 8
    ksm_servers: int = 4
    ksm_cores: int = 16
    antagonist_burst_pages: int = 1800
    antagonist_period_ns: float = ms(8.0)
    key_distribution: str = "uniform"   # the paper's choice; or "zipfian"
    functional: bool = False            # really execute requests on the KVS
    # Interference-channel ablation knobs (DESIGN.md section 6):
    pollution_scale: float = 1.0        # 0 disables the LLC channel
    direct_reclaim_enabled: bool = True # False disables the inline channel


@dataclass(frozen=True)
class CellResult:
    feature: str
    workload: str
    backend: str
    p99_ns: float
    p50_ns: float
    requests: int
    direct_reclaims: int
    feature_core_busy_ns: float
    pages_processed: int


@dataclass(frozen=True)
class Fig8Result:
    cells: Dict[str, CellResult]        # "<feature>/<workload>/<backend>"

    def get(self, feature: str, workload: str, backend: str) -> CellResult:
        return self.cells[f"{feature}/{workload}/{backend}"]

    def normalized_p99(self, feature: str, workload: str,
                       backend: str) -> float:
        cell = self.get(feature, workload, backend)
        base = self.get(feature, workload, "none")
        return cell.p99_ns / base.p99_ns


def _profile_for(backend: str, seed: int) -> Optional[CostProfile]:
    if backend == "none":
        return None
    calib = Platform(seed=seed)
    return CostProfile.from_engine(calib, OffloadEngine(calib), backend)


def _zswap_warmup(backend: str, scenario: ScenarioConfig, seed: int):
    """Everything of a zswap cell that does not depend on the workload:
    platform, pressure, node, the calibrated reclaim daemon, and the
    antagonist — all *constructed but not spawned* (constructors are
    passive and ``rng.fork`` is pure, so nothing here advances the
    simulator or any RNG stream).  The root this returns is quiescent
    and therefore checkpointable; one warm-up serves every workload of
    the (backend, scenario, seed) group."""
    platform = Platform(sub_numa_half_system(), seed=seed)
    sim, rng = platform.sim, platform.rng
    pressure = MemoryPressure.sized(1 << 17)
    # Start just above the low watermark so reclaim engages immediately.
    pressure.free_pages = pressure.low_pages + 2048
    node = ServerNode(sim, rng.fork(1), scenario.zswap_app_cores, pressure)
    daemon = None
    antagonist = None
    if backend != "none":
        profile = _profile_for(backend, seed + 1)
        assert profile is not None
        daemon = ReclaimDaemon(node, profile,
                               pollution_scale=scenario.pollution_scale)
        antagonist = Antagonist(
            sim, pressure, rng.fork(2),
            burst_pages=scenario.antagonist_burst_pages,
            period_ns=scenario.antagonist_period_ns)
    return (platform, node, daemon, antagonist)


def _zswap_point(root, workload_name: str, backend: str,
                 scenario: ScenarioConfig) -> CellResult:
    """The workload-dependent half of a zswap cell: spawn the daemons,
    build and spawn the clients, run, reduce.  Spawn order matches the
    pre-split code exactly (kswapd, antagonist, client0, client1, ...),
    so the ``(time, seq)`` schedule — and every output byte — is
    unchanged whether ``root`` is freshly built or checkpoint-forked."""
    platform, node, daemon, antagonist = root
    sim, rng = platform.sim, platform.rng
    direct = None
    if daemon is not None:
        sim.spawn(daemon.run(scenario.duration_ns), "kswapd")
        direct = (daemon.inline_reclaim
                  if scenario.direct_reclaim_enabled else None)
        sim.spawn(antagonist.run(scenario.duration_ns), "antagonist")

    clients = []
    for i in range(scenario.zswap_servers):
        server = RedisServer(f"redis{i}", rng.fork(10 + i))
        workload = YcsbWorkload(workload_name, rng.fork(20 + i),
                                distribution=scenario.key_distribution)
        client = OpenLoopClient(
            node, server, node.core(i), workload, rng.fork(30 + i),
            scenario.rate_per_s, direct_reclaim=direct,
            functional=scenario.functional)
        clients.append(client)
        sim.spawn(client.run(scenario.duration_ns), f"client{i}")

    sim.run(until=scenario.duration_ns + ms(5.0))
    stats = _merge_stats(clients)
    return CellResult(
        "zswap", workload_name, backend,
        p99_ns=stats.p99(), p50_ns=stats.p50(), requests=stats.count,
        direct_reclaims=sum(c.direct_reclaim_hits for c in clients),
        feature_core_busy_ns=node.feature_core_busy_ns,
        pages_processed=daemon.pages_reclaimed if daemon else 0,
    )


def run_zswap_cell(workload_name: str, backend: str,
                   scenario: ScenarioConfig, seed: int = 29) -> CellResult:
    """One zswap cell: Redis + antagonist + kswapd on a shared node
    (the pinned cold path: warm-up and point back to back)."""
    return _zswap_point(_zswap_warmup(backend, scenario, seed),
                        workload_name, backend, scenario)


def _ksm_warmup(backend: str, scenario: ScenarioConfig, seed: int):
    """The workload-independent half of a ksm cell (see
    :func:`_zswap_warmup`): platform, node, calibrated scan daemon."""
    platform = Platform(sub_numa_half_system(), seed=seed)
    sim, rng = platform.sim, platform.rng
    node = ServerNode(sim, rng.fork(1), scenario.ksm_cores)
    daemon = None
    if backend != "none":
        profile = _profile_for(backend, seed + 1)
        assert profile is not None
        daemon = ScanDaemon(node, profile,
                            pollution_scale=scenario.pollution_scale)
    return (platform, node, daemon)


def _ksm_point(root, workload_name: str, backend: str,
               scenario: ScenarioConfig) -> CellResult:
    platform, node, daemon = root
    sim, rng = platform.sim, platform.rng
    if daemon is not None:
        sim.spawn(daemon.run(scenario.duration_ns), "ksmd")

    clients = []
    for i in range(scenario.ksm_servers):
        server = RedisServer(f"redis-vm{i}", rng.fork(10 + i))
        workload = YcsbWorkload(workload_name, rng.fork(20 + i),
                                distribution=scenario.key_distribution)
        client = OpenLoopClient(
            node, server, node.core(i), workload, rng.fork(30 + i),
            scenario.rate_per_s, functional=scenario.functional)
        clients.append(client)
        sim.spawn(client.run(scenario.duration_ns), f"vm-client{i}")

    sim.run(until=scenario.duration_ns + ms(5.0))
    stats = _merge_stats(clients)
    return CellResult(
        "ksm", workload_name, backend,
        p99_ns=stats.p99(), p50_ns=stats.p50(), requests=stats.count,
        direct_reclaims=0,
        feature_core_busy_ns=node.feature_core_busy_ns,
        pages_processed=daemon.pages_scanned if daemon else 0,
    )


def run_ksm_cell(workload_name: str, backend: str,
                 scenario: ScenarioConfig, seed: int = 31) -> CellResult:
    """One ksm cell: 16 pinned VMs, 4 Redis servers, floating ksmd
    (the pinned cold path: warm-up and point back to back)."""
    return _ksm_point(_ksm_warmup(backend, scenario, seed),
                      workload_name, backend, scenario)


def _merge_stats(clients):
    if not clients:
        raise WorkloadError("no clients ran")
    merged = clients[0].stats
    for client in clients[1:]:
        merged.extend(client.stats._samples)
    return merged


def run(features=("zswap", "ksm"), workloads=WORKLOAD_NAMES,
        backends=BACKENDS, scenario: Optional[ScenarioConfig] = None,
        seed: int = 37, jobs: Optional[int] = None) -> Fig8Result:
    scenario = scenario or ScenarioConfig()
    # Every cell is a pure function of (workload, backend, scenario,
    # seed), and the expensive half — platform build plus backend cost
    # calibration — depends only on (feature, backend).  Group the grid
    # into one ForkSpec per (feature, backend): the warm-up runs (or
    # checkpoint-restores) once per group and the workloads fork from
    # it, byte-identical to per-cell cold runs at any --jobs count.
    cells: Dict[str, CellResult] = {}
    for feature in features:
        warmup = _zswap_warmup if feature == "zswap" else _ksm_warmup
        point = _zswap_point if feature == "zswap" else _ksm_point
        for backend in backends:
            spec = ForkSpec.build(
                f"fig8/{feature}/{backend}", warmup,
                [(f"{feature}/{workload}/{backend}", point,
                  (workload, backend, scenario), {})
                 for workload in workloads],
                warmup_args=(backend, scenario, seed))
            cells.update(run_forked_sweep(spec, jobs=jobs))
    # Reassemble in the canonical feature -> workload -> backend order
    # the pre-split sweep produced.
    ordered = {f"{feature}/{workload}/{backend}":
               cells[f"{feature}/{workload}/{backend}"]
               for feature in features
               for workload in workloads
               for backend in backends}
    return Fig8Result(ordered)


def format_table(result: Fig8Result) -> str:
    lines = ["Fig 8: Redis p99 latency normalized to no-zswap/no-ksm"]
    features = sorted({key.split("/")[0] for key in result.cells})
    workloads = sorted({key.split("/")[1] for key in result.cells})
    backends = [b for b in BACKENDS
                if any(key.endswith("/" + b) for key in result.cells)]
    for feature in features:
        lines.append(f"--- {feature} ---")
        lines.append(f"{'ycsb':6s} " + " ".join(f"{b:>10s}" for b in backends))
        for workload in workloads:
            row = []
            for backend in backends:
                norm = result.normalized_p99(feature, workload, backend)
                row.append(f"{norm:10.2f}")
            lines.append(f"{workload:6s} " + " ".join(row))
    return "\n".join(lines)
