"""SVII text results: host CPU cycles consumed and LLC pollution.

The paper reports zswap's host-CPU share dropping 25 % -> 16 % (rdma) /
19 % (dma) / 11 % (cxl) and ksm's 21 % -> 7 % / 9 % / 5 %, with all
offloads reducing LLC pollution "to a similar degree".  This experiment
re-runs the Fig-8 zswap/ksm scenarios and reports:

* the feature's host-core busy share (feature cycles / app-core time);
* the same share normalized to the cpu backend (the paper's ratios);
* a pollution index — the service-time inflation requests actually
  experienced (measured, not the configured weight).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.experiments.fig8_tail_latency import (
    ScenarioConfig,
    run_ksm_cell,
    run_zswap_cell,
)
from repro.sim.parallel import SweepPoint, SweepSpec, run_sweep

BACKENDS = ("cpu", "pcie-rdma", "pcie-dma", "cxl")


@dataclass(frozen=True)
class AccountingCell:
    feature: str
    backend: str
    cpu_share: float            # feature busy / (app cores x duration)
    pollution_index: float      # mean service inflation during the run
    pages_processed: int


@dataclass(frozen=True)
class Sec7Result:
    cells: Dict[str, AccountingCell]    # "<feature>/<backend>"

    def get(self, feature: str, backend: str) -> AccountingCell:
        return self.cells[f"{feature}/{backend}"]

    def share_vs_cpu(self, feature: str, backend: str) -> float:
        """Feature CPU share relative to the cpu backend (paper ratios:
        zswap 0.64/0.76/0.44, ksm 0.33/0.43/0.24)."""
        return (self.get(feature, backend).cpu_share
                / self.get(feature, "cpu").cpu_share)


def run(scenario: Optional[ScenarioConfig] = None,
        workload: str = "a", seed: int = 41,
        jobs: Optional[int] = None) -> Sec7Result:
    scenario = scenario or ScenarioConfig()
    feature_cores = {"zswap": scenario.zswap_app_cores,
                     "ksm": scenario.ksm_cores}
    # Baselines ("none") and measured cells are all independent
    # simulations; sweep them together, reduce shares afterwards.
    spec = SweepSpec("sec7", tuple(
        SweepPoint(f"{feature}/{backend}",
                   run_zswap_cell if feature == "zswap" else run_ksm_cell,
                   (workload, backend, scenario), {"seed": seed})
        for feature in ("zswap", "ksm")
        for backend in ("none",) + BACKENDS))
    raw = run_sweep(spec, jobs=jobs)
    cells: Dict[str, AccountingCell] = {}
    for feature, cores in feature_cores.items():
        base = raw[f"{feature}/none"]
        for backend in BACKENDS:
            cell = raw[f"{feature}/{backend}"]
            share = cell.feature_core_busy_ns / (cores * scenario.duration_ns)
            # Pollution index: median service inflation vs the baseline.
            pollution = cell.p50_ns / base.p50_ns - 1.0
            cells[f"{feature}/{backend}"] = AccountingCell(
                feature, backend, share, max(0.0, pollution),
                cell.pages_processed)
    return Sec7Result(cells)


def format_table(result: Sec7Result) -> str:
    lines = [
        "SVII: feature host-CPU share and cache-pollution index",
        f"{'feature':8s} {'backend':10s} {'cpu-share':>10s} {'vs cpu':>7s} "
        f"{'pollution':>10s} {'pages':>8s}",
    ]
    for feature in ("zswap", "ksm"):
        for backend in BACKENDS:
            cell = result.get(feature, backend)
            lines.append(
                f"{feature:8s} {backend:10s} {cell.cpu_share:10.1%} "
                f"{result.share_vs_cpu(feature, backend):7.2f} "
                f"{cell.pollution_index:10.1%} {cell.pages_processed:8d}")
    return "\n".join(lines)
