"""Extension experiment: scale-out tail latency with O(1)-memory stats.

Fig 8 runs long enough to read a stable p99 and keeps every latency
sample live — fine at ~10^5 requests, hopeless at 10^7.  This
experiment drives the *same* Redis + zswap pipeline (open-loop YCSB
clients, cxl-backed kswapd, antagonist, direct reclaim) for millions of
requests with one shared :class:`~repro.sim.stats.StreamingLatencyStats`
recorder across every client, and proves two things:

* **flat RSS** — the run samples the process's peak RSS at checkpoints;
  with streaming stats (and the interned page store) the footprint must
  not grow with request count.  The CI smoke job gates on the ceiling.
* **tail accuracy** — with ``compare_exact=True`` the identical
  simulation (same seed, same arrivals, same service times) runs twice,
  once per recorder flavour, and the report carries the relative error
  of the streamed P50/P99/P99.9 against exact.  docs/PERFORMANCE.md
  pins the tolerances.

Stdout is deterministic for a given (requests, rate, servers, seed,
mode); the RSS trace — wall-clock state of this process, not simulated
state — goes to stderr.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.apps.antagonist import Antagonist
from repro.apps.kvs import RedisServer
from repro.apps.latency import OpenLoopClient
from repro.apps.node import MemoryPressure, ServerNode
from repro.apps.ycsb import YcsbWorkload
from repro.config import sub_numa_half_system
from repro.core.offload import OffloadEngine
from repro.core.platform import Platform
from repro.errors import WorkloadError
from repro.experiments.fig8_tail_latency import ScenarioConfig
from repro.kernel.daemons import CostProfile, ReclaimDaemon
from repro.sim.checkpoint import checkpoint_enabled, snapshot
from repro.sim.stats import (LatencyRecorder, LatencyStats,
                             StreamingLatencyStats, stats_mode)
from repro.units import ms

#: Documented accuracy bounds for streamed percentiles vs exact, on the
#: heavy-tailed open-loop latency distribution this pipeline produces
#: (docs/PERFORMANCE.md carries the measured values).
STREAM_TOLERANCE = {"p50": 0.01, "p99": 0.02, "p999": 0.02}


@dataclass(frozen=True)
class ScaleResult:
    """One scale run (plus an optional exact-recorder shadow run)."""

    mode: str                       # recorder flavour the headline used
    requests: int
    p50_ns: float
    p99_ns: float
    p999_ns: float
    mean_ns: float
    rss_kb: Tuple[int, ...]         # peak RSS at each checkpoint
    exact_rel_err: Optional[Dict[str, float]] = None

    @property
    def rss_growth(self) -> float:
        """Last-checkpoint peak RSS over the first — the flatness
        number the smoke job gates on (1.0 = perfectly flat)."""
        if len(self.rss_kb) < 2 or self.rss_kb[0] == 0:
            return 1.0
        return self.rss_kb[-1] / self.rss_kb[0]


def _peak_rss_kb() -> int:
    try:
        import platform as _platform
        import resource as _resource
        rss = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
        return rss // 1024 if _platform.system() == "Darwin" else rss
    except (ImportError, OSError):  # pragma: no cover - non-POSIX
        return 0


def _scale_warmup(rate_per_s: float, seed: int):
    """The request-count-independent half of a scale run: platform,
    pressure, node, the cxl-calibrated reclaim daemon (the calibration
    sub-simulation is the expensive part), and the antagonist — built
    but not spawned, so the returned root is quiescent and
    checkpointable.  The headline and ``--compare-exact`` shadow runs
    fork from one snapshot instead of calibrating twice."""
    scenario = ScenarioConfig(rate_per_s=rate_per_s)
    platform = Platform(sub_numa_half_system(), seed=seed)
    sim, rng = platform.sim, platform.rng
    pressure = MemoryPressure.sized(1 << 17)
    pressure.free_pages = pressure.low_pages + 2048
    node = ServerNode(sim, rng.fork(1), scenario.zswap_app_cores, pressure)
    calib = Platform(seed=seed + 1)
    profile = CostProfile.from_engine(calib, OffloadEngine(calib), "cxl")
    daemon = ReclaimDaemon(node, profile)
    antagonist = Antagonist(sim, pressure, rng.fork(2),
                            burst_pages=scenario.antagonist_burst_pages,
                            period_ns=scenario.antagonist_period_ns)
    return (platform, node, daemon, antagonist)


def _scale_drive(root, requests: int, rate_per_s: float, servers: int,
                 workload_name: str, recorder: LatencyRecorder,
                 checkpoints: int) -> Tuple[int, Tuple[int, ...]]:
    """Run the fig8-style zswap pipeline until ``requests`` samples have
    landed in ``recorder``; returns (count, rss trace).  Spawn order
    matches the pre-split code (kswapd, antagonist, clients), so output
    is byte-identical whether ``root`` is fresh or checkpoint-forked."""
    platform, node, daemon, antagonist = root
    sim, rng = platform.sim, platform.rng

    # Clients stop at their horizon; run long enough that the Poisson
    # arrival count comfortably clears the target, then stop stepping
    # the moment it does.
    est_ns = requests / (servers * rate_per_s) * 1e9
    horizon_ns = est_ns * 1.5 + ms(50.0)

    sim.spawn(daemon.run(horizon_ns), "kswapd")
    sim.spawn(antagonist.run(horizon_ns), "antagonist")

    for i in range(servers):
        server = RedisServer(f"redis{i}", rng.fork(10 + i))
        workload = YcsbWorkload(workload_name, rng.fork(20 + i))
        client = OpenLoopClient(
            node, server, node.core(i), workload, rng.fork(30 + i),
            rate_per_s, direct_reclaim=daemon.inline_reclaim,
            stats=recorder)
        sim.spawn(client.run(horizon_ns), f"client{i}")

    rss = []
    step_ns = est_ns / checkpoints
    t = 0.0
    while recorder.count < requests and t < horizon_ns:
        t += step_ns
        sim.run(until=t)
        rss.append(_peak_rss_kb())
    if recorder.count < requests:
        raise WorkloadError(
            f"scale run drained at {recorder.count}/{requests} requests")
    return recorder.count, tuple(rss)


def _drive(requests: int, rate_per_s: float, servers: int,
           workload_name: str, seed: int, recorder: LatencyRecorder,
           checkpoints: int) -> Tuple[int, Tuple[int, ...]]:
    """Cold path kept as the pinned reference: warm-up + drive."""
    return _scale_drive(_scale_warmup(rate_per_s, seed), requests,
                        rate_per_s, servers, workload_name, recorder,
                        checkpoints)


def run(requests: int = 5_000_000, rate_per_s: float = 32_000.0,
        servers: int = 4, workload: str = "a", seed: int = 61,
        mode: Optional[str] = None, checkpoints: int = 20,
        compare_exact: bool = False) -> ScaleResult:
    """Drive ``requests`` total requests through the scale pipeline.

    ``mode`` picks the headline recorder (``None`` → ambient
    ``REPRO_STATS``/:func:`~repro.sim.stats.set_stats` choice);
    ``compare_exact`` re-runs the identical simulation with an exact
    recorder and reports the streamed percentiles' relative error.
    """
    effective = mode if mode is not None else stats_mode()
    recorder: LatencyRecorder = (StreamingLatencyStats()
                                 if effective == "stream"
                                 else LatencyStats())
    if checkpoint_enabled():
        # Warm up (platform + cxl cost calibration) once; the headline
        # run — and the shadow run below, when requested — each fork
        # from the snapshot.  Byte-identical to the cold path.
        cp = snapshot(_scale_warmup(rate_per_s, seed), label="ext_scale")

        def drive(rec: LatencyRecorder) -> Tuple[int, Tuple[int, ...]]:
            return _scale_drive(cp.restore(), requests, rate_per_s,
                                servers, workload, rec, checkpoints)
    else:
        def drive(rec: LatencyRecorder) -> Tuple[int, Tuple[int, ...]]:
            return _drive(requests, rate_per_s, servers, workload, seed,
                          rec, checkpoints)

    count, rss = drive(recorder)

    exact_rel_err = None
    if compare_exact and effective == "stream":
        shadow = LatencyStats()
        drive(shadow)
        exact_rel_err = {
            name: abs(recorder.percentile(pct) - shadow.percentile(pct))
            / shadow.percentile(pct)
            for name, pct in (("p50", 50.0), ("p99", 99.0),
                              ("p999", 99.9))}

    return ScaleResult(
        mode=effective, requests=count,
        p50_ns=recorder.p50(), p99_ns=recorder.p99(),
        p999_ns=recorder.p999(), mean_ns=recorder.mean(),
        rss_kb=rss, exact_rel_err=exact_rel_err)


def format_table(result: ScaleResult) -> str:
    lines = [
        "Extension: scale-out Redis tail latency "
        f"({result.mode} stats, {result.requests:,d} requests)",
        f"{'p50':>8s} {result.p50_ns / 1000:12.2f} us",
        f"{'p99':>8s} {result.p99_ns / 1000:12.2f} us",
        f"{'p99.9':>8s} {result.p999_ns / 1000:12.2f} us",
        f"{'mean':>8s} {result.mean_ns / 1000:12.2f} us",
    ]
    if result.exact_rel_err is not None:
        lines.append("stream vs exact (relative error / tolerance):")
        for name, err in result.exact_rel_err.items():
            tol = STREAM_TOLERANCE[name]
            flag = "ok" if err <= tol else "OVER"
            lines.append(f"{name:>8s} {err:12.4%} / {tol:.0%}  {flag}")
    return "\n".join(lines)


def format_rss_trace(result: ScaleResult) -> str:
    """Operator-facing RSS trace (stderr: wall-clock process state)."""
    if not result.rss_kb:
        return "rss trace: unavailable"
    return (f"rss trace ({len(result.rss_kb)} checkpoints): "
            f"{result.rss_kb[0]:,d} -> {result.rss_kb[-1]:,d} KiB "
            f"(growth {result.rss_growth:.3f}x)")
