"""Table IV: breakdown of the zswap-compression offload latency.

Steps 2 (page transfer to the device), 4 (compression), and 5 (storing
the compressed page) for pcie-rdma, pcie-dma, and cxl — the paper
reports only the total for cxl because its steps pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.config import SystemConfig
from repro.core.offload import OffloadEngine, OffloadReport
from repro.core.platform import Platform

BACKENDS = ("pcie-rdma", "pcie-dma", "cxl")


@dataclass(frozen=True)
class Table4Result:
    reports: Dict[str, OffloadReport]
    cpu_report: OffloadReport           # host-CPU compression for context

    def total_ratio(self, a: str, b: str) -> float:
        return self.reports[a].total_ns / self.reports[b].total_ns

    def ip_speedup_over_cpu(self) -> float:
        """FPGA compression IP vs host-CPU compression (paper: 1.8-2.8x)."""
        return (self.cpu_report.compute_ns
                / self.reports["cxl"].compute_ns)


def run(cfg: Optional[SystemConfig] = None, seed: int = 23,
        reps: int = 9) -> Table4Result:
    platform = Platform(cfg, seed=seed)
    engine = OffloadEngine(platform)
    reports: Dict[str, OffloadReport] = {}
    for backend in BACKENDS:
        # Median-of-reps on totals; report the median run's breakdown.
        # Raw-transport measurement: Table IV characterizes the device
        # path itself, so it must not route through the policy layer.
        runs = [platform.sim.run_process(
                    engine.compress_page(backend))  # reprolint: disable=RAS501
                for __ in range(reps)]
        runs.sort(key=lambda r: r.total_ns)
        reports[backend] = runs[len(runs) // 2]
    cpu = platform.sim.run_process(
        engine.compress_page("cpu"))  # reprolint: disable=RAS501 raw path
    return Table4Result(reports, cpu)


def format_table(result: Table4Result) -> str:
    lines = [
        "Table IV: zswap compression offload latency breakdown (us)",
        f"{'backend':12s} {'xfer(2)':>8s} {'comp(4)':>8s} {'store(5)':>9s} "
        f"{'total':>7s} {'host-cpu':>9s}",
    ]
    for backend in BACKENDS:
        r = result.reports[backend]
        if backend == "cxl":
            # The paper reports only the total for cxl (steps pipeline).
            lines.append(
                f"{backend:12s} {'-':>8s} {'-':>8s} {'-':>9s} "
                f"{r.total_ns / 1000:7.2f} {r.host_cpu_ns / 1000:9.2f}")
        else:
            lines.append(
                f"{backend:12s} {r.transfer_ns / 1000:8.2f} "
                f"{r.compute_ns / 1000:8.2f} {r.writeback_ns / 1000:9.2f} "
                f"{r.total_ns / 1000:7.2f} {r.host_cpu_ns / 1000:9.2f}")
    lines.append(
        f"(host-CPU compression of one 4 KB page: "
        f"{result.cpu_report.total_ns / 1000:.2f} us; "
        f"IP speedup {result.ip_speedup_over_cpu():.1f}x)")
    return "\n".join(lines)
