"""Extension experiment: tuning kswapd's device-wait sleep (SVI-A).

The paper fixes the sleep to "a conservatively determined period based
on the data transfer and compression time (~10us)".  This sweep makes
the tradeoff visible on the cxl backend:

* sleeping **too briefly** wakes kswapd before the device finishes, and
  every early wake burns a host-core completion check;
* sleeping **too long** idles reclaim between chunks, pressure builds,
  and Redis requests start entering direct reclaim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.apps.antagonist import Antagonist
from repro.apps.kvs import RedisServer
from repro.apps.latency import OpenLoopClient
from repro.apps.node import MemoryPressure, ServerNode
from repro.apps.ycsb import YcsbWorkload
from repro.config import sub_numa_half_system
from repro.core.offload import OffloadEngine
from repro.core.platform import Platform
from repro.kernel.daemons import CostProfile, ReclaimDaemon
from repro.sim.parallel import ForkSpec, run_forked_sweep
from repro.units import ms, us

DEFAULT_SLEEPS_US = (2.0, 10.0, 40.0, 160.0)


@dataclass(frozen=True)
class SleepPoint:
    sleep_us: float
    p99_ns: float
    pages_reclaimed: int
    wake_checks: int
    direct_reclaims: int


@dataclass(frozen=True)
class SleepTuningResult:
    points: Dict[float, SleepPoint]

    def best_p99(self) -> float:
        return min(point.p99_ns for point in self.points.values())


def _sleep_warmup(rate_per_s: float, seed: int):
    """The sleep-setting-independent half of a point: platform, node,
    the cxl cost calibration (the expensive part — its own throwaway
    Platform), and the antagonist — built but not spawned, so the root
    is quiescent and checkpointable.  Every swept sleep value forks from
    one snapshot instead of recalibrating."""
    platform = Platform(sub_numa_half_system(), seed=seed)
    sim, rng = platform.sim, platform.rng
    pressure = MemoryPressure.sized(1 << 17)
    pressure.free_pages = pressure.low_pages + 2048
    node = ServerNode(sim, rng.fork(1), 8, pressure)
    calib = Platform(seed=seed + 1)
    profile = CostProfile.from_engine(calib, OffloadEngine(calib), "cxl")
    antagonist = Antagonist(sim, pressure, rng.fork(2),
                            burst_pages=1800, period_ns=ms(8.0))
    return (platform, node, profile, antagonist)


def _sleep_point(root, sleep_us: float, duration_ns: float,
                 rate_per_s: float) -> SleepPoint:
    """Drive one kswapd sleep setting against a warmed root.  Spawn
    order matches the pre-split code (kswapd, antagonist, clients), so
    output is byte-identical whether ``root`` is fresh or forked."""
    platform, node, profile, antagonist = root
    sim, rng = platform.sim, platform.rng
    daemon = ReclaimDaemon(node, profile,
                           device_sleep_ns=us(sleep_us))
    sim.spawn(daemon.run(duration_ns), "kswapd")
    sim.spawn(antagonist.run(duration_ns), "antagonist")
    clients = []
    for i in range(2):
        server = RedisServer(f"redis{i}", rng.fork(10 + i))
        workload = YcsbWorkload("a", rng.fork(20 + i))
        client = OpenLoopClient(node, server, node.core(i), workload,
                                rng.fork(30 + i), rate_per_s,
                                direct_reclaim=daemon.inline_reclaim)
        clients.append(client)
        sim.spawn(client.run(duration_ns), f"client{i}")
    sim.run(until=duration_ns + ms(5.0))
    merged = clients[0].stats
    for client in clients[1:]:
        merged.extend(client.stats._samples)
    return SleepPoint(
        sleep_us, merged.p99(), daemon.pages_reclaimed,
        daemon.wake_checks,
        sum(c.direct_reclaim_hits for c in clients))


def run_point(sleep_us: float, duration_ns: float = ms(300.0),
              rate_per_s: float = 32_000.0,
              seed: int = 131) -> SleepPoint:
    """Cold path kept as the pinned reference: warm-up + point."""
    return _sleep_point(_sleep_warmup(rate_per_s, seed), sleep_us,
                        duration_ns, rate_per_s)


def run(sleeps_us: Sequence[float] = DEFAULT_SLEEPS_US,
        duration_ns: float = ms(300.0), rate_per_s: float = 32_000.0,
        seed: int = 131, jobs: Optional[int] = None) -> SleepTuningResult:
    spec = ForkSpec.build(
        "sleep-tuning", _sleep_warmup,
        [(sleep_us, _sleep_point, (sleep_us, duration_ns, rate_per_s), {})
         for sleep_us in sleeps_us],
        warmup_args=(rate_per_s, seed))
    return SleepTuningResult(run_forked_sweep(spec, jobs=jobs))


def format_table(result: SleepTuningResult) -> str:
    lines = [
        "Extension: kswapd device-wait sleep sweep (cxl backend, SVI-A)",
        f"{'sleep(us)':>10s} {'p99(us)':>9s} {'pages':>8s} "
        f"{'early-wakes':>12s} {'directs':>8s}",
    ]
    for sleep_us in sorted(result.points):
        point = result.points[sleep_us]
        lines.append(
            f"{sleep_us:10.0f} {point.p99_ns / 1000:9.1f} "
            f"{point.pages_reclaimed:8d} {point.wake_checks:12d} "
            f"{point.direct_reclaims:8d}")
    return "\n".join(lines)
