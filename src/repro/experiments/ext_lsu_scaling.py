"""Extension experiment: D2H bandwidth scaling with multiple LSUs.

SV-A: "we use a single LSU ... the FPGA-based LSU can issue 64B memory
requests at 400MHz, i.e. a maximum of 25.6 GB/s ... As we employ more
and/or faster LSUs and more CPU cores, the bandwidth will approach
~90% of the maximum bandwidth of both the CXL interconnect and UPI."

This experiment instantiates 1..N LSU CAFUs sharing one DCOH slice and
measures aggregate CS-read bandwidth against host memory, showing the
saturating curve the paper predicts (the shared data-return wire and
protocol overheads cap it below the raw 64 GB/s).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.config import SystemConfig
from repro.core.platform import Platform
from repro.core.requests import D2HOp
from repro.sim.parallel import SweepPoint, SweepSpec, run_sweep
from repro.sim.stats import bandwidth_gbps
from repro.units import CACHELINE

DEFAULT_COUNTS = (1, 2, 4, 8, 16)
LINES_PER_LSU = 512


@dataclass(frozen=True)
class ScalingResult:
    bandwidth_gbps: Dict[int, float]     # lsu count -> aggregate GB/s
    link_raw_gbps: float

    def efficiency_at(self, count: int) -> float:
        """Fraction of the raw link bandwidth achieved."""
        return self.bandwidth_gbps[count] / self.link_raw_gbps

    @property
    def saturates(self) -> bool:
        """Growth from the penultimate to the last point is marginal."""
        counts = sorted(self.bandwidth_gbps)
        last, prev = counts[-1], counts[-2]
        return (self.bandwidth_gbps[last]
                < self.bandwidth_gbps[prev] * (last / prev) * 0.75)


def run_count(count: int, cfg: Optional[SystemConfig] = None,
              seed: int = 83) -> float:
    """Aggregate CS-read bandwidth with ``count`` LSUs — one independent
    simulation per point."""
    platform = Platform(cfg, seed=seed)
    sim = platform.sim
    lsus = platform.t2.lsus(count)
    total_lines = LINES_PER_LSU * count
    addrs = platform.fresh_host_lines(total_lines)
    start = sim.now
    done_at: list[float] = []

    def timed(lsu, addr):
        yield from lsu.d2h(D2HOp.CS_READ, addr)
        done_at.append(sim.now)

    for i, addr in enumerate(addrs):
        sim.spawn(timed(lsus[i % count], addr))
    sim.run()
    return bandwidth_gbps(total_lines * CACHELINE, max(done_at) - start)


def run(cfg: Optional[SystemConfig] = None,
        counts: Sequence[int] = DEFAULT_COUNTS,
        seed: int = 83, jobs: Optional[int] = None) -> ScalingResult:
    spec = SweepSpec("lsu-scaling", tuple(
        SweepPoint(count, run_count, (count, cfg, seed))
        for count in counts))
    results: Dict[int, float] = run_sweep(spec, jobs=jobs)
    link = (cfg or Platform(cfg, seed=seed).cfg).cxl_t2.link.bytes_per_ns \
        if cfg else Platform(seed=seed).cfg.cxl_t2.link.bytes_per_ns
    return ScalingResult(results, link)


def format_table(result: ScalingResult) -> str:
    lines = [
        "Extension: D2H CS-read bandwidth vs number of LSUs (SV-A)",
        f"{'LSUs':>6s} {'GB/s':>8s} {'% of raw link':>14s}",
    ]
    for count in sorted(result.bandwidth_gbps):
        lines.append(
            f"{count:6d} {result.bandwidth_gbps[count]:8.1f} "
            f"{result.efficiency_at(count):14.0%}")
    return "\n".join(lines)
