"""Extension experiment: multi-tenant graceful degradation under storms.

``ext_fault_resilience`` asks what one fault costs a single zswap loop.
This experiment asks the *service-level* question: with three QoS
classes of Redis tenants sharing one Type-2 device, does the stack stay
**available** through a fault storm — and what do the degradation
mechanisms (circuit breaker, hedged requests, load shedding) actually
do while it burns?

Per cell, a :class:`~repro.resilience.ResiliencePolicy` fronts the
offload engine; three open-loop clients (gold / silver / bronze
tenants) drive Redis on dedicated cores under memory pressure pinned
below the min watermark, so a slice of write requests performs inline
direct reclaim *through the policy-routed zswap* — coupling request
tail latency to device health.  A background swap daemon keeps a steady
stream of policy-routed offloads flowing so breaker and hedge dynamics
are visible even between client allocations.  Availability is sampled
as requests served per tenth of the run: the acceptance bar for the
kill+repair storm is **every bucket non-zero** — the KVS serves through
device death (cpu fallbacks) and returns to the fast path after repair.

Scenarios:

* ``baseline`` — armed, no faults (hedges/sheds should stay ~0);
* ``crc storm`` — windowed ``link_crc`` burst mid-run (latency ripple,
  no breaker trips);
* ``drop storm`` — windowed ``offload_drop`` burst (timeouts, hedges
  win, breaker may trip);
* ``kill+repair`` — ``link_dead`` mid-run, scheduled
  ``device_repair``/``link_up`` later: the breaker opens, traffic
  fail-fasts to the cpu path, and the repair pulls the recovery probe
  forward so the fast path resumes;
* ``disarmed`` — the same workload with :data:`NO_RESILIENCE`, the
  zero-cost control (also the off-leg of the ``repro speed`` overhead
  gate).

Determinism: every decision reads the simulated clock or forked RNG
streams, so cells are byte-identical at any ``--jobs`` count (asserted
in ``tests/experiments``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, Generator, Optional, Tuple

from repro.apps.kvs import RedisServer
from repro.apps.latency import OpenLoopClient
from repro.apps.node import MemoryPressure, ServerNode
from repro.apps.ycsb import YcsbWorkload
from repro.config import SystemConfig
from repro.core.offload import OffloadEngine
from repro.core.platform import Platform
from repro.faults import FaultPlan
from repro.kernel.swapdev import SwapDevice
from repro.kernel.zswap import Zswap
from repro.resilience import (
    DEFAULT_TENANTS,
    NO_RESILIENCE,
    ResiliencePolicy,
)
from repro.sim.engine import Timeout
from repro.sim.parallel import SweepPoint, SweepSpec, run_sweep
from repro.units import ms, us

DEFAULT_DURATION_NS = ms(40.0)
DEFAULT_RATE_PER_S = 24_000.0       # per tenant (open loop)
DEFAULT_SEED = 4242
#: availability buckets per run (served-request deltas, all must be > 0)
AVAILABILITY_BUCKETS = 10
#: background swap daemon cadence — keeps offloads flowing between
#: client allocations so breaker/hedge dynamics have traffic to act on
DAEMON_PERIOD_NS = us(50.0)
DAEMON_POOL_DEPTH = 8


@dataclass(frozen=True)
class DegradationCell:
    """One scenario's outcome: availability + per-tenant SLO ledger +
    the degradation-mechanism counters."""

    scenario: str
    armed: bool
    duration_ns: float
    requests: int
    served_per_bucket: Tuple[int, ...]
    shed: int
    hedges_fired: int
    hedge_wins: int
    hedge_losses: int
    cpu_fallbacks: int
    breaker_trips: int
    breaker_probes: int
    breaker_state: str
    repairs_seen: int
    retries: int
    timeouts: int
    fault_errors: int
    health: str                      # final device health state
    tenant_reports: Tuple[Dict[str, Any], ...]

    @property
    def min_bucket_served(self) -> int:
        """The worst availability bucket — > 0 means the KVS never
        went dark, even mid-storm."""
        return min(self.served_per_bucket)

    def tenant(self, name: str) -> Dict[str, Any]:
        for report in self.tenant_reports:
            if report["tenant"] == name:
                return report
        raise KeyError(name)


@dataclass(frozen=True)
class DegradationResult:
    cells: Dict[str, DegradationCell]

    def get(self, scenario: str) -> DegradationCell:
        return self.cells[scenario]


def scenario_specs(duration_ns: float) -> Tuple[Tuple[str, Optional[str]],
                                                ...]:
    """The storm grid, with windows/events placed relative to the run
    length so every ``--duration-ms`` keeps the same story."""
    d = duration_ns
    return (
        ("baseline", None),
        ("crc storm", f"link_crc=2e-3@[{0.25 * d:g},{0.55 * d:g}]"),
        ("drop storm", f"offload_drop=0.08@[{0.25 * d:g},{0.55 * d:g}]"),
        ("kill+repair", f"link_dead@t={0.3 * d:g},"
                        f"device_repair@t={0.62 * d:g},"
                        f"link_up@t={0.62 * d:g}"),
    )


def run_cell(scenario: str, fault_spec: Optional[str] = None,
             armed: bool = True,
             duration_ns: float = DEFAULT_DURATION_NS,
             rate_per_s: float = DEFAULT_RATE_PER_S,
             seed: int = DEFAULT_SEED,
             cfg: Optional[SystemConfig] = None) -> DegradationCell:
    """Run one multi-tenant degradation scenario end to end."""
    platform = Platform(cfg, seed=seed)
    sim, rng = platform.sim, platform.rng
    if fault_spec:
        platform.arm_faults(FaultPlan.parse(fault_spec, seed=seed))
    engine = OffloadEngine(platform)
    swapdev = SwapDevice(sim, faults=platform.faults if fault_spec else None)
    policy = ResiliencePolicy(engine) if armed else NO_RESILIENCE
    zswap = Zswap(engine, swapdev, "cxl", managed_pages=4096, policy=policy)

    # Pressure pinned below the min watermark: every eligible write
    # allocation enters direct reclaim, which compresses a page out
    # through the (policy-routed) zswap on the client's own core.
    pressure = MemoryPressure.sized(1 << 17)
    pressure.free_pages = max(0, pressure.min_pages - 64)
    node = ServerNode(sim, rng.fork(1), len(DEFAULT_TENANTS), pressure)

    def direct_reclaim(core):
        __ = yield from zswap.store(None)

    def swap_daemon(until_ns: float) -> Generator[Any, Any, None]:
        handles: deque = deque()
        while sim.now < until_ns:
            yield Timeout(DAEMON_PERIOD_NS)
            handle, __ = yield from zswap.store(None)
            handles.append(handle)
            if len(handles) > DAEMON_POOL_DEPTH:
                __ = yield from zswap.load(handles.popleft())

    sim.spawn(swap_daemon(duration_ns), "swap-daemon")

    servers = []
    clients = []
    for i, tenant in enumerate(DEFAULT_TENANTS):
        server = RedisServer(f"redis-{tenant.name}", rng.fork(10 + i))
        workload = YcsbWorkload("a", rng.fork(20 + i))
        client = OpenLoopClient(
            node, server, node.core(i), workload, rng.fork(30 + i),
            rate_per_s, direct_reclaim=direct_reclaim,
            tenant=tenant, policy=policy)
        servers.append(server)
        clients.append(client)
        sim.spawn(client.run(duration_ns), f"client-{tenant.name}")

    # Availability sampling: cumulative served requests at each bucket
    # boundary; the report carries the per-bucket deltas.
    cumulative: list = []

    def sample() -> None:
        cumulative.append(sum(s.requests_served for s in servers))

    for k in range(1, AVAILABILITY_BUCKETS + 1):
        sim.schedule_at(duration_ns * k / AVAILABILITY_BUCKETS, sample)

    sim.run(until=duration_ns + ms(5.0))

    deltas = tuple(cumulative[k] - (cumulative[k - 1] if k else 0)
                   for k in range(AVAILABILITY_BUCKETS))
    if armed:
        snap = policy.snapshot()
        reports = tuple(policy.slo.report())
    else:
        snap = {}
        reports = ()
    return DegradationCell(
        scenario=scenario,
        armed=armed,
        duration_ns=duration_ns,
        requests=sum(s.requests_served for s in servers),
        served_per_bucket=deltas,
        shed=snap.get("shed", 0),
        hedges_fired=snap.get("hedges_fired", 0),
        hedge_wins=snap.get("hedge_wins", 0),
        hedge_losses=snap.get("hedge_losses", 0),
        cpu_fallbacks=snap.get("cpu_fallbacks", 0),
        breaker_trips=snap.get("breaker_trips", 0),
        breaker_probes=snap.get("breaker_probes", 0),
        breaker_state=snap.get("breaker_state", "n/a"),
        repairs_seen=snap.get("repairs_seen", 0),
        retries=engine.retries,
        timeouts=engine.timeouts,
        fault_errors=engine.fault_errors,
        health=engine.health.state.value,
        tenant_reports=reports,
    )


def run(duration_ns: float = DEFAULT_DURATION_NS,
        rate_per_s: float = DEFAULT_RATE_PER_S,
        seed: int = DEFAULT_SEED,
        cfg: Optional[SystemConfig] = None,
        jobs: Optional[int] = None) -> DegradationResult:
    points = [
        SweepPoint(name, run_cell, (name, spec),
                   {"duration_ns": duration_ns, "rate_per_s": rate_per_s,
                    "seed": seed, "cfg": cfg})
        for name, spec in scenario_specs(duration_ns)
    ]
    points.append(
        SweepPoint("disarmed", run_cell, ("disarmed", None),
                   {"armed": False, "duration_ns": duration_ns,
                    "rate_per_s": rate_per_s, "seed": seed, "cfg": cfg}))
    cells = run_sweep(SweepSpec("ext-degradation", tuple(points)), jobs=jobs)
    return DegradationResult(cells)


def format_table(result: DegradationResult) -> str:
    lines = [
        "Extension: multi-tenant graceful degradation under fault storms",
        f"{'scenario':>12s} {'reqs':>6s} {'minbkt':>6s} {'shed':>5s} "
        f"{'hedge':>5s} {'hwin':>4s} {'cpufb':>5s} {'trips':>5s} "
        f"{'probes':>6s} {'breaker':>9s} {'health':>8s}",
    ]
    for name, cell in result.cells.items():
        lines.append(
            f"{name:>12s} {cell.requests:6d} {cell.min_bucket_served:6d} "
            f"{cell.shed:5d} {cell.hedges_fired:5d} {cell.hedge_wins:4d} "
            f"{cell.cpu_fallbacks:5d} {cell.breaker_trips:5d} "
            f"{cell.breaker_probes:6d} {cell.breaker_state:>9s} "
            f"{cell.health:>8s}")
    lines.append("")
    lines.append("per-tenant SLO accounting (armed scenarios)")
    lines.append(
        f"{'scenario':>12s} {'tenant':>7s} {'reqs':>6s} {'shed':>5s} "
        f"{'p50(us)':>8s} {'p99(us)':>8s} {'slo(us)':>8s} {'viol':>5s} "
        f"{'budget':>7s}")
    for name, cell in result.cells.items():
        for rep in cell.tenant_reports:
            lines.append(
                f"{name:>12s} {rep['tenant']:>7s} {rep['requests']:6d} "
                f"{rep['shed']:5d} {rep['p50_ns'] / 1000:8.1f} "
                f"{rep['p99_ns'] / 1000:8.1f} "
                f"{rep['slo_p99_ns'] / 1000:8.1f} {rep['violations']:5d} "
                f"{rep['budget_used']:7.2f}")
    return "\n".join(lines)
