"""Table III: cache-coherence states after each D2H request type.

Executes every (request x initial-placement) cell against the DCOH model
and reads back the resulting HMC and LLC line states.  This is the
paper's Table III as a *runnable artifact*: the unit tests assert each
cell, and the bench prints the whole matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.config import SystemConfig
from repro.core.platform import Platform
from repro.core.requests import D2HOp
from repro.mem.coherence import LineState

CASES = ("hmc-hit", "llc-hit", "llc-miss")
OPS = [D2HOp.NC_P, D2HOp.NC_READ, D2HOp.NC_WRITE,
       D2HOp.CO_READ, D2HOp.CO_WRITE, D2HOp.CS_READ]

# The paper's Table III, as (HMC state, LLC state) per (op, case), with
# shared initial states (the methodology sets lines of interest shared).
EXPECTED: Dict[Tuple[str, str], Tuple[LineState, LineState]] = {
    ("nc-p", "hmc-hit"): (LineState.INVALID, LineState.MODIFIED),
    ("nc-p", "llc-hit"): (LineState.INVALID, LineState.MODIFIED),
    ("nc-p", "llc-miss"): (LineState.INVALID, LineState.MODIFIED),
    ("nc-rd", "hmc-hit"): (LineState.SHARED, LineState.INVALID),   # no change
    ("nc-rd", "llc-hit"): (LineState.INVALID, LineState.SHARED),   # no change
    ("nc-rd", "llc-miss"): (LineState.INVALID, LineState.INVALID),
    ("nc-wr", "hmc-hit"): (LineState.INVALID, LineState.INVALID),
    ("nc-wr", "llc-hit"): (LineState.INVALID, LineState.INVALID),
    ("nc-wr", "llc-miss"): (LineState.INVALID, LineState.INVALID),
    ("co-rd", "hmc-hit"): (LineState.EXCLUSIVE, LineState.INVALID),  # S -> E
    ("co-rd", "llc-hit"): (LineState.EXCLUSIVE, LineState.INVALID),
    ("co-rd", "llc-miss"): (LineState.EXCLUSIVE, LineState.INVALID),
    ("co-wr", "hmc-hit"): (LineState.MODIFIED, LineState.INVALID),
    ("co-wr", "llc-hit"): (LineState.MODIFIED, LineState.INVALID),
    ("co-wr", "llc-miss"): (LineState.MODIFIED, LineState.INVALID),
    ("cs-rd", "hmc-hit"): (LineState.SHARED, LineState.INVALID),
    ("cs-rd", "llc-hit"): (LineState.SHARED, LineState.SHARED),
    ("cs-rd", "llc-miss"): (LineState.SHARED, LineState.INVALID),
}


@dataclass(frozen=True)
class Table3Result:
    observed: Dict[Tuple[str, str], Tuple[LineState, LineState]]

    def matches_expected(self) -> Dict[Tuple[str, str], bool]:
        return {key: self.observed[key] == EXPECTED[key] for key in EXPECTED}

    @property
    def all_match(self) -> bool:
        return all(self.matches_expected().values())


def run_cell(platform: Platform, op: D2HOp,
             case: str) -> Tuple[LineState, LineState]:
    """Prepare one cell's initial placement, issue the request, and read
    back (HMC state, LLC state)."""
    dcoh = platform.t2.dcoh
    home = platform.home
    (addr,) = platform.fresh_host_lines(1)
    if case == "hmc-hit":
        dcoh._fill_hmc(addr, LineState.SHARED)
    elif case == "llc-hit":
        home.preload_llc(addr, LineState.SHARED)
    elif case != "llc-miss":
        raise ValueError(f"unknown case {case!r}")
    platform.sim.run_process(dcoh.d2h(op, addr))
    return dcoh.hmc.state_of(addr), home.llc_state(addr)


def run(cfg: Optional[SystemConfig] = None, seed: int = 19) -> Table3Result:
    platform = Platform(cfg, seed=seed)
    observed = {}
    for op in OPS:
        for case in CASES:
            observed[(op.value, case)] = run_cell(platform, op, case)
    return Table3Result(observed)


def format_table(result: Table3Result) -> str:
    lines = [
        "Table III: coherence states after a D2H access "
        "(HMC-state/LLC-state, * = differs from paper)",
        f"{'op':8s} " + " ".join(f"{c:>16s}" for c in CASES),
    ]
    matches = result.matches_expected()
    for op in OPS:
        row = []
        for case in CASES:
            hmc, llc = result.observed[(op.value, case)]
            flag = "" if matches[(op.value, case)] else "*"
            row.append(f"{hmc.value}/{llc.value}{flag:>14s}"[:16].rjust(16))
        lines.append(f"{op.value:8s} " + " ".join(row))
    return "\n".join(lines)
