"""Fig 6: transfer efficiency — CXL ld/st and DSA vs PCIe MMIO/DMA/RDMA.

Latency and bandwidth for H2D and D2H transfers across sizes from 64 B
to 256 KB for every mechanism the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.config import SystemConfig
from repro.core.platform import Platform
from repro.core.transfer import (
    D2H_MECHANISMS,
    H2D_MECHANISMS,
    TransferBench,
    TransferResult,
)
from repro.sim.parallel import ForkSpec, run_forked_sweep

DEFAULT_SIZES = (64, 256, 1024, 4096, 16384, 65536, 262144)


@dataclass(frozen=True)
class Fig6Result:
    points: Dict[str, TransferResult]   # "<dir>/<mechanism>/<size>"
    sizes: Sequence[int]

    def get(self, direction: str, mechanism: str, size: int) -> TransferResult:
        return self.points[f"{direction}/{mechanism}/{size}"]

    def latency_gain(self, direction: str, mechanism: str, baseline: str,
                     size: int) -> float:
        """1 - mech/baseline latency (e.g. CXL-ST vs PCIe-MMIO at 256 B)."""
        m = self.get(direction, mechanism, size).latency.median
        b = self.get(direction, baseline, size).latency.median
        return 1.0 - m / b


def _build_platform(cfg: Optional[SystemConfig], seed: int) -> Platform:
    """The fig6 warm-up: every (direction, mechanism) cell measures on a
    platform built from the same (cfg, seed) — one construction,
    checkpointed, forked per cell."""
    return Platform(cfg, seed=seed)


def _measure_mechanism(platform: Platform, direction: str, mechanism: str,
                       reps: int, sizes: Sequence[int]
                       ) -> Dict[str, TransferResult]:
    bench = TransferBench(platform, reps=reps)
    return {f"{direction}/{mechanism}/{size}":
            bench.measure(mechanism, direction, size) for size in sizes}


def run_mechanism(direction: str, mechanism: str,
                  cfg: Optional[SystemConfig] = None, reps: int = 7,
                  sizes: Sequence[int] = DEFAULT_SIZES,
                  seed: int = 17) -> Dict[str, TransferResult]:
    """All sizes for one (direction, mechanism) on a fresh platform —
    the independent unit of the fig6 sweep (the pinned cold path)."""
    # A fresh platform per mechanism keeps queues independent.
    return _measure_mechanism(_build_platform(cfg, seed),
                              direction, mechanism, reps, tuple(sizes))


def run(cfg: Optional[SystemConfig] = None, reps: int = 7,
        sizes: Sequence[int] = DEFAULT_SIZES, seed: int = 17,
        jobs: Optional[int] = None) -> Fig6Result:
    spec = ForkSpec.build(
        "fig6", _build_platform,
        [((direction, mechanism), _measure_mechanism,
          (direction, mechanism, reps, tuple(sizes)), {})
         for direction, mechanisms in (("h2d", H2D_MECHANISMS),
                                       ("d2h", D2H_MECHANISMS))
         for mechanism in mechanisms],
        warmup_args=(cfg, seed))
    points: Dict[str, TransferResult] = {}
    for cell in run_forked_sweep(spec, jobs=jobs).values():
        points.update(cell)
    return Fig6Result(points, sizes)


def format_table(result: Fig6Result) -> str:
    lines = ["Fig 6: transfer latency (us) by size"]
    for direction, mechanisms in (("h2d", H2D_MECHANISMS),
                                  ("d2h", D2H_MECHANISMS)):
        lines.append(f"--- {direction.upper()} ---")
        header = f"{'size':>8s} " + " ".join(f"{m:>14s}" for m in mechanisms)
        lines.append(header)
        for size in result.sizes:
            row = " ".join(
                f"{result.get(direction, m, size).latency.median / 1000:14.2f}"
                for m in mechanisms)
            lines.append(f"{size:8d} {row}")
        lines.append(f"{'':8s} (bandwidth, GB/s)")
        for size in result.sizes:
            row = " ".join(
                f"{result.get(direction, m, size).bandwidth.median:14.2f}"
                for m in mechanisms)
            lines.append(f"{size:8d} {row}")
    return "\n".join(lines)
