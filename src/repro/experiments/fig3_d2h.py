"""Fig 3: latency and bandwidth of true vs emulated D2H accesses.

Four D2H request types against their emulated equivalents (SV-A):
NC-rd~nt-ld, CS-rd~ld, NC-wr~nt-st, CO-wr~st, each hitting and missing
the host LLC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.config import SystemConfig
from repro.core.microbench import Measurement, Microbench
from repro.core.platform import Platform
from repro.core.requests import D2HOp, EQUIVALENT_HOST_OP, HostOp

PAIRS = [
    (D2HOp.NC_READ, HostOp.NT_LOAD),
    (D2HOp.CS_READ, HostOp.LOAD),
    (D2HOp.NC_WRITE, HostOp.NT_STORE),
    (D2HOp.CO_WRITE, HostOp.STORE),
]


@dataclass(frozen=True)
class Fig3Result:
    true: Dict[str, Measurement]       # key: "<op>/llc-<0|1>"
    emulated: Dict[str, Measurement]

    def latency_delta(self, op: D2HOp, llc_hit: bool) -> float:
        """(true - emulated) / emulated latency, as the paper quotes."""
        key_true = f"{op.value}/llc-{int(llc_hit)}"
        host_op = EQUIVALENT_HOST_OP[op]
        key_em = f"{host_op.value}/llc-{int(llc_hit)}"
        t = self.true[key_true].latency.median
        e = self.emulated[key_em].latency.median
        return (t - e) / e

    def bandwidth_ratio(self, op: D2HOp, llc_hit: bool) -> float:
        key_true = f"{op.value}/llc-{int(llc_hit)}"
        host_op = EQUIVALENT_HOST_OP[op]
        key_em = f"{host_op.value}/llc-{int(llc_hit)}"
        return (self.true[key_true].bandwidth.median
                / self.emulated[key_em].bandwidth.median)


def run(cfg: Optional[SystemConfig] = None, reps: int = 30,
        seed: int = 7) -> Fig3Result:
    platform = Platform(cfg, seed=seed)
    mb = Microbench(platform, reps=reps)
    true: Dict[str, Measurement] = {}
    emulated: Dict[str, Measurement] = {}
    for d2h_op, host_op in PAIRS:
        for hit in (True, False):
            m = mb.d2h(d2h_op, hit)
            true[f"{d2h_op.value}/llc-{int(hit)}"] = m
            m = mb.emulated_d2h(host_op, hit)
            emulated[f"{host_op.value}/llc-{int(hit)}"] = m
    return Fig3Result(true, emulated)


def format_table(result: Fig3Result) -> str:
    lines = [
        "Fig 3: D2H latency (ns) and bandwidth (GB/s), true CXL T2 vs "
        "emulated NUMA",
        f"{'op':8s} {'llc':4s} {'lat.true':>9s} {'lat.emul':>9s} "
        f"{'delta':>7s} {'bw.true':>8s} {'bw.emul':>8s} {'ratio':>6s}",
    ]
    for d2h_op, host_op in PAIRS:
        for hit in (True, False):
            kt = f"{d2h_op.value}/llc-{int(hit)}"
            ke = f"{host_op.value}/llc-{int(hit)}"
            t, e = result.true[kt], result.emulated[ke]
            lines.append(
                f"{d2h_op.value:8s} {int(hit):<4d} "
                f"{t.latency.median:9.0f} {e.latency.median:9.0f} "
                f"{result.latency_delta(d2h_op, hit):+7.0%} "
                f"{t.bandwidth.median:8.2f} {e.bandwidth.median:8.2f} "
                f"{result.bandwidth_ratio(d2h_op, hit):6.2f}"
            )
    return "\n".join(lines)
