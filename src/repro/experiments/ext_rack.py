"""Extension experiment: multi-host rack KVS with host-kill rebalance.

Two cells over the :mod:`repro.rack` cluster:

* **baseline** — ``hosts`` full platforms shard ``users`` simulated
  users; reports merged latency percentiles, cross-shard traffic, and
  distinct-user coverage (every user must be served at least once).
* **host_kill** — the same rack at a tenth of the users, with one
  host's CXL link scheduled dead mid-run: the RAS machinery detects
  FAILED, the coordinator rebalances the ring, and the report carries
  the time-sliced availability histogram (every slice must stay > 0)
  plus migration/breaker accounting.

Stdout is deterministic for a given ``(hosts, users, seed)`` — and
byte-identical for any ``--jobs``, which the CI rack-smoke job diffs.
The RSS trace (wall-clock state of this process, not simulated state)
goes to stderr; growth is measured from the first steady-state sample
(after :data:`RSS_SETTLE_FRACTION` of the run, once the bounded hot
tiers have filled) to the last, so it reads "memory does not grow with
request count" rather than "warm-up allocates memory".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.rack import RackConfig, run_rack
from repro.rack.cluster import AVAIL_BUCKETS

#: Fraction of the run after which RSS is considered steady state.  The
#: bounded hot tiers hit their eviction steady state by ~50 % of the
#: 16-host/10M default (measured: peak RSS is byte-flat from 56 % on);
#: before that the stores are still filling toward capacity, which is
#: warm-up, not growth-with-request-count.
RSS_SETTLE_FRACTION = 0.5


def _peak_rss_kb() -> int:
    try:
        import platform as _platform
        import resource as _resource
        rss = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
        return rss // 1024 if _platform.system() == "Darwin" else rss
    except (ImportError, OSError):  # pragma: no cover - non-POSIX
        return 0


@dataclass(frozen=True)
class RackCell:
    """One rack run's deterministic summary plus its RSS trace."""

    name: str
    stats: Dict[str, float]
    rss_kb: Tuple[int, ...]
    #: Per-run fabric/fast-forward counter delta (stderr telemetry only;
    #: the stdout table never includes it).
    fabric_stats: Dict[str, int] = None  # type: ignore[assignment]

    @property
    def rss_growth(self) -> float:
        """Steady-state peak-RSS growth (see module docstring)."""
        if len(self.rss_kb) < 2 or self.rss_kb[0] == 0:
            return 1.0
        return self.rss_kb[-1] / self.rss_kb[0]


@dataclass(frozen=True)
class RackReport:
    hosts: int
    users: int
    seed: int
    baseline: RackCell
    host_kill: Optional[RackCell]


def _run_cell(name: str, cfg: RackConfig, jobs,
              checkpoints: int) -> RackCell:
    n_epochs = int(math.ceil(cfg.duration_ns / cfg.fabric.epoch_ns))
    settle = int(n_epochs * RSS_SETTLE_FRACTION)
    trace: list = []

    def probe(epoch: int) -> None:
        if epoch >= settle:
            trace.append(_peak_rss_kb())

    every = max(1, n_epochs // max(checkpoints, 2))
    result = run_rack(cfg, jobs=jobs, probe=probe, probe_every=every)
    trace.append(_peak_rss_kb())
    return RackCell(name=name, stats=result.stats(), rss_kb=tuple(trace),
                    fabric_stats=result.fabric_stats)


def run(hosts: int = 16, users: int = 10_000_000, seed: int = 42,
        jobs=None, kill_frac: float = 0.4,
        checkpoints: int = 20, skip_kill: bool = False) -> RackReport:
    """Run the baseline cell and (unless ``skip_kill``) the kill cell.

    The kill cell runs at ``users // 10`` — the availability and
    rebalance properties it checks don't need the full population — and
    kills host ``hosts // 3`` at ``kill_frac`` of the run.
    """
    baseline = _run_cell(
        "baseline", RackConfig(hosts=hosts, users=users, seed=seed),
        jobs, checkpoints)
    kill_cell = None
    if not skip_kill:
        # One user per key bucket at minimum (RackConfig validates
        # users >= buckets); the availability/rebalance properties the
        # cell checks don't need more than a tenth of the population.
        min_users = RackConfig.__dataclass_fields__["buckets"].default
        kill_cfg = RackConfig(hosts=hosts, users=max(users // 10, min_users),
                              seed=seed, kill=(hosts // 3, kill_frac))
        kill_cell = _run_cell("host_kill", kill_cfg, jobs, checkpoints)
    return RackReport(hosts=hosts, users=users, seed=seed,
                      baseline=baseline, host_kill=kill_cell)


_ROWS = (
    ("requests", "requests", "{:,.0f}"),
    ("served", "served", "{:,.0f}"),
    ("distinct users", "distinct_users", "{:,.0f}"),
    ("dropped", "dropped", "{:,.0f}"),
    ("remote round-trips", "remote_sent", "{:,.0f}"),
    ("migrated records", "migrated_records", "{:,.0f}"),
    ("rebalances", "rebalances", "{:,.0f}"),
    ("breaker trips", "breaker_trips", "{:,.0f}"),
    ("fabric wires", "routed_wires", "{:,.0f}"),
    ("p50", "p50_us", "{:,.2f} us"),
    ("p99", "p99_us", "{:,.2f} us"),
    ("mean", "mean_us", "{:,.2f} us"),
)


def format_table(report: RackReport) -> str:
    lines = [
        f"Extension: rack-scale KVS ({report.hosts} hosts, "
        f"{report.users:,d} users, seed {report.seed})",
    ]
    cells = [report.baseline]
    if report.host_kill is not None:
        cells.append(report.host_kill)
    for cell in cells:
        lines.append(f"-- {cell.name} --")
        for label, key, fmt in _ROWS:
            lines.append(f"{label:>20s} {fmt.format(cell.stats[key]):>16s}")
        if cell.name == "host_kill":
            avail = [int(cell.stats[f"avail_{i}"])
                     for i in range(AVAIL_BUCKETS)]
            floor = min(avail)
            lines.append(f"{'availability/slice':>20s} "
                         f"{' '.join(str(a) for a in avail)}")
            lines.append(f"{'min slice':>20s} {floor:>16,d}  "
                         + ("ok" if floor > 0 else "OUTAGE"))
    return "\n".join(lines)


def format_rss_trace(report: RackReport) -> str:
    """Operator-facing RSS + fabric telemetry (stderr: wall-clock and
    counter state — never part of the deterministic stdout contract)."""
    out = []
    for cell in (report.baseline, report.host_kill):
        if cell is None:
            continue
        if not cell.rss_kb:
            out.append(f"{cell.name}: rss trace unavailable")
        else:
            out.append(f"{cell.name}: rss {cell.rss_kb[0]:,d} -> "
                       f"{cell.rss_kb[-1]:,d} KiB over {len(cell.rss_kb)} "
                       f"samples (growth {cell.rss_growth:.3f}x)")
        fs = cell.fabric_stats
        if fs:
            demoted = (fs["demoted_inflight"] + fs["demoted_backlog"]
                       + fs["demoted_directives"] + fs["demoted_kill"])
            out.append(
                f"{cell.name}: fabric epochs {fs['epochs_run']:,d} run "
                f"/ {fs['epochs_skipped']:,d} skipped "
                f"({fs['ff_jumps']:,d} jumps, {demoted:,d} demoted); "
                f"{fs['wires']:,d} wires ({fs['frames']:,d} framed, "
                f"{fs['framed_bytes']:,d} B), {fs['bounces']:,d} bounces")
    return "\n".join(out)
