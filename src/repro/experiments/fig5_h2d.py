"""Fig 5: latency and bandwidth of H2D accesses, CXL Type-2 vs Type-3.

Host ld / nt-ld / st / nt-st against device memory: the Type-3 baseline
(no device cache), the Type-2 device missing DMC, hitting DMC in
owned / shared / modified, and — for the NC-P demonstration of
Insight 4 — accesses to lines the device pre-pushed into the host LLC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.config import SystemConfig
from repro.core.microbench import Measurement, Microbench
from repro.core.platform import Platform
from repro.core.requests import HostOp
from repro.mem.coherence import LineState

OPS = [HostOp.LOAD, HostOp.NT_LOAD, HostOp.STORE, HostOp.NT_STORE]
SCENARIOS = ("t3", "t2-miss", "t2-owned", "t2-shared", "t2-modified", "ncp")


@dataclass(frozen=True)
class Fig5Result:
    points: Dict[str, Measurement]     # "<scenario>/<op>"

    def get(self, scenario: str, op: HostOp) -> Measurement:
        return self.points[f"{scenario}/{op.value}"]

    def t2_penalty(self, op: HostOp) -> float:
        """Type-2 (DMC miss) latency over Type-3 — the coherence-check
        cost of SV-C (~5 %)."""
        t2 = self.get("t2-miss", op).latency.median
        t3 = self.get("t3", op).latency.median
        return t2 / t3 - 1.0

    def dmc_hit_penalty(self, op: HostOp, state: str) -> float:
        """Counter-intuitive Fig-5 effect: hitting DMC is *slower* than
        missing it (except shared)."""
        hit = self.get(f"t2-{state}", op).latency.median
        miss = self.get("t2-miss", op).latency.median
        return hit / miss - 1.0

    def ncp_latency_gain(self, op: HostOp) -> float:
        ncp = self.get("ncp", op).latency.median
        miss = self.get("t2-miss", op).latency.median
        return 1.0 - ncp / miss

    def ncp_bw_ratio(self, op: HostOp) -> float:
        return (self.get("ncp", op).bandwidth.median
                / self.get("t2-miss", op).bandwidth.median)


def run(cfg: Optional[SystemConfig] = None, reps: int = 20,
        seed: int = 13) -> Fig5Result:
    platform = Platform(cfg, seed=seed)
    mb = Microbench(platform, reps=reps)
    points: Dict[str, Measurement] = {}
    states = {
        "t2-owned": LineState.OWNED,
        "t2-shared": LineState.SHARED,
        "t2-modified": LineState.MODIFIED,
    }
    for op in OPS:
        points[f"t3/{op.value}"] = mb.h2d(op, "t3")
        points[f"t2-miss/{op.value}"] = mb.h2d(op, "t2")
        for name, state in states.items():
            points[f"{name}/{op.value}"] = mb.h2d(op, "t2", state)
        points[f"ncp/{op.value}"] = mb.h2d_after_ncp(op)
    return Fig5Result(points)


def format_table(result: Fig5Result) -> str:
    lines = [
        "Fig 5: H2D latency (ns) / bandwidth (GB/s)",
        f"{'op':6s} " + " ".join(f"{s:>12s}" for s in SCENARIOS),
    ]
    for op in OPS:
        lat = " ".join(
            f"{result.get(s, op).latency.median:12.0f}" for s in SCENARIOS)
        bw = " ".join(
            f"{result.get(s, op).bandwidth.median:12.2f}" for s in SCENARIOS)
        lines.append(f"{op.value:6s} {lat}")
        lines.append(f"{'':6s} {bw}")
    return "\n".join(lines)
