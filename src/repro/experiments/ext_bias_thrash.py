"""Extension experiment: bias-mode thrash under mixed H2D/D2D load.

SIV-B: a device-memory region in device-bias mode gives the accelerator
its fastest path — but "as soon as DCOH receives an H2D request to a
device memory region in device-bias mode, the memory region exits from
device-bias mode", and getting back requires software to flush the
region from host cache.  This experiment quantifies the cost of a host
that keeps touching a region the accelerator wants in device bias:

* ``quiet``        — device-bias D2D stream, host never interferes;
* ``thrash``       — a host ld drops the region to host bias every K
  device accesses; software switches it back (paying the flush);
* ``host-bias``    — giving up: leave the region in host bias.

The takeaway mirrors Insight 2: device bias only pays when the host
genuinely stays away from the region.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.config import SystemConfig
from repro.core.platform import Platform
from repro.core.requests import D2HOp, HostOp
from repro.units import kib

REGION_KIB = 8
ACCESSES = 512


@dataclass(frozen=True)
class ThrashPoint:
    mode: str
    elapsed_ns: float
    bias_switches_to_host: int
    switch_cost_ns: float       # host-side flush time spent re-arming


@dataclass(frozen=True)
class BiasThrashResult:
    points: Dict[str, ThrashPoint]

    def slowdown(self, mode: str) -> float:
        return (self.points[mode].elapsed_ns
                / self.points["quiet"].elapsed_ns)


def _run_mode(mode: str, touch_every: int, seed: int) -> ThrashPoint:
    platform = Platform(seed=seed)
    sim = platform.sim
    t2 = platform.t2
    region = t2.carve_region(f"thrash-{mode}", kib(REGION_KIB))
    addrs = [region.base + (i % (region.size // 64)) * 64
             for i in range(ACCESSES)]

    switch_cost = 0.0
    if mode != "host-bias":
        t2.bias.force_device_bias(region.name)

    def workload():
        nonlocal switch_cost
        for i, addr in enumerate(addrs):
            if (mode == "thrash" and touch_every
                    and i % touch_every == touch_every - 1):
                # The host peeks at the region: bias silently drops.
                yield from platform.core.cxl_op(HostOp.LOAD, addr, t2)
                # Software re-arms device bias (flush + grant, SIV-B).
                t0 = sim.now
                yield from t2.bias.enter_device_bias(
                    region.name, platform.core, platform.home)
                switch_cost += sim.now - t0
            yield from t2.lsu.d2d(D2HOp.CO_WRITE, addr)

    start = sim.now
    sim.run_process(workload())
    return ThrashPoint(mode, sim.now - start,
                       t2.bias.switches_to_host, switch_cost)


def run(cfg: Optional[SystemConfig] = None, touch_every: int = 64,
        seed: int = 139) -> BiasThrashResult:
    points = {
        "quiet": _run_mode("quiet", 0, seed),
        "thrash": _run_mode("thrash", touch_every, seed),
        "host-bias": _run_mode("host-bias", 0, seed),
    }
    return BiasThrashResult(points)


def format_table(result: BiasThrashResult) -> str:
    lines = [
        "Extension: bias-mode thrash under mixed H2D/D2D load (SIV-B)",
        f"{'mode':>10s} {'elapsed(us)':>12s} {'slowdown':>9s} "
        f"{'drops':>6s} {'re-arm cost(us)':>16s}",
    ]
    for mode in ("quiet", "thrash", "host-bias"):
        point = result.points[mode]
        lines.append(
            f"{mode:>10s} {point.elapsed_ns / 1000:12.1f} "
            f"{result.slowdown(mode):9.2f} "
            f"{point.bias_switches_to_host:6d} "
            f"{point.switch_cost_ns / 1000:16.1f}")
    return "\n".join(lines)
