"""Extension experiment: decompose the Fig-8 interference channels.

DESIGN.md section 6 commits to this ablation: Fig 8's tail-latency
inflation is produced by three mechanistic channels — core **queueing**
behind feature work, inline **direct reclaim**, and **LLC pollution**.
Disabling each in turn on the cpu backend shows its contribution to the
normalized p99, demonstrating that the headline number is assembled
from mechanisms, not fit to a target.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Optional

from repro.experiments.fig8_tail_latency import ScenarioConfig, run_zswap_cell
from repro.units import ms

VARIANTS = ("full", "no-pollution", "no-direct", "queueing-only")


@dataclass(frozen=True)
class AblationResult:
    normalized_p99: Dict[str, float]   # variant -> p99 / no-feature p99
    direct_reclaims: Dict[str, int]

    def contribution(self, variant: str) -> float:
        """How much of the full inflation disappears without the channel
        (1 - (variant-1)/(full-1))."""
        full = self.normalized_p99["full"] - 1.0
        without = self.normalized_p99[variant] - 1.0
        if full <= 0:
            return 0.0
        return max(0.0, 1.0 - without / full)


def run(backend: str = "cpu", workload: str = "a",
        scenario: Optional[ScenarioConfig] = None,
        seed: int = 157) -> AblationResult:
    scenario = scenario or ScenarioConfig(duration_ns=ms(300.0))
    baseline = run_zswap_cell(workload, "none", scenario, seed=seed)

    variants = {
        "full": scenario,
        "no-pollution": dataclasses.replace(scenario, pollution_scale=0.0),
        "no-direct": dataclasses.replace(scenario,
                                         direct_reclaim_enabled=False),
        "queueing-only": dataclasses.replace(scenario, pollution_scale=0.0,
                                             direct_reclaim_enabled=False),
    }
    normalized: Dict[str, float] = {}
    directs: Dict[str, int] = {}
    for name, variant_scenario in variants.items():
        cell = run_zswap_cell(workload, backend, variant_scenario, seed=seed)
        normalized[name] = cell.p99_ns / baseline.p99_ns
        directs[name] = cell.direct_reclaims
    return AblationResult(normalized, directs)


def format_table(result: AblationResult) -> str:
    lines = [
        "Extension: Fig-8 interference-channel ablation (cpu-zswap)",
        f"{'variant':>14s} {'norm. p99':>10s} {'directs':>8s} "
        f"{'channel contribution':>21s}",
    ]
    for variant in VARIANTS:
        contrib = ("-" if variant == "full"
                   else f"{result.contribution(variant):.0%}")
        lines.append(
            f"{variant:>14s} {result.normalized_p99[variant]:10.2f} "
            f"{result.direct_reclaims[variant]:8d} {contrib:>21s}")
    return "\n".join(lines)
