"""Extension experiment: zswap tail latency and fallback under faults.

Fig 8 assumes the Type-2 device never fails.  This sweep asks the
production question instead: *what does a fault cost?*  A functional
cxl-zswap (real payloads, real compression) runs a store-then-load loop
while a :class:`~repro.faults.FaultPlan` injects faults:

* **rate sweep** — ``offload_drop`` (a command's completion is lost with
  probability p) and ``link_crc`` (flit CRC error absorbed by the link
  retry buffer).  Dropped completions cost a 50 us timeout plus bounded
  retries, so p99 climbs with the fault rate while the *median* barely
  moves; CRC replays only add a latency ripple.
* **device kill** — ``device_hang`` fires mid-run: exactly one
  operation absorbs the full timeout-retry budget, the health machine
  marks the device FAILED, and every later operation reroutes to the
  cpu path without waiting.  The run completes, every page read back
  verifies bit-exact, and p99 lands at the cpu-zswap level rather than
  at the timeout level.

Determinism: identical seeds + identical plans produce identical
latency timelines (asserted in ``tests/experiments``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import SystemConfig
from repro.core.offload import OffloadEngine
from repro.core.platform import Platform
from repro.faults import FaultPlan
from repro.kernel.swapdev import SwapDevice
from repro.kernel.zswap import Zswap
from repro.sim.parallel import SweepPoint, SweepSpec, run_sweep
from repro.units import PAGE_SIZE, us

DEFAULT_DROP_RATES = (0.0, 1e-3, 1e-2, 5e-2)
DEFAULT_PAGES = 120
DEFAULT_SEED = 1234
# Mid-run kill time: a healthy store+load round trip is ~8.7 us/page,
# so this lands the hang while roughly half the ops are still ahead.
KILL_MID_RUN_NS_PER_PAGE = us(4.0)


def _page(i: int) -> bytes:
    """A unique, compressible, not-same-filled 4 KB payload."""
    row = (i + 1).to_bytes(4, "little") + b"cxl-zswap-page!!" + bytes(44)
    return (row * (PAGE_SIZE // len(row)))[:PAGE_SIZE]


@dataclass(frozen=True)
class FaultCell:
    """One scenario's outcome."""

    scenario: str
    ops: int
    p50_ns: float
    p99_ns: float
    fallbacks: int
    retries: int
    timeouts: int
    fault_errors: int
    crc_replays: int
    verified: int          # pages read back bit-identical
    lost_pages: int        # pages - verified (must be 0)
    health: str            # final device health state
    latencies_ns: Tuple[float, ...]

    @property
    def fallback_rate(self) -> float:
        return self.fallbacks / self.ops if self.ops else 0.0


@dataclass(frozen=True)
class FaultResilienceResult:
    cells: Dict[str, FaultCell]
    drop_rates: Sequence[float]

    def get(self, scenario: str) -> FaultCell:
        return self.cells[scenario]


def _percentile(values: List[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    idx = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[idx]


def run_cell(scenario: str, transport: str = "cxl",
             fault_spec: Optional[str] = None,
             pages: int = DEFAULT_PAGES,
             seed: int = DEFAULT_SEED,
             cfg: Optional[SystemConfig] = None) -> FaultCell:
    """Run one functional store-all-then-load-all zswap loop.

    Every page's payload is verified after load; a mismatch or a missing
    page counts as lost.  Latency is per operation (store or load).
    ``cfg`` reaches the internal :class:`Platform` unchanged, so armed
    sanitizer configs audit the fault paths too."""
    platform = Platform(cfg, seed=seed)
    if fault_spec:
        platform.arm_faults(FaultPlan.parse(fault_spec, seed=seed))
    engine = OffloadEngine(platform, functional=True)
    swapdev = SwapDevice(platform.sim, faults=platform.faults
                         if fault_spec else None)
    zswap = Zswap(engine, swapdev, transport, managed_pages=4096)
    payloads = [_page(i) for i in range(pages)]
    latencies: List[float] = []
    loaded: Dict[int, Optional[bytes]] = {}

    def driver():
        sim = platform.sim
        handles = []
        for data in payloads:
            t0 = sim.now
            handle, __ = yield from zswap.store(data)
            handles.append(handle)
            # Bounded by `pages`, and the full vector is part of the
            # FaultCell payload (latencies_ns) — not a scale-run leak.
            latencies.append(sim.now - t0)  # reprolint: disable=PERF403
        for i, handle in enumerate(handles):
            t0 = sim.now
            data, __ = yield from zswap.load(handle)
            latencies.append(sim.now - t0)  # reprolint: disable=PERF403
            loaded[i] = data

    platform.sim.run_process(driver(), f"fault-cell {scenario!r}")
    verified = sum(1 for i, data in enumerate(payloads)
                   if loaded.get(i) == data)
    return FaultCell(
        scenario=scenario,
        ops=len(latencies),
        p50_ns=_percentile(latencies, 0.50),
        p99_ns=_percentile(latencies, 0.99),
        fallbacks=zswap.stats.fallbacks,
        retries=engine.retries,
        timeouts=engine.timeouts,
        fault_errors=engine.fault_errors,
        crc_replays=platform.t2.port.link.crc_replays,
        verified=verified,
        lost_pages=pages - verified,
        health=engine.health.state.value,
        latencies_ns=tuple(latencies),
    )


def run_device_kill(pages: int = DEFAULT_PAGES, seed: int = DEFAULT_SEED,
                    kill_at_ns: Optional[float] = None,
                    cfg: Optional[SystemConfig] = None) -> FaultCell:
    """The headline scenario: the device hangs mid-run and cxl-zswap must
    degrade to the cpu path without deadlocking or losing pages."""
    if kill_at_ns is None:
        kill_at_ns = pages * KILL_MID_RUN_NS_PER_PAGE
    return run_cell("cxl kill", transport="cxl",
                    fault_spec=f"device_hang@t={kill_at_ns:g}",
                    pages=pages, seed=seed, cfg=cfg)


def run(drop_rates: Sequence[float] = DEFAULT_DROP_RATES,
        pages: int = DEFAULT_PAGES,
        seed: int = DEFAULT_SEED,
        cfg: Optional[SystemConfig] = None,
        jobs: Optional[int] = None) -> FaultResilienceResult:
    def point(name: str, transport: str,
              fault_spec: Optional[str]) -> SweepPoint:
        return SweepPoint(name, run_cell, (name, transport, fault_spec),
                          {"pages": pages, "seed": seed, "cfg": cfg})

    points = [point("cpu", "cpu", None)]
    points += [point(f"cxl drop={rate:g}", "cxl",
                     f"offload_drop={rate:g}" if rate else None)
               for rate in drop_rates]
    points.append(point("cxl crc=1e-3", "cxl", "link_crc=1e-3"))
    kill_at_ns = pages * KILL_MID_RUN_NS_PER_PAGE
    points.append(point("cxl kill", "cxl", f"device_hang@t={kill_at_ns:g}"))
    cells = run_sweep(SweepSpec("fault-resilience", tuple(points)), jobs=jobs)
    return FaultResilienceResult(cells, tuple(drop_rates))


def format_table(result: FaultResilienceResult) -> str:
    lines = [
        "Extension: cxl-zswap under injected faults "
        "(functional payloads, per-op latency)",
        f"{'scenario':>16s} {'p50(us)':>8s} {'p99(us)':>8s} "
        f"{'fallback%':>9s} {'retries':>7s} {'timeouts':>8s} "
        f"{'crc':>5s} {'lost':>4s} {'health':>8s}",
    ]
    for name, cell in result.cells.items():
        lines.append(
            f"{name:>16s} {cell.p50_ns / 1000:8.1f} {cell.p99_ns / 1000:8.1f} "
            f"{100 * cell.fallback_rate:9.1f} {cell.retries:7d} "
            f"{cell.timeouts:8d} {cell.crc_replays:5d} {cell.lost_pages:4d} "
            f"{cell.health:>8s}")
    return "\n".join(lines)
